#include "check/tso_audit.hpp"

#include <sstream>

#include "check/monitor.hpp"

namespace rtdb::check {

TsoAudit::TsoAudit(ConformanceMonitor& monitor) : monitor_(monitor) {}

void TsoAudit::on_txn_begin(const cc::CcTxn& txn) {
  monitor_.record({{}, "begin", txn.id.value, txn.attempt, 0, 0});
  ShadowTxn& shadow = txns_[txn.id.value];
  if (shadow.has_ts) {
    shadow.prev_ts = shadow.ts;
    shadow.has_prev = true;
  }
  shadow.attempt = txn.attempt;
  shadow.has_ts = false;
}

void TsoAudit::on_txn_end(const cc::CcTxn& txn) {
  monitor_.record({{}, "end", txn.id.value, txn.attempt, 0, 0});
  // Keep the shadow: a restarted attempt must outrun the timestamps this
  // one used. (The map stays bounded by the number of distinct TxnIds.)
}

void TsoAudit::on_tso_access(const cc::CcTxn& txn, db::ObjectId object,
                             cc::LockMode mode, std::uint64_t ts,
                             bool accepted) {
  monitor_.record({{},
                   accepted ? "tso-accept" : "tso-reject",
                   txn.id.value,
                   txn.attempt,
                   static_cast<std::int64_t>(object),
                   static_cast<std::int64_t>(ts)});
  ShadowTxn& shadow = txns_[txn.id.value];
  if (!shadow.has_ts || shadow.attempt != txn.attempt) {
    if (shadow.has_ts && shadow.attempt != txn.attempt) {
      // Missed begin: roll the attempt over here.
      shadow.prev_ts = shadow.ts;
      shadow.has_prev = true;
      shadow.attempt = txn.attempt;
    }
    if (shadow.has_prev && ts <= shadow.prev_ts) {
      std::ostringstream detail;
      detail << "txn " << txn.id.value << "/" << txn.attempt
             << " reuses timestamp " << ts << " (an earlier attempt reached "
             << shadow.prev_ts << "); restarts must draw a fresh timestamp";
      monitor_.report("tso.stale_timestamp", detail.str());
    }
    shadow.ts = ts;
    shadow.has_ts = true;
  } else if (ts != shadow.ts) {
    std::ostringstream detail;
    detail << "txn " << txn.id.value << "/" << txn.attempt
           << " switched timestamp mid-attempt: " << shadow.ts << " -> " << ts;
    monitor_.report("tso.timestamp_drift", detail.str());
  }

  // Exact replay of the accept/reject rule against the shadow object state.
  ObjectTs& state = objects_[object];
  const bool expect_accept =
      mode == cc::LockMode::kRead
          ? ts >= state.write_ts
          : (ts >= state.read_ts && ts >= state.write_ts);
  if (expect_accept != accepted) {
    std::ostringstream detail;
    detail << "txn " << txn.id.value << "/" << txn.attempt << " "
           << cc::to_string(mode) << " of object " << object << " at ts " << ts
           << " was " << (accepted ? "accepted" : "rejected")
           << " but object state (read_ts=" << state.read_ts
           << ", write_ts=" << state.write_ts << ") requires "
           << (expect_accept ? "accept" : "reject");
    monitor_.report("tso.order", detail.str());
  }
  if (accepted) {
    if (mode == cc::LockMode::kRead) {
      if (ts > state.read_ts) state.read_ts = ts;
    } else {
      state.write_ts = ts;
    }
  }
}

}  // namespace rtdb::check
