#include "check/wait_graph.hpp"

#include <algorithm>

namespace rtdb::check {

bool WaitGraph::set_edges(std::uint64_t waiter,
                          std::vector<std::uint64_t> blockers) {
  std::erase(blockers, waiter);  // self-edges are never meaningful
  if (blockers.empty()) {
    edges_.erase(waiter);
    return false;
  }
  edges_[waiter] = std::move(blockers);
  return find_cycle(waiter);
}

void WaitGraph::clear_waiter(std::uint64_t waiter) { edges_.erase(waiter); }

void WaitGraph::remove(std::uint64_t txn) {
  edges_.erase(txn);
  for (auto& [waiter, blockers] : edges_) {
    (void)waiter;
    std::erase(blockers, txn);
  }
}

bool WaitGraph::find_cycle(std::uint64_t start) {
  // Iterative DFS from `start`; a cycle through any other node would have
  // been caught when that node's edges were added, so only paths returning
  // to `start` matter.
  std::vector<std::uint64_t> path{start};
  struct Frame {
    std::uint64_t node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{start}};
  std::vector<std::uint64_t> visited{start};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto it = edges_.find(frame.node);
    if (it == edges_.end() || frame.next >= it->second.size()) {
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const std::uint64_t next = it->second[frame.next++];
    if (next == start) {
      last_cycle_ = path;
      return true;
    }
    if (std::find(visited.begin(), visited.end(), next) != visited.end()) {
      continue;
    }
    visited.push_back(next);
    path.push_back(next);
    stack.push_back(Frame{next});
  }
  return false;
}

}  // namespace rtdb::check
