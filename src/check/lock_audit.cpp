#include "check/lock_audit.hpp"

#include <sstream>
#include <string>

#include "check/monitor.hpp"

namespace rtdb::check {

namespace {

std::string priority_string(sim::Priority p) {
  return "(" + std::to_string(p.key()) + "," + std::to_string(p.tie()) + ")";
}

}  // namespace

const char* to_string(ProtocolFamily family) {
  switch (family) {
    case ProtocolFamily::kTwoPhase:
      return "two-phase";
    case ProtocolFamily::kCeiling:
      return "ceiling";
    case ProtocolFamily::kHighPriority:
      return "high-priority";
    case ProtocolFamily::kWaitDie:
      return "wait-die";
    case ProtocolFamily::kWoundWait:
      return "wound-wait";
    case ProtocolFamily::kRemoteClient:
      return "remote-client";
  }
  return "?";
}

LockAudit::LockAudit(ConformanceMonitor& monitor, ProtocolFamily family)
    : monitor_(monitor), family_(family) {}

LockAudit::ShadowTxn& LockAudit::shadow_of(const cc::CcTxn& txn) {
  ShadowTxn& shadow = txns_[txn.id.value];
  if (shadow.attempt != txn.attempt) {
    // A new attempt restarts the attempt-scoped state (two-phase rule,
    // held set) even when the begin event was missed.
    shadow = ShadowTxn{};
    shadow.attempt = txn.attempt;
  }
  shadow.base = txn.base_priority;
  return shadow;
}

void LockAudit::on_txn_begin(const cc::CcTxn& txn) {
  monitor_.record({{}, "begin", txn.id.value, txn.attempt, 0, 0});
  ShadowTxn fresh;
  fresh.attempt = txn.attempt;
  fresh.base = txn.base_priority;
  fresh.began = true;
  if (family_ == ProtocolFamily::kCeiling) {
    const auto ops = txn.access.operations();
    fresh.declared.assign(ops.begin(), ops.end());
  }
  txns_[txn.id.value] = std::move(fresh);
}

void LockAudit::on_txn_end(const cc::CcTxn& txn) {
  monitor_.record({{}, "end", txn.id.value, txn.attempt, 0, 0});
  auto it = txns_.find(txn.id.value);
  if (it != txns_.end()) {
    close_inversion(txn.id.value, it->second);
    close_wait(txn, it->second);
    txns_.erase(it);
  }
  graph_.remove(txn.id.value);
}

void LockAudit::on_grant(const cc::CcTxn& txn, db::ObjectId object,
                         cc::LockMode mode) {
  monitor_.record({{},
                   "grant",
                   txn.id.value,
                   txn.attempt,
                   static_cast<std::int64_t>(object),
                   mode == cc::LockMode::kWrite ? 1 : 0});
  ShadowTxn& shadow = shadow_of(txn);
  check_two_phase(txn, shadow, object);
  if (family_ == ProtocolFamily::kCeiling) check_ceiling_grant(txn, object);
  check_compat(txn, object, mode, "granted");
  install(shadow, object, mode);
}

void LockAudit::on_adopt(const cc::CcTxn& txn, db::ObjectId object,
                         cc::LockMode mode) {
  monitor_.record({{},
                   "adopt",
                   txn.id.value,
                   txn.attempt,
                   static_cast<std::int64_t>(object),
                   mode == cc::LockMode::kWrite ? 1 : 0});
  // Adoption reinstalls a lock a previous manager already granted, so the
  // ceiling grant rule is legitimately skipped — but ownership must still
  // be single-writer ("orphan-lock adoption leaves no double owner").
  ShadowTxn& shadow = shadow_of(txn);
  check_compat(txn, object, mode, "adopted");
  install(shadow, object, mode);
}

void LockAudit::on_block(const cc::CcTxn& txn, db::ObjectId object,
                         cc::LockMode mode,
                         std::span<cc::CcTxn* const> blockers) {
  monitor_.record({{},
                   "block",
                   txn.id.value,
                   txn.attempt,
                   static_cast<std::int64_t>(object),
                   static_cast<std::int64_t>(blockers.size())});
  ShadowTxn& shadow = shadow_of(txn);

  // Age orientation: the flavour's wait rule makes every edge point the
  // same way along the (never reused) transaction-id order, which is what
  // proves the wait-for graph acyclic. An edge against that order means
  // the protocol waited where it had to die (or wound).
  if (family_ == ProtocolFamily::kWaitDie ||
      family_ == ProtocolFamily::kWoundWait) {
    for (const cc::CcTxn* blocker : blockers) {
      const bool waiter_older = txn.id.value < blocker->id.value;
      const bool ok =
          family_ == ProtocolFamily::kWaitDie ? waiter_older : !waiter_older;
      if (!ok) {
        std::ostringstream detail;
        detail << "txn " << txn.id.value << " waits behind "
               << (family_ == ProtocolFamily::kWaitDie ? "older" : "younger")
               << " txn " << blocker->id.value << " on object " << object;
        monitor_.report(family_ == ProtocolFamily::kWaitDie
                            ? "wait_die.age_order"
                            : "wound_wait.age_order",
                        detail.str());
      }
    }
  }

  // Wait-for graph upkeep + cycle detection.
  std::vector<std::uint64_t> edge_targets;
  edge_targets.reserve(blockers.size());
  for (const cc::CcTxn* blocker : blockers) {
    edge_targets.push_back(blocker->id.value);
  }
  if (graph_.set_edges(txn.id.value, std::move(edge_targets))) {
    monitor_.note_cycle();
    if (family_ == ProtocolFamily::kWaitDie ||
        family_ == ProtocolFamily::kWoundWait) {
      // Age-ordered waiting is provably deadlock-free; a closed cycle is a
      // protocol bug, not a condition a detector is allowed to fix later.
      std::ostringstream detail;
      detail << "wait-for cycle through txn " << txn.id.value << ":";
      for (const std::uint64_t member : graph_.last_cycle()) {
        detail << " " << member;
      }
      monitor_.report("age.wait_cycle", detail.str());
    }
  }

  // Blocking episode for the bound gate: opened by the first block of a
  // wait, closed by the matching unblock (grant, abort, or kill — the
  // observer contract guarantees exactly one per block).
  if (!shadow.waiting) {
    shadow.waiting = true;
    shadow.wait_start = monitor_.now();
  }

  // Priority-inversion span: a higher-priority transaction starts waiting
  // behind at least one lower-priority holder.
  if (!shadow.inversion) {
    for (const cc::CcTxn* blocker : blockers) {
      if (txn.base_priority.higher_than(blocker->base_priority)) {
        shadow.inversion = true;
        shadow.inversion_start = monitor_.now();
        break;
      }
    }
  }
  (void)mode;
}

void LockAudit::on_unblock(const cc::CcTxn& txn) {
  monitor_.record({{}, "unblock", txn.id.value, txn.attempt, 0, 0});
  graph_.clear_waiter(txn.id.value);
  auto it = txns_.find(txn.id.value);
  if (it != txns_.end()) {
    close_inversion(txn.id.value, it->second);
    close_wait(txn, it->second);
  }
}

void LockAudit::on_release_all(const cc::CcTxn& txn) {
  monitor_.record({{}, "release", txn.id.value, txn.attempt, 0, 0});
  ShadowTxn& shadow = shadow_of(txn);
  shadow.held.clear();
  shadow.released = true;
}

void LockAudit::on_abort(db::TxnId victim, cc::AbortReason reason) {
  monitor_.record({{},
                   "abort",
                   victim.value,
                   0,
                   static_cast<std::int64_t>(reason),
                   0});
  // The victim's unblock/release events settle the shadow state; the abort
  // itself only needs to land in the trace.
}

void LockAudit::install(ShadowTxn& shadow, db::ObjectId object,
                        cc::LockMode mode) {
  auto [it, inserted] = shadow.held.try_emplace(object, mode);
  if (!inserted && mode == cc::LockMode::kWrite) {
    it->second = cc::LockMode::kWrite;  // upgrade; a write covers the read
  }
}

void LockAudit::check_two_phase(const cc::CcTxn& txn, const ShadowTxn& shadow,
                                db::ObjectId object) {
  if (!shadow.released) return;
  std::ostringstream detail;
  detail << "txn " << txn.id.value << "/" << txn.attempt
         << " granted object " << object
         << " after its release_all (two-phase rule)";
  monitor_.report("lock.two_phase", detail.str());
}

void LockAudit::check_compat(const cc::CcTxn& txn, db::ObjectId object,
                             cc::LockMode mode, const char* how) {
  for (const auto& [id, other] : txns_) {
    if (id == txn.id.value) continue;
    auto held = other.held.find(object);
    if (held == other.held.end()) continue;
    if (mode == cc::LockMode::kRead && held->second == cc::LockMode::kRead) {
      continue;  // read-read is the one compatible pair
    }
    std::ostringstream detail;
    detail << "txn " << txn.id.value << "/" << txn.attempt << " " << how
           << " a " << cc::to_string(mode) << " lock on object " << object
           << " already " << cc::to_string(held->second) << "-held by txn "
           << id;
    monitor_.report("lock.conflict", detail.str());
  }
}

sim::Priority LockAudit::declared_abs_ceiling(db::ObjectId object) const {
  sim::Priority ceiling = sim::Priority::lowest();
  for (const auto& [id, shadow] : txns_) {
    (void)id;
    if (!shadow.began) continue;
    for (const cc::Operation& op : shadow.declared) {
      if (op.object != object) continue;
      ceiling = sim::Priority::stronger(ceiling, shadow.base);
      break;
    }
  }
  return ceiling;
}

sim::Priority LockAudit::declared_write_ceiling(db::ObjectId object) const {
  sim::Priority ceiling = sim::Priority::lowest();
  for (const auto& [id, shadow] : txns_) {
    (void)id;
    if (!shadow.began) continue;
    for (const cc::Operation& op : shadow.declared) {
      if (op.object != object || op.mode != cc::LockMode::kWrite) continue;
      ceiling = sim::Priority::stronger(ceiling, shadow.base);
      break;
    }
  }
  return ceiling;
}

void LockAudit::check_ceiling_grant(const cc::CcTxn& txn, db::ObjectId object) {
  // Exact replay of PriorityCeiling::can_grant against the shadow state:
  // the grant is legal iff the requester's *base* priority is strictly
  // higher than the strongest rw-ceiling among locks held (at least
  // partly) by other transactions.
  struct LockedObject {
    bool write_locked = false;
    bool held_by_other = false;
  };
  std::map<db::ObjectId, LockedObject> locked;
  for (const auto& [id, shadow] : txns_) {
    for (const auto& [held_object, held_mode] : shadow.held) {
      LockedObject& entry = locked[held_object];
      if (held_mode == cc::LockMode::kWrite) entry.write_locked = true;
      if (id != txn.id.value) entry.held_by_other = true;
    }
  }
  bool blocked = false;
  sim::Priority strongest = sim::Priority::lowest();
  db::ObjectId blocking_object = 0;
  for (const auto& [locked_object, entry] : locked) {
    if (!entry.held_by_other) continue;
    // "When a data object is write-locked, the rw-priority ceiling ... is
    // equal to the absolute priority ceiling. When it is read-locked ...
    // equal to the write-priority ceiling."
    const sim::Priority ceiling = entry.write_locked
                                      ? declared_abs_ceiling(locked_object)
                                      : declared_write_ceiling(locked_object);
    if (!blocked || ceiling.higher_than(strongest)) {
      strongest = ceiling;
      blocking_object = locked_object;
    }
    blocked = true;
  }
  if (!blocked || txn.base_priority.higher_than(strongest)) return;
  std::ostringstream detail;
  detail << "txn " << txn.id.value << "/" << txn.attempt << " base "
         << priority_string(txn.base_priority) << " granted object " << object
         << " despite rw-ceiling " << priority_string(strongest)
         << " of locked object " << blocking_object;
  monitor_.report("pcp.grant_rule", detail.str());
}

void LockAudit::close_inversion(std::uint64_t txn, ShadowTxn& shadow) {
  (void)txn;
  if (!shadow.inversion) return;
  shadow.inversion = false;
  monitor_.note_inversion(monitor_.now() - shadow.inversion_start);
}

void LockAudit::close_wait(const cc::CcTxn& txn, ShadowTxn& shadow) {
  if (!shadow.waiting) return;
  shadow.waiting = false;
  monitor_.note_blocking(txn, monitor_.now() - shadow.wait_start);
}

}  // namespace rtdb::check
