#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/controller.hpp"
#include "check/commit_audit.hpp"
#include "check/lease_audit.hpp"
#include "check/lock_audit.hpp"
#include "check/trace_ring.hpp"
#include "check/tso_audit.hpp"
#include "check/violation.hpp"
#include "sim/kernel.hpp"

namespace rtdb::check {

// The conformance subsystem's front door: owns one audit per attached
// controller, a shared CommitAudit for the 2PC machinery, the shared trace
// event ring, and the violation reports. Everything is a pure observer —
// attaching the monitor changes no protocol decision, and a disabled
// monitor is never constructed at all, so fault-free artifacts stay
// byte-identical with checking off.
//
// All bookkeeping is driven by the deterministic simulation (virtual time,
// ordered containers), so the scalars it feeds into the artifacts are a
// pure function of (config, seed) like every other run scalar.
class ConformanceMonitor {
 public:
  struct Options {
    std::size_t trace_capacity = 256;  // events retained in the ring
    std::size_t trace_window = 24;     // events dumped per violation
    std::size_t max_reports = 16;      // full reports retained (count is not capped)
  };

  explicit ConformanceMonitor(sim::Kernel& kernel)
      : ConformanceMonitor(kernel, Options{}) {}
  ConformanceMonitor(sim::Kernel& kernel, Options options);

  ConformanceMonitor(const ConformanceMonitor&) = delete;
  ConformanceMonitor& operator=(const ConformanceMonitor&) = delete;

  // Creates the family's audit and installs it as `controller`'s observer.
  // The monitor must outlive the controller's last event.
  void attach(cc::ConcurrencyController& controller, ProtocolFamily family);

  // Partitioned scheme: like attach, but the family audit is wrapped in a
  // shard-scope check — a grant/adoption of an object `in_shard` rejects
  // is flagged as shard.wrong_shard_grant (a manager can never hand out a
  // lock its shard does not own).
  void attach_sharded(cc::ConcurrencyController& controller,
                      ProtocolFamily family, std::uint32_t shard,
                      std::function<bool(db::ObjectId)> in_shard);

  // Timestamp ordering holds no locks; it gets the timestamp-shadow audit
  // instead of a lock-family one.
  void attach_timestamp(cc::ConcurrencyController& controller);

  // The shared 2PC audit, for CommitCoordinator/CommitParticipant::
  // set_observer. One instance serves every site.
  txn::CommitObserver* commit_observer() { return &commit_audit_; }

  // The shared lease audit, for FailoverCoordinator::set_observer and
  // GlobalCeilingManager::set_lease_observer. One instance sees every
  // site's lease events, which is exactly what lets it detect two holders.
  dist::LeaseObserver* lease_observer() { return &lease_audit_; }

  // Partitioned scheme: one lease audit per shard. Each shard's election
  // runs an independent term space, so a shared audit would see two
  // legitimate holders; a per-shard instance keeps the single-holder rule
  // exact within the shard. Lazily created; stable for the monitor's life.
  dist::LeaseObserver* lease_observer(std::uint32_t shard);

  // Arms the blocking-bound gate (src/analysis): every blocking episode
  // longer than `gate` is reported under bound.blocking and counted into
  // bound_violations() — a separate scalar, not a conformance violation,
  // so theory-vs-observation failures stay distinguishable from protocol
  // rule breaks. nullopt arms measurement only (the analyzer returned an
  // Unbounded verdict: spans are recorded, nothing is flagged).
  void arm_bounds(std::optional<sim::Duration> gate) {
    bound_gate_ = gate;
  }

  // ---- run scalars ----
  std::uint64_t violations() const { return violations_; }
  std::uint64_t wait_cycles_detected() const { return wait_cycles_; }
  double max_inversion_span_units() const {
    return max_inversion_.as_units();
  }
  std::uint64_t bound_violations() const { return bound_violations_; }
  double observed_max_blocking_units() const {
    return max_blocking_.as_units();
  }

  const std::vector<Violation>& reports() const { return reports_; }
  // Every retained report with its trace window, ready for stderr.
  std::string format_reports() const;

  // ---- sink interface used by the audits ----
  void record(TraceEvent event) {
    event.at = kernel_.now();
    ring_.record(event);
  }
  void report(std::string rule, std::string detail);
  void note_cycle() { ++wait_cycles_; }
  void note_inversion(sim::Duration span) {
    if (span > max_inversion_) max_inversion_ = span;
  }
  // One closed blocking episode (block → unblock) of `txn`, reported by
  // the lock audits. Tracks the observed maximum and, when the bound gate
  // is armed, flags spans the static analysis proved impossible.
  void note_blocking(const cc::CcTxn& txn, sim::Duration span);
  sim::TimePoint now() const { return kernel_.now(); }

 private:
  sim::Kernel& kernel_;
  Options options_;
  TraceRing ring_;
  std::vector<std::unique_ptr<cc::CcObserver>> lock_audits_;
  CommitAudit commit_audit_;
  LeaseAudit lease_audit_;
  std::map<std::uint32_t, std::unique_ptr<LeaseAudit>> shard_lease_audits_;
  std::vector<Violation> reports_;
  std::uint64_t violations_ = 0;
  std::uint64_t wait_cycles_ = 0;
  sim::Duration max_inversion_{};
  std::optional<sim::Duration> bound_gate_;
  std::uint64_t bound_violations_ = 0;
  sim::Duration max_blocking_{};
};

}  // namespace rtdb::check
