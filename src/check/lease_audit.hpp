#pragma once

#include <cstdint>
#include <map>

#include "dist/lease.hpp"

namespace rtdb::check {

class ConformanceMonitor;

// Split-brain audit for the lease-fenced global ceiling scheme. Replays
// the lease discipline the failover machinery promises:
//
//  * lease.single_holder — at most one site ever holds the lease for a
//    given term. Two holders in one term is the classic split brain: two
//    managers each believing they may grant.
//  * lease.grant_without_lease — every grant is stamped by a site that
//    currently holds the lease for that exact term; a manager granting
//    after its lease expired (the fence failed — a fenceless twin) trips
//    this even before any new election raises the term.
//  * lease.stale_term_grant — no accepted grant carries an expired term:
//    once a site has adopted term T, acting on a grant stamped < T means
//    the client-side rejection fence failed (a stale-term-accepting
//    twin). Acceptance, not emission, is audited: during an asymmetric
//    partition a still-leased old manager legitimately *emits* grants the
//    majority has outranked — the system's safety argument is exactly
//    that nobody who knows better ever acts on them.
//
// Pure observer: attached via FailoverCoordinator::set_observer plus the
// GlobalCeilingManager/Client lease-observer taps, only when conformance
// checking is on.
class LeaseAudit final : public dist::LeaseObserver {
 public:
  explicit LeaseAudit(ConformanceMonitor& monitor) : monitor_(monitor) {}

  void on_lease_acquired(net::SiteId site, std::uint64_t term) override;
  void on_lease_released(net::SiteId site, std::uint64_t term) override;
  void on_lease_grant(net::SiteId site, std::uint64_t term) override;
  void on_term_adopted(net::SiteId site, std::uint64_t term) override;
  void on_grant_accepted(net::SiteId site, std::uint64_t term) override;

 private:
  ConformanceMonitor& monitor_;
  // First site ever seen holding each term's lease.
  std::map<std::uint64_t, net::SiteId> holder_by_term_;
  // Leases held right now: site -> term.
  std::map<net::SiteId, std::uint64_t> active_;
  // Highest election term each site has adopted (the acceptance fence).
  std::map<net::SiteId, std::uint64_t> adopted_;
};

}  // namespace rtdb::check
