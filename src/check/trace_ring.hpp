#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::check {

// One structured entry of the conformance trace. Events are cheap to
// record (fixed-size, no allocation beyond the ring itself) and are only
// formatted when a violation report needs a window.
struct TraceEvent {
  sim::TimePoint at{};
  const char* kind = "";    // static string: "grant", "block", "vote", ...
  std::uint64_t txn = 0;
  std::uint32_t attempt = 0;
  // Event-specific context, documented per kind at the record site
  // (object id, lock mode, site, epoch, ...). Unused slots stay 0.
  std::int64_t a = 0;
  std::int64_t b = 0;
};

// Fixed-capacity ring of the most recent trace events shared by every
// audit of one ConformanceMonitor.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity_);
  }

  void record(TraceEvent event) {
    if (capacity_ == 0) return;
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      events_[next_] = event;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
  }

  std::uint64_t recorded() const { return recorded_; }

  // The last `max_events` events, oldest first, one per line.
  std::string window(std::size_t max_events) const {
    const std::size_t have = events_.size();
    const std::size_t take = max_events < have ? max_events : have;
    std::ostringstream out;
    for (std::size_t i = 0; i < take; ++i) {
      // Walk backwards from the slot before `next_`, then emit forwards.
      const std::size_t slot = (next_ + have - take + i) % have;
      const TraceEvent& e = events_[slot];
      out << "  [" << e.at.to_string() << "] " << e.kind << " txn=" << e.txn
          << "/" << e.attempt;
      if (e.a != 0 || e.b != 0) out << " a=" << e.a << " b=" << e.b;
      out << "\n";
    }
    return out.str();
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace rtdb::check
