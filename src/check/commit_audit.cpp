#include "check/commit_audit.hpp"

#include <sstream>

#include "check/monitor.hpp"

namespace rtdb::check {

namespace {

const char* to_string(txn::DecisionSource source) {
  switch (source) {
    case txn::DecisionSource::kDecision:
      return "decision";
    case txn::DecisionSource::kInfo:
      return "peer-info";
    case txn::DecisionSource::kPresumed:
      return "presumed";
  }
  return "?";
}

}  // namespace

CommitAudit::CommitAudit(ConformanceMonitor& monitor) : monitor_(monitor) {}

void CommitAudit::on_round(db::TxnId txn, std::uint64_t epoch,
                           net::SiteId coordinator,
                           std::span<const net::SiteId> participants) {
  monitor_.record({{},
                   "2pc-round",
                   txn.value,
                   0,
                   static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(coordinator)});
  Round& round = txns_[txn.value].rounds[epoch];
  round.participants.assign(participants.begin(), participants.end());
}

void CommitAudit::on_vote(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
                          bool yes) {
  monitor_.record({{},
                   yes ? "2pc-vote-yes" : "2pc-vote-no",
                   txn.value,
                   0,
                   static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(site)});
  Round& round = txns_[txn.value].rounds[epoch];
  if (yes) {
    round.voted_yes.insert(site);
  } else {
    round.voted_no.insert(site);
  }
}

void CommitAudit::on_decision(db::TxnId txn, std::uint64_t epoch, bool commit) {
  monitor_.record({{},
                   commit ? "2pc-commit" : "2pc-abort",
                   txn.value,
                   0,
                   static_cast<std::int64_t>(epoch),
                   0});
  TxnState& state = txns_[txn.value];
  Round& round = state.rounds[epoch];
  if (round.decided && round.commit != commit) {
    std::ostringstream detail;
    detail << "txn " << txn.value << " epoch " << epoch << " decided "
           << (round.commit ? "commit" : "abort") << " and later "
           << (commit ? "commit" : "abort");
    monitor_.report("2pc.decision_conflict", detail.str());
  }
  round.decided = true;
  round.commit = commit;
  if (!commit) return;

  // A commit requires a unanimous yes. Every vote the coordinator could
  // have counted was observed at its sender first, so a participant that
  // voted no for this epoch (and never yes — a duplicated prepare may
  // legally re-vote) contradicts the decision.
  for (const net::SiteId site : round.voted_no) {
    if (round.voted_yes.contains(site)) continue;
    std::ostringstream detail;
    detail << "txn " << txn.value << " epoch " << epoch
           << " committed although site " << site << " voted no";
    monitor_.report("2pc.commit_without_quorum", detail.str());
  }
  if (state.committed && state.committed_epoch != epoch) {
    std::ostringstream detail;
    detail << "txn " << txn.value << " committed in epoch "
           << state.committed_epoch << " and again in epoch " << epoch;
    monitor_.report("2pc.double_commit", detail.str());
  }
  state.committed = true;
  state.committed_epoch = epoch;
}

void CommitAudit::on_apply(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
                           bool commit, txn::DecisionSource source) {
  monitor_.record({{},
                   commit ? "2pc-apply-commit" : "2pc-apply-abort",
                   txn.value,
                   0,
                   static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(site)});
  if (source == txn::DecisionSource::kPresumed) return;
  const TxnState& state = txns_[txn.value];
  auto it = state.rounds.find(epoch);
  const Round* round = it != state.rounds.end() ? &it->second : nullptr;
  if (round != nullptr && round->decided) {
    if (round->commit != commit) {
      std::ostringstream detail;
      detail << "site " << site << " applied "
             << (commit ? "commit" : "abort") << " for txn " << txn.value
             << " epoch " << epoch << " (" << to_string(source)
             << ") but the coordinator decided "
             << (round->commit ? "commit" : "abort");
      monitor_.report("2pc.apply_mismatch", detail.str());
    }
    return;
  }
  // No recorded decision for this epoch. A peer answering a termination
  // query may legally report "abort" for a round superseded before it was
  // decided — but a commit can only originate from a real decision.
  if (commit) {
    std::ostringstream detail;
    detail << "site " << site << " applied commit for txn " << txn.value
           << " epoch " << epoch << " (" << to_string(source)
           << ") with no recorded coordinator decision";
    monitor_.report("2pc.apply_untraceable", detail.str());
  }
}

}  // namespace rtdb::check
