#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "txn/commit_observer.hpp"

namespace rtdb::check {

class ConformanceMonitor;

// Online audit of the two-phase-commit machinery. One instance is shared
// by every coordinator and participant of a system, so it sees the global
// picture regardless of which messages survive the network:
//   * a commit decision requires a yes vote from every participant — an
//     epoch with a standing no vote must abort
//   * decisions are unique per (txn, epoch), and at most one epoch of a
//     transaction may commit (restart rounds may only abort)
//   * every applied commit traces back to a recorded coordinator decision
//     for that exact epoch — across failover terms, a participant must
//     never apply an outcome no coordinator decided
// Presumed aborts (DecisionSource::kPresumed) are deliberate guesses and
// are recorded but never flagged.
class CommitAudit final : public txn::CommitObserver {
 public:
  explicit CommitAudit(ConformanceMonitor& monitor);

  void on_round(db::TxnId txn, std::uint64_t epoch, net::SiteId coordinator,
                std::span<const net::SiteId> participants) override;
  void on_vote(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
               bool yes) override;
  void on_decision(db::TxnId txn, std::uint64_t epoch, bool commit) override;
  void on_apply(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
                bool commit, txn::DecisionSource source) override;

 private:
  struct Round {
    std::vector<net::SiteId> participants;
    std::set<net::SiteId> voted_yes;
    std::set<net::SiteId> voted_no;
    bool decided = false;
    bool commit = false;
  };
  struct TxnState {
    std::map<std::uint64_t, Round> rounds;  // keyed by epoch
    bool committed = false;
    std::uint64_t committed_epoch = 0;
  };

  ConformanceMonitor& monitor_;
  std::map<std::uint64_t, TxnState> txns_;
};

}  // namespace rtdb::check
