#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace rtdb::check {

// Live wait-for graph of one controller, maintained from the observer's
// block/unblock events: an edge waiter -> blocker exists while `waiter` is
// blocked inside acquire() behind `blocker`. Transaction ids are never
// reused, so a stale edge pointing at a finished transaction cannot close
// a cycle (finished transactions have no outgoing edges).
class WaitGraph {
 public:
  // Replaces `waiter`'s outgoing edges. Returns true when the new edges
  // close a cycle through `waiter`.
  bool set_edges(std::uint64_t waiter, std::vector<std::uint64_t> blockers);

  // The waiter unblocked (granted, cancelled, or aborted).
  void clear_waiter(std::uint64_t waiter);

  // The transaction finished: drop it as waiter and as blocker.
  void remove(std::uint64_t txn);

  // The transactions on the cycle found by the last set_edges() that
  // returned true, waiter first.
  const std::vector<std::uint64_t>& last_cycle() const { return last_cycle_; }

  std::size_t waiter_count() const { return edges_.size(); }

 private:
  bool find_cycle(std::uint64_t start);

  std::map<std::uint64_t, std::vector<std::uint64_t>> edges_;
  std::vector<std::uint64_t> last_cycle_;
};

}  // namespace rtdb::check
