#include "check/shard_audit.hpp"

#include <sstream>
#include <utility>

#include "check/monitor.hpp"

namespace rtdb::check {

ShardScopeAudit::ShardScopeAudit(ConformanceMonitor& monitor,
                                 ProtocolFamily family, std::uint32_t shard,
                                 std::function<bool(db::ObjectId)> in_shard)
    : monitor_(monitor),
      inner_(monitor, family),
      shard_(shard),
      in_shard_(std::move(in_shard)) {}

void ShardScopeAudit::check_scope(const cc::CcTxn& txn, db::ObjectId object,
                                  const char* how) {
  if (in_shard_(object)) return;
  std::ostringstream detail;
  detail << "txn " << txn.id.value << " " << how << " object " << object
         << " at shard " << shard_ << ", which does not own it";
  monitor_.report("shard.wrong_shard_grant", detail.str());
}

void ShardScopeAudit::on_txn_begin(const cc::CcTxn& txn) {
  inner_.on_txn_begin(txn);
}

void ShardScopeAudit::on_txn_end(const cc::CcTxn& txn) {
  inner_.on_txn_end(txn);
}

void ShardScopeAudit::on_grant(const cc::CcTxn& txn, db::ObjectId object,
                               cc::LockMode mode) {
  check_scope(txn, object, "granted");
  inner_.on_grant(txn, object, mode);
}

void ShardScopeAudit::on_block(const cc::CcTxn& txn, db::ObjectId object,
                               cc::LockMode mode,
                               std::span<cc::CcTxn* const> blockers) {
  inner_.on_block(txn, object, mode, blockers);
}

void ShardScopeAudit::on_unblock(const cc::CcTxn& txn) {
  inner_.on_unblock(txn);
}

void ShardScopeAudit::on_release_all(const cc::CcTxn& txn) {
  inner_.on_release_all(txn);
}

void ShardScopeAudit::on_abort(db::TxnId victim, cc::AbortReason reason) {
  inner_.on_abort(victim, reason);
}

void ShardScopeAudit::on_adopt(const cc::CcTxn& txn, db::ObjectId object,
                               cc::LockMode mode) {
  check_scope(txn, object, "adopted");
  inner_.on_adopt(txn, object, mode);
}

}  // namespace rtdb::check
