#include "check/monitor.hpp"

#include <sstream>
#include <utility>

#include "check/shard_audit.hpp"

namespace rtdb::check {

ConformanceMonitor::ConformanceMonitor(sim::Kernel& kernel, Options options)
    : kernel_(kernel),
      options_(options),
      ring_(options.trace_capacity),
      commit_audit_(*this),
      lease_audit_(*this) {}

void ConformanceMonitor::attach(cc::ConcurrencyController& controller,
                                ProtocolFamily family) {
  lock_audits_.push_back(std::make_unique<LockAudit>(*this, family));
  controller.set_observer(lock_audits_.back().get());
}

void ConformanceMonitor::attach_sharded(
    cc::ConcurrencyController& controller, ProtocolFamily family,
    std::uint32_t shard, std::function<bool(db::ObjectId)> in_shard) {
  lock_audits_.push_back(std::make_unique<ShardScopeAudit>(
      *this, family, shard, std::move(in_shard)));
  controller.set_observer(lock_audits_.back().get());
}

void ConformanceMonitor::attach_timestamp(
    cc::ConcurrencyController& controller) {
  lock_audits_.push_back(std::make_unique<TsoAudit>(*this));
  controller.set_observer(lock_audits_.back().get());
}

dist::LeaseObserver* ConformanceMonitor::lease_observer(std::uint32_t shard) {
  auto it = shard_lease_audits_.find(shard);
  if (it == shard_lease_audits_.end()) {
    it = shard_lease_audits_
             .emplace(shard, std::make_unique<LeaseAudit>(*this))
             .first;
  }
  return it->second.get();
}

void ConformanceMonitor::report(std::string rule, std::string detail) {
  ++violations_;
  if (reports_.size() >= options_.max_reports) return;
  reports_.push_back(Violation{kernel_.now(), std::move(rule),
                               std::move(detail),
                               ring_.window(options_.trace_window)});
}

void ConformanceMonitor::note_blocking(const cc::CcTxn& txn,
                                       sim::Duration span) {
  if (span > max_blocking_) max_blocking_ = span;
  if (!bound_gate_ || span <= *bound_gate_) return;
  // Observation beat theory: either the protocol blocked longer than its
  // structural argument allows, or the analyzer's bound (or margin) is
  // wrong. Both are reportable defects; the count is its own scalar so
  // the artifact separates them from protocol rule breaks.
  ++bound_violations_;
  if (reports_.size() >= options_.max_reports) return;
  std::ostringstream detail;
  detail << "txn " << txn.id.value << "/" << txn.attempt
         << " observed a blocking episode of " << span.to_string()
         << ", exceeding the analytic worst case "
         << bound_gate_->to_string();
  reports_.push_back(Violation{kernel_.now(), "bound.blocking", detail.str(),
                               ring_.window(options_.trace_window)});
}

std::string ConformanceMonitor::format_reports() const {
  std::ostringstream out;
  for (const Violation& violation : reports_) {
    out << "conformance violation [" << violation.rule << "] at "
        << violation.at.to_string() << ": " << violation.detail << "\n"
        << "trace window (oldest first):\n"
        << violation.trace;
  }
  if (violations_ + bound_violations_ > reports_.size()) {
    out << "... " << (violations_ + bound_violations_ - reports_.size())
        << " further violation(s) not retained\n";
  }
  return out.str();
}

}  // namespace rtdb::check
