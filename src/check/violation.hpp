#pragma once

#include <string>

#include "sim/time.hpp"

namespace rtdb::check {

// One confirmed conformance violation: a protocol invariant the shipped
// implementation is supposed to uphold was observed broken at `at`.
// `trace` carries the formatted tail of the event ring at report time so
// the violation can be diagnosed without re-running under a debugger.
struct Violation {
  sim::TimePoint at{};
  std::string rule;    // dotted rule id, e.g. "pcp.grant_rule"
  std::string detail;  // human-readable context (txn, object, priorities)
  std::string trace;   // bounded window of the trace event ring
};

}  // namespace rtdb::check
