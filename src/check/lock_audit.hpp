#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cc/observer.hpp"
#include "check/wait_graph.hpp"
#include "sim/priority.hpp"
#include "sim/time.hpp"

namespace rtdb::check {

class ConformanceMonitor;

// Which rule set a controller is audited against. The families map the
// shipped protocols onto their provable invariants: what is a theorem for
// one protocol (e.g. an acyclic wait-for graph under wait-die) is merely a
// statistic for another (2PL resolves its cycles by aborting a victim).
enum class ProtocolFamily : std::uint8_t {
  kTwoPhase,      // 2PL / 2PL-P / 2PL-PIP: deadlocks legal, detector resolves
  kCeiling,       // PCP / PCP-X: ceiling grant rule replayed exactly
  kHighPriority,  // 2PL-HP: transient cycles dissolve via wounds
  kWaitDie,       // age orientation: waiter older than every blocker
  kWoundWait,     // age orientation: waiter younger than every blocker
  kRemoteClient,  // global-ceiling client: structural + two-phase rule only
};

const char* to_string(ProtocolFamily family);

// Online audit of one lock-based ConcurrencyController. Maintains a shadow
// of the held-lock sets, the live wait-for graph, and — for the ceiling
// family — the per-object ceilings recomputed from the declared sets of
// the active transactions, and checks every observed event against the
// family's invariants:
//   * two-phase rule: no grant after the attempt's release_all
//   * compatibility: a write grant admits no second holder; a read grant
//     admits no writer (covers failover adoption double-owners)
//   * ceiling grant rule (kCeiling): the requester's base priority must
//     exceed the strongest rw-ceiling among locks held by others — an
//     exact replay of PriorityCeiling::can_grant
//   * age orientation (kWaitDie / kWoundWait): every wait edge points the
//     way the age rule proves acyclic, and no wait cycle may ever close
// Wait cycles in the other families and priority-inversion spans are
// measured (wait_cycles_detected / max_inversion_span scalars), not flagged.
class LockAudit final : public cc::CcObserver {
 public:
  LockAudit(ConformanceMonitor& monitor, ProtocolFamily family);

  void on_txn_begin(const cc::CcTxn& txn) override;
  void on_txn_end(const cc::CcTxn& txn) override;
  void on_grant(const cc::CcTxn& txn, db::ObjectId object,
                cc::LockMode mode) override;
  void on_block(const cc::CcTxn& txn, db::ObjectId object, cc::LockMode mode,
                std::span<cc::CcTxn* const> blockers) override;
  void on_unblock(const cc::CcTxn& txn) override;
  void on_release_all(const cc::CcTxn& txn) override;
  void on_abort(db::TxnId victim, cc::AbortReason reason) override;
  void on_adopt(const cc::CcTxn& txn, db::ObjectId object,
                cc::LockMode mode) override;

 private:
  struct ShadowTxn {
    std::uint32_t attempt = 0;
    sim::Priority base{};
    std::vector<cc::Operation> declared;  // ceiling family only
    std::map<db::ObjectId, cc::LockMode> held;
    bool began = false;     // counted into the ceiling computation
    bool released = false;  // release_all seen for this attempt
    bool inversion = false;
    sim::TimePoint inversion_start{};
    // Open blocking episode (block → unblock), fed to the monitor's
    // blocking-bound gate when it closes.
    bool waiting = false;
    sim::TimePoint wait_start{};
  };

  ShadowTxn& shadow_of(const cc::CcTxn& txn);
  void install(ShadowTxn& shadow, db::ObjectId object, cc::LockMode mode);
  void check_two_phase(const cc::CcTxn& txn, const ShadowTxn& shadow,
                       db::ObjectId object);
  void check_compat(const cc::CcTxn& txn, db::ObjectId object,
                    cc::LockMode mode, const char* how);
  void check_ceiling_grant(const cc::CcTxn& txn, db::ObjectId object);
  // The declared-set ceilings of `object`, recomputed from the active
  // shadow transactions (exactly refresh_static_ceilings' definition).
  sim::Priority declared_abs_ceiling(db::ObjectId object) const;
  sim::Priority declared_write_ceiling(db::ObjectId object) const;
  void close_inversion(std::uint64_t txn, ShadowTxn& shadow);
  void close_wait(const cc::CcTxn& txn, ShadowTxn& shadow);

  ConformanceMonitor& monitor_;
  ProtocolFamily family_;
  WaitGraph graph_;
  // Keyed by TxnId value; std::map keeps every audit iteration (and thus
  // every report) deterministic.
  std::map<std::uint64_t, ShadowTxn> txns_;
};

}  // namespace rtdb::check
