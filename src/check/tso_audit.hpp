#pragma once

#include <cstdint>
#include <map>

#include "cc/observer.hpp"

namespace rtdb::check {

class ConformanceMonitor;

// Online audit of a TimestampOrdering controller: an exact shadow of the
// per-object read/write timestamps replays every accept/reject decision,
// and the per-attempt timestamps are checked for stability (one timestamp
// per attempt) and cross-attempt freshness (a restarted attempt must draw
// a strictly newer timestamp, or a rejected reader would livelock).
class TsoAudit final : public cc::CcObserver {
 public:
  explicit TsoAudit(ConformanceMonitor& monitor);

  void on_txn_begin(const cc::CcTxn& txn) override;
  void on_txn_end(const cc::CcTxn& txn) override;
  void on_tso_access(const cc::CcTxn& txn, db::ObjectId object,
                     cc::LockMode mode, std::uint64_t ts,
                     bool accepted) override;

 private:
  struct ObjectTs {
    std::uint64_t read_ts = 0;
    std::uint64_t write_ts = 0;
  };
  struct ShadowTxn {
    std::uint32_t attempt = 0;
    bool has_ts = false;
    std::uint64_t ts = 0;
    // Newest timestamp seen in any earlier attempt of this transaction.
    bool has_prev = false;
    std::uint64_t prev_ts = 0;
  };

  ConformanceMonitor& monitor_;
  std::map<db::ObjectId, ObjectTs> objects_;
  std::map<std::uint64_t, ShadowTxn> txns_;
};

}  // namespace rtdb::check
