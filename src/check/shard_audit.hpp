#pragma once

#include <cstdint>
#include <functional>

#include "check/lock_audit.hpp"

namespace rtdb::check {

class ConformanceMonitor;

// Shard-scope wrapper for a per-shard ceiling manager's audit (the
// partitioned scheme). Every event is forwarded to the wrapped family
// audit unchanged; in addition, a grant or adoption of an object outside
// the manager's own shard is flagged — a correct manager can never hand
// out a lock it does not own, so a wrong-shard grant means the router or
// the partitioner diverged between client and manager.
class ShardScopeAudit final : public cc::CcObserver {
 public:
  ShardScopeAudit(ConformanceMonitor& monitor, ProtocolFamily family,
                  std::uint32_t shard,
                  std::function<bool(db::ObjectId)> in_shard);

  void on_txn_begin(const cc::CcTxn& txn) override;
  void on_txn_end(const cc::CcTxn& txn) override;
  void on_grant(const cc::CcTxn& txn, db::ObjectId object,
                cc::LockMode mode) override;
  void on_block(const cc::CcTxn& txn, db::ObjectId object, cc::LockMode mode,
                std::span<cc::CcTxn* const> blockers) override;
  void on_unblock(const cc::CcTxn& txn) override;
  void on_release_all(const cc::CcTxn& txn) override;
  void on_abort(db::TxnId victim, cc::AbortReason reason) override;
  void on_adopt(const cc::CcTxn& txn, db::ObjectId object,
                cc::LockMode mode) override;

 private:
  void check_scope(const cc::CcTxn& txn, db::ObjectId object,
                   const char* how);

  ConformanceMonitor& monitor_;
  LockAudit inner_;
  std::uint32_t shard_;
  std::function<bool(db::ObjectId)> in_shard_;
};

}  // namespace rtdb::check
