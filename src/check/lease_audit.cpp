#include "check/lease_audit.hpp"

#include <string>

#include "check/monitor.hpp"

namespace rtdb::check {

void LeaseAudit::on_lease_acquired(net::SiteId site, std::uint64_t term) {
  monitor_.record(TraceEvent{{}, "lease-acquire", 0, 0,
                             static_cast<std::int64_t>(site),
                             static_cast<std::int64_t>(term)});
  const auto [it, inserted] = holder_by_term_.try_emplace(term, site);
  if (!inserted && it->second != site) {
    monitor_.report("lease.single_holder",
                    "term " + std::to_string(term) + " lease acquired by site " +
                        std::to_string(site) + " but site " +
                        std::to_string(it->second) + " already held it");
  }
  active_[site] = term;
}

void LeaseAudit::on_lease_released(net::SiteId site, std::uint64_t term) {
  monitor_.record(TraceEvent{{}, "lease-release", 0, 0,
                             static_cast<std::int64_t>(site),
                             static_cast<std::int64_t>(term)});
  active_.erase(site);
}

void LeaseAudit::on_lease_grant(net::SiteId site, std::uint64_t term) {
  monitor_.record(TraceEvent{{}, "lease-grant", 0, 0,
                             static_cast<std::int64_t>(site),
                             static_cast<std::int64_t>(term)});
  const auto it = active_.find(site);
  if (it == active_.end() || it->second != term) {
    monitor_.report(
        "lease.grant_without_lease",
        "site " + std::to_string(site) + " granted with term " +
            std::to_string(term) +
            (it == active_.end()
                 ? " while holding no lease"
                 : " while holding the lease for term " +
                       std::to_string(it->second)));
  }
}

void LeaseAudit::on_term_adopted(net::SiteId site, std::uint64_t term) {
  monitor_.record(TraceEvent{{}, "term-adopt", 0, 0,
                             static_cast<std::int64_t>(site),
                             static_cast<std::int64_t>(term)});
  std::uint64_t& adopted = adopted_[site];
  if (term > adopted) adopted = term;
}

void LeaseAudit::on_grant_accepted(net::SiteId site, std::uint64_t term) {
  monitor_.record(TraceEvent{{}, "lease-accept", 0, 0,
                             static_cast<std::int64_t>(site),
                             static_cast<std::int64_t>(term)});
  const auto it = adopted_.find(site);
  if (it != adopted_.end() && term < it->second) {
    monitor_.report("lease.stale_term_grant",
                    "site " + std::to_string(site) +
                        " accepted a grant stamped with expired term " +
                        std::to_string(term) + " after adopting term " +
                        std::to_string(it->second));
  }
}

}  // namespace rtdb::check
