#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/monitor.hpp"

namespace rtdb::stats {

// Aggregated results of one run — the paper's two headline measures plus
// supporting statistics.
struct Metrics {
  std::uint64_t arrived = 0;
  std::uint64_t processed = 0;  // committed or aborted at the deadline
  std::uint64_t committed = 0;
  std::uint64_t missed = 0;

  // "%missed = 100 x (deadline-missing) / (transactions processed)".
  double pct_missed = 0.0;
  // Normalized throughput: data objects accessed per second by *successful*
  // transactions ("completion rate x transaction size").
  double throughput_objects_per_sec = 0.0;
  double avg_response_units = 0.0;  // committed transactions only
  double avg_blocked_units = 0.0;   // per processed transaction
  std::uint64_t total_restarts = 0;
  std::uint64_t total_ceiling_blocks = 0;

  static Metrics compute(std::span<const TxnRecord> records,
                         sim::Duration elapsed);
};

// Mean / standard deviation / extrema / confidence interval over the runs
// of one experiment cell (the paper averages 10 runs per point).
struct RunAggregate {
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1 denominator)
  // Half-width of the two-sided 95% confidence interval on the mean,
  // t_{0.975,n-1} * stddev / sqrt(n); 0 for fewer than two samples.
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  static RunAggregate over(std::span<const double> samples);
};

}  // namespace rtdb::stats
