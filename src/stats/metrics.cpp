#include "stats/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::stats {

Metrics Metrics::compute(std::span<const TxnRecord> records,
                         sim::Duration elapsed) {
  Metrics m;
  m.arrived = records.size();
  std::uint64_t committed_objects = 0;
  double response_sum = 0.0;
  double blocked_sum = 0.0;
  for (const TxnRecord& r : records) {
    if (!r.processed) continue;  // still in flight at measurement end
    ++m.processed;
    m.total_restarts += r.aborts;
    m.total_ceiling_blocks += r.ceiling_blocks;
    blocked_sum += r.blocked.as_units();
    if (r.committed) {
      ++m.committed;
      committed_objects += r.size;
      response_sum += r.response().as_units();
    }
    if (r.missed_deadline) ++m.missed;
  }
  if (m.processed > 0) {
    m.pct_missed = 100.0 * static_cast<double>(m.missed) /
                   static_cast<double>(m.processed);
    m.avg_blocked_units = blocked_sum / static_cast<double>(m.processed);
  }
  if (m.committed > 0) {
    m.avg_response_units = response_sum / static_cast<double>(m.committed);
  }
  const double seconds = elapsed.as_seconds();
  if (seconds > 0) {
    m.throughput_objects_per_sec =
        static_cast<double>(committed_objects) / seconds;
  }
  return m;
}

namespace {

// Two-sided 97.5% Student-t critical values by degrees of freedom; beyond
// 30 the normal approximation is within half a percent.
double t_critical_975(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= std::size(kTable)) return kTable[df - 1];
  return 1.960;
}

}  // namespace

RunAggregate RunAggregate::over(std::span<const double> samples) {
  RunAggregate a;
  a.n = samples.size();
  if (samples.empty()) return a;
  a.min = *std::min_element(samples.begin(), samples.end());
  a.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) sum += s;
  a.mean = sum / static_cast<double>(a.n);
  double sq = 0.0;
  for (double s : samples) sq += (s - a.mean) * (s - a.mean);
  a.stddev = a.n > 1 ? std::sqrt(sq / static_cast<double>(a.n - 1)) : 0.0;
  a.ci95 = a.n > 1 ? t_critical_975(a.n - 1) * a.stddev /
                         std::sqrt(static_cast<double>(a.n))
                   : 0.0;
  return a;
}

}  // namespace rtdb::stats
