#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rtdb::stats {

struct RunAggregate;

// Column-aligned text tables for the bench harness output (one table per
// paper figure) with optional CSV emission for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell helpers; each add_row call must match the header count.
  void add_row(std::vector<std::string> cells);

  static std::string num(double value, int precision = 2);
  static std::string num(std::uint64_t value);
  // "mean ±ci95" — the figure tables report the run-to-run confidence
  // half-width next to every headline mean.
  static std::string num(const RunAggregate& agg, int precision = 2);

  // Renders with a title line, aligned columns, and a separator rule.
  std::string to_text(const std::string& title) const;
  std::string to_csv() const;

  void print(const std::string& title, std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtdb::stats
