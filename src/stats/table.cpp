#include "stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

#include "stats/metrics.hpp"

namespace rtdb::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::num(std::uint64_t value) {
  return std::to_string(value);
}

std::string Table::num(const RunAggregate& agg, int precision) {
  return num(agg.mean, precision) + " ±" + num(agg.ci95, precision);
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += "  ";
      // Right-align numbers-ish content by padding on the left.
      out += std::string(widths[c] - cells[c].size(), ' ') + cells[c];
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(rule, '-') + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += cells[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(const std::string& title, std::ostream& out) const {
  out << to_text(title) << '\n';
}

}  // namespace rtdb::stats
