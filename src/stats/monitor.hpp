#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/types.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace rtdb::stats {

// Everything the Performance Monitor records about one transaction — the
// paper's list: arrival time, start time, total processing time, blocked
// interval, whether the deadline was missed, and the number of aborts.
struct TxnRecord {
  db::TxnId id{};
  net::SiteId site = 0;
  bool read_only = false;
  std::uint32_t size = 0;  // data objects accessed
  sim::TimePoint arrival{};
  sim::TimePoint deadline{};

  sim::TimePoint first_start{};
  sim::TimePoint finish{};
  bool processed = false;   // committed or aborted at its deadline
  bool committed = false;
  bool missed_deadline = false;
  // Rejected by admission control at arrival; never started, never
  // processed — excluded from the miss% denominator (miss% is over
  // *admitted* transactions).
  bool shed = false;
  std::uint32_t aborts = 0;  // protocol-initiated restarts
  sim::Duration blocked{};   // summed over attempts
  std::uint32_t ceiling_blocks = 0;

  sim::Duration response() const { return finish - arrival; }
};

// The Performance Monitor: transaction managers report lifecycle events
// here; experiments read the records and aggregate them into Metrics.
class PerformanceMonitor {
 public:
  PerformanceMonitor() = default;
  PerformanceMonitor(const PerformanceMonitor&) = delete;
  PerformanceMonitor& operator=(const PerformanceMonitor&) = delete;

  // Registers a transaction on arrival. Id must be new.
  TxnRecord& on_arrival(TxnRecord base);

  TxnRecord& record(db::TxnId id);
  const TxnRecord* find(db::TxnId id) const;

  void on_start(db::TxnId id, sim::TimePoint at);
  void on_restart(db::TxnId id);
  // Adds one attempt's blocking statistics (called as each attempt ends).
  void on_attempt_stats(db::TxnId id, sim::Duration blocked,
                        std::uint32_t ceiling_blocks);
  void on_commit(db::TxnId id, sim::TimePoint at);
  void on_deadline_miss(db::TxnId id, sim::TimePoint at);
  // Admission control rejected the transaction at arrival.
  void on_shed(db::TxnId id);

  const std::vector<TxnRecord>& records() const { return records_; }
  std::size_t arrived() const { return records_.size(); }
  std::size_t processed() const { return processed_; }
  std::size_t committed() const { return committed_; }
  std::size_t missed() const { return missed_; }
  std::size_t shed() const { return shed_; }

 private:
  std::vector<TxnRecord> records_;
  std::unordered_map<db::TxnId, std::size_t> index_;
  std::size_t processed_ = 0;
  std::size_t committed_ = 0;
  std::size_t missed_ = 0;
  std::size_t shed_ = 0;
};

}  // namespace rtdb::stats
