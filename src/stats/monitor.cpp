#include "stats/monitor.hpp"

#include <cassert>

namespace rtdb::stats {

TxnRecord& PerformanceMonitor::on_arrival(TxnRecord base) {
  assert(base.id.valid());
  assert(!index_.contains(base.id));
  index_.emplace(base.id, records_.size());
  records_.push_back(base);
  return records_.back();
}

TxnRecord& PerformanceMonitor::record(db::TxnId id) {
  auto it = index_.find(id);
  assert(it != index_.end());
  return records_[it->second];
}

const TxnRecord* PerformanceMonitor::find(db::TxnId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

void PerformanceMonitor::on_start(db::TxnId id, sim::TimePoint at) {
  TxnRecord& r = record(id);
  if (r.first_start == sim::TimePoint{} && r.aborts == 0) r.first_start = at;
}

void PerformanceMonitor::on_restart(db::TxnId id) { ++record(id).aborts; }

void PerformanceMonitor::on_attempt_stats(db::TxnId id, sim::Duration blocked,
                                          std::uint32_t ceiling_blocks) {
  TxnRecord& r = record(id);
  r.blocked += blocked;
  r.ceiling_blocks += ceiling_blocks;
}

void PerformanceMonitor::on_commit(db::TxnId id, sim::TimePoint at) {
  TxnRecord& r = record(id);
  assert(!r.processed);
  r.processed = true;
  r.committed = true;
  r.finish = at;
  ++processed_;
  ++committed_;
}

void PerformanceMonitor::on_shed(db::TxnId id) {
  TxnRecord& r = record(id);
  assert(!r.processed && !r.shed);
  r.shed = true;
  ++shed_;
}

void PerformanceMonitor::on_deadline_miss(db::TxnId id, sim::TimePoint at) {
  TxnRecord& r = record(id);
  assert(!r.processed);
  r.processed = true;
  r.missed_deadline = true;
  r.finish = at;
  ++processed_;
  ++missed_;
}

}  // namespace rtdb::stats
