#include "workload/generator.hpp"

#include <cassert>
#include <utility>

namespace rtdb::workload {

using cc::LockMode;
using cc::Operation;

TransactionGenerator::TransactionGenerator(sim::Kernel& kernel,
                                           const db::Database& schema,
                                           WorkloadConfig config,
                                           sim::RandomStream rng,
                                           SubmitFn submit)
    : kernel_(kernel),
      schema_(schema),
      config_(config),
      rng_(rng),
      submit_(std::move(submit)) {
  assert(config_.size_min >= 1 && config_.size_min <= config_.size_max);
  assert(config_.size_max <= schema_.object_count());
  assert(config_.read_only_fraction >= 0.0 &&
         config_.read_only_fraction <= 1.0);
  assert(config_.slack_min > 0 && config_.slack_min <= config_.slack_max);
}

void TransactionGenerator::start() {
  assert(!started_);
  started_ = true;
  kernel_.spawn("txn-generator", aperiodic_stream());
  std::uint64_t index = 0;
  for (const PeriodicSource& source : config_.periodic) {
    kernel_.spawn("periodic-source-" + std::to_string(index),
                  periodic_stream(source, index));
    ++index;
  }
}

sim::Task<void> TransactionGenerator::aperiodic_stream() {
  for (std::uint64_t i = 0; i < config_.transaction_count; ++i) {
    co_await kernel_.delay(
        rng_.exponential_duration(config_.mean_interarrival));
    const bool read_only = rng_.bernoulli(config_.read_only_fraction);
    const auto size = static_cast<std::uint32_t>(
        rng_.uniform_int(config_.size_min, config_.size_max));
    txn::TransactionSpec spec = make_transaction(read_only, size);
    ++generated_;
    submit_(std::move(spec));
  }
}

sim::Task<void> TransactionGenerator::periodic_stream(
    PeriodicSource source, std::uint64_t stream_index) {
  (void)stream_index;
  co_await kernel_.delay(source.phase);
  for (;;) {
    txn::TransactionSpec spec =
        make_transaction(source.read_only, source.size, source.home_site);
    // Periodic deadline: the next release, scaled by the source's slack.
    spec.deadline = kernel_.now() + source.period.scaled(source.deadline_slack);
    spec.priority = sim::Priority{spec.deadline.as_ticks(),
                                  static_cast<std::uint32_t>(spec.id.value)};
    ++generated_;
    submit_(std::move(spec));
    co_await kernel_.delay(source.period);
  }
}

std::vector<std::uint32_t> TransactionGenerator::sample_objects(
    std::uint32_t n, std::uint32_t k) {
  assert(k <= n);
  if (config_.zipf_theta == 0.0) {
    // Bit-identical to the pre-Zipf generator: same helper, same draws.
    return rng_.sample_without_replacement(n, k);
  }
  auto it = zipf_by_n_.find(n);
  if (it == zipf_by_n_.end()) {
    it = zipf_by_n_.emplace(n, sim::ZipfDistribution(n, config_.zipf_theta))
             .first;
  }
  const sim::ZipfDistribution& zipf = it->second;
  // Rejection-sample until k distinct ranks accumulate. With k << n and
  // theta around 1 the expected retry count is small; the worst case
  // (k == n) still terminates because every rank has positive mass.
  std::vector<std::uint32_t> result;
  result.reserve(k);
  while (result.size() < k) {
    const std::uint32_t pick = zipf.sample(rng_);
    bool duplicate = false;
    for (const std::uint32_t chosen : result) {
      if (chosen == pick) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) result.push_back(pick);
  }
  return result;
}

txn::TransactionSpec TransactionGenerator::make_transaction(
    bool read_only, std::uint32_t size,
    std::optional<net::SiteId> forced_home) {
  assert(size >= 1 && size <= schema_.object_count());
  txn::TransactionSpec spec;
  spec.id = db::TxnId{next_id()};
  spec.read_only = read_only;

  std::vector<db::ObjectId> objects;
  switch (config_.assignment) {
    case Assignment::kSingleSite:
      spec.home_site = 0;
      objects = sample_objects(schema_.object_count(), size);
      break;
    case Assignment::kUniformSite:
      spec.home_site = forced_home.value_or(static_cast<net::SiteId>(
          rng_.uniform_int(0, schema_.site_count() - 1)));
      objects = sample_objects(schema_.object_count(), size);
      break;
    case Assignment::kHomeByWriteSet: {
      spec.home_site = forced_home.value_or(static_cast<net::SiteId>(
          rng_.uniform_int(0, schema_.site_count() - 1)));
      if (read_only) {
        // Read-only transactions read local (replica) copies of objects
        // drawn from the whole database.
        objects = sample_objects(schema_.object_count(), size);
      } else {
        // Updates must write primary copies co-located with them.
        const auto primaries = schema_.primaries_at(spec.home_site);
        assert(size <= primaries.size());
        const auto picks = sample_objects(
            static_cast<std::uint32_t>(primaries.size()), size);
        for (const std::uint32_t p : picks) objects.push_back(primaries[p]);
      }
      break;
    }
  }

  std::vector<Operation> ops;
  ops.reserve(objects.size());
  for (const db::ObjectId object : objects) {
    ops.push_back(
        Operation{object, read_only ? LockMode::kRead : LockMode::kWrite});
  }
  spec.access = cc::AccessSet::from_operations(std::move(ops));

  spec.arrival = kernel_.now();
  const double slack = rng_.uniform_real(config_.slack_min, config_.slack_max);
  const sim::Duration estimate =
      (config_.est_time_per_object * static_cast<std::int64_t>(size));
  spec.deadline = spec.arrival + estimate.scaled(slack);
  spec.priority = sim::Priority{spec.deadline.as_ticks(),
                                static_cast<std::uint32_t>(spec.id.value)};
  return spec;
}

}  // namespace rtdb::workload
