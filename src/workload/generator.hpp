#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "db/database.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "txn/transaction.hpp"
#include "workload/config.hpp"

namespace rtdb::workload {

// The Transaction Generator of the prototyping environment: one process
// per stream (the aperiodic Poisson stream plus one per periodic source)
// produces TransactionSpecs and hands them to the submit callback, which
// routes them to the home site's transaction manager.
class TransactionGenerator {
 public:
  using SubmitFn = std::function<void(txn::TransactionSpec)>;

  TransactionGenerator(sim::Kernel& kernel, const db::Database& schema,
                       WorkloadConfig config, sim::RandomStream rng,
                       SubmitFn submit);

  TransactionGenerator(const TransactionGenerator&) = delete;
  TransactionGenerator& operator=(const TransactionGenerator&) = delete;

  // Spawns the generation processes. Call once.
  void start();

  std::uint64_t generated() const { return generated_; }
  bool finished() const {
    return generated_ >= config_.transaction_count && config_.periodic.empty();
  }

  // Builds one transaction according to the assignment policy (or pinned
  // to `forced_home`); exposed so tests and examples can craft individual
  // transactions the same way the generator does.
  txn::TransactionSpec make_transaction(
      bool read_only, std::uint32_t size,
      std::optional<net::SiteId> forced_home = std::nullopt);

  // k distinct objects from {0..n-1}: uniform when zipf_theta == 0 (the
  // exact sample_without_replacement path, same RNG draws), Zipf-skewed
  // toward low ids otherwise. Public so the Zipf tests can compare the
  // two paths draw for draw.
  std::vector<std::uint32_t> sample_objects(std::uint32_t n, std::uint32_t k);

 private:
  sim::Task<void> aperiodic_stream();
  sim::Task<void> periodic_stream(PeriodicSource source,
                                  std::uint64_t stream_index);
  std::uint64_t next_id() { return next_id_++; }

  sim::Kernel& kernel_;
  const db::Database& schema_;
  WorkloadConfig config_;
  sim::RandomStream rng_;
  SubmitFn submit_;
  std::uint64_t next_id_ = 1;
  std::uint64_t generated_ = 0;
  bool started_ = false;
  // Zipf CDFs cached per object-space size (the whole database vs. a
  // site's primary set differ under kHomeByWriteSet).
  std::map<std::uint32_t, sim::ZipfDistribution> zipf_by_n_;
};

}  // namespace rtdb::workload
