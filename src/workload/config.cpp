#include "workload/config.hpp"

// WorkloadConfig is a plain configuration aggregate; this translation unit
// anchors the library target.

namespace rtdb::workload {}  // namespace rtdb::workload
