#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::workload {

// How generated transactions are assigned a home site and access sets.
enum class Assignment : std::uint8_t {
  // Everything at site 0 (single-site experiments).
  kSingleSite,
  // Objects chosen uniformly from the whole database; home site uniform
  // (the partitioned / global-ceiling experiments: accesses may be remote).
  kUniformSite,
  // The paper's replicated model: "update transactions are assigned to a
  // site based on their write-set, and read-only transactions are
  // distributed randomly" — an update transaction picks a home site and
  // draws its write set from that site's primary copies; read-only
  // transactions pick a random site and read local (replica) copies drawn
  // uniformly from the whole database.
  kHomeByWriteSet,
};

// One periodic transaction source (the environment supports "periodic and
// aperiodic" transaction types).
struct PeriodicSource {
  sim::Duration period{};
  sim::Duration phase{};  // first release time
  std::uint32_t size = 1;
  bool read_only = false;
  // Implicit deadline (the next release), scaled by this factor.
  double deadline_slack = 1.0;
  // Pin the source to one site (a radar station updating its own view);
  // nullopt follows the assignment policy like aperiodic transactions.
  std::optional<std::uint32_t> home_site;
};

struct WorkloadConfig {
  // Aperiodic stream: exponentially distributed interarrival times.
  sim::Duration mean_interarrival = sim::Duration::units(10);
  // Transaction size drawn uniformly from [size_min, size_max].
  std::uint32_t size_min = 1;
  std::uint32_t size_max = 4;
  // Fraction of read-only transactions; the rest are updates
  // (read-modify-write on every object they access).
  double read_only_fraction = 0.0;
  // Hard deadline: arrival + slack * size * est_time_per_object, with the
  // slack factor drawn uniformly from [slack_min, slack_max] — "each
  // transaction's deadline is set in proportion to its size and system
  // workload".
  double slack_min = 4.0;
  double slack_max = 8.0;
  sim::Duration est_time_per_object = sim::Duration::units(3);
  // Total aperiodic transactions to generate (the experiments run a fixed
  // batch to completion and measure over it).
  std::uint64_t transaction_count = 1000;
  // Zipfian hot-key skew over the object space: object picks follow
  // P(object r) proportional to 1 / (r + 1)^zipf_theta, so low-numbered
  // objects are the hot ranks. 0 (the default) is the uniform draw the
  // paper uses — the zero path is bit-identical to a build without the
  // knob (same RNG calls in the same order).
  double zipf_theta = 0.0;

  Assignment assignment = Assignment::kSingleSite;

  std::vector<PeriodicSource> periodic;
};

}  // namespace rtdb::workload
