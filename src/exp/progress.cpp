#include "exp/progress.hpp"

#include <unistd.h>

#include <cstdio>

namespace rtdb::exp {

ProgressMeter::ProgressMeter(std::string label, std::size_t total_runs,
                             bool enabled)
    : label_(std::move(label)),
      total_(total_runs),
      active_(enabled && total_runs > 0 && ::isatty(::fileno(stderr)) != 0),
      start_(std::chrono::steady_clock::now()) {
  if (active_) {
    reporter_ = std::thread([this] { report_loop(); });
  }
}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::finish() {
  if (finished_) return;
  finished_ = true;
  if (!active_) return;
  stop_.store(true, std::memory_order_relaxed);
  reporter_.join();
  // Repaint the final state and terminate the line.
  std::fprintf(stderr, "\r\033[K%s\n", render(completed()).c_str());
  std::fflush(stderr);
}

void ProgressMeter::report_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "\r\033[K%s", render(completed()).c_str());
    std::fflush(stderr);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

std::string ProgressMeter::render(std::size_t done) const {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const int pct =
      static_cast<int>(100.0 * static_cast<double>(done) /
                       static_cast<double>(total_));
  char buf[256];
  if (done == 0) {
    std::snprintf(buf, sizeof(buf), "%s: 0/%zu runs (0%%) elapsed %.1fs",
                  label_.c_str(), total_, elapsed);
  } else {
    const double eta = elapsed * static_cast<double>(total_ - done) /
                       static_cast<double>(done);
    std::snprintf(buf, sizeof(buf),
                  "%s: %zu/%zu runs (%d%%) elapsed %.1fs eta %.1fs",
                  label_.c_str(), done, total_, pct, elapsed, eta);
  }
  return buf;
}

}  // namespace rtdb::exp
