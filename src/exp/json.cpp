#include "exp/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rtdb::exp {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool peek_is(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    if (peek_is('}')) return consume('}');
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Json value;
      if (!parse_value(value)) return false;
      out.set(std::move(key), std::move(value));
      if (peek_is(',')) {
        if (!consume(',')) return false;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    if (peek_is(']')) return consume(']');
    while (true) {
      Json value;
      if (!parse_value(value)) return false;
      out.push_back(std::move(value));
      if (peek_is(',')) {
        if (!consume(',')) return false;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string_value(Json& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Json{std::move(s)};
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            const std::string hex{text.substr(pos, 4)};
            pos += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Artifacts only escape control characters, which are ASCII.
            out += static_cast<char>(code);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(Json& out) {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out = Json{true};
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out = Json{false};
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_null(Json& out) {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      out = Json{};
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected a value");
    const std::string token{text.substr(start, pos - start)};
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out = Json{value};
    return true;
  }
};

}  // namespace

std::string Json::format_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  // Integers (the counters) print exactly; everything else uses enough
  // digits to round-trip. Both are pure functions of the double's bits.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += format_number(number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json value;
  if (!p.parse_value(value)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return value;
}

}  // namespace rtdb::exp
