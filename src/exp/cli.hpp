#pragma once

// The CLI shared by every bench binary: run-count / seed / parallelism
// control plus artifact destinations. One parser so the flags (and the
// EXPERIMENTS.md documentation of them) cannot drift between figures.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"

namespace rtdb::exp {

struct Options {
  std::optional<int> runs;            // --runs N   (default: per-figure)
  std::optional<std::uint64_t> seed;  // --seed S   (default: per-figure, 1)
  std::optional<int> jobs;            // --jobs N   (default: all cores)
  std::optional<std::string> json_path;  // --json PATH
  bool csv = false;                      // --csv [PATH]
  std::optional<std::string> csv_path;   // empty optional = stdout
  bool quiet = false;                    // --quiet: no progress meter
  bool check = false;  // --check: online conformance auditing (src/check)
  // --bounds: static blocking-bound gating (src/analysis) — every cell
  // runs with bounds_check, the observed/bound table is printed after the
  // figure table, and the bound_* scalars land in the artifacts.
  bool bounds = false;
  bool help = false;

  // --backend {sim,threads}: execution substrate override. "threads" runs
  // every cell on the real-hardware backend (single-site only) and caps
  // the sweep at one job so cells don't fight over cores; unset leaves
  // each cell's own config.backend in force.
  std::optional<std::string> backend;
  std::optional<int> rt_workers;  // --rt-workers N (thread backend pool)

  // Fault-injection overlays (--drop-rate/--dup-rate/--jitter/--crash-at);
  // unset flags leave the bench's own FaultSpec untouched.
  std::optional<double> drop_rate;
  std::optional<double> dup_rate;
  std::optional<double> jitter_units;
  std::vector<net::FaultSpec::Crash> crashes;  // --crash-at (cumulative)
  // --partition GROUP:AT[:HEAL][:asym] (cumulative): cut the links between
  // GROUP (`+`-separated site ids) and the rest at time AT, heal after
  // HEAL units (omitted/0 = rest of run). `asym` cuts outbound only.
  std::vector<net::FaultSpec::Partition> partitions;
  // --arrival-rate R: open-loop load override, R transactions per unit
  // time (mean interarrival 1/R units) applied to every cell.
  std::optional<double> arrival_rate;

  // Scale-out overlays (applied uniformly to every cell, like the fault
  // flags; unset leaves the bench's own config in force).
  std::optional<std::uint32_t> sites;        // --sites N
  std::optional<std::string> scheme;         // --scheme (3 schemes, see cpp)
  std::optional<std::uint32_t> shards;       // --shards N (partitioned)
  std::optional<std::string> partitioner;    // --partitioner {hash,range}
  std::optional<double> zipf_theta;          // --zipf THETA (0 = uniform)
  std::optional<double> batch_window_units;  // --batch-window U (0 = off)

  // The worker count actually used: --jobs if given, else
  // hardware_concurrency (min 1).
  int effective_jobs() const;

  // Overlays the fault flags onto `spec` (run_sweep applies this to every
  // cell, so the knobs work uniformly across bench binaries).
  void apply_faults(net::FaultSpec* spec) const;
};

// Parses argv. On error fills `error` and returns nullopt; `--help` sets
// options.help with no error.
std::optional<Options> parse_options(int argc, char** argv,
                                     std::string* error);

// One usage block, shared verbatim by every binary.
std::string usage(const std::string& program);

// parse_options + the conventional exit behavior: prints usage and
// terminates on --help (status 0) or a bad flag (status 2).
Options parse_options_or_exit(int argc, char** argv);

}  // namespace rtdb::exp
