#pragma once

// The parallel sweep engine. A sweep is a grid of cells (one SystemConfig
// per cell, labelled by its axis values); every cell is executed with
// `runs` consecutive seeds. The (cell, run) pairs are independent — each
// run owns a private core::System, the simulation kernel inside stays
// single-threaded — so the engine farms them out to a worker pool and
// writes each result into a preallocated slot. Aggregation happens after
// the join, in grid order, which makes the output a pure function of
// (spec, runs, base seed): `--jobs N` is byte-identical to `--jobs 1`.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "exp/cli.hpp"
#include "stats/metrics.hpp"

namespace rtdb::exp {

// One axis label, e.g. {"protocol", "C"} or {"size", "12"}.
using Axis = std::pair<std::string, std::string>;

struct Cell {
  std::vector<Axis> axes;
  core::SystemConfig config;
};

// The grid description a bench binary builds before running anything.
struct SweepSpec {
  std::string name;   // machine name, e.g. "fig2_throughput"
  std::string title;  // the table caption
  int default_runs = core::ExperimentRunner::kDefaultRuns;

  std::vector<Cell> cells;

  // Returns the new cell's index (benches use it to find results back).
  std::size_t add_cell(std::vector<Axis> axes, core::SystemConfig config) {
    cells.push_back(Cell{std::move(axes), std::move(config)});
    return cells.size() - 1;
  }
};

// Results of one cell: the per-run RunResults in seed order plus
// aggregation helpers over them.
struct CellResult {
  std::vector<Axis> axes;
  std::uint64_t base_seed = 0;
  std::vector<core::RunResult> runs;

  stats::RunAggregate aggregate(
      const core::ExperimentRunner::Extractor& extract) const {
    return core::ExperimentRunner::aggregate(runs, extract);
  }
  stats::RunAggregate aggregate(const core::RunScalar& scalar) const {
    return aggregate([&scalar](const core::RunResult& r) {
      return scalar.extract(r);
    });
  }
  stats::RunAggregate throughput() const {
    return aggregate(*core::find_run_scalar("throughput_objects_per_sec"));
  }
  stats::RunAggregate pct_missed() const {
    return aggregate(*core::find_run_scalar("pct_missed"));
  }
  double mean_of(const char* scalar_name) const {
    return aggregate(*core::find_run_scalar(scalar_name)).mean;
  }
};

struct SweepResult {
  std::string name;
  std::string title;
  int runs_per_cell = 0;
  std::uint64_t base_seed = 0;
  // Execution-substrate provenance. Empty when every cell ran on the
  // simulation — the artifact then omits the backend/hardware header
  // fields, keeping sim artifacts byte-identical with pre-backend ones.
  // "threads" when every cell ran on real threads, "mixed" otherwise;
  // rt_workers/rt_unit_nanos describe the thread cells.
  std::string backend;
  std::uint32_t rt_workers = 0;
  std::uint64_t rt_unit_nanos = 0;
  std::vector<CellResult> cells;

  const CellResult& cell(std::size_t index) const { return cells.at(index); }
};

// Executes the grid. Honors opts.runs / opts.seed overrides (falling back
// to spec.default_runs and each cell config's own seed), runs on
// opts.effective_jobs() workers, and reports progress to stderr unless
// opts.quiet. Deterministic: the result depends only on (spec, runs,
// seed), never on the worker count or scheduling.
SweepResult run_sweep(const SweepSpec& spec, const Options& opts);

}  // namespace rtdb::exp
