#include "exp/artifacts.hpp"

#include <cstdio>

#include "rt/hw_info.hpp"

namespace rtdb::exp {

namespace {

Json aggregate_json(const stats::RunAggregate& a) {
  Json j = Json::object();
  j.set("mean", Json{a.mean});
  j.set("stddev", Json{a.stddev});
  j.set("ci95", Json{a.ci95});
  j.set("min", Json{a.min});
  j.set("max", Json{a.max});
  j.set("n", Json{a.n});
  return j;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace

Json artifact_json(const SweepResult& result) {
  Json root = Json::object();
  root.set("schema_version", Json{kArtifactSchemaVersion});
  root.set("benchmark", Json{result.name});
  root.set("title", Json{result.title});
  root.set("runs_per_cell", Json{result.runs_per_cell});
  root.set("base_seed", Json{result.base_seed});
  // Present only when thread-backend cells ran: "real hardware" numbers
  // are never divorced from the machine that produced them. Sim-only
  // artifacts omit the fields and stay byte-identical across machines.
  if (!result.backend.empty()) {
    root.set("backend", Json{result.backend});
    const rt::HardwareInfo info = rt::detect_hardware();
    Json hardware = Json::object();
    hardware.set("cores", Json{static_cast<std::uint64_t>(info.cores)});
    hardware.set("clock_source", Json{info.clock_source});
    hardware.set("clock_tick_nanos", Json{info.clock_tick_nanos});
    hardware.set("workers", Json{static_cast<std::uint64_t>(result.rt_workers)});
    hardware.set("unit_nanos", Json{result.rt_unit_nanos});
    root.set("hardware", std::move(hardware));
  }
  Json cells = Json::array();
  for (const CellResult& cell : result.cells) {
    Json c = Json::object();
    Json axes = Json::object();
    for (const Axis& axis : cell.axes) axes.set(axis.first, Json{axis.second});
    c.set("axes", std::move(axes));
    c.set("seed", Json{cell.base_seed});
    Json metrics = Json::object();
    for (const core::RunScalar& scalar : core::run_scalars()) {
      metrics.set(scalar.name, aggregate_json(cell.aggregate(scalar)));
    }
    c.set("metrics", std::move(metrics));
    cells.push_back(std::move(c));
  }
  root.set("cells", std::move(cells));
  return root;
}

std::string artifact_csv(const SweepResult& result) {
  std::string out = "benchmark,cell";
  // All cells of a sweep share their axis keys; take them from the first.
  if (!result.cells.empty()) {
    for (const Axis& axis : result.cells.front().axes) {
      out += ',' + axis.first;
    }
  }
  out += ",metric,mean,stddev,ci95,min,max,n\n";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    std::string prefix = result.name + ',' + std::to_string(c);
    for (const Axis& axis : cell.axes) prefix += ',' + axis.second;
    for (const core::RunScalar& scalar : core::run_scalars()) {
      const stats::RunAggregate a = cell.aggregate(scalar);
      out += prefix + ',' + scalar.name + ',' + Json::format_number(a.mean) +
             ',' + Json::format_number(a.stddev) + ',' +
             Json::format_number(a.ci95) + ',' + Json::format_number(a.min) +
             ',' + Json::format_number(a.max) + ',' + std::to_string(a.n) +
             '\n';
    }
  }
  return out;
}

bool write_artifacts(const SweepResult& result, const Options& opts) {
  bool ok = true;
  if (opts.json_path) {
    ok = write_file(*opts.json_path, artifact_json(result).dump(2)) && ok;
  }
  if (opts.csv) {
    const std::string csv = artifact_csv(result);
    if (opts.csv_path) {
      ok = write_file(*opts.csv_path, csv) && ok;
    } else {
      std::fputs(csv.c_str(), stdout);
      std::fputs("\n", stdout);
    }
  }
  std::fflush(stdout);
  return ok;
}

std::string bounds_table(const SweepResult& result) {
  std::string out =
      "blocking bounds (units): theory vs observed, per cell\n"
      "  cell                                bound    observed    ratio  "
      "violations\n";
  for (const CellResult& cell : result.cells) {
    std::string label;
    for (const Axis& axis : cell.axes) {
      if (!label.empty()) label += " ";
      label += axis.first + "=" + axis.second;
    }
    double bound = 0.0;
    double observed = 0.0;
    std::uint64_t violations = 0;
    for (const core::RunResult& run : cell.runs) {
      bound = run.bound_blocking_units;  // pure function of the cell config
      if (run.observed_max_blocking_units > observed) {
        observed = run.observed_max_blocking_units;
      }
      violations += run.bound_violations;
    }
    char row[160];
    if (bound > 0.0) {
      std::snprintf(row, sizeof(row),
                    "  %-32s %10.1f %11.3f %8.3f  %10llu\n", label.c_str(),
                    bound, observed, observed / bound,
                    static_cast<unsigned long long>(violations));
    } else {
      std::snprintf(row, sizeof(row),
                    "  %-32s  unbounded %11.3f        -  %10llu\n",
                    label.c_str(), observed,
                    static_cast<unsigned long long>(violations));
    }
    out += row;
  }
  return out;
}

bool emit(const SweepResult& result, const stats::Table& table,
          const Options& opts) {
  std::string caption = result.title;
  if (result.runs_per_cell > 0) {
    caption += ", " + std::to_string(result.runs_per_cell) + " runs/point";
  }
  std::fputs(table.to_text(caption).c_str(), stdout);
  std::fputs("\n", stdout);
  if (opts.bounds) {
    std::fputs(bounds_table(result).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return write_artifacts(result, opts);
}

}  // namespace rtdb::exp
