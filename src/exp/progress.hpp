#pragma once

// Live progress/ETA for a sweep: a reporter thread repaints one stderr
// line while worker threads tick an atomic counter. Rendering never
// touches stdout, so tables and artifacts are byte-identical with and
// without it; it self-disables when stderr is not a terminal.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/annotations.hpp"

namespace rtdb::exp {

class ProgressMeter {
 public:
  // `label` prefixes the line (the sweep name). The meter reports only
  // when `enabled` and stderr is a tty.
  ProgressMeter(std::string label, std::size_t total_runs, bool enabled);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // Called by workers once per completed run; thread-safe and wait-free.
  void tick() { completed_.fetch_add(1, std::memory_order_relaxed); }

  // Stops the reporter and clears the line. Idempotent; the destructor
  // calls it too.
  void finish();

  std::size_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void report_loop();
  std::string render(std::size_t done) const;

  const std::string label_;
  const std::size_t total_;
  const bool active_;
  std::atomic<std::size_t> completed_{0};
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point start_;
  std::thread reporter_;
  bool finished_ = false;
};

// Mutex-guarded note collection shared by the sweep's worker threads —
// out-of-band observations (a run flagged by the conformance auditor, a
// suspicious counter) that must not interleave mid-line on stderr and must
// not touch the deterministic stdout/artifact path. Lock discipline is
// machine-checked under clang via the annotations (see core/annotations.hpp).
class WorkerNotes {
 public:
  void add(std::string note) RTDB_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> guard(mutex_);
    notes_.push_back(std::move(note));
  }

  // Drains the collected notes. Callers sort before rendering: arrival
  // order is worker-interleaving dependent, the contents are not.
  std::vector<std::string> take() RTDB_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> guard(mutex_);
    return std::exchange(notes_, {});
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> notes_ RTDB_GUARDED_BY(mutex_);
};

}  // namespace rtdb::exp
