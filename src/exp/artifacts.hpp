#pragma once

// Machine-readable artifacts of a sweep: a JSON document and a long-format
// CSV, both carrying mean/stddev/95% CI/min/max/n for every RunResult
// scalar of every cell. The schema is stable and documented in
// EXPERIMENTS.md; nothing run-environment-dependent (worker count, wall
// clock, timestamps) is ever included, so artifact bytes depend only on
// (spec, runs, seed).

#include <string>

#include "exp/cli.hpp"
#include "exp/json.hpp"
#include "exp/sweep.hpp"
#include "stats/table.hpp"

namespace rtdb::exp {

inline constexpr int kArtifactSchemaVersion = 1;

// The full JSON document for a sweep result.
Json artifact_json(const SweepResult& result);

// Long-format CSV: one row per (cell, scalar), axis values as leading
// columns. Header: benchmark,cell,<axes...>,metric,mean,stddev,ci95,min,max,n
std::string artifact_csv(const SweepResult& result);

// The standard bench epilogue: prints the figure table to stdout (caption
// = result.title plus the run count), then writes whichever artifacts the
// options request. Returns false (after printing to stderr) if a file
// could not be written.
bool emit(const SweepResult& result, const stats::Table& table,
          const Options& opts);

// Writes only the artifacts (for callers that render no table).
bool write_artifacts(const SweepResult& result, const Options& opts);

// The --bounds epilogue emit() appends after the figure table: one row
// per cell with the analytic worst-case blocking, the observed maximum
// across the cell's runs, their ratio (bound tightness; "-" when the
// verdict is Unbounded), and the violation count.
std::string bounds_table(const SweepResult& result);

}  // namespace rtdb::exp
