#include "exp/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rtdb::exp {

namespace {

bool parse_int(const std::string& text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && !text.empty();
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

// One crash spec: "site:at[:down_for]" (times in simulation units).
bool parse_crash(const std::string& text, net::FaultSpec::Crash* out) {
  const std::size_t first = text.find(':');
  if (first == std::string::npos) return false;
  const std::size_t second = text.find(':', first + 1);
  long long site = 0;
  double at = 0.0;
  double down_for = 0.0;
  if (!parse_int(text.substr(0, first), &site) || site < 0) return false;
  const std::string at_text =
      second == std::string::npos ? text.substr(first + 1)
                                  : text.substr(first + 1, second - first - 1);
  if (!parse_double(at_text, &at) || at < 0.0) return false;
  if (second != std::string::npos &&
      (!parse_double(text.substr(second + 1), &down_for) || down_for < 0.0)) {
    return false;
  }
  out->site = static_cast<net::SiteId>(site);
  out->at = sim::Duration::from_units(at);
  out->down_for = sim::Duration::from_units(down_for);
  return true;
}

// One partition spec: "group:at[:heal][:asym]" with group a `+`-separated
// list of site ids (times in simulation units).
bool parse_partition(const std::string& text, net::FaultSpec::Partition* out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    parts.push_back(text.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 4) return false;
  out->group.clear();
  std::size_t site_start = 0;
  const std::string& group = parts[0];
  while (site_start <= group.size()) {
    const std::size_t plus = group.find('+', site_start);
    const std::string one = group.substr(
        site_start,
        plus == std::string::npos ? std::string::npos : plus - site_start);
    long long site = 0;
    if (!parse_int(one, &site) || site < 0) return false;
    out->group.push_back(static_cast<net::SiteId>(site));
    if (plus == std::string::npos) break;
    site_start = plus + 1;
  }
  if (out->group.empty()) return false;
  double at = 0.0;
  if (!parse_double(parts[1], &at) || at < 0.0) return false;
  out->at = sim::Duration::from_units(at);
  out->heal_after = sim::Duration::zero();
  out->symmetric = true;
  std::size_t next = 2;
  if (parts.size() > next && parts[next] != "sym" && parts[next] != "asym") {
    double heal = 0.0;
    if (!parse_double(parts[next], &heal) || heal < 0.0) return false;
    out->heal_after = sim::Duration::from_units(heal);
    ++next;
  }
  if (parts.size() > next) {
    if (parts[next] == "asym") {
      out->symmetric = false;
    } else if (parts[next] != "sym") {
      return false;
    }
    ++next;
  }
  return next == parts.size();
}

}  // namespace

void Options::apply_faults(net::FaultSpec* spec) const {
  if (drop_rate) spec->drop_rate = *drop_rate;
  if (dup_rate) spec->dup_rate = *dup_rate;
  if (jitter_units) spec->jitter = sim::Duration::from_units(*jitter_units);
  for (const net::FaultSpec::Crash& crash : crashes) {
    spec->crashes.push_back(crash);
  }
  for (const net::FaultSpec::Partition& partition : partitions) {
    spec->partitions.push_back(partition);
  }
}

int Options::effective_jobs() const {
  if (jobs) return *jobs > 0 ? *jobs : 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::optional<Options> parse_options(int argc, char** argv,
                                     std::string* error) {
  Options opts;
  auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      (void)flag;
      return std::string{argv[++i]};
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return opts;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--bounds") {
      opts.bounds = true;
    } else if (arg == "--runs") {
      const auto v = value("--runs");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n <= 0)
        return fail("--runs requires a positive integer");
      opts.runs = static_cast<int>(n);
    } else if (arg == "--seed") {
      const auto v = value("--seed");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n < 0)
        return fail("--seed requires a non-negative integer");
      opts.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--jobs" || arg == "-j") {
      const auto v = value("--jobs");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n <= 0)
        return fail("--jobs requires a positive integer");
      opts.jobs = static_cast<int>(n);
    } else if (arg == "--json") {
      const auto v = value("--json");
      if (!v || v->empty() || (*v)[0] == '-')
        return fail("--json requires a file path");
      opts.json_path = *v;
    } else if (arg == "--drop-rate") {
      const auto v = value("--drop-rate");
      double p = 0.0;
      if (!v || !parse_double(*v, &p) || p < 0.0 || p > 1.0)
        return fail("--drop-rate requires a probability in [0, 1]");
      opts.drop_rate = p;
    } else if (arg == "--dup-rate") {
      const auto v = value("--dup-rate");
      double p = 0.0;
      if (!v || !parse_double(*v, &p) || p < 0.0 || p > 1.0)
        return fail("--dup-rate requires a probability in [0, 1]");
      opts.dup_rate = p;
    } else if (arg == "--jitter") {
      const auto v = value("--jitter");
      double units = 0.0;
      if (!v || !parse_double(*v, &units) || units < 0.0)
        return fail("--jitter requires a non-negative duration in units");
      opts.jitter_units = units;
    } else if (arg == "--crash-at") {
      const auto v = value("--crash-at");
      if (!v) return fail("--crash-at requires site:at[:down_for]");
      // Comma-separated list of crash specs; the flag may also repeat.
      std::size_t start = 0;
      while (start <= v->size()) {
        const std::size_t comma = v->find(',', start);
        const std::string one =
            v->substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
        net::FaultSpec::Crash crash;
        if (!parse_crash(one, &crash))
          return fail("--crash-at: bad crash spec '" + one +
                      "' (want site:at[:down_for])");
        opts.crashes.push_back(crash);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--partition") {
      const auto v = value("--partition");
      if (!v) return fail("--partition requires group:at[:heal][:asym]");
      // Comma-separated list of partition specs; the flag may also repeat.
      std::size_t start = 0;
      while (start <= v->size()) {
        const std::size_t comma = v->find(',', start);
        const std::string one =
            v->substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
        net::FaultSpec::Partition partition;
        if (!parse_partition(one, &partition))
          return fail("--partition: bad partition spec '" + one +
                      "' (want group:at[:heal][:asym], group = id+id+...)");
        opts.partitions.push_back(partition);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--arrival-rate") {
      const auto v = value("--arrival-rate");
      double rate = 0.0;
      if (!v || !parse_double(*v, &rate) || rate <= 0.0)
        return fail("--arrival-rate requires a positive rate (txns per unit)");
      opts.arrival_rate = rate;
    } else if (arg == "--sites") {
      const auto v = value("--sites");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n < 2)
        return fail("--sites requires an integer >= 2");
      opts.sites = static_cast<std::uint32_t>(n);
    } else if (arg == "--scheme") {
      const auto v = value("--scheme");
      if (!v || (*v != "global" && *v != "local" && *v != "partitioned"))
        return fail("--scheme requires 'global', 'local', or 'partitioned'");
      opts.scheme = *v;
    } else if (arg == "--shards") {
      const auto v = value("--shards");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n < 0)
        return fail("--shards requires a non-negative integer (0 = one per "
                    "site, capped at 8)");
      opts.shards = static_cast<std::uint32_t>(n);
    } else if (arg == "--partitioner") {
      const auto v = value("--partitioner");
      if (!v || (*v != "hash" && *v != "range"))
        return fail("--partitioner requires 'hash' or 'range'");
      opts.partitioner = *v;
    } else if (arg == "--zipf") {
      const auto v = value("--zipf");
      double theta = 0.0;
      if (!v || !parse_double(*v, &theta) || theta < 0.0)
        return fail("--zipf requires a non-negative skew exponent");
      opts.zipf_theta = theta;
    } else if (arg == "--batch-window") {
      const auto v = value("--batch-window");
      double units = 0.0;
      if (!v || !parse_double(*v, &units) || units < 0.0)
        return fail("--batch-window requires a non-negative duration in units");
      opts.batch_window_units = units;
    } else if (arg == "--backend") {
      const auto v = value("--backend");
      if (!v || (*v != "sim" && *v != "threads"))
        return fail("--backend requires 'sim' or 'threads'");
      opts.backend = *v;
    } else if (arg == "--rt-workers") {
      const auto v = value("--rt-workers");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n < 0)
        return fail("--rt-workers requires a non-negative integer");
      opts.rt_workers = static_cast<int>(n);
    } else if (arg == "--csv") {
      opts.csv = true;
      // Optional path operand: `--csv out.csv` writes a file, bare `--csv`
      // streams the aggregate CSV to stdout after the table.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.csv_path = std::string{argv[++i]};
      }
    } else {
      return fail("unknown option '" + arg + "'");
    }
  }
  return opts;
}

std::string usage(const std::string& program) {
  return "usage: " + program +
         " [options]\n"
         "  --runs N     seeded runs per sweep cell (default: per-figure, "
         "10 single-site / 5 distributed)\n"
         "  --seed S     base seed; run r of a cell uses seed S+r "
         "(default 1)\n"
         "  --jobs N     worker threads for independent runs "
         "(default: all cores; results are identical for any N)\n"
         "  --json PATH  write the aggregate artifact as JSON "
         "(schema_version 1, see EXPERIMENTS.md)\n"
         "  --csv [PATH] write the aggregate artifact as CSV "
         "(stdout when PATH is omitted)\n"
         "  --backend B  execution substrate: 'sim' (discrete-event, "
         "byte-identical\n"
         "               artifacts) or 'threads' (real worker threads; "
         "single-site only,\n"
         "               forces --jobs 1, artifact gains backend/hardware "
         "header)\n"
         "  --rt-workers N  thread backend pool size "
         "(default: one per core)\n"
         "  --quiet      suppress the progress meter\n"
         "  --check      online conformance auditing: shadow every protocol "
         "and flag\n"
         "               invariant violations (conformance_violations scalar; "
         "reports on stderr)\n"
         "  --bounds     gate observed blocking against the static "
         "worst-case analysis\n"
         "               (bound_* scalars; theory-vs-observed table after "
         "the figure table)\n"
         "  --help       this message\n"
         "fault injection (distributed schemes; deterministic per seed):\n"
         "  --drop-rate P          drop each inter-site message with "
         "probability P\n"
         "  --dup-rate P           deliver each inter-site message twice "
         "with probability P\n"
         "  --jitter U             add uniform [0, U] units of extra delay "
         "per message\n"
         "  --crash-at SITE:AT[:DOWN_FOR]\n"
         "               fail-stop SITE at time AT for DOWN_FOR units "
         "(omitted/0 = rest of run);\n"
         "               comma-separated list, flag may repeat\n"
         "  --partition GROUP:AT[:HEAL][:asym]\n"
         "               cut the links between GROUP (`+`-separated site "
         "ids, e.g. 0+1)\n"
         "               and the rest at time AT; heal after HEAL units "
         "(omitted/0 = rest\n"
         "               of run). 'asym' cuts GROUP's outbound links only. "
         "Scheduled, not\n"
         "               random: replays bit-identically for any --jobs N. "
         "Comma-separated\n"
         "               list, flag may repeat\n"
         "overload (open-loop load; admission control covered in "
         "EXPERIMENTS.md):\n"
         "  --arrival-rate R       override every cell's aperiodic load to "
         "R transactions\n"
         "               per unit time (mean interarrival 1/R units)\n"
         "scale-out (applied to every cell; see EXPERIMENTS.md):\n"
         "  --sites N              override the site count (N >= 2)\n"
         "  --scheme S             distribution scheme: 'global', 'local', "
         "or 'partitioned'\n"
         "  --shards N             partitioned scheme: ceiling-manager "
         "shards (0 = one per\n"
         "               site, capped at 8; clamped to the site count)\n"
         "  --partitioner P        object->shard map: 'hash' (default) or "
         "'range'\n"
         "  --zipf THETA           Zipfian access skew, P(rank r) ~ "
         "1/(r+1)^THETA\n"
         "               (0 = uniform, bit-identical to builds without the "
         "knob)\n"
         "  --batch-window U       coalesce same-destination control "
         "messages within U\n"
         "               units (0 = off — artifacts byte-identical to "
         "unbatched builds)\n";
}

Options parse_options_or_exit(int argc, char** argv) {
  std::string error;
  const auto opts = parse_options(argc, argv, &error);
  const std::string program = argc > 0 ? argv[0] : "bench";
  if (!opts) {
    std::fprintf(stderr, "%s: %s\n%s", program.c_str(), error.c_str(),
                 usage(program).c_str());
    std::exit(2);
  }
  if (opts->help) {
    std::fputs(usage(program).c_str(), stdout);
    std::exit(0);
  }
  return *opts;
}

}  // namespace rtdb::exp
