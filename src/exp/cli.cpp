#include "exp/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rtdb::exp {

namespace {

bool parse_int(const std::string& text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && !text.empty();
}

}  // namespace

int Options::effective_jobs() const {
  if (jobs) return *jobs > 0 ? *jobs : 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::optional<Options> parse_options(int argc, char** argv,
                                     std::string* error) {
  Options opts;
  auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      (void)flag;
      return std::string{argv[++i]};
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return opts;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--runs") {
      const auto v = value("--runs");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n <= 0)
        return fail("--runs requires a positive integer");
      opts.runs = static_cast<int>(n);
    } else if (arg == "--seed") {
      const auto v = value("--seed");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n < 0)
        return fail("--seed requires a non-negative integer");
      opts.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--jobs" || arg == "-j") {
      const auto v = value("--jobs");
      long long n = 0;
      if (!v || !parse_int(*v, &n) || n <= 0)
        return fail("--jobs requires a positive integer");
      opts.jobs = static_cast<int>(n);
    } else if (arg == "--json") {
      const auto v = value("--json");
      if (!v || v->empty() || (*v)[0] == '-')
        return fail("--json requires a file path");
      opts.json_path = *v;
    } else if (arg == "--csv") {
      opts.csv = true;
      // Optional path operand: `--csv out.csv` writes a file, bare `--csv`
      // streams the aggregate CSV to stdout after the table.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.csv_path = std::string{argv[++i]};
      }
    } else {
      return fail("unknown option '" + arg + "'");
    }
  }
  return opts;
}

std::string usage(const std::string& program) {
  return "usage: " + program +
         " [options]\n"
         "  --runs N     seeded runs per sweep cell (default: per-figure, "
         "10 single-site / 5 distributed)\n"
         "  --seed S     base seed; run r of a cell uses seed S+r "
         "(default 1)\n"
         "  --jobs N     worker threads for independent runs "
         "(default: all cores; results are identical for any N)\n"
         "  --json PATH  write the aggregate artifact as JSON "
         "(schema_version 1, see EXPERIMENTS.md)\n"
         "  --csv [PATH] write the aggregate artifact as CSV "
         "(stdout when PATH is omitted)\n"
         "  --quiet      suppress the progress meter\n"
         "  --help       this message\n";
}

Options parse_options_or_exit(int argc, char** argv) {
  std::string error;
  const auto opts = parse_options(argc, argv, &error);
  const std::string program = argc > 0 ? argv[0] : "bench";
  if (!opts) {
    std::fprintf(stderr, "%s: %s\n%s", program.c_str(), error.c_str(),
                 usage(program).c_str());
    std::exit(2);
  }
  if (opts->help) {
    std::fputs(usage(program).c_str(), stdout);
    std::exit(0);
  }
  return *opts;
}

}  // namespace rtdb::exp
