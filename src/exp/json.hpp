#pragma once

// Minimal JSON document model for the experiment artifacts: enough to
// build, serialize, and re-parse the sweep schema without an external
// dependency. Objects preserve insertion order so that dumps are
// deterministic — the determinism test compares artifact bytes across
// worker counts.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtdb::exp {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(std::int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  // ---- array access ----
  void push_back(Json value) { array_.push_back(std::move(value)); }
  const std::vector<Json>& items() const { return array_; }
  std::size_t size() const {
    return type_ == Type::kArray ? array_.size() : members_.size();
  }

  // ---- object access (insertion-ordered) ----
  void set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
  }
  const Json* find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // Serialization. Numbers use a fixed shortest-round-trip format, so the
  // same doubles always produce the same bytes. `indent` of 0 emits one
  // line; artifacts use 2.
  std::string dump(int indent = 0) const;

  // Strict-enough recursive-descent parser for artifacts produced by
  // dump(); returns nullopt (and an error message) on malformed input.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  // Deterministic number formatting shared with the CSV writer.
  static std::string format_number(double value);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace rtdb::exp
