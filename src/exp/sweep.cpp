#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "exp/progress.hpp"

namespace rtdb::exp {

SweepResult run_sweep(const SweepSpec& spec, const Options& opts) {
  const int runs = std::max(1, opts.runs.value_or(spec.default_runs));
  const std::size_t n_cells = spec.cells.size();
  const std::size_t total = n_cells * static_cast<std::size_t>(runs);

  auto base_seed_of = [&](std::size_t cell) {
    return opts.seed.value_or(spec.cells[cell].config.seed);
  };
  // --backend / --rt-workers overlays, applied uniformly to every cell
  // (mirrors apply_faults).
  auto apply_backend = [&](core::SystemConfig* config) {
    if (opts.backend) {
      config->backend = *opts.backend == "threads"
                            ? core::BackendKind::kThreads
                            : core::BackendKind::kSim;
    }
    if (opts.rt_workers) {
      config->rt_workers = static_cast<std::uint32_t>(*opts.rt_workers);
    }
  };

  SweepResult result;
  result.name = spec.name;
  result.title = spec.title;
  result.runs_per_cell = runs;
  result.base_seed = n_cells > 0 ? base_seed_of(0) : opts.seed.value_or(1);

  // Substrate provenance for the artifact header, from the effective
  // (post-overlay) configs.
  std::size_t thread_cells = 0;
  for (const Cell& cell : spec.cells) {
    core::SystemConfig config = cell.config;
    apply_backend(&config);
    if (config.backend == core::BackendKind::kThreads) {
      ++thread_cells;
      result.rt_workers = config.rt_workers;
      result.rt_unit_nanos = config.rt_unit_nanos;
    }
  }
  if (thread_cells > 0) {
    result.backend = thread_cells == n_cells ? "threads" : "mixed";
    if (result.rt_workers == 0) {
      // Record the resolved pool size, not the "pick for me" sentinel.
      const unsigned hw = std::thread::hardware_concurrency();
      result.rt_workers = hw > 0 ? hw : 1;
    }
  }

  // Flat (cell-major) result slots: worker interleaving decides only *when*
  // a slot fills, never *what* or *where* — determinism by construction.
  std::vector<core::RunResult> flat(total);
  std::atomic<std::size_t> next{0};
  ProgressMeter meter{spec.name, total, !opts.quiet};
  WorkerNotes notes;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const std::size_t cell = i / static_cast<std::size_t>(runs);
      const int run = static_cast<int>(i % static_cast<std::size_t>(runs));
      core::SystemConfig config = spec.cells[cell].config;
      config.seed =
          core::ExperimentRunner::seed_for_run(base_seed_of(cell), run);
      opts.apply_faults(&config.faults);
      apply_backend(&config);
      if (opts.arrival_rate) {
        config.workload.mean_interarrival =
            sim::Duration::from_units(1.0 / *opts.arrival_rate);
      }
      if (opts.sites) config.sites = *opts.sites;
      if (opts.scheme) {
        config.scheme = *opts.scheme == "global"
                            ? core::DistScheme::kGlobalCeiling
                        : *opts.scheme == "local"
                            ? core::DistScheme::kLocalCeiling
                            : core::DistScheme::kPartitionedCeiling;
      }
      if (opts.shards) config.shards = *opts.shards;
      if (opts.partitioner) {
        config.partitioner = *opts.partitioner == "range"
                                 ? core::Partitioner::kRange
                                 : core::Partitioner::kHash;
      }
      if (opts.zipf_theta) config.workload.zipf_theta = *opts.zipf_theta;
      if (opts.batch_window_units) {
        config.batch_window =
            sim::Duration::from_units(*opts.batch_window_units);
      }
      if (opts.check) config.conformance_check = true;
      if (opts.bounds) config.bounds_check = true;
      flat[i] = core::ExperimentRunner::run_once(config);
      if (flat[i].conformance_violations > 0) {
        notes.add("cell " + std::to_string(cell) + " run " +
                  std::to_string(run) + " (seed " +
                  std::to_string(config.seed) + "): " +
                  std::to_string(flat[i].conformance_violations) +
                  " conformance violation(s)");
      }
      if (flat[i].bound_violations > 0) {
        notes.add("cell " + std::to_string(cell) + " run " +
                  std::to_string(run) + " (seed " +
                  std::to_string(config.seed) + "): " +
                  std::to_string(flat[i].bound_violations) +
                  " blocking-bound violation(s)");
      }
      meter.tick();
    }
  };

  // Thread-backend cells own the whole machine (their worker pool is the
  // experiment), so the sweep runs them one at a time; sim cells keep the
  // usual run-level parallelism.
  const int jobs =
      thread_cells > 0
          ? 1
          : static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(opts.effective_jobs()),
                std::max<std::size_t>(total, 1)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  meter.finish();

  // Conformance summary (stderr only — the stdout/artifact path stays
  // byte-identical). Sorted: arrival order depends on worker interleaving.
  std::vector<std::string> flagged = notes.take();
  std::sort(flagged.begin(), flagged.end());
  for (const std::string& note : flagged) {
    std::fprintf(stderr, "[check] %s: %s\n", spec.name.c_str(), note.c_str());
  }

  result.cells.reserve(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) {
    CellResult cell;
    cell.axes = spec.cells[c].axes;
    cell.base_seed = base_seed_of(c);
    const auto begin = flat.begin() + static_cast<std::ptrdiff_t>(
                                          c * static_cast<std::size_t>(runs));
    cell.runs.assign(begin, begin + runs);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace rtdb::exp
