#include "core/experiment.hpp"

#include <cstring>
#include <iostream>
#include <mutex>

#include "analysis/bounds.hpp"
#include "rt/runner.hpp"

namespace rtdb::core {

namespace {

// Stable order: the two headline measures first, then lifecycle counts,
// response/blocking, and the protocol counters. Appending is fine;
// reordering or renaming is a schema change.
constexpr RunScalar kRunScalars[] = {
    {"throughput_objects_per_sec",
     [](const RunResult& r) { return r.metrics.throughput_objects_per_sec; }},
    {"pct_missed", [](const RunResult& r) { return r.metrics.pct_missed; }},
    {"arrived",
     [](const RunResult& r) { return static_cast<double>(r.metrics.arrived); }},
    {"processed",
     [](const RunResult& r) {
       return static_cast<double>(r.metrics.processed);
     }},
    {"committed",
     [](const RunResult& r) {
       return static_cast<double>(r.metrics.committed);
     }},
    {"missed",
     [](const RunResult& r) { return static_cast<double>(r.metrics.missed); }},
    {"avg_response_units",
     [](const RunResult& r) { return r.metrics.avg_response_units; }},
    {"avg_blocked_units",
     [](const RunResult& r) { return r.metrics.avg_blocked_units; }},
    {"restarts",
     [](const RunResult& r) { return static_cast<double>(r.restarts); }},
    {"deadline_kills",
     [](const RunResult& r) { return static_cast<double>(r.deadline_kills); }},
    {"protocol_aborts",
     [](const RunResult& r) { return static_cast<double>(r.protocol_aborts); }},
    {"ceiling_denials",
     [](const RunResult& r) { return static_cast<double>(r.ceiling_denials); }},
    {"ceiling_blocks",
     [](const RunResult& r) {
       return static_cast<double>(r.metrics.total_ceiling_blocks);
     }},
    {"dynamic_deadlocks",
     [](const RunResult& r) {
       return static_cast<double>(r.dynamic_deadlocks);
     }},
    {"elapsed_units",
     [](const RunResult& r) { return r.elapsed.as_units(); }},
    // Appended by the fault-injection work (schema-compatible: new columns
    // only, stable order preserved).
    {"commit_rounds",
     [](const RunResult& r) { return static_cast<double>(r.commit_rounds); }},
    {"commit_aborts",
     [](const RunResult& r) { return static_cast<double>(r.commit_aborts); }},
    {"vote_timeouts",
     [](const RunResult& r) { return static_cast<double>(r.vote_timeouts); }},
    {"presumed_aborts",
     [](const RunResult& r) {
       return static_cast<double>(r.presumed_aborts);
     }},
    {"fault_drops",
     [](const RunResult& r) { return static_cast<double>(r.fault_drops); }},
    {"fault_dups",
     [](const RunResult& r) { return static_cast<double>(r.fault_dups); }},
    {"msgs_dropped",
     [](const RunResult& r) { return static_cast<double>(r.msgs_dropped); }},
    {"crashes",
     [](const RunResult& r) { return static_cast<double>(r.crashes); }},
    {"crash_kills",
     [](const RunResult& r) { return static_cast<double>(r.crash_kills); }},
    {"versions_recovered",
     [](const RunResult& r) {
       return static_cast<double>(r.versions_recovered);
     }},
    // Appended by the resilience work (failover, reliable channel, 2PC
    // cooperative termination) — again new columns only, stable order.
    {"retransmissions",
     [](const RunResult& r) {
       return static_cast<double>(r.retransmissions);
     }},
    {"backoff_wait_units",
     [](const RunResult& r) { return r.backoff_wait_units; }},
    {"failovers",
     [](const RunResult& r) { return static_cast<double>(r.failovers); }},
    {"termination_queries",
     [](const RunResult& r) {
       return static_cast<double>(r.termination_queries);
     }},
    {"termination_resolutions",
     [](const RunResult& r) {
       return static_cast<double>(r.termination_resolutions);
     }},
    {"orphan_locks_reclaimed",
     [](const RunResult& r) {
       return static_cast<double>(r.orphan_locks_reclaimed);
     }},
    {"invariant_violations",
     [](const RunResult& r) {
       return static_cast<double>(r.invariant_violations);
     }},
    // Appended by the conformance checker (--check / RTDB_CHECK); all 0
    // when the monitor is off.
    {"conformance_violations",
     [](const RunResult& r) {
       return static_cast<double>(r.conformance_violations);
     }},
    {"wait_cycles_detected",
     [](const RunResult& r) {
       return static_cast<double>(r.wait_cycles_detected);
     }},
    {"max_inversion_span_units",
     [](const RunResult& r) { return r.max_inversion_span_units; }},
    // Appended by the partition-tolerance work (lease-fenced ceiling
    // management, deadline-aware shedding) — new columns only, stable order.
    {"admitted",
     [](const RunResult& r) { return static_cast<double>(r.admitted); }},
    {"shed", [](const RunResult& r) { return static_cast<double>(r.shed); }},
    {"lease_expiries",
     [](const RunResult& r) {
       return static_cast<double>(r.lease_expiries);
     }},
    {"stale_grants_rejected",
     [](const RunResult& r) {
       return static_cast<double>(r.stale_grants_rejected);
     }},
    {"partition_drops",
     [](const RunResult& r) {
       return static_cast<double>(r.partition_drops);
     }},
    // Appended by the scale-out control plane (message batching,
    // partitioned ceiling managers) — new columns only, stable order.
    {"batched_messages",
     [](const RunResult& r) {
       return static_cast<double>(r.batched_messages);
     }},
    {"batch_flushes",
     [](const RunResult& r) { return static_cast<double>(r.batch_flushes); }},
    {"shard_migrations",
     [](const RunResult& r) {
       return static_cast<double>(r.shard_migrations);
     }},
    // Appended by the static blocking-bound analyzer (src/analysis) — new
    // columns only, stable order. The bound is stamped on every run (0 =
    // no finite bound); observed/violations need --bounds.
    {"bound_blocking_units",
     [](const RunResult& r) { return r.bound_blocking_units; }},
    {"observed_max_blocking_units",
     [](const RunResult& r) { return r.observed_max_blocking_units; }},
    {"bound_violations",
     [](const RunResult& r) {
       return static_cast<double>(r.bound_violations);
     }},
};

// Runs the cell on the real-hardware thread backend (src/rt) and maps its
// result onto the sim-shaped RunResult so tables, artifacts, and
// aggregation treat both backends uniformly. Fields without a thread-side
// counterpart (commit protocol, faults, resilience) stay zero — the thread
// backend is single-site and fault-free by construction.
RunResult run_once_threaded(const SystemConfig& config) {
  const analysis::BlockingBounds bounds = analysis::analyze(config);
  rt::RtRunnerConfig runner_config;
  runner_config.workers = config.rt_workers;
  runner_config.unit_nanos = config.rt_unit_nanos;
  if (config.bounds_check && bounds.bounded) {
    runner_config.bound_gate = bounds.worst_bound;
  }
  const rt::RtRunResult rt = rt::run_threaded(config, runner_config);

  RunResult result;
  result.metrics = stats::Metrics::compute(rt.records, rt.elapsed);
  result.restarts = rt.restarts;
  result.deadline_kills = rt.deadline_kills;
  result.protocol_aborts = rt.locks.protocol_aborts;
  result.ceiling_denials = rt.locks.ceiling_denials;
  result.dynamic_deadlocks = rt.locks.pcp_dynamic_deadlocks;
  result.elapsed = rt.elapsed;
  result.conformance_violations = rt.conformance_violations;
  result.wait_cycles_detected = rt.locks.deadlocks;
  // No shedding on the thread backend: everything that arrived was admitted.
  result.admitted = rt.records.size();
  result.bound_blocking_units = bounds.worst_bound_units();
  if (config.bounds_check || config.conformance_check) {
    result.observed_max_blocking_units = rt.locks.max_block_span.as_units();
    result.bound_violations = rt.locks.bound_violations;
  }
  if (rt.conformance_violations > 0) {
    static std::mutex report_mutex;
    const std::lock_guard<std::mutex> guard(report_mutex);
    std::cerr << "[check] threads backend, seed " << config.seed
              << ", protocol " << to_string(config.protocol) << ": "
              << rt.conformance_violations << " violation(s)";
    if (!rt.quiescence_failure.empty()) {
      std::cerr << " (" << rt.quiescence_failure << ")";
    }
    if (rt.body_exceptions > 0) {
      std::cerr << " (" << rt.body_exceptions << " body exception(s))";
    }
    std::cerr << "\n";
  }
  return result;
}

}  // namespace

std::span<const RunScalar> run_scalars() { return kRunScalars; }

const RunScalar* find_run_scalar(std::string_view name) {
  for (const RunScalar& s : kRunScalars) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

RunResult ExperimentRunner::run_once(const SystemConfig& config) {
  if (config.backend == BackendKind::kThreads) {
    return run_once_threaded(config);
  }
  System system{config};
  system.run_to_completion();
  RunResult result;
  result.metrics = system.metrics();
  result.restarts = system.total_restarts();
  result.deadline_kills = system.total_deadline_kills();
  result.protocol_aborts = system.total_protocol_aborts();
  result.ceiling_denials = system.total_ceiling_denials();
  result.dynamic_deadlocks = system.total_dynamic_deadlocks();
  result.elapsed = system.kernel().now() - sim::TimePoint::origin();
  result.commit_rounds = system.total_commit_rounds();
  result.commit_aborts = system.total_commit_aborts();
  result.vote_timeouts = system.total_vote_timeouts();
  result.presumed_aborts = system.total_presumed_aborts();
  if (const net::Network* net = system.network(); net != nullptr) {
    result.fault_drops = net->fault_drops();
    result.fault_dups = net->fault_duplicates();
    result.msgs_dropped = net->messages_dropped();
  }
  result.crashes = system.crashes();
  result.crash_kills = system.total_crash_kills();
  result.versions_recovered = system.total_versions_recovered();
  result.retransmissions = system.total_retransmissions();
  result.backoff_wait_units = system.total_backoff_wait().as_units();
  result.failovers = system.total_failovers();
  result.termination_queries = system.total_termination_queries();
  result.termination_resolutions = system.total_termination_resolutions();
  result.orphan_locks_reclaimed = system.total_orphan_locks_reclaimed();
  result.admitted = system.total_admitted();
  result.shed = system.total_shed();
  result.lease_expiries = system.total_lease_expiries();
  result.stale_grants_rejected = system.total_stale_grants_rejected();
  result.partition_drops = system.total_partition_drops();
  result.batched_messages = system.total_batched_messages();
  result.batch_flushes = system.total_batch_flushes();
  result.shard_migrations = system.total_shard_migrations();
  if (config.faults.active()) {
    result.invariant_violations = system.invariant_violations();
  }
  result.bound_blocking_units =
      analysis::analyze(config).worst_bound_units();
  if (const check::ConformanceMonitor* mon = system.conformance()) {
    result.conformance_violations = mon->violations();
    result.wait_cycles_detected = mon->wait_cycles_detected();
    result.max_inversion_span_units = mon->max_inversion_span_units();
    result.observed_max_blocking_units = mon->observed_max_blocking_units();
    result.bound_violations = mon->bound_violations();
    if (mon->violations() > 0 || mon->bound_violations() > 0) {
      // Sweep workers call run_once concurrently; keep the reports whole.
      static std::mutex report_mutex;
      const std::lock_guard<std::mutex> guard(report_mutex);
      std::cerr << "[check] seed " << config.seed << ", protocol "
                << to_string(config.protocol) << ", scheme "
                << to_string(config.scheme) << ":\n"
                << mon->format_reports();
    }
  }
  return result;
}

std::vector<RunResult> ExperimentRunner::run_many(SystemConfig config,
                                                  int runs) {
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(runs));
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < runs; ++i) {
    config.seed = seed_for_run(base_seed, i);
    results.push_back(run_once(config));
  }
  return results;
}

stats::RunAggregate ExperimentRunner::aggregate(
    std::span<const RunResult> results, const Extractor& extract) {
  std::vector<double> samples;
  samples.reserve(results.size());
  for (const RunResult& r : results) samples.push_back(extract(r));
  return stats::RunAggregate::over(samples);
}

double ExperimentRunner::mean_throughput(std::span<const RunResult> results) {
  return aggregate(results, [](const RunResult& r) {
           return r.metrics.throughput_objects_per_sec;
         })
      .mean;
}

double ExperimentRunner::mean_pct_missed(std::span<const RunResult> results) {
  return aggregate(results,
                   [](const RunResult& r) { return r.metrics.pct_missed; })
      .mean;
}

}  // namespace rtdb::core
