#include "core/experiment.hpp"

namespace rtdb::core {

RunResult ExperimentRunner::run_once(const SystemConfig& config) {
  System system{config};
  system.run_to_completion();
  RunResult result;
  result.metrics = system.metrics();
  result.restarts = system.total_restarts();
  result.deadline_kills = system.total_deadline_kills();
  result.protocol_aborts = system.total_protocol_aborts();
  result.ceiling_denials = system.total_ceiling_denials();
  result.dynamic_deadlocks = system.total_dynamic_deadlocks();
  result.elapsed = system.kernel().now() - sim::TimePoint::origin();
  return result;
}

std::vector<RunResult> ExperimentRunner::run_many(SystemConfig config,
                                                  int runs) {
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(runs));
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < runs; ++i) {
    config.seed = base_seed + static_cast<std::uint64_t>(i);
    results.push_back(run_once(config));
  }
  return results;
}

stats::RunAggregate ExperimentRunner::aggregate(
    std::span<const RunResult> results, const Extractor& extract) {
  std::vector<double> samples;
  samples.reserve(results.size());
  for (const RunResult& r : results) samples.push_back(extract(r));
  return stats::RunAggregate::over(samples);
}

double ExperimentRunner::mean_throughput(std::span<const RunResult> results) {
  return aggregate(results, [](const RunResult& r) {
           return r.metrics.throughput_objects_per_sec;
         })
      .mean;
}

double ExperimentRunner::mean_pct_missed(std::span<const RunResult> results) {
  return aggregate(results,
                   [](const RunResult& r) { return r.metrics.pct_missed; })
      .mean;
}

}  // namespace rtdb::core
