#include "core/system.hpp"

#include <algorithm>
#include <cassert>

#include "analysis/bounds.hpp"
#include "cc/hp2pl.hpp"
#include "cc/tso.hpp"
#include "cc/wait_die.hpp"

namespace rtdb::core {

namespace {

const char* kProtocolNames[] = {"2PL",     "2PL-P",  "PCP",    "PCP-X",
                                "2PL-PIP", "2PL-HP", "TSO",    "2PL-WD",
                                "2PL-WW"};

// Per-site fork ids for the reliable channels' retransmission jitter:
// disjoint from the workload stream (raw seed) and the fault stream (0xFA),
// so enabling retries perturbs neither.
constexpr std::uint64_t kChannelStream = 0xCA00;

db::Placement placement_for(const SystemConfig& config) {
  switch (config.scheme) {
    case DistScheme::kSingleSite:
      return db::Placement::kSingleSite;
    case DistScheme::kGlobalCeiling:
      return config.global_partitioned ? db::Placement::kPartitioned
                                       : db::Placement::kFullyReplicated;
    case DistScheme::kLocalCeiling:
      return db::Placement::kFullyReplicated;
    case DistScheme::kPartitionedCeiling:
      // Single-copy data: a fully replicated database would make every
      // update a cross-shard broadcast and erase the scheme's point.
      return db::Placement::kPartitioned;
  }
  return db::Placement::kSingleSite;
}

workload::Assignment assignment_for(const SystemConfig& config) {
  switch (config.scheme) {
    case DistScheme::kSingleSite:
      return workload::Assignment::kSingleSite;
    case DistScheme::kGlobalCeiling:
    case DistScheme::kPartitionedCeiling:
      return workload::Assignment::kUniformSite;
    case DistScheme::kLocalCeiling:
      return workload::Assignment::kHomeByWriteSet;
  }
  return workload::Assignment::kSingleSite;
}

}  // namespace

const char* to_string(Protocol protocol) {
  return kProtocolNames[static_cast<int>(protocol)];
}

const char* to_string(DistScheme scheme) {
  switch (scheme) {
    case DistScheme::kSingleSite:
      return "single-site";
    case DistScheme::kGlobalCeiling:
      return "global-ceiling";
    case DistScheme::kLocalCeiling:
      return "local-ceiling";
    case DistScheme::kPartitionedCeiling:
      return "partitioned";
  }
  return "?";
}

const char* to_string(Partitioner partitioner) {
  switch (partitioner) {
    case Partitioner::kHash:
      return "hash";
    case Partitioner::kRange:
      return "range";
  }
  return "?";
}

const char* to_string(BackendKind backend) {
  switch (backend) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kThreads:
      return "threads";
  }
  return "?";
}

System::System(SystemConfig config)
    : config_(config),
      schema_(db::DatabaseConfig{
          config.db_objects,
          config.scheme == DistScheme::kSingleSite ? 1 : config.sites,
          placement_for(config)}) {
  assert(config_.scheme == DistScheme::kSingleSite || config_.sites >= 2);
  assert(config_.lock_granularity >= 1);
  assert((config_.scheme == DistScheme::kSingleSite ||
          config_.lock_granularity == 1) &&
         "coarse locking granules are a single-site feature");
  config_.workload.assignment = assignment_for(config_);

  switch (config_.scheme) {
    case DistScheme::kSingleSite:
      build_single_site();
      break;
    case DistScheme::kGlobalCeiling:
      build_global_ceiling();
      break;
    case DistScheme::kLocalCeiling:
      build_local_ceiling();
      break;
    case DistScheme::kPartitionedCeiling:
      build_partitioned_ceiling();
      break;
  }
  if (config_.conformance_check || config_.bounds_check) {
    attach_conformance();
  }
  schedule_faults();

  generator_ = std::make_unique<workload::TransactionGenerator>(
      kernel_, schema_, config_.workload, sim::RandomStream{config_.seed},
      [this](txn::TransactionSpec spec) { submit(std::move(spec)); });
}

System::~System() = default;

System::Site System::make_site_base(net::SiteId id, db::Placement placement) {
  (void)placement;
  Site site;
  site.cpu = std::make_unique<sched::PreemptiveCpu>(
      kernel_, config_.cpus_per_site, "cpu-" + std::to_string(id));
  site.io = std::make_unique<sched::IoSubsystem>(
      kernel_, config_.disks_per_site, "io-" + std::to_string(id));
  site.rm = std::make_unique<db::ResourceManager>(
      kernel_, schema_, id, *site.io, config_.io_per_object,
      config_.keep_version_history);
  return site;
}

std::unique_ptr<cc::ConcurrencyController> System::make_controller() {
  switch (config_.protocol) {
    case Protocol::kTwoPhase:
      return std::make_unique<cc::TwoPhaseLocking>(
          kernel_,
          cc::TwoPhaseLocking::Options{cc::LockTable::QueuePolicy::kFifo,
                                       false, config_.victim_policy});
    case Protocol::kTwoPhasePriority:
      return std::make_unique<cc::TwoPhaseLocking>(
          kernel_,
          cc::TwoPhaseLocking::Options{cc::LockTable::QueuePolicy::kPriority,
                                       false, config_.victim_policy});
    case Protocol::kPriorityCeiling:
      return std::make_unique<cc::PriorityCeiling>(
          kernel_, config_.db_objects,
          cc::PriorityCeiling::Options{false, config_.pcp_deadlock_backstop});
    case Protocol::kPriorityCeilingExclusive:
      return std::make_unique<cc::PriorityCeiling>(
          kernel_, config_.db_objects,
          cc::PriorityCeiling::Options{true, config_.pcp_deadlock_backstop});
    case Protocol::kPriorityInheritance:
      return std::make_unique<cc::PriorityInheritance2PL>(
          kernel_, config_.victim_policy);
    case Protocol::kHighPriority:
      return std::make_unique<cc::HighPriority2PL>(kernel_);
    case Protocol::kTimestampOrdering:
      return std::make_unique<cc::TimestampOrdering>(kernel_);
    case Protocol::kWaitDie:
      return std::make_unique<cc::WaitDie2PL>(kernel_);
    case Protocol::kWoundWait:
      return std::make_unique<cc::WoundWait2PL>(kernel_);
  }
  return nullptr;
}

void System::build_single_site() {
  Site site = make_site_base(0, db::Placement::kSingleSite);
  site.cc = make_controller();
  site.executor = std::make_unique<txn::LocalExecutor>(
      txn::LocalExecutor::Services{
          &kernel_, site.cpu.get(), site.rm.get(), site.cc.get(),
          config_.record_history ? &history_ : nullptr},
      txn::LocalExecutor::Costs{config_.cpu_per_object,
                                use_priority_scheduling(),
                                config_.lock_granularity});
  site.tm = std::make_unique<txn::TransactionManager>(
      kernel_, *site.cc, *site.executor, monitor_,
      txn::TransactionManager::Options{config_.restart_backoff});
  site.tm->connect_cpu(*site.cpu);
  sites_.push_back(std::move(site));
}

void System::build_global_ceiling() {
  network_ = std::make_unique<net::Network>(kernel_, config_.sites,
                                            config_.comm_delay);
  constexpr net::SiteId kManagerSite = 0;
  const bool faulty = config_.faults.active();
  const bool failover = faulty && config_.enable_failover;
  for (net::SiteId id = 0; id < config_.sites; ++id) {
    Site site = make_site_base(id, schema_.placement());
    site.server = std::make_unique<net::MessageServer>(kernel_, *network_, id);
    // Ceiling control messages, replica updates, and recovery sync rounds
    // ride the reliable channel. Fault-free it is disabled — a verbatim
    // passthrough, keeping those runs bit-identical to earlier versions.
    site.channel = std::make_unique<net::ReliableChannel>(
        *site.server,
        net::ReliableChannel::Options{faulty, config_.retransmit_max,
                                      config_.backoff_base,
                                      config_.backoff_max},
        sim::RandomStream{config_.seed}.fork(kChannelStream + id));
    // Coalesces same-destination control traffic; a zero window (the
    // default) is an exact passthrough onto the reliable channel.
    site.batch = std::make_unique<net::BatchChannel>(
        *site.server, site.channel.get(),
        net::BatchChannel::Options{config_.batch_window});
    site.rpc_client = std::make_unique<net::RpcClient>(*site.server);
    site.rpc_dispatcher = std::make_unique<net::RpcDispatcher>(*site.server);
    // Presumed abort only matters once faults can lose the decision; the
    // fault-free default (zero timeout = wait forever) keeps runs
    // byte-identical to earlier artifact versions. Under faults the
    // participant also terminates cooperatively: it queries the round's
    // peers before presuming abort.
    const sim::Duration decision_timeout =
        faulty ? config_.commit_vote_timeout * 2 : sim::Duration::zero();
    site.data_server = std::make_unique<dist::DataServer>(
        *site.server, *site.rpc_dispatcher, *site.rm,
        txn::CommitParticipant::Options{decision_timeout, faulty});
    site.coordinator = std::make_unique<txn::CommitCoordinator>(*site.server);
    // Peer outcome queries are also answered from the co-located
    // coordinator's record — it knows the decision even when every
    // DecisionMsg of the round was lost.
    site.data_server->participant().set_outcome_source(
        [coordinator = site.coordinator.get()](std::uint64_t txn,
                                               std::uint64_t epoch) {
          return coordinator->outcome(txn, epoch);
        });
    if (schema_.placement() == db::Placement::kFullyReplicated) {
      // Replica catch-up after an outage (shared with the local scheme);
      // under faults, silent sites are re-asked.
      site.recovery = std::make_unique<dist::RecoveryManager>(
          *site.server, *site.rm,
          dist::RecoveryManager::Options{
              faulty ? 3 : 1,
              faulty ? config_.heartbeat_interval * 2 : sim::Duration::zero()},
          site.channel.get());
    }
    // Under faults an acquire RPC can die with the manager; the per-try
    // timeout re-issues it (at the new manager once failover completes).
    // The window covers detection plus one failover round.
    const sim::Duration acquire_timeout =
        faulty ? config_.heartbeat_interval *
                     static_cast<std::int64_t>(
                         config_.heartbeat_miss_threshold + 2)
               : sim::Duration::zero();
    auto client = std::make_unique<dist::GlobalCeilingClient>(
        kernel_, *site.server, *site.rpc_client,
        dist::GlobalCeilingClient::Options{kManagerSite, acquire_timeout},
        site.channel.get());
    client->set_batch(site.batch.get());
    // Site 0 hosts the initially active manager; with failover every site
    // hosts a standby instance the election can activate.
    if (id == kManagerSite || failover) {
      // Orphan reaping only under faults: a partition can outlast the
      // retransmit budget of a dead transaction's teardown messages, and
      // nothing else removes its mirror from a surviving manager.
      site.manager = std::make_unique<dist::GlobalCeilingManager>(
          *site.server, *site.rpc_dispatcher, config_.db_objects,
          site.channel.get(), id == kManagerSite, faulty, site.batch.get());
    }
    if (failover) {
      site.failover = std::make_unique<dist::FailoverCoordinator>(
          *site.server,
          dist::FailoverCoordinator::Options{
              config_.heartbeat_interval, config_.heartbeat_miss_threshold,
              kManagerSite, config_.sites, config_.lease_interval},
          dist::FailoverCoordinator::Hooks{
              [manager = site.manager.get()](std::uint64_t term) {
                manager->activate(term);
              },
              [manager = site.manager.get()] { manager->deactivate(); },
              [manager = site.manager.get()](bool fenced) {
                manager->set_fenced(fenced);
              },
              [client = client.get()](net::SiteId manager,
                                      std::uint64_t term) {
                client->set_manager(manager, term);
              },
              [this] { return !drained(); }});
    }
    site.executor = std::make_unique<dist::GlobalExecutor>(
        dist::GlobalExecutor::Services{
            &kernel_, site.cpu.get(), site.rm.get(), &schema_, client.get(),
            site.server.get(), site.rpc_client.get(), site.coordinator.get(),
            config_.record_history ? &history_ : nullptr},
        dist::GlobalExecutor::Costs{config_.cpu_per_object,
                                    use_priority_scheduling(),
                                    config_.commit_vote_timeout});
    site.cc = std::move(client);
    site.tm = std::make_unique<txn::TransactionManager>(
        kernel_, *site.cc, *site.executor, monitor_,
        txn::TransactionManager::Options{config_.restart_backoff,
                                         config_.admission});
    site.tm->connect_cpu(*site.cpu);
    site.server->start();
    sites_.push_back(std::move(site));
  }
}

void System::build_local_ceiling() {
  network_ = std::make_unique<net::Network>(kernel_, config_.sites,
                                            config_.comm_delay);
  const bool faulty = config_.faults.active();
  for (net::SiteId id = 0; id < config_.sites; ++id) {
    Site site = make_site_base(id, db::Placement::kFullyReplicated);
    site.server = std::make_unique<net::MessageServer>(kernel_, *network_, id);
    site.channel = std::make_unique<net::ReliableChannel>(
        *site.server,
        net::ReliableChannel::Options{faulty, config_.retransmit_max,
                                      config_.backoff_base,
                                      config_.backoff_max},
        sim::RandomStream{config_.seed}.fork(kChannelStream + id));
    site.replication = std::make_unique<dist::ReplicationManager>(
        *site.server, *site.rm, site.channel.get());
    site.recovery = std::make_unique<dist::RecoveryManager>(
        *site.server, *site.rm,
        dist::RecoveryManager::Options{
            faulty ? 3 : 1,
            faulty ? config_.heartbeat_interval * 2 : sim::Duration::zero()},
        site.channel.get());
    site.cc = std::make_unique<cc::PriorityCeiling>(
        kernel_, config_.db_objects,
        cc::PriorityCeiling::Options{false, config_.pcp_deadlock_backstop});
    site.executor = std::make_unique<dist::ReplicatedExecutor>(
        dist::ReplicatedExecutor::Services{
            &kernel_, site.cpu.get(), site.rm.get(), site.cc.get(),
            site.replication.get(), nullptr},
        dist::ReplicatedExecutor::Costs{config_.cpu_per_object,
                                        use_priority_scheduling()});
    site.tm = std::make_unique<txn::TransactionManager>(
        kernel_, *site.cc, *site.executor, monitor_,
        txn::TransactionManager::Options{config_.restart_backoff,
                                         config_.admission});
    site.tm->connect_cpu(*site.cpu);
    site.server->start();
    sites_.push_back(std::move(site));
  }
}

std::uint32_t System::effective_shards() const {
  if (config_.scheme != DistScheme::kPartitionedCeiling) return 0;
  if (config_.shards != 0) return std::min(config_.shards, config_.sites);
  // Default: one shard per site, capped — past a handful of managers the
  // control plane is spread thin enough and standby cost dominates.
  return std::min(config_.sites, 8u);
}

std::function<std::uint32_t(db::ObjectId)> System::shard_fn() const {
  return [objects = config_.db_objects, shards = effective_shards(),
          partitioner = config_.partitioner](db::ObjectId object) {
    return shard_of(object, objects, shards, partitioner);
  };
}

void System::build_partitioned_ceiling() {
  network_ = std::make_unique<net::Network>(kernel_, config_.sites,
                                            config_.comm_delay);
  const std::uint32_t shards = effective_shards();
  const bool faulty = config_.faults.active();
  const bool failover = faulty && config_.enable_failover;
  for (net::SiteId id = 0; id < config_.sites; ++id) {
    Site site = make_site_base(id, schema_.placement());
    site.server = std::make_unique<net::MessageServer>(kernel_, *network_, id);
    site.channel = std::make_unique<net::ReliableChannel>(
        *site.server,
        net::ReliableChannel::Options{faulty, config_.retransmit_max,
                                      config_.backoff_base,
                                      config_.backoff_max},
        sim::RandomStream{config_.seed}.fork(kChannelStream + id));
    site.batch = std::make_unique<net::BatchChannel>(
        *site.server, site.channel.get(),
        net::BatchChannel::Options{config_.batch_window});
    site.rpc_client = std::make_unique<net::RpcClient>(*site.server);
    site.rpc_dispatcher = std::make_unique<net::RpcDispatcher>(*site.server);
    const sim::Duration decision_timeout =
        faulty ? config_.commit_vote_timeout * 2 : sim::Duration::zero();
    site.data_server = std::make_unique<dist::DataServer>(
        *site.server, *site.rpc_dispatcher, *site.rm,
        txn::CommitParticipant::Options{decision_timeout, faulty});
    site.coordinator = std::make_unique<txn::CommitCoordinator>(*site.server);
    site.data_server->participant().set_outcome_source(
        [coordinator = site.coordinator.get()](std::uint64_t txn,
                                               std::uint64_t epoch) {
          return coordinator->outcome(txn, epoch);
        });
    const sim::Duration acquire_timeout =
        faulty ? config_.heartbeat_interval *
                     static_cast<std::int64_t>(
                         config_.heartbeat_miss_threshold + 2)
               : sim::Duration::zero();
    auto client = std::make_unique<dist::PartitionedCeilingClient>(
        kernel_, *site.server, *site.rpc_client,
        dist::PartitionedCeilingClient::Options{shards, shard_fn(),
                                                acquire_timeout},
        site.channel.get(), site.batch.get());
    // One handler slot per message type per site: the router owns them all
    // and demultiplexes on the shard field.
    site.router = std::make_unique<dist::ShardRouter>(
        *site.server, *site.rpc_dispatcher, shards, site.channel.get(),
        site.batch.get());
    site.shard_managers.resize(shards);
    site.shard_failovers.resize(shards);
    for (std::uint32_t shard = 0; shard < shards; ++shard) {
      // Shard `shard`'s initially active manager lives at site `shard`;
      // under failover every site hosts a standby per shard.
      const bool host = id == shard;
      if (host || failover) {
        site.shard_managers[shard] =
            std::make_unique<dist::GlobalCeilingManager>(
                dist::GlobalCeilingManager::Routed{}, *site.server,
                config_.db_objects, host, faulty);
        site.router->set_manager(shard, site.shard_managers[shard].get());
      }
      if (failover) {
        // One election per shard, each an independent term space.
        site.shard_failovers[shard] =
            std::make_unique<dist::FailoverCoordinator>(
                *site.server,
                dist::FailoverCoordinator::Options{
                    config_.heartbeat_interval,
                    config_.heartbeat_miss_threshold,
                    /*initial_manager=*/shard, config_.sites,
                    config_.lease_interval, shard,
                    /*register_handlers=*/false},
                dist::FailoverCoordinator::Hooks{
                    [manager = site.shard_managers[shard].get()](
                        std::uint64_t term) { manager->activate(term); },
                    [manager = site.shard_managers[shard].get()] {
                      manager->deactivate();
                    },
                    [manager = site.shard_managers[shard].get()](bool fenced) {
                      manager->set_fenced(fenced);
                    },
                    [client = client.get(), shard](net::SiteId manager,
                                                   std::uint64_t term) {
                      client->set_manager(shard, manager, term);
                    },
                    [this] { return !drained(); }});
        site.shard_failovers[shard]->set_batch(site.batch.get());
        site.router->set_failover(shard, site.shard_failovers[shard].get());
      }
    }
    site.executor = std::make_unique<dist::GlobalExecutor>(
        dist::GlobalExecutor::Services{
            &kernel_, site.cpu.get(), site.rm.get(), &schema_, client.get(),
            site.server.get(), site.rpc_client.get(), site.coordinator.get(),
            config_.record_history ? &history_ : nullptr},
        dist::GlobalExecutor::Costs{config_.cpu_per_object,
                                    use_priority_scheduling(),
                                    config_.commit_vote_timeout});
    site.cc = std::move(client);
    site.tm = std::make_unique<txn::TransactionManager>(
        kernel_, *site.cc, *site.executor, monitor_,
        txn::TransactionManager::Options{config_.restart_backoff,
                                         config_.admission});
    site.tm->connect_cpu(*site.cpu);
    site.server->start();
    sites_.push_back(std::move(site));
  }
}

void System::attach_conformance() {
  conformance_ = std::make_unique<check::ConformanceMonitor>(kernel_);
  if (config_.bounds_check) {
    // Gate observed blocking episodes against the static analysis; an
    // Unbounded verdict measures without gating (nothing to compare to).
    const analysis::BlockingBounds bounds = analysis::analyze(config_);
    conformance_->arm_bounds(
        bounds.bounded ? std::optional<sim::Duration>(bounds.worst_bound)
                       : std::nullopt);
  }
  // The rule family of the per-site controllers. Under the global scheme
  // the site controller is the remote ceiling client (structural checks
  // only — the blockers are at the manager); the manager's own protocol
  // instance gets the full ceiling audit below.
  const auto family = [&]() -> check::ProtocolFamily {
    if (config_.scheme == DistScheme::kGlobalCeiling ||
        config_.scheme == DistScheme::kPartitionedCeiling) {
      return check::ProtocolFamily::kRemoteClient;
    }
    switch (config_.protocol) {
      case Protocol::kTwoPhase:
      case Protocol::kTwoPhasePriority:
      case Protocol::kPriorityInheritance:
        return check::ProtocolFamily::kTwoPhase;
      case Protocol::kPriorityCeiling:
      case Protocol::kPriorityCeilingExclusive:
        return check::ProtocolFamily::kCeiling;
      case Protocol::kHighPriority:
        return check::ProtocolFamily::kHighPriority;
      case Protocol::kWaitDie:
        return check::ProtocolFamily::kWaitDie;
      case Protocol::kWoundWait:
        return check::ProtocolFamily::kWoundWait;
      case Protocol::kTimestampOrdering:
        break;  // handled via attach_timestamp below
    }
    return check::ProtocolFamily::kTwoPhase;
  }();
  const bool timestamp = family == check::ProtocolFamily::kRemoteClient
                             ? false
                             : config_.protocol == Protocol::kTimestampOrdering;
  for (Site& site : sites_) {
    if (timestamp) {
      conformance_->attach_timestamp(*site.cc);
    } else {
      conformance_->attach(*site.cc, family);
    }
    // Every (standby) manager audits as a full ceiling protocol — adoption
    // after failover included.
    if (site.manager != nullptr) {
      conformance_->attach(site.manager->protocol(),
                           check::ProtocolFamily::kCeiling);
    }
    // Shard managers additionally audit grant scope: a manager granting an
    // object its shard does not own is a routing/config bug the ordinary
    // ceiling rules cannot see.
    for (std::uint32_t shard = 0; shard < site.shard_managers.size();
         ++shard) {
      if (site.shard_managers[shard] == nullptr) continue;
      conformance_->attach_sharded(
          site.shard_managers[shard]->protocol(),
          check::ProtocolFamily::kCeiling, shard,
          [shard, fn = shard_fn()](db::ObjectId object) {
            return fn(object) == shard;
          });
    }
    if (site.coordinator != nullptr) {
      site.coordinator->set_observer(conformance_->commit_observer());
    }
    if (site.data_server != nullptr) {
      site.data_server->participant().set_observer(
          conformance_->commit_observer());
    }
    // Lease audit: coordinators report term adoptions and lease
    // acquisitions/releases, managers the term stamped on each grant, and
    // clients the term of each grant they act on. Only meaningful when the
    // failover machinery is built — without it no lease is ever acquired
    // and every grant would read as fenceless.
    if (site.failover != nullptr) {
      site.failover->set_observer(conformance_->lease_observer());
      if (site.manager != nullptr) {
        site.manager->set_lease_observer(conformance_->lease_observer());
      }
      if (auto* gcc = dynamic_cast<dist::GlobalCeilingClient*>(site.cc.get())) {
        gcc->set_lease_observer(conformance_->lease_observer());
      }
    }
    // Per-shard lease audits: every shard's election is an independent term
    // space, so each gets its own single-holder audit instance.
    for (std::uint32_t shard = 0; shard < site.shard_failovers.size();
         ++shard) {
      if (site.shard_failovers[shard] == nullptr) continue;
      dist::LeaseObserver* observer = conformance_->lease_observer(shard);
      site.shard_failovers[shard]->set_observer(observer);
      if (site.shard_managers[shard] != nullptr) {
        site.shard_managers[shard]->set_lease_observer(observer);
      }
      if (auto* pcc =
              dynamic_cast<dist::PartitionedCeilingClient*>(site.cc.get())) {
        pcc->set_lease_observer(shard, observer);
      }
    }
  }
}

void System::schedule_faults() {
  if (!config_.faults.active()) return;
  assert(network_ != nullptr &&
         "fault injection applies to the distributed schemes");
  if (config_.faults.message_faults()) {
    // Forked stream: the workload generator's draws are untouched by the
    // fault knobs, and the fault schedule is a pure function of the seed.
    constexpr std::uint64_t kFaultStream = 0xFA;
    network_->install_faults(config_.faults,
                             sim::RandomStream{config_.seed}.fork(kFaultStream));
  }
  for (const net::FaultSpec::Partition& partition : config_.faults.partitions) {
    // Pure data, no RNG: link cuts replay bit-identically for any --jobs N.
    const sim::TimePoint cut_at = sim::TimePoint::origin() + partition.at;
    kernel_.schedule_at(cut_at, [this, partition] {
      network_->apply_partition(partition);
    });
    if (partition.heal_after > sim::Duration::zero()) {
      kernel_.schedule_at(cut_at + partition.heal_after, [this, partition] {
        network_->lift_partition(partition);
      });
    }
  }
  for (const net::FaultSpec::Crash& crash : config_.faults.crashes) {
    assert(crash.site < config_.sites);
    const sim::TimePoint down_at = sim::TimePoint::origin() + crash.at;
    kernel_.schedule_at(down_at,
                        [this, site = crash.site] { crash_site(site); });
    if (crash.down_for > sim::Duration::zero()) {
      kernel_.schedule_at(down_at + crash.down_for,
                          [this, site = crash.site] { restore_site(site); });
    }
  }
}

void System::crash_site(net::SiteId site) {
  assert(network_ != nullptr && site < sites_.size());
  if (!network_->operational(site)) return;
  ++crashes_;
  // Network first: everything the dying attempts try to say on the way
  // down (release messages, votes) is lost, as fail-stop demands.
  network_->set_operational(site, false);
  Site& s = sites_[site];
  if (s.server != nullptr) {
    s.server->stop();
    network_->inbox(site).clear();  // undispatched inbox dies with the site
  }
  if (s.channel != nullptr) s.channel->on_crash();
  if (s.batch != nullptr) s.batch->on_crash();
  if (s.data_server != nullptr) s.data_server->on_crash();
  if (s.failover != nullptr) s.failover->on_crash();
  if (s.manager != nullptr) s.manager->on_crash();
  for (auto& failover : s.shard_failovers) {
    if (failover != nullptr) failover->on_crash();
  }
  for (auto& manager : s.shard_managers) {
    if (manager != nullptr) manager->on_crash();
  }
  s.tm->crash();
  // Idealized instantaneous failure detection at the lock manager: free
  // whatever the dead site's transactions held so survivors are not
  // blocked behind a corpse. (Standby managers hold no mirrors — no-op.)
  for (Site& other : sites_) {
    if (other.manager != nullptr) other.manager->abort_site(site);
    for (auto& manager : other.shard_managers) {
      if (manager != nullptr) manager->abort_site(site);
    }
  }
}

void System::restore_site(net::SiteId site) {
  assert(network_ != nullptr && site < sites_.size());
  if (network_->operational(site)) return;
  network_->set_operational(site, true);
  Site& s = sites_[site];
  if (s.server != nullptr) s.server->start();
  s.tm->restore();
  if (s.failover != nullptr) s.failover->on_restore();
  for (auto& failover : s.shard_failovers) {
    if (failover != nullptr) failover->on_restore();
  }
  if (s.recovery != nullptr) s.recovery->request_catch_up();
}

void System::submit(txn::TransactionSpec spec) {
  assert(spec.home_site < sites_.size());
  sites_[spec.home_site].tm->submit(std::move(spec));
}

void System::start() {
  if (started_) return;
  started_ = true;
  generator_->start();
  for (Site& site : sites_) {
    if (site.failover != nullptr) site.failover->start();
    for (auto& failover : site.shard_failovers) {
      if (failover != nullptr) failover->start();
    }
  }
}

bool System::drained() const {
  if (generator_ == nullptr || !generator_->finished()) return false;
  for (const Site& site : sites_) {
    if (site.tm->live_count() > 0) return false;
  }
  return true;
}

void System::run_to_completion() {
  assert(config_.workload.periodic.empty() &&
         "periodic sources never drain; drive the kernel with run_until");
  start();
  kernel_.run();
}

stats::Metrics System::metrics() const {
  return stats::Metrics::compute(monitor_.records(),
                                 kernel_.now() - sim::TimePoint::origin());
}

std::uint64_t System::total_restarts() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) n += site.tm->restarts();
  return n;
}

std::uint64_t System::total_deadline_kills() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) n += site.tm->deadline_kills();
  return n;
}

std::uint64_t System::total_protocol_aborts() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    n += site.cc->protocol_aborts();
    if (site.manager != nullptr) {
      n += site.manager->protocol().protocol_aborts();
    }
    for (const auto& manager : site.shard_managers) {
      if (manager != nullptr) n += manager->protocol().protocol_aborts();
    }
  }
  return n;
}

std::uint64_t System::total_ceiling_denials() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (const auto* pcp = dynamic_cast<const cc::PriorityCeiling*>(site.cc.get())) {
      n += pcp->ceiling_denials();
    }
    if (site.manager != nullptr) {
      n += site.manager->protocol().ceiling_denials();
    }
    for (const auto& manager : site.shard_managers) {
      if (manager != nullptr) n += manager->protocol().ceiling_denials();
    }
  }
  return n;
}

std::uint64_t System::total_dynamic_deadlocks() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (const auto* pcp = dynamic_cast<const cc::PriorityCeiling*>(site.cc.get())) {
      n += pcp->dynamic_deadlocks();
    }
    if (site.manager != nullptr) {
      n += site.manager->protocol().dynamic_deadlocks();
    }
    for (const auto& manager : site.shard_managers) {
      if (manager != nullptr) n += manager->protocol().dynamic_deadlocks();
    }
  }
  return n;
}

std::uint64_t System::total_crash_kills() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) n += site.tm->crash_kills();
  return n;
}

std::uint64_t System::total_commit_rounds() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.coordinator != nullptr) n += site.coordinator->rounds();
  }
  return n;
}

std::uint64_t System::total_commit_aborts() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.coordinator != nullptr) n += site.coordinator->aborts();
  }
  return n;
}

std::uint64_t System::total_vote_timeouts() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.coordinator != nullptr) n += site.coordinator->vote_timeouts();
  }
  return n;
}

std::uint64_t System::total_presumed_aborts() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.data_server != nullptr) n += site.data_server->presumed_aborts();
  }
  return n;
}

std::uint64_t System::total_versions_recovered() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.recovery != nullptr) n += site.recovery->versions_recovered();
  }
  return n;
}

std::uint64_t System::total_retransmissions() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.channel != nullptr) n += site.channel->retransmissions();
  }
  return n;
}

sim::Duration System::total_backoff_wait() const {
  sim::Duration total{};
  for (const Site& site : sites_) {
    if (site.channel != nullptr) total += site.channel->backoff_wait();
  }
  return total;
}

std::uint64_t System::total_failovers() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.failover != nullptr) n += site.failover->promotions();
    for (const auto& failover : site.shard_failovers) {
      if (failover != nullptr) n += failover->promotions();
    }
  }
  return n;
}

std::uint64_t System::total_termination_queries() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.data_server != nullptr) n += site.data_server->termination_queries();
  }
  return n;
}

std::uint64_t System::total_termination_resolutions() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.data_server != nullptr) {
      n += site.data_server->termination_resolutions();
    }
  }
  return n;
}

std::uint64_t System::total_orphan_locks_reclaimed() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.manager != nullptr) n += site.manager->orphan_locks_reclaimed();
    for (const auto& manager : site.shard_managers) {
      if (manager != nullptr) n += manager->orphan_locks_reclaimed();
    }
  }
  return n;
}

std::uint64_t System::total_partition_drops() const {
  return network_ != nullptr ? network_->partition_drops() : 0;
}

std::uint64_t System::total_lease_expiries() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.failover != nullptr) n += site.failover->lease_expiries();
    for (const auto& failover : site.shard_failovers) {
      if (failover != nullptr) n += failover->lease_expiries();
    }
  }
  return n;
}

std::uint64_t System::total_fence_denials() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.manager != nullptr) n += site.manager->fence_denials();
    for (const auto& manager : site.shard_managers) {
      if (manager != nullptr) n += manager->fence_denials();
    }
  }
  return n;
}

std::uint64_t System::total_stale_grants_rejected() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (const auto* client =
            dynamic_cast<const dist::GlobalCeilingClient*>(site.cc.get())) {
      n += client->stale_grants_rejected();
    }
    if (const auto* client =
            dynamic_cast<const dist::PartitionedCeilingClient*>(
                site.cc.get())) {
      n += client->stale_grants_rejected();
    }
  }
  return n;
}

std::uint64_t System::total_batched_messages() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.batch != nullptr) n += site.batch->batched_messages();
  }
  return n;
}

std::uint64_t System::total_batch_flushes() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    if (site.batch != nullptr) n += site.batch->batch_flushes();
  }
  return n;
}

std::uint64_t System::total_shard_migrations() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) {
    for (const auto& failover : site.shard_failovers) {
      if (failover != nullptr) n += failover->promotions();
    }
  }
  return n;
}

std::uint64_t System::total_admitted() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) n += site.tm->admitted();
  return n;
}

std::uint64_t System::total_shed() const {
  std::uint64_t n = 0;
  for (const Site& site : sites_) n += site.tm->shed();
  return n;
}

std::uint64_t System::invariant_violations(std::string* why) const {
  std::uint64_t n = 0;
  auto fail = [&](std::string reason) {
    ++n;
    if (why != nullptr && n == 1) *why = std::move(reason);
  };
  for (std::size_t id = 0; id < sites_.size(); ++id) {
    const Site& site = sites_[id];
    std::string reason;
    if (!site.cc->quiescent(&reason)) {
      fail("site " + std::to_string(id) + " controller not quiescent: " +
           reason);
    }
    if (site.manager != nullptr) {
      if (site.manager->live_mirrors() != 0) {
        fail("site " + std::to_string(id) + " manager holds " +
             std::to_string(site.manager->live_mirrors()) + " live mirrors");
      }
      reason.clear();
      if (!site.manager->protocol().quiescent(&reason)) {
        fail("site " + std::to_string(id) +
             " manager protocol not quiescent: " + reason);
      }
    }
    for (std::size_t shard = 0; shard < site.shard_managers.size(); ++shard) {
      const auto& manager = site.shard_managers[shard];
      if (manager == nullptr) continue;
      if (manager->live_mirrors() != 0) {
        fail("site " + std::to_string(id) + " shard " + std::to_string(shard) +
             " manager holds " + std::to_string(manager->live_mirrors()) +
             " live mirrors");
      }
      reason.clear();
      if (!manager->protocol().quiescent(&reason)) {
        fail("site " + std::to_string(id) + " shard " + std::to_string(shard) +
             " manager protocol not quiescent: " + reason);
      }
    }
  }
  if (config_.record_history) {
    std::string reason;
    if (!history_.conflict_serializable(&reason)) {
      fail("history not conflict-serializable: " + reason);
    }
  }
  return n;
}

}  // namespace rtdb::core
