#pragma once

#include <cstdint>

#include "cc/two_phase.hpp"
#include "net/fault.hpp"
#include "sched/disk.hpp"
#include "sim/time.hpp"
#include "txn/admission.hpp"
#include "workload/config.hpp"

namespace rtdb::core {

// The synchronization protocol of a single-site system — the UI menu's
// "concurrency control: locking, timestamp ordering, and priority-based".
enum class Protocol : std::uint8_t {
  kTwoPhase,                  // plain 2PL, FIFO queues          (curve L)
  kTwoPhasePriority,          // 2PL, priority queues            (curve P)
  kPriorityCeiling,           // the ceiling protocol            (curve C)
  kPriorityCeilingExclusive,  // ablation: exclusive-only locks
  kPriorityInheritance,       // basic inheritance (§3.1)
  kHighPriority,              // 2PL-HP wound-based ([Abb88] line of work)
  kTimestampOrdering,         // basic TO
  kWaitDie,                   // age-based wait-die 2PL
  kWoundWait,                 // age-based wound-wait 2PL
};

const char* to_string(Protocol protocol);

// Distribution scheme of §4 (plus the scale-out extension).
enum class DistScheme : std::uint8_t {
  kSingleSite,
  kGlobalCeiling,  // one global ceiling manager, locks across the network
  kLocalCeiling,   // per-site ceiling managers over full replication
  // DPCP-style resource agents: the object space is sharded across
  // per-shard ceiling managers (each a full GlobalCeilingManager over its
  // shard's declared sets), data is partitioned single-copy, and each
  // shard runs its own lease-fenced failover. Removes the single-manager
  // serialization point the global scheme funnels everything through.
  kPartitionedCeiling,
};

const char* to_string(DistScheme scheme);

// How kPartitionedCeiling splits the object space across shards.
enum class Partitioner : std::uint8_t {
  kHash,   // splitmix64-mixed object id: spreads hot keys across shards
  kRange,  // contiguous slices: concentrates Zipfian hot ranks on shard 0
};

const char* to_string(Partitioner partitioner);

// The shard owning `object`; pure function of the config so the client,
// the router, and the conformance audit agree without coordination.
inline std::uint32_t shard_of(std::uint32_t object, std::uint32_t db_objects,
                              std::uint32_t shards, Partitioner partitioner) {
  if (shards <= 1) return 0;
  if (partitioner == Partitioner::kRange) {
    const std::uint32_t span = (db_objects + shards - 1) / shards;
    const std::uint32_t shard = object / span;
    return shard < shards ? shard : shards - 1;
  }
  // splitmix64 finalizer: cheap, deterministic, platform-independent.
  std::uint64_t z = object;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z % shards);
}

// Execution substrate: the discrete-event simulation (default; virtual
// time, byte-identical artifacts per seed) or the real-hardware thread
// backend (src/rt: worker pool + steady clock; statistically
// reproducible). Single-site scheme only for kThreads.
enum class BackendKind : std::uint8_t {
  kSim,
  kThreads,
};

const char* to_string(BackendKind backend);

// Everything the User Interface of the prototyping environment lets an
// experimenter set: system configuration (sites, relative CPU / I/O /
// communication costs), database configuration, load characteristics, and
// the concurrency-control choice.
struct SystemConfig {
  // ---- system configuration ----
  std::uint32_t sites = 1;
  int cpus_per_site = 1;
  int disks_per_site = sched::IoSubsystem::kUnlimited;  // parallel I/O
  sim::Duration cpu_per_object = sim::Duration::units(2);
  sim::Duration io_per_object = sim::Duration::units(1);
  sim::Duration comm_delay = sim::Duration::zero();

  // ---- database configuration ----
  std::uint32_t db_objects = 200;
  // Objects per locking granule (the UI's granularity knob); > 1 trades
  // lock-management work for false conflicts. Single-site schemes only.
  std::uint32_t lock_granularity = 1;
  bool keep_version_history = false;  // multi-version temporal reads (§4)

  // ---- concurrency control ----
  Protocol protocol = Protocol::kPriorityCeiling;
  DistScheme scheme = DistScheme::kSingleSite;
  // Data placement under kGlobalCeiling: false (default) = the paper's
  // fully replicated database with synchronous updates at commit; true =
  // partitioned single-copy data with remote reads (extension).
  bool global_partitioned = false;
  // kPartitionedCeiling: ceiling-manager shards (0 = one per site, capped
  // at 8) and how objects map onto them. Shard s's initial manager is site
  // s, so shards never exceeds the site count.
  std::uint32_t shards = 0;
  Partitioner partitioner = Partitioner::kHash;
  // Control-message batching (global + partitioned ceiling schemes): sends
  // to the same destination within this window coalesce into one framed
  // message (net::BatchChannel). Zero = off — the channel is an exact
  // passthrough and runs stay byte-identical to builds without it. Keep
  // the window well under heartbeat_interval: heartbeats ride the batch
  // too, and a window that swallows a whole beat delays failure detection.
  sim::Duration batch_window{};
  cc::TwoPhaseLocking::VictimPolicy victim_policy =
      cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
  sim::Duration restart_backoff = sim::Duration::units(1);
  // PCP dynamic-arrival backstop (see cc/pcp.hpp). Off = rely on deadline
  // aborts to dissolve the (rare) arrival-induced cycles, as the 1990
  // study implicitly did.
  bool pcp_deadlock_backstop = true;

  // ---- fault injection (distributed schemes; see net/fault.hpp) ----
  // All fault decisions draw from a stream forked off `seed`, so a zero
  // spec is bit-identical to a build without fault injection and `--jobs N`
  // replay determinism is preserved.
  net::FaultSpec faults;
  // 2PC coordinator vote-collection window (global scheme); a missing vote
  // counts as NO. The default matches the value the executor historically
  // hardcoded, keeping fault-free runs byte-identical.
  sim::Duration commit_vote_timeout = sim::Duration::units(10000);

  // ---- resilience (distributed schemes; engaged only when faults.active())
  // Ceiling-manager failover: every site hosts a standby manager plus a
  // heartbeat-driven FailoverCoordinator; when the elected manager crashes,
  // the next live site by id promotes itself and rebuilds the lock state
  // from the clients' re-registrations.
  bool enable_failover = true;
  sim::Duration heartbeat_interval = sim::Duration::units(20);
  // Missed heartbeat intervals before the manager is declared dead.
  std::uint32_t heartbeat_miss_threshold = 3;
  // Reliable control channel (acked, retransmitting): retries per message,
  // the base of the exponential retransmission backoff, and its saturation
  // cap (a long partition must not double the wait into overflow).
  int retransmit_max = 5;
  sim::Duration backoff_base = sim::Duration::units(8);
  sim::Duration backoff_max = sim::Duration::units(256);
  // Manager-lease validity window; zero derives heartbeat_interval *
  // (heartbeat_miss_threshold - 1), one beat inside the election window so
  // a partitioned manager fences before any successor promotes.
  sim::Duration lease_interval{};

  // ---- load characteristics ----
  workload::WorkloadConfig workload;
  // Deadline-aware admission control / overload shedding (per-site
  // transaction managers; see txn/admission.hpp). Off by default.
  txn::AdmissionConfig admission;

  // ---- execution backend ----
  BackendKind backend = BackendKind::kSim;
  // Thread backend only: worker pool size (0 = one per hardware core) and
  // real nanoseconds per simulation time unit (the clock scale).
  std::uint32_t rt_workers = 0;
  std::uint64_t rt_unit_nanos = 20'000;

  // ---- experiment control ----
  std::uint64_t seed = 1;
  bool record_history = false;  // conflict-serializability oracle
  // Online protocol conformance auditing (src/check): shadow every
  // controller and the 2PC machinery and flag invariant violations as they
  // happen. Off by default — when false the monitor is never constructed
  // and no protocol code path changes. An RTDB_CHECK build flips the
  // default so the whole test/bench surface runs audited.
#ifdef RTDB_CHECK
  bool conformance_check = true;
#else
  bool conformance_check = false;
#endif
  // Blocking-bound auditing (src/analysis + check::ConformanceMonitor):
  // statically derive the per-protocol worst-case blocking episode and
  // flag any observed episode that exceeds it (scalar bound_violations).
  // Constructs the conformance monitor even when conformance_check is
  // off; protocols with an Unbounded verdict are measured, never gated.
  bool bounds_check = false;
};

}  // namespace rtdb::core
