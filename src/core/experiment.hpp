#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/system.hpp"
#include "stats/metrics.hpp"

namespace rtdb::core {

// The results of one run: the monitor's aggregated metrics plus the
// protocol counters the figures and ablations report.
struct RunResult {
  stats::Metrics metrics;
  std::uint64_t restarts = 0;
  std::uint64_t deadline_kills = 0;
  std::uint64_t protocol_aborts = 0;
  std::uint64_t ceiling_denials = 0;
  std::uint64_t dynamic_deadlocks = 0;
  sim::Duration elapsed{};
  // Fault-injection / commit-protocol counters (all 0 in fault-free
  // single-site runs).
  std::uint64_t commit_rounds = 0;
  std::uint64_t commit_aborts = 0;
  std::uint64_t vote_timeouts = 0;
  std::uint64_t presumed_aborts = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t crashes = 0;
  std::uint64_t crash_kills = 0;
  std::uint64_t versions_recovered = 0;
  // Resilience counters (reliable channel / failover / cooperative
  // termination; all 0 in fault-free runs).
  std::uint64_t retransmissions = 0;
  double backoff_wait_units = 0.0;
  std::uint64_t failovers = 0;
  std::uint64_t termination_queries = 0;
  std::uint64_t termination_resolutions = 0;
  std::uint64_t orphan_locks_reclaimed = 0;
  // Post-run audit failures (faulty runs only; see
  // System::invariant_violations). Anything nonzero is a bug.
  std::uint64_t invariant_violations = 0;
  // Online conformance auditing (src/check; populated only when
  // config.conformance_check). Violations nonzero means a protocol broke
  // one of its own invariants mid-run — always a bug. Wait cycles and the
  // inversion span are measurements, not verdicts.
  std::uint64_t conformance_violations = 0;
  std::uint64_t wait_cycles_detected = 0;
  double max_inversion_span_units = 0.0;
  // Partition tolerance / overload shedding (all 0 without --partition /
  // admission control; admitted mirrors arrived then).
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t stale_grants_rejected = 0;
  std::uint64_t partition_drops = 0;
  // Scale-out control plane (all 0 with batching off / outside the
  // partitioned scheme).
  std::uint64_t batched_messages = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t shard_migrations = 0;
  // Static blocking-bound analysis (src/analysis). The bound is a pure
  // function of the config and is stamped on every run (0 = the analyzer
  // returned Unbounded); the observed/violation pair needs bounds_check
  // (--bounds). bound_violations nonzero means an observed blocking
  // episode exceeded the analytic worst case — a bug in the protocol or
  // in the bound derivation, either way a defect.
  double bound_blocking_units = 0.0;
  double observed_max_blocking_units = 0.0;
  std::uint64_t bound_violations = 0;
};

// A named per-run scalar — the catalog below is the single list the text
// tables, the JSON/CSV artifacts, and ad-hoc aggregation all draw from.
struct RunScalar {
  const char* name;
  double (*extract)(const RunResult&);
};

// Every counter and derived measure a RunResult carries, in the stable
// order the artifact schema documents.
std::span<const RunScalar> run_scalars();

// Looks a scalar up by name; nullptr when unknown.
const RunScalar* find_run_scalar(std::string_view name);

// Runs experiment cells: one cell = one SystemConfig executed with
// several seeds (the paper averages 10 runs per point).
class ExperimentRunner {
 public:
  static constexpr int kDefaultRuns = 10;

  // The seed of run `run` of a cell whose base seed is `base` — one rule,
  // shared by run_many and the parallel sweep engine so that their results
  // are interchangeable.
  static std::uint64_t seed_for_run(std::uint64_t base, int run) {
    return base + static_cast<std::uint64_t>(run);
  }

  // Builds a System from the config, runs the batch to completion, and
  // collects results.
  static RunResult run_once(const SystemConfig& config);

  // Runs with seeds config.seed, config.seed + 1, ... (one per run).
  static std::vector<RunResult> run_many(SystemConfig config,
                                         int runs = kDefaultRuns);

  // Aggregate any per-run scalar across results.
  using Extractor = std::function<double(const RunResult&)>;
  static stats::RunAggregate aggregate(std::span<const RunResult> results,
                                       const Extractor& extract);

  // The two headline measures.
  static double mean_throughput(std::span<const RunResult> results);
  static double mean_pct_missed(std::span<const RunResult> results);
};

}  // namespace rtdb::core
