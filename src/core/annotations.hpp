#pragma once

// Clang thread-safety analysis annotations (-Wthread-safety), applied to
// the one place in the tree with real concurrency: the experiment driver's
// worker pool (src/exp). The macros expand to nothing under GCC and MSVC,
// so the annotated code builds everywhere; a clang build (the CI
// clang-tidy job configures one) gets compile-time lock-discipline checks.
//
// Naming follows the usual GUARDED_BY/REQUIRES vocabulary with an RTDB_
// prefix to avoid colliding with other libraries' copies of these macros.

#if defined(__clang__) && (!defined(SWIG))
#define RTDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RTDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Marks a type as a lock (std::mutex already carries this in libc++; the
// alias lets wrappers declare it too).
#define RTDB_CAPABILITY(x) RTDB_THREAD_ANNOTATION(capability(x))

// Data members: which mutex must be held to touch them.
#define RTDB_GUARDED_BY(x) RTDB_THREAD_ANNOTATION(guarded_by(x))
#define RTDB_PT_GUARDED_BY(x) RTDB_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: lock state they require, acquire, or release.
#define RTDB_REQUIRES(...) \
  RTDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RTDB_ACQUIRE(...) \
  RTDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RTDB_RELEASE(...) \
  RTDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RTDB_EXCLUDES(...) RTDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow (e.g. std::lock_guard
// already expresses the acquire/release pair).
#define RTDB_NO_THREAD_SAFETY_ANALYSIS \
  RTDB_THREAD_ANNOTATION(no_thread_safety_analysis)
