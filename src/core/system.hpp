#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/controller.hpp"
#include "cc/pcp.hpp"
#include "cc/serializability.hpp"
#include "check/monitor.hpp"
#include "core/config.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "dist/failover.hpp"
#include "dist/global_ceiling.hpp"
#include "dist/local_ceiling.hpp"
#include "dist/partitioned.hpp"
#include "dist/recovery.hpp"
#include "dist/replication.hpp"
#include "net/batch.hpp"
#include "net/message_server.hpp"
#include "net/reliable.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sched/cpu.hpp"
#include "sched/disk.hpp"
#include "sim/kernel.hpp"
#include "stats/metrics.hpp"
#include "stats/monitor.hpp"
#include "txn/manager.hpp"
#include "txn/two_phase_commit.hpp"
#include "workload/generator.hpp"

namespace rtdb::core {

// One fully wired instance of the prototyping environment: the kernel, the
// per-site server stacks (CPU, I/O, resource manager, concurrency
// controller, transaction manager, message server), the distribution
// scheme's machinery, the transaction generator, and the performance
// monitor. This is the programmatic equivalent of the paper's
// Configuration Manager acting on the User Interface's settings.
class System {
 public:
  explicit System(SystemConfig config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Starts the transaction generator without running the clock — for
  // callers that drive the kernel themselves (e.g. run_until with periodic
  // sources, which never drain). Idempotent.
  void start();

  // Generates the configured batch of transactions and runs until every
  // one has committed or missed its deadline. Only valid without periodic
  // sources (their streams never end).
  void run_to_completion();

  sim::Kernel& kernel() { return kernel_; }
  const SystemConfig& config() const { return config_; }
  const db::Database& schema() const { return schema_; }
  stats::PerformanceMonitor& monitor() { return monitor_; }
  const cc::HistoryRecorder* history() const {
    return config_.record_history ? &history_ : nullptr;
  }
  // The conformance monitor; nullptr unless config.conformance_check.
  const check::ConformanceMonitor* conformance() const {
    return conformance_.get();
  }

  stats::Metrics metrics() const;

  // ---- per-site access (tests, examples) ----
  struct Site {
    std::unique_ptr<net::MessageServer> server;
    std::unique_ptr<net::ReliableChannel> channel;
    // Control-message batching (global + partitioned schemes); an exact
    // passthrough when config.batch_window is zero.
    std::unique_ptr<net::BatchChannel> batch;
    std::unique_ptr<net::RpcClient> rpc_client;
    std::unique_ptr<net::RpcDispatcher> rpc_dispatcher;
    std::unique_ptr<sched::PreemptiveCpu> cpu;
    std::unique_ptr<sched::IoSubsystem> io;
    std::unique_ptr<db::ResourceManager> rm;
    std::unique_ptr<cc::ConcurrencyController> cc;
    std::unique_ptr<dist::ReplicationManager> replication;
    std::unique_ptr<dist::RecoveryManager> recovery;
    std::unique_ptr<dist::DataServer> data_server;
    // Global scheme: site 0 hosts the initially active ceiling manager;
    // under failover every site hosts a standby one plus a coordinator.
    std::unique_ptr<dist::GlobalCeilingManager> manager;
    std::unique_ptr<dist::FailoverCoordinator> failover;
    // Partitioned scheme: the per-site demultiplexer plus one (standby)
    // manager and failover coordinator per shard. Indexed by shard; null
    // where this site hosts no endpoint for the shard.
    std::unique_ptr<dist::ShardRouter> router;
    std::vector<std::unique_ptr<dist::GlobalCeilingManager>> shard_managers;
    std::vector<std::unique_ptr<dist::FailoverCoordinator>> shard_failovers;
    std::unique_ptr<txn::CommitCoordinator> coordinator;
    std::unique_ptr<txn::TxnExecutor> executor;
    std::unique_ptr<txn::TransactionManager> tm;
  };
  Site& site(net::SiteId id) { return sites_[id]; }
  std::uint32_t site_count() const {
    return static_cast<std::uint32_t>(sites_.size());
  }
  net::Network* network() { return network_.get(); }
  // The initially elected manager (site 0's instance). After a failover the
  // authoritative state lives at site(failover target).manager.
  const dist::GlobalCeilingManager* global_manager() const {
    return sites_.empty() ? nullptr : sites_[0].manager.get();
  }
  const workload::TransactionGenerator& generator() const {
    return *generator_;
  }

  // ---- fault injection (config_.faults drives these automatically) ----
  // Fail-stop outage of one site: network down both directions, dispatcher
  // stopped, queued inbox lost, staged write sets lost, running attempts
  // killed; the global lock manager aborts the site's transactions
  // (idealized instantaneous failure detection). Idempotent while down.
  void crash_site(net::SiteId site);
  // Brings the site back: network up, dispatcher restarted, queued and
  // surviving transactions resumed, replica catch-up requested.
  void restore_site(net::SiteId site);

  // ---- aggregate protocol counters (summed over sites) ----
  std::uint64_t total_restarts() const;
  std::uint64_t total_deadline_kills() const;
  std::uint64_t total_protocol_aborts() const;
  // PCP-specific (0 for other protocols).
  std::uint64_t total_ceiling_denials() const;
  std::uint64_t total_dynamic_deadlocks() const;
  // Fault/commit counters (0 outside the schemes that produce them).
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t total_crash_kills() const;
  std::uint64_t total_commit_rounds() const;
  std::uint64_t total_commit_aborts() const;
  std::uint64_t total_vote_timeouts() const;
  std::uint64_t total_presumed_aborts() const;
  std::uint64_t total_versions_recovered() const;
  // Resilience counters (0 in fault-free runs, where the reliable channel
  // is a passthrough and no failover machinery is built).
  std::uint64_t total_retransmissions() const;
  sim::Duration total_backoff_wait() const;
  std::uint64_t total_failovers() const;
  std::uint64_t total_termination_queries() const;
  std::uint64_t total_termination_resolutions() const;
  std::uint64_t total_orphan_locks_reclaimed() const;
  // Partition / lease / admission counters (0 without the matching knobs).
  std::uint64_t total_partition_drops() const;
  std::uint64_t total_lease_expiries() const;
  std::uint64_t total_fence_denials() const;
  std::uint64_t total_stale_grants_rejected() const;
  std::uint64_t total_admitted() const;
  std::uint64_t total_shed() const;
  // Batching counters (0 with batch_window zero, where the channel is a
  // passthrough) and shard-manager migrations (elections moving a shard's
  // manager off its initial site; 0 outside the partitioned scheme).
  std::uint64_t total_batched_messages() const;
  std::uint64_t total_batch_flushes() const;
  std::uint64_t total_shard_migrations() const;

  // Partitioned scheme: ceiling-manager shards actually built (0 for the
  // other schemes). config.shards clamped to the site count, default one
  // per site capped at 8.
  std::uint32_t effective_shards() const;

  // Post-run invariant audit: every controller quiescent (no live
  // transactions, empty lock tables, ceilings reset), every manager drained
  // of mirrors, and — when record_history is on — the committed history
  // conflict-serializable. Returns the number of violated invariants; the
  // first violation's description lands in `why` when non-null.
  std::uint64_t invariant_violations(std::string* why = nullptr) const;

 private:
  void build_single_site();
  void build_global_ceiling();
  void build_local_ceiling();
  void build_partitioned_ceiling();
  // Object -> shard map bound to this run's config.
  std::function<std::uint32_t(db::ObjectId)> shard_fn() const;
  void attach_conformance();
  void schedule_faults();
  Site make_site_base(net::SiteId id, db::Placement placement);
  std::unique_ptr<cc::ConcurrencyController> make_controller();
  bool use_priority_scheduling() const {
    return config_.protocol != Protocol::kTwoPhase;
  }
  void submit(txn::TransactionSpec spec);
  // Workload generated and every transaction finished — the heartbeat
  // loops' stop condition, so the kernel's event queue can drain.
  bool drained() const;

  SystemConfig config_;
  sim::Kernel kernel_;
  db::Database schema_;
  std::unique_ptr<net::Network> network_;
  std::vector<Site> sites_;
  cc::HistoryRecorder history_;
  stats::PerformanceMonitor monitor_;
  std::unique_ptr<check::ConformanceMonitor> conformance_;
  std::unique_ptr<workload::TransactionGenerator> generator_;
  bool started_ = false;
  std::uint64_t crashes_ = 0;
};

}  // namespace rtdb::core
