#pragma once

#include <cstdint>

#include "cc/access_set.hpp"
#include "cc/types.hpp"
#include "db/types.hpp"
#include "sim/priority.hpp"
#include "sim/time.hpp"

namespace rtdb::cc {

// The concurrency-control view of one transaction attempt. Owned by the
// transaction layer; protocols read the identity/priority/declared-set
// fields and maintain the dynamic blocking/inheritance fields.
struct CcTxn {
  db::TxnId id{};
  // 1-based attempt number stamped by the transaction manager; 0 for
  // contexts built outside it (unit tests, legacy callers). Distributed
  // protocols stamp it into control messages so a retransmitted message
  // from an aborted attempt can't corrupt the state of the current one.
  std::uint32_t attempt = 0;
  // Assigned once at arrival (earliest deadline = highest priority); fixed
  // for the transaction's lifetime as the ceiling protocol requires.
  sim::Priority base_priority{};
  // The hard deadline, stamped by the transaction layer (origin for
  // contexts built outside it). Protocols ignore it; the distributed
  // controllers ship it to the ceiling manager, whose orphan reaper may
  // deregister a mirror once it is provably dead — past its deadline the
  // home site's watchdog has killed the transaction, so a mirror still
  // present only means its teardown messages were lost.
  sim::TimePoint deadline{};
  AccessSet access;

  // ---- maintained by the controller ----
  // Strongest priority currently inherited from transactions this one
  // blocks; lowest() when none.
  sim::Priority inherited = sim::Priority::lowest();
  // Whether the transaction is currently blocked inside acquire().
  bool blocked = false;
  sim::TimePoint blocked_since{};

  // ---- controller-internal scratch ----
  // Fixpoint accumulator and epoch-stamped DFS marks reused by the lock
  // protocols' inheritance/deadlock passes so they run without per-call
  // heap allocation. Each context belongs to exactly one controller;
  // values are meaningless outside a single pass.
  sim::Priority scratch_priority = sim::Priority::lowest();
  // Locks currently held in the owning LockTable; bounds its release scan.
  std::uint32_t scratch_hold_count = 0;
  std::uint64_t scratch_edge_epoch = 0;
  std::uint32_t scratch_edge_index = 0;
  std::uint64_t scratch_colour_epoch = 0;
  std::uint8_t scratch_colour = 0;

  // ---- statistics (read by the performance monitor) ----
  sim::Duration blocked_total{};
  std::uint32_t block_count = 0;
  // PCP only: times the transaction was denied although the requested
  // object itself was unlocked (the "insurance premium" of total ordering).
  std::uint32_t ceiling_blocks = 0;

  // The priority the scheduler and protocols observe.
  sim::Priority effective_priority() const {
    return sim::Priority::stronger(base_priority, inherited);
  }
};

}  // namespace rtdb::cc
