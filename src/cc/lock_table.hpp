#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cc/txn_ctx.hpp"
#include "cc/types.hpp"
#include "db/types.hpp"
#include "sim/inline_vec.hpp"
#include "sim/semaphore.hpp"

namespace rtdb::cc {

// Conventional per-object lock table used by the 2PL-family protocols
// (plain, priority-mode, priority inheritance, high-priority). Read locks
// are shared, write locks exclusive.
//
// The table only manages lock state and wait queues; blocking, deadlock
// handling, and inheritance live in the protocols.
class LockTable {
 public:
  // How waiters queue: arrival order (the paper's "two-phase locking
  // protocol without priority mode", L) or by transaction priority (the
  // "priority mode", P).
  enum class QueuePolicy : std::uint8_t { kFifo, kPriority };

  explicit LockTable(QueuePolicy policy) : policy_(policy) {}

  QueuePolicy policy() const { return policy_; }

  // One waiting request; lives in the requester's acquire() frame.
  struct Request {
    CcTxn* txn = nullptr;
    db::ObjectId object = 0;
    LockMode mode = LockMode::kRead;
    sim::Semaphore* wakeup = nullptr;
    bool granted = false;
    std::uint64_t seq = 0;  // arrival order
  };

  // Grants immediately when `mode` is compatible with the holders and no
  // queued waiter takes precedence; otherwise returns false (caller
  // enqueues). An immediate grant records the holder.
  bool try_grant(CcTxn& txn, db::ObjectId object, LockMode mode);

  // Adds the request to the object's queue per the policy.
  void enqueue(Request& request);

  // Removes a waiting request (requester killed or aborted) and promotes
  // any waiters its departure unblocks.
  void cancel(Request& request);

  // Releases every lock `txn` holds; grantable waiters are granted (their
  // `granted` flag set and wakeup semaphores released). Returns the objects
  // whose state changed.
  std::vector<db::ObjectId> release_all(CcTxn& txn);

  // Invoked (if set) for every request the moment it is granted from the
  // queue, before its process resumes. Protocols use it to drop wait-for
  // edges and refresh inheritance without racing the wake-up.
  void set_grant_observer(std::function<void(Request&)> observer) {
    on_grant_ = std::move(observer);
  }

  // The requests currently queued on `object`, in queue order.
  std::vector<Request*> queued_requests(db::ObjectId object) const;

  // Allocation-free variant of queued_requests for the protocols' hot
  // paths: visits each queued request in queue order. `fn` must not mutate
  // the table.
  template <typename Fn>
  void for_each_queued(db::ObjectId object, Fn&& fn) const {
    auto it = locks_.find(object);
    if (it == locks_.end()) return;
    for (Request* request : it->second.queue) fn(*request);
  }

  // ---- introspection (deadlock detection, wound decisions) ----
  // Current holders of the object's lock.
  std::vector<CcTxn*> holders_of(db::ObjectId object) const;
  // Transactions a request must wait for: incompatible holders plus
  // incompatible requests queued ahead of it.
  std::vector<CcTxn*> blockers_of(const Request& request) const;

  // Allocation-free variant of blockers_of: visits each blocker in the
  // same order (incompatible holders, then incompatible requests queued
  // ahead). `fn` must not mutate the table.
  template <typename Fn>
  void for_each_blocker(const Request& request, Fn&& fn) const {
    auto it = locks_.find(request.object);
    if (it == locks_.end()) return;
    const ObjectLock& lock = it->second;
    for (const auto& [txn, mode] : lock.holders) {
      if (txn != request.txn && !compatible(mode, request.mode)) fn(*txn);
    }
    for (const Request* queued : lock.queue) {
      if (queued == &request) break;  // only requests ahead of ours
      if (queued->txn != request.txn &&
          !compatible(queued->mode, request.mode)) {
        fn(*queued->txn);
      }
    }
  }

  // Whether txn holds a lock on object (any mode).
  bool holds(const CcTxn& txn, db::ObjectId object) const;

  std::size_t held_objects(const CcTxn& txn) const;
  std::size_t waiting_requests() const { return waiting_; }
  // Objects with any lock state at all (held or queued); idle entries are
  // erased eagerly, so a drained system must report zero.
  std::size_t locked_objects() const { return locks_.size(); }

 private:
  // Holder/waiter populations are tiny (a handful of read sharers, short
  // queues), so both live inline in the table entry.
  struct ObjectLock {
    sim::InlineVec<std::pair<CcTxn*, LockMode>, 4> holders;
    sim::InlineVec<Request*, 4> queue;  // maintained in policy order
  };

  bool compatible_with_holders(const ObjectLock& lock, const CcTxn& txn,
                               LockMode mode) const;
  // True when `a` should queue ahead of `b` under the current policy.
  bool precedes(const Request& a, const Request& b) const;
  // Grants the longest grantable prefix of the queue.
  void promote(db::ObjectId object, ObjectLock& lock);
  void erase_if_idle(db::ObjectId object);

  QueuePolicy policy_;
  std::unordered_map<db::ObjectId, ObjectLock> locks_;
  std::function<void(Request&)> on_grant_;
  std::uint64_t next_seq_ = 0;
  std::size_t waiting_ = 0;
};

}  // namespace rtdb::cc
