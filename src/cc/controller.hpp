#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "cc/observer.hpp"
#include "cc/txn_ctx.hpp"
#include "cc/types.hpp"
#include "db/types.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"

namespace rtdb::cc {

// Callbacks a controller uses to act on the rest of the system.
struct ControllerHooks {
  // Abort another transaction (deadlock victim, wound). The callee must
  // synchronously terminate the victim's attempt — releasing its locks —
  // and arrange its restart. Never called for the currently running
  // transaction (protocols throw TxnAborted for self-aborts instead).
  std::function<void(db::TxnId victim, AbortReason reason)> abort_txn;
  // The transaction's effective (inherited) priority changed; the callee
  // propagates it to the CPU scheduler.
  std::function<void(const CcTxn& txn)> priority_changed;
};

// A synchronization protocol instance managing the data of one site.
//
// Contract, in execution order for each transaction attempt:
//   on_begin(t)                      once, before the first acquire
//   acquire(t, o, m)                 may suspend; may throw TxnAborted
//                                    (self-abort) or ProcessCancelled
//                                    (attempt killed while blocked)
//   release_all(t)                   at commit or abort; never blocks
//   on_end(t)                        once, after release_all
//
// Two-phase rule: protocols may assume no acquire() follows release_all().
class ConcurrencyController {
 public:
  explicit ConcurrencyController(sim::Kernel& kernel) : kernel_(kernel) {}
  virtual ~ConcurrencyController() = default;

  ConcurrencyController(const ConcurrencyController&) = delete;
  ConcurrencyController& operator=(const ConcurrencyController&) = delete;

  void set_hooks(ControllerHooks hooks) { hooks_ = std::move(hooks); }

  // Attach a conformance observer (nullptr detaches). Observation is
  // purely passive: with no observer every notify_* helper is a single
  // null-pointer check, so the protocol paths are unchanged.
  void set_observer(CcObserver* observer) { observer_ = observer; }
  CcObserver* observer() const { return observer_; }

  // Lifecycle entry points (template methods): the public face notifies
  // the observer around the protocol-specific do_* hooks, so no protocol
  // can forget to report a begin/release/end event. The notification comes
  // first: the do_* body may synchronously grant queued waiters (PCP's
  // stabilize()), and those grant events must see the lifecycle transition
  // already applied — the same order the protocol's own state changes in.
  void on_begin(CcTxn& txn) {
    if (observer_ != nullptr) observer_->on_txn_begin(txn);
    do_begin(txn);
  }
  void release_all(CcTxn& txn) {
    if (observer_ != nullptr) observer_->on_release_all(txn);
    do_release_all(txn);
  }
  void on_end(CcTxn& txn) {
    if (observer_ != nullptr) observer_->on_txn_end(txn);
    do_end(txn);
  }

  virtual sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                                  LockMode mode) = 0;

  virtual std::string_view name() const = 0;

  // Post-run invariant hook: with every transaction drained the protocol
  // should hold no locks, queue no waiters, and have reset any derived
  // state (ceilings). Protocols override to audit their internals; `why`
  // (when given) receives a description of the first violation.
  virtual bool quiescent(std::string* why = nullptr) const {
    (void)why;
    return true;
  }

  // ---- aggregate counters ----
  std::uint64_t grants() const { return grants_; }
  std::uint64_t blocks() const { return blocks_; }
  std::uint64_t protocol_aborts() const { return protocol_aborts_; }

 protected:
  // Protocol-specific lifecycle behaviour behind the public template
  // methods above.
  virtual void do_begin(CcTxn& txn) { (void)txn; }
  virtual void do_release_all(CcTxn& txn) = 0;
  virtual void do_end(CcTxn& txn) { (void)txn; }

  // Blocking bookkeeping shared by all protocols. end_block doubles as the
  // single unblock observation point: every exit from a blocked wait —
  // grant, abort, kill — funnels through it.
  void begin_block(CcTxn& txn) {
    txn.blocked = true;
    txn.blocked_since = kernel_.now();
    ++txn.block_count;
    ++blocks_;
  }
  void end_block(CcTxn& txn) {
    if (!txn.blocked) return;
    txn.blocked = false;
    txn.blocked_total += kernel_.now() - txn.blocked_since;
    if (observer_ != nullptr) observer_->on_unblock(txn);
  }

  // Event observation helpers for the protocol implementations.
  void notify_grant(const CcTxn& txn, db::ObjectId object, LockMode mode) {
    if (observer_ != nullptr) observer_->on_grant(txn, object, mode);
  }
  void notify_block(const CcTxn& txn, db::ObjectId object, LockMode mode,
                    std::span<CcTxn* const> blockers) {
    if (observer_ != nullptr) observer_->on_block(txn, object, mode, blockers);
  }
  void notify_abort(db::TxnId victim, AbortReason reason) {
    if (observer_ != nullptr) observer_->on_abort(victim, reason);
  }
  void notify_adopt(const CcTxn& txn, db::ObjectId object, LockMode mode) {
    if (observer_ != nullptr) observer_->on_adopt(txn, object, mode);
  }
  void notify_tso_access(const CcTxn& txn, db::ObjectId object, LockMode mode,
                         std::uint64_t ts, bool accepted) {
    if (observer_ != nullptr) {
      observer_->on_tso_access(txn, object, mode, ts, accepted);
    }
  }

  // Updates a transaction's inherited priority, notifying the scheduler
  // when the effective priority actually changes.
  void set_inherited(CcTxn& txn, sim::Priority inherited) {
    const sim::Priority before = txn.effective_priority();
    txn.inherited = inherited;
    if (txn.effective_priority() != before && hooks_.priority_changed) {
      hooks_.priority_changed(txn);
    }
  }

  void count_grant() { ++grants_; }
  void count_protocol_abort() { ++protocol_aborts_; }

  sim::Kernel& kernel_;
  ControllerHooks hooks_;
  CcObserver* observer_ = nullptr;

 private:
  std::uint64_t grants_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t protocol_aborts_ = 0;
};

}  // namespace rtdb::cc
