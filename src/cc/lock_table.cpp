#include "cc/lock_table.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::cc {

bool LockTable::try_grant(CcTxn& txn, db::ObjectId object, LockMode mode) {
  ObjectLock& lock = locks_[object];
  assert(!holds(txn, object) && "re-acquiring a held lock is not supported");
  if (!compatible_with_holders(lock, txn, mode)) {
    return false;
  }
  // Respect queued waiters: a newcomer may only overtake the queue when the
  // policy would place it at the head.
  if (!lock.queue.empty()) {
    Request probe{&txn, object, mode, nullptr, false, next_seq_};
    if (!precedes(probe, *lock.queue.front())) return false;
  }
  lock.holders.emplace_back(&txn, mode);
  ++txn.scratch_hold_count;
  return true;
}

void LockTable::enqueue(Request& request) {
  request.seq = next_seq_++;
  request.granted = false;
  ObjectLock& lock = locks_[request.object];
  auto it = std::find_if(
      lock.queue.begin(), lock.queue.end(),
      [&](const Request* queued) { return precedes(request, *queued); });
  lock.queue.insert(it, &request);
  ++waiting_;
}

void LockTable::cancel(Request& request) {
  auto it = locks_.find(request.object);
  assert(it != locks_.end());
  ObjectLock& lock = it->second;
  auto pos = std::find(lock.queue.begin(), lock.queue.end(), &request);
  assert(pos != lock.queue.end());
  lock.queue.erase(pos);
  --waiting_;
  promote(request.object, lock);
  erase_if_idle(request.object);
}

std::vector<db::ObjectId> LockTable::release_all(CcTxn& txn) {
  // Collect the objects first: promotion mutates the map's values and
  // erase_if_idle the map itself. The context's hold counter lets the scan
  // stop after the last held entry instead of always walking the whole
  // table; the visit order over the prefix is unchanged.
  std::vector<db::ObjectId> touched;
  touched.reserve(txn.scratch_hold_count);
  for (auto& [object, lock] : locks_) {
    if (txn.scratch_hold_count == 0) break;
    auto it = std::find_if(lock.holders.begin(), lock.holders.end(),
                           [&](const auto& h) { return h.first == &txn; });
    if (it != lock.holders.end()) {
      lock.holders.erase(it);
      --txn.scratch_hold_count;
      touched.push_back(object);
    }
  }
  for (db::ObjectId object : touched) {
    auto it = locks_.find(object);
    assert(it != locks_.end());
    promote(object, it->second);
    erase_if_idle(object);
  }
  return touched;
}

std::vector<LockTable::Request*> LockTable::queued_requests(
    db::ObjectId object) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) return {};
  return {it->second.queue.begin(), it->second.queue.end()};
}

std::vector<CcTxn*> LockTable::holders_of(db::ObjectId object) const {
  std::vector<CcTxn*> result;
  auto it = locks_.find(object);
  if (it == locks_.end()) return result;
  for (const auto& [txn, mode] : it->second.holders) {
    (void)mode;
    result.push_back(txn);
  }
  return result;
}

std::vector<CcTxn*> LockTable::blockers_of(const Request& request) const {
  std::vector<CcTxn*> result;
  for_each_blocker(request, [&](CcTxn& txn) { result.push_back(&txn); });
  return result;
}

bool LockTable::holds(const CcTxn& txn, db::ObjectId object) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) return false;
  return std::any_of(it->second.holders.begin(), it->second.holders.end(),
                     [&](const auto& h) { return h.first == &txn; });
}

std::size_t LockTable::held_objects(const CcTxn& txn) const {
  std::size_t n = 0;
  for (const auto& [object, lock] : locks_) {
    (void)object;
    for (const auto& [holder, mode] : lock.holders) {
      (void)mode;
      if (holder == &txn) ++n;
    }
  }
  return n;
}

bool LockTable::compatible_with_holders(const ObjectLock& lock,
                                        const CcTxn& txn,
                                        LockMode mode) const {
  (void)txn;
  return std::all_of(lock.holders.begin(), lock.holders.end(),
                     [&](const auto& h) { return compatible(h.second, mode); });
}

bool LockTable::precedes(const Request& a, const Request& b) const {
  if (policy_ == QueuePolicy::kPriority) {
    const sim::Priority pa = a.txn->effective_priority();
    const sim::Priority pb = b.txn->effective_priority();
    if (pa != pb) return pa.higher_than(pb);
  }
  return a.seq < b.seq;
}

void LockTable::promote(db::ObjectId object, ObjectLock& lock) {
  (void)object;
  // Grant the longest grantable prefix: stops at the first waiter that
  // conflicts with the (possibly just extended) holder set, so a queued
  // writer is not overtaken by readers behind it.
  while (!lock.queue.empty()) {
    Request* head = lock.queue.front();
    if (!compatible_with_holders(lock, *head->txn, head->mode)) break;
    lock.queue.erase(lock.queue.begin());
    --waiting_;
    lock.holders.emplace_back(head->txn, head->mode);
    ++head->txn->scratch_hold_count;
    head->granted = true;
    if (on_grant_) on_grant_(*head);
    assert(head->wakeup != nullptr);
    head->wakeup->release();
  }
}

void LockTable::erase_if_idle(db::ObjectId object) {
  auto it = locks_.find(object);
  if (it != locks_.end() && it->second.holders.empty() &&
      it->second.queue.empty()) {
    locks_.erase(it);
  }
}

}  // namespace rtdb::cc
