#include "cc/hp2pl.hpp"

#include <algorithm>
#include <cassert>

#include "sim/semaphore.hpp"

namespace rtdb::cc {

HighPriority2PL::HighPriority2PL(sim::Kernel& kernel)
    : ConcurrencyController(kernel),
      table_(LockTable::QueuePolicy::kPriority) {
  table_.set_grant_observer([this](LockTable::Request& request) {
    end_block(*request.txn);
    notify_grant(*request.txn, request.object, request.mode);
  });
}

sim::Task<void> HighPriority2PL::acquire(CcTxn& txn, db::ObjectId object,
                                         LockMode mode) {
  if (table_.try_grant(txn, object, mode)) {
    count_grant();
    notify_grant(txn, object, mode);
    co_return;
  }

  // Queue first (priority order), then decide: wound every conflicting
  // holder iff all of them are less urgent than us and nothing queued
  // ahead conflicts. Queueing first means the wounds' releases promote us
  // directly.
  sim::Semaphore wakeup{kernel_, 0};
  LockTable::Request request{&txn, object, mode, &wakeup, false, 0};
  table_.enqueue(request);
  begin_block(txn);

  struct Cleanup {
    HighPriority2PL* self;
    LockTable::Request* request;
    ~Cleanup() {
      if (!request->granted) {
        self->table_.cancel(*request);
        self->end_block(*request->txn);
      }
    }
  } cleanup{this, &request};

  std::vector<CcTxn*> blockers = table_.blockers_of(request);
  assert(!blockers.empty());
  notify_block(txn, object, mode, blockers);
  const bool all_lower = std::all_of(
      blockers.begin(), blockers.end(), [&](const CcTxn* blocker) {
        return txn.effective_priority().higher_than(
            blocker->effective_priority());
      });
  if (all_lower) {
    // The blockers are exactly the conflicting holders here: a queued-ahead
    // conflicting request would have higher priority than ours under the
    // priority queue policy, contradicting all_lower.
    for (CcTxn* victim : blockers) {
      if (request.granted) break;  // earlier wounds already freed the lock
      ++wounds_;
      count_protocol_abort();
      notify_abort(victim->id, AbortReason::kWounded);
      assert(hooks_.abort_txn != nullptr);
      hooks_.abort_txn(victim->id, AbortReason::kWounded);
    }
  }

  co_await wakeup.acquire();
  assert(request.granted);
  count_grant();
}

void HighPriority2PL::do_release_all(CcTxn& txn) { table_.release_all(txn); }

}  // namespace rtdb::cc
