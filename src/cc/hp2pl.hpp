#pragma once

#include <cstdint>
#include <string_view>

#include "cc/controller.hpp"
#include "cc/lock_table.hpp"

namespace rtdb::cc {

// High-Priority two-phase locking (the abort-based scheme of Abbott &
// Garcia-Molina, which the paper cites as the contemporaneous alternative
// line of work): on a lock conflict, if the requester's priority is higher
// than that of every conflicting holder, the holders are aborted
// ("wounded") and restarted; otherwise the requester waits in priority
// order.
//
// A transaction therefore only ever waits for higher-priority transactions,
// so no deadlock can form and no detector is needed (asserted by tests).
class HighPriority2PL : public ConcurrencyController {
 public:
  explicit HighPriority2PL(sim::Kernel& kernel);

  sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                          LockMode mode) override;
  std::string_view name() const override { return "2PL-HP"; }

  std::uint64_t wounds() const { return wounds_; }
  const LockTable& table() const { return table_; }

 protected:
  void do_release_all(CcTxn& txn) override;

 private:
  LockTable table_;
  std::uint64_t wounds_ = 0;
};

}  // namespace rtdb::cc
