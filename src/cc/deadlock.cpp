#include "cc/deadlock.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::cc {

void WaitForGraph::add_edge(db::TxnId waiter, db::TxnId holder) {
  if (waiter == holder) return;
  out_[waiter].insert(holder);
}

void WaitForGraph::clear_waits_of(db::TxnId waiter) { out_.erase(waiter); }

void WaitForGraph::remove(db::TxnId txn) {
  out_.erase(txn);
  for (auto& [_, targets] : out_) targets.erase(txn);
}

std::vector<db::TxnId> WaitForGraph::find_cycle_from(db::TxnId start) const {
  // Iterative DFS keeping the wait path; the graph is tiny (bounded by the
  // number of concurrently blocked transactions).
  std::vector<db::TxnId> path;
  std::unordered_set<db::TxnId> on_path;
  std::unordered_set<db::TxnId> done;

  struct Frame {
    db::TxnId node;
    std::vector<db::TxnId> targets;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;

  auto push = [&](db::TxnId node) {
    Frame frame{node, {}, 0};
    if (auto it = out_.find(node); it != out_.end()) {
      frame.targets.assign(it->second.begin(), it->second.end());
      // Deterministic exploration order.
      std::sort(frame.targets.begin(), frame.targets.end());
    }
    path.push_back(node);
    on_path.insert(node);
    stack.push_back(std::move(frame));
  };

  push(start);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.targets.size()) {
      done.insert(frame.node);
      on_path.erase(frame.node);
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const db::TxnId next = frame.targets[frame.next++];
    if (on_path.contains(next)) {
      // Cycle: the path suffix from `next` onward.
      auto it = std::find(path.begin(), path.end(), next);
      assert(it != path.end());
      return std::vector<db::TxnId>(it, path.end());
    }
    if (!done.contains(next)) push(next);
  }
  return {};
}

const std::unordered_set<db::TxnId>& WaitForGraph::waits_of(
    db::TxnId waiter) const {
  static const std::unordered_set<db::TxnId> kEmpty;
  auto it = out_.find(waiter);
  return it == out_.end() ? kEmpty : it->second;
}

std::size_t WaitForGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [_, targets] : out_) n += targets.size();
  return n;
}

bool WaitForGraph::empty() const { return edge_count() == 0; }

}  // namespace rtdb::cc
