#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/types.hpp"

namespace rtdb::cc {

// Transaction wait-for graph with cycle detection; used by the protocols
// that can deadlock (2PL with and without priority, basic priority
// inheritance). The priority ceiling protocol never consults it — deadlock
// freedom is one of its guarantees and the tests assert it.
class WaitForGraph {
 public:
  // Declares that `waiter` waits for `holder`. Self-edges are ignored.
  void add_edge(db::TxnId waiter, db::TxnId holder);

  // Removes all outgoing edges of `waiter` (it stopped waiting).
  void clear_waits_of(db::TxnId waiter);

  // Removes the node entirely (transaction finished or aborted).
  void remove(db::TxnId txn);

  // Returns the transactions on a cycle reachable from `start` (in wait
  // order, starting with `start`), or empty when none.
  std::vector<db::TxnId> find_cycle_from(db::TxnId start) const;

  const std::unordered_set<db::TxnId>& waits_of(db::TxnId waiter) const;

  std::size_t edge_count() const;
  bool empty() const;

 private:
  std::unordered_map<db::TxnId, std::unordered_set<db::TxnId>> out_;
};

}  // namespace rtdb::cc
