#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cc/types.hpp"
#include "db/types.hpp"

namespace rtdb::cc {

// One step of a transaction's execution.
struct Operation {
  db::ObjectId object = 0;
  LockMode mode = LockMode::kRead;

  friend bool operator==(Operation, Operation) = default;
};

// A transaction's predeclared access sets, in execution order.
//
// The priority ceiling protocol requires access sets to be known when the
// transaction starts (the per-object ceilings are derived from the declared
// sets of all active transactions); the 2PL-family protocols only use the
// operation sequence. An object appears at most once; an object that is
// both read and written is declared as a write (the write lock covers the
// read).
class AccessSet {
 public:
  AccessSet() = default;

  // Builds from an execution-ordered operation list; duplicate objects are
  // coalesced (write wins) keeping the first position.
  static AccessSet from_operations(std::vector<Operation> operations);

  // Convenience: reads then writes, in the given order.
  static AccessSet reads_then_writes(std::vector<db::ObjectId> reads,
                                     std::vector<db::ObjectId> writes);

  // The set at a coarser locking granularity: object o maps to granule
  // o / granularity; granules are deduplicated (write wins, first position
  // kept). granularity == 1 returns a copy of this set.
  AccessSet coarsened(std::uint32_t granularity) const;

  std::span<const Operation> operations() const { return operations_; }
  std::size_t size() const { return operations_.size(); }
  bool empty() const { return operations_.empty(); }

  bool touches(db::ObjectId object) const;
  bool writes(db::ObjectId object) const;
  bool reads(db::ObjectId object) const {
    return touches(object) && !writes(object);
  }
  bool read_only() const { return write_count_ == 0; }
  std::size_t write_count() const { return write_count_; }

  // The objects of the write set, in execution order.
  std::vector<db::ObjectId> write_set() const;
  std::vector<db::ObjectId> read_set() const;

 private:
  std::vector<Operation> operations_;
  std::size_t write_count_ = 0;
};

}  // namespace rtdb::cc
