#pragma once

#include <cstdint>
#include <span>

#include "cc/txn_ctx.hpp"
#include "cc/types.hpp"
#include "db/types.hpp"

namespace rtdb::cc {

// Narrow observation interface onto a ConcurrencyController: one callback
// per protocol event, fired synchronously at the point the protocol's own
// state changes. The conformance checker (src/check) implements it to
// shadow the protocol and audit its invariants online.
//
// Contract:
//   * Callbacks are pure observations — they must not call back into the
//     controller or mutate any CcTxn.
//   * The CcTxn reference is only valid for the duration of the call;
//     observers copy what they keep.
//   * begin/end bracket one attempt; a restarted transaction re-enters
//     through on_txn_begin with the same id and a higher attempt number.
//   * on_unblock fires on every exit from a blocked wait — grant, abort,
//     or kill — exactly once per on_block.
//
// All methods default to no-ops so observers implement only the events
// their rules need. Controllers hold a raw pointer and skip the virtual
// dispatch entirely when no observer is attached (the disabled path is one
// null check; no protocol logic changes).
class CcObserver {
 public:
  virtual ~CcObserver() = default;

  virtual void on_txn_begin(const CcTxn& txn) { (void)txn; }
  virtual void on_txn_end(const CcTxn& txn) { (void)txn; }

  // A lock was granted (immediately or after a wait).
  virtual void on_grant(const CcTxn& txn, db::ObjectId object, LockMode mode) {
    (void)txn;
    (void)object;
    (void)mode;
  }
  // The transaction blocked on `object`; `blockers` are the transactions
  // it waits for at this instant (holders and queued-ahead requests).
  virtual void on_block(const CcTxn& txn, db::ObjectId object, LockMode mode,
                        std::span<CcTxn* const> blockers) {
    (void)txn;
    (void)object;
    (void)mode;
    (void)blockers;
  }
  virtual void on_unblock(const CcTxn& txn) { (void)txn; }
  // release_all completed: the transaction holds nothing here anymore.
  virtual void on_release_all(const CcTxn& txn) { (void)txn; }
  // The protocol decided to abort `victim` (wound, deadlock victim, die).
  // For self-aborts the TxnAborted throw follows this call.
  virtual void on_abort(db::TxnId victim, AbortReason reason) {
    (void)victim;
    (void)reason;
  }
  // Failover state reconstruction installed a lock without the grant rule
  // (the previous manager already ran it). See PriorityCeiling::adopt.
  virtual void on_adopt(const CcTxn& txn, db::ObjectId object, LockMode mode) {
    (void)txn;
    (void)object;
    (void)mode;
  }
  // Timestamp-ordering access decision (TSO holds no locks, so grants and
  // rejections both flow through this one event).
  virtual void on_tso_access(const CcTxn& txn, db::ObjectId object,
                             LockMode mode, std::uint64_t ts, bool accepted) {
    (void)txn;
    (void)object;
    (void)mode;
    (void)ts;
    (void)accepted;
  }
};

}  // namespace rtdb::cc
