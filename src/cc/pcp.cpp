#include "cc/pcp.hpp"

#include <algorithm>
#include <cassert>
#include <span>

namespace rtdb::cc {

using sim::Priority;

bool PriorityCeiling::LockState::held_by_other(const CcTxn& txn) const {
  if (writer != nullptr && writer != &txn) return true;
  return std::any_of(readers.begin(), readers.end(),
                     [&](const CcTxn* r) { return r != &txn; });
}

PriorityCeiling::PriorityCeiling(sim::Kernel& kernel,
                                 std::uint32_t object_count, Options options)
    : ConcurrencyController(kernel),
      options_(options),
      object_count_(object_count),
      write_ceiling_(object_count, Priority::lowest()),
      abs_ceiling_(object_count, Priority::lowest()),
      decls_(object_count),
      lock_slots_(object_count) {}

PriorityCeiling::~PriorityCeiling() {
  assert(waiters_.empty() && "destroyed with blocked transactions");
}

void PriorityCeiling::do_begin(CcTxn& txn) {
  assert(!active_.contains(txn.id));
  active_.emplace(txn.id, &txn);
  add_declarations(txn);
  // New declarations only *raise* ceilings, so nothing becomes grantable —
  // but a raise can redirect which lock blocks an existing waiter, which
  // is exactly the (dynamic-arrival) way a blocking cycle can close.
  if (options_.deadlock_backstop) stabilize();
}

void PriorityCeiling::do_end(CcTxn& txn) {
  assert(active_.contains(txn.id));
  active_.erase(txn.id);
  set_inherited(txn, Priority::lowest());
  remove_declarations(txn);
  // Lowered ceilings may unblock waiters.
  stabilize();
}

sim::Task<void> PriorityCeiling::acquire(CcTxn& txn, db::ObjectId object,
                                         LockMode mode) {
  assert(object < object_count_);
  assert(active_.contains(txn.id) && "acquire before on_begin");
  mode = effective_mode(mode);

  if (can_grant(txn)) {
    grant(txn, object, mode);
    count_grant();
    notify_grant(txn, object, mode);
    co_return;
  }

  // Denied. The ceiling protocol may forbid locking an unlocked object;
  // count that separately — it is the protocol's "insurance premium".
  const bool object_unlocked = !is_locked(object);
  if (object_unlocked) {
    ++ceiling_denials_;
    ++txn.ceiling_blocks;
  }

  sim::Semaphore wakeup{kernel_, 0};
  Waiter waiter{&txn, object, mode, &wakeup, false, next_seq_++};
  // Waiters wake in assigned-priority order (the same order the grant test
  // uses).
  auto pos = std::find_if(waiters_.begin(), waiters_.end(), [&](const Waiter* w) {
    const Priority a = txn.base_priority;
    const Priority b = w->txn->base_priority;
    if (a != b) return a.higher_than(b);
    return waiter.seq < w->seq;
  });
  waiters_.insert(pos, &waiter);
  begin_block(txn);
  if (observer() != nullptr) {
    // The transactions blocking this request right now: the holders of the
    // strongest-ceiling lock (what the transaction semantically waits on).
    std::vector<CcTxn*> blockers;
    if (const LockState* blocking = strongest_blocking_lock(txn)) {
      if (blocking->writer != nullptr && blocking->writer != &txn) {
        blockers.push_back(blocking->writer);
      }
      for (CcTxn* reader : blocking->readers) {
        if (reader != &txn) blockers.push_back(reader);
      }
    }
    notify_block(txn, object, mode, blockers);
  }

  struct Cleanup {
    PriorityCeiling* self;
    Waiter* waiter;
    ~Cleanup() {
      if (!waiter->granted) {
        // Kill while blocked: withdraw the wait and settle inheritance.
        auto it = std::find(self->waiters_.begin(), self->waiters_.end(), waiter);
        assert(it != self->waiters_.end());
        self->waiters_.erase(it);
        self->end_block(*waiter->txn);
        self->stabilize();
      }
    }
  } cleanup{this, &waiter};

  stabilize();
  co_await wakeup.acquire();
  assert(waiter.granted);
  count_grant();
}

void PriorityCeiling::do_release_all(CcTxn& txn) {
  for (std::size_t i = 0; i < locked_ids_.size();) {
    const db::ObjectId object = locked_ids_[i];
    LockState& lock = lock_slots_[object];
    if (lock.writer == &txn) lock.writer = nullptr;
    for (auto* r = lock.readers.begin(); r != lock.readers.end();) {
      if (*r == &txn) {
        r = lock.readers.erase(r);
      } else {
        ++r;
      }
    }
    if (lock.empty()) {
      locked_ids_.erase(locked_ids_.begin() +
                        static_cast<std::ptrdiff_t>(i));
    } else {
      refresh_rw_ceiling(object, lock);
      ++i;
    }
  }
  stabilize();
}

std::string_view PriorityCeiling::name() const {
  return options_.exclusive_only ? "PCP-X" : "PCP";
}

bool PriorityCeiling::holds(const CcTxn& txn, db::ObjectId object,
                            LockMode mode) const {
  if (object >= object_count_) return false;
  const LockState& lock = lock_slots_[object];
  if (lock.writer == &txn) return true;  // a write lock covers reads too
  if (effective_mode(mode) == LockMode::kWrite) return false;
  return std::find(lock.readers.begin(), lock.readers.end(), &txn) !=
         lock.readers.end();
}

void PriorityCeiling::adopt(CcTxn& txn, db::ObjectId object, LockMode mode) {
  assert(object < object_count_);
  assert(active_.contains(txn.id) && "adopt before on_begin");
  if (holds(txn, object, mode)) return;
  // The old manager already ran the grant rule for this lock; re-install
  // it directly and settle inheritance/ceilings around the restored state.
  grant(txn, object, effective_mode(mode));
  notify_adopt(txn, object, effective_mode(mode));
  stabilize();
}

bool PriorityCeiling::quiescent(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = "PCP: " + reason;
    return false;
  };
  if (!active_.empty()) {
    return fail(std::to_string(active_.size()) + " transactions still active");
  }
  if (!locked_ids_.empty()) {
    return fail("lock table still holds " + std::to_string(locked_ids_.size()) +
                " object(s), first=" + std::to_string(locked_ids_.front()));
  }
  if (!waiters_.empty()) {
    return fail(std::to_string(waiters_.size()) + " waiters still queued");
  }
  for (db::ObjectId o = 0; o < object_count_; ++o) {
    if (write_ceiling_[o] != Priority::lowest() ||
        abs_ceiling_[o] != Priority::lowest()) {
      return fail("stale ceiling on object " + std::to_string(o));
    }
  }
  return true;
}

Priority PriorityCeiling::write_ceiling(db::ObjectId object) const {
  assert(object < object_count_);
  return options_.exclusive_only ? abs_ceiling_[object]
                                 : write_ceiling_[object];
}

Priority PriorityCeiling::absolute_ceiling(db::ObjectId object) const {
  assert(object < object_count_);
  return abs_ceiling_[object];
}

std::optional<Priority> PriorityCeiling::rw_ceiling(db::ObjectId object) const {
  if (object >= object_count_ || lock_slots_[object].empty()) {
    return std::nullopt;
  }
  return lock_slots_[object].rw_ceiling;
}

bool PriorityCeiling::is_locked(db::ObjectId object) const {
  return object < object_count_ && !lock_slots_[object].empty();
}

std::vector<db::TxnId> PriorityCeiling::lower_priority_blockers_of(
    const CcTxn& txn) const {
  // The transactions with priority lower than txn's base priority that hold
  // the lock blocking txn right now.
  std::vector<db::TxnId> result;
  if (!txn.blocked) return result;
  const LockState* blocking = strongest_blocking_lock(txn);
  if (blocking == nullptr) return result;
  auto consider = [&](const CcTxn* holder) {
    if (holder != &txn && txn.base_priority.higher_than(holder->base_priority)) {
      result.push_back(holder->id);
    }
  };
  if (blocking->writer != nullptr) consider(blocking->writer);
  for (const CcTxn* reader : blocking->readers) consider(reader);
  return result;
}

std::size_t PriorityCeiling::lower_priority_blocking_txns(
    const CcTxn& txn) const {
  std::vector<const CcTxn*> blockers;  // distinct; populations are tiny
  for (const db::ObjectId object : locked_ids_) {
    const LockState& lock = lock_slots_[object];
    if (!lock.held_by_other(txn)) continue;
    if (txn.base_priority.higher_than(lock.rw_ceiling)) continue;  // no deny
    auto consider = [&](const CcTxn* holder) {
      if (holder != &txn &&
          txn.base_priority.higher_than(holder->base_priority) &&
          std::find(blockers.begin(), blockers.end(), holder) ==
              blockers.end()) {
        blockers.push_back(holder);
      }
    };
    if (lock.writer != nullptr) consider(lock.writer);
    for (const CcTxn* reader : lock.readers) consider(reader);
  }
  return blockers.size();
}

const PriorityCeiling::LockState* PriorityCeiling::strongest_blocking_lock(
    const CcTxn& txn) const {
  const LockState* best = nullptr;
  for (const db::ObjectId object : locked_ids_) {
    const LockState& lock = lock_slots_[object];
    if (!lock.held_by_other(txn)) continue;
    if (best == nullptr || lock.rw_ceiling.higher_than(best->rw_ceiling)) {
      best = &lock;
    }
  }
  return best;
}

bool PriorityCeiling::can_grant(const CcTxn& txn) const {
  // The ceiling test uses the transaction's *assigned* priority, never the
  // inherited one: inheritance exists to speed up a blocking holder's
  // execution, not to let it pass ceilings. (Using the effective priority
  // here would let a transaction outrank its own object's write ceiling
  // and acquire a conflicting lock.) Because every ceiling includes the
  // requester's own declaration, base-priority comparison also subsumes
  // the direct read/write conflict test, as §3.2 argues.
  const LockState* blocking = strongest_blocking_lock(txn);
  return blocking == nullptr ||
         txn.base_priority.higher_than(blocking->rw_ceiling);
}

void PriorityCeiling::grant(CcTxn& txn, db::ObjectId object, LockMode mode) {
  LockState& lock = lock_slots_[object];
  if (lock.empty()) {
    locked_ids_.insert(
        std::lower_bound(locked_ids_.begin(), locked_ids_.end(), object),
        object);
  }
  if (mode == LockMode::kWrite) {
    assert(lock.writer == nullptr && lock.readers.empty() &&
           "ceiling rule admitted a conflicting write");
    lock.writer = &txn;
  } else {
    assert(lock.writer == nullptr &&
           "ceiling rule admitted a read under a write lock");
    lock.readers.push_back(&txn);
  }
  refresh_rw_ceiling(object, lock);
}

void PriorityCeiling::add_declarations(const CcTxn& txn) {
  // AccessSet lists each object at most once (writes coalesced), so each
  // operation appends exactly one declarer entry.
  for (const Operation& op : txn.access.operations()) {
    auto& decls = decls_[op.object];
    assert(std::find_if(decls.begin(), decls.end(), [&](const Declarer& d) {
             return d.txn == &txn;
           }) == decls.end());
    const bool is_write = op.mode == LockMode::kWrite;
    decls.push_back(Declarer{&txn, is_write});
    abs_ceiling_[op.object] =
        Priority::stronger(abs_ceiling_[op.object], txn.base_priority);
    if (is_write) {
      write_ceiling_[op.object] =
          Priority::stronger(write_ceiling_[op.object], txn.base_priority);
    }
    LockState& lock = lock_slots_[op.object];
    if (!lock.empty()) refresh_rw_ceiling(op.object, lock);
  }
}

void PriorityCeiling::remove_declarations(const CcTxn& txn) {
  for (const Operation& op : txn.access.operations()) {
    auto& decls = decls_[op.object];
    auto it = std::find_if(decls.begin(), decls.end(),
                           [&](const Declarer& d) { return d.txn == &txn; });
    assert(it != decls.end());
    decls.erase(it);
    Priority write = Priority::lowest();
    Priority abs = Priority::lowest();
    for (const Declarer& d : decls) {
      abs = Priority::stronger(abs, d.txn->base_priority);
      if (d.write) write = Priority::stronger(write, d.txn->base_priority);
    }
    write_ceiling_[op.object] = write;
    abs_ceiling_[op.object] = abs;
    LockState& lock = lock_slots_[op.object];
    if (!lock.empty()) refresh_rw_ceiling(op.object, lock);
  }
}

void PriorityCeiling::refresh_rw_ceiling(db::ObjectId object,
                                         LockState& lock) {
  assert(!lock.empty());
  // "When a data object is write-locked, the rw-priority ceiling ... is
  // equal to the absolute priority ceiling. When it is read-locked ...
  // equal to the write-priority ceiling."
  lock.rw_ceiling = lock.writer != nullptr ? abs_ceiling_[object]
                                           : write_ceiling(object);
}

void PriorityCeiling::stabilize() {
  // Alternate inheritance and granting until neither changes anything:
  // a grant changes the lock set (new ceilings to respect), inheritance
  // changes effective priorities (new grants may pass the ceiling test).
  // A backstop abort re-enters through release_all/on_end; the dirty flag
  // folds that into the outer loop instead of recursing.
  if (stabilizing_) {
    restabilize_ = true;
    return;
  }
  stabilizing_ = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }  // exception-safe (a victim may throw)
  } reset{stabilizing_};
  do {
    restabilize_ = false;
    do {
      update_inheritance();
    } while (grant_pass());
    if (options_.deadlock_backstop && resolve_dynamic_deadlock()) {
      restabilize_ = true;
    }
  } while (restabilize_);
}

bool PriorityCeiling::resolve_dynamic_deadlock() {
  if (waiters_.empty()) return false;
  // Blocked-by graph: each waiter points at the holders of its current
  // strongest blocking lock. Every node on a cycle is a waiter (only
  // waiters have outgoing edges), so any victim is safely abortable.
  // The adjacency lists live in reused flat scratch (`ddl_targets_` spans),
  // attached to nodes through their epoch-stamped scratch marks.
  ddl_targets_.clear();
  ddl_spans_.clear();
  const std::uint64_t edge_epoch = ++ddl_epoch_;
  for (const Waiter* waiter : waiters_) {
    const LockState* blocking = strongest_blocking_lock(*waiter->txn);
    if (blocking == nullptr) continue;
    const auto first = static_cast<std::uint32_t>(ddl_targets_.size());
    if (blocking->writer != nullptr && blocking->writer != waiter->txn) {
      ddl_targets_.push_back(blocking->writer);
    }
    for (CcTxn* reader : blocking->readers) {
      if (reader != waiter->txn) ddl_targets_.push_back(reader);
    }
    waiter->txn->scratch_edge_epoch = edge_epoch;
    waiter->txn->scratch_edge_index =
        static_cast<std::uint32_t>(ddl_spans_.size());
    ddl_spans_.emplace_back(first,
                            static_cast<std::uint32_t>(ddl_targets_.size()));
  }

  for (const Waiter* start : waiters_) {
    // DFS from each waiter looking for a cycle through it. Colours (0 white
    // 1 grey 2 black) reset per start by bumping the epoch.
    const std::uint64_t colour_epoch = ++ddl_epoch_;
    auto colour_of = [&](const CcTxn* node) -> int {
      return node->scratch_colour_epoch == colour_epoch ? node->scratch_colour
                                                        : 0;
    };
    auto set_colour = [&](CcTxn* node, int c) {
      node->scratch_colour_epoch = colour_epoch;
      node->scratch_colour = static_cast<std::uint8_t>(c);
    };
    auto targets_of = [&](const CcTxn* node) -> std::span<CcTxn* const> {
      if (node->scratch_edge_epoch != edge_epoch) return {};
      const auto& [first, last] = ddl_spans_[node->scratch_edge_index];
      return {ddl_targets_.data() + first, ddl_targets_.data() + last};
    };
    ddl_path_.clear();
    ddl_stack_.clear();
    set_colour(start->txn, 1);
    ddl_path_.push_back(start->txn);
    ddl_stack_.push_back(DdlFrame{start->txn, 0});
    while (!ddl_stack_.empty()) {
      DdlFrame& frame = ddl_stack_.back();
      const auto targets = targets_of(frame.node);
      if (frame.next >= targets.size()) {
        set_colour(frame.node, 2);
        ddl_path_.pop_back();
        ddl_stack_.pop_back();
        continue;
      }
      CcTxn* next = targets[frame.next++];
      if (colour_of(next) == 1) {
        // Cycle: pick the lowest-priority member as victim.
        auto it = std::find(ddl_path_.begin(), ddl_path_.end(), next);
        assert(it != ddl_path_.end());
        const CcTxn* victim = *it;
        for (auto member = it; member != ddl_path_.end(); ++member) {
          if (victim->effective_priority().higher_than(
                  (*member)->effective_priority())) {
            victim = *member;
          }
        }
        ++dynamic_deadlocks_;
        count_protocol_abort();
        notify_abort(victim->id, AbortReason::kDeadlockVictim);
        assert(hooks_.abort_txn != nullptr);
        hooks_.abort_txn(victim->id, AbortReason::kDeadlockVictim);
        return true;
      }
      if (colour_of(next) == 0) {
        set_colour(next, 1);
        ddl_path_.push_back(next);
        ddl_stack_.push_back(DdlFrame{next, 0});
      }
    }
  }
  return false;
}

void PriorityCeiling::update_inheritance() {
  // "If transaction T blocks higher priority transactions, T inherits the
  // highest priority of the transactions blocked by T." Computed to a
  // fixpoint because inherited priorities feed back through chains. The
  // accumulator lives in each context's scratch_priority; locks and
  // ceilings are constant during the fixpoint, so each waiter's blocking
  // lock is hoisted out of it.
  for (const auto& [id, txn] : active_) {
    (void)id;
    txn->scratch_priority = Priority::lowest();
  }
  blocking_scratch_.clear();
  for (const Waiter* waiter : waiters_) {
    blocking_scratch_.push_back(strongest_blocking_lock(*waiter->txn));
  }
  auto effective = [](const CcTxn* txn) {
    return Priority::stronger(txn->base_priority, txn->scratch_priority);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      const LockState* blocking = blocking_scratch_[i];
      if (blocking == nullptr) continue;
      const Waiter* waiter = waiters_[i];
      const Priority urgency = effective(waiter->txn);
      auto inherit = [&](CcTxn* holder) {
        if (holder == waiter->txn) return;
        if (urgency.higher_than(holder->scratch_priority)) {
          holder->scratch_priority = urgency;
          changed = true;
        }
      };
      if (blocking->writer != nullptr) inherit(blocking->writer);
      for (CcTxn* reader : blocking->readers) inherit(reader);
    }
  }
  for (const auto& [id, txn] : active_) {
    (void)id;
    set_inherited(*txn, txn->scratch_priority);
  }
}

bool PriorityCeiling::grant_pass() {
  // Waiters are kept in priority order; grant the most urgent eligible one
  // and report whether anything changed.
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    Waiter* waiter = *it;
    if (!can_grant(*waiter->txn)) continue;
    waiters_.erase(it);
    grant(*waiter->txn, waiter->object, waiter->mode);
    waiter->granted = true;
    end_block(*waiter->txn);
    notify_grant(*waiter->txn, waiter->object, waiter->mode);
    waiter->wakeup->release();
    return true;
  }
  return false;
}

}  // namespace rtdb::cc
