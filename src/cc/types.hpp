#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "db/types.hpp"

namespace rtdb::cc {

enum class LockMode : std::uint8_t { kRead, kWrite };

inline const char* to_string(LockMode mode) {
  return mode == LockMode::kRead ? "read" : "write";
}

// Read-read is the only compatible pair.
inline bool compatible(LockMode a, LockMode b) {
  return a == LockMode::kRead && b == LockMode::kRead;
}

// Why a transaction attempt was aborted.
enum class AbortReason : std::uint8_t {
  kDeadlineMiss,     // hard deadline expired; transaction disappears
  kDeadlockVictim,   // chosen to break a 2PL/PIP deadlock; restarts
  kWounded,          // aborted by a higher-priority requester (2PL-HP)
  kTimestampOrder,   // timestamp-ordering conflict; restarts
  kAgeBased,         // wait-die "die" (younger yields to older); restarts
  kSystem,           // shutdown/teardown
};

const char* to_string(AbortReason reason);

// Thrown inside a transaction's own acquire() when the protocol decides
// this transaction must abort (e.g. it is its own best deadlock victim, or
// a timestamp-ordering rule fails). The transaction manager catches it,
// releases everything, and restarts the attempt if the deadline allows.
class TxnAborted : public std::runtime_error {
 public:
  explicit TxnAborted(AbortReason reason)
      : std::runtime_error(std::string{"transaction aborted: "} +
                           to_string(reason)),
        reason_(reason) {}

  AbortReason reason() const { return reason_; }

 private:
  AbortReason reason_;
};

}  // namespace rtdb::cc
