// PriorityInheritance2PL is a configuration of TwoPhaseLocking (see
// two_phase.hpp); this translation unit exists to anchor its vtable.

#include "cc/two_phase.hpp"

namespace rtdb::cc {

static_assert(sizeof(PriorityInheritance2PL) == sizeof(TwoPhaseLocking),
              "PIP adds no state beyond its 2PL configuration");

}  // namespace rtdb::cc
