#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "cc/controller.hpp"
#include "cc/deadlock.hpp"
#include "cc/lock_table.hpp"

namespace rtdb::cc {

// Two-phase locking, covering three of the paper's protocols through
// configuration:
//   * plain 2PL, FIFO queues                       — curve "L"
//   * 2PL with priority mode (priority queues)     — curve "P"
//   * 2PL with basic priority inheritance (§3.1)   — the stepping stone the
//     paper discusses before the ceiling protocol; still deadlock-prone.
//
// Deadlocks are detected continuously (a wait-for-graph cycle check on
// every block) and resolved by aborting a victim chosen by VictimPolicy;
// the transaction manager restarts victims until their deadline expires.
class TwoPhaseLocking : public ConcurrencyController {
 public:
  enum class VictimPolicy : std::uint8_t {
    kLowestPriority,  // break the cycle at the least urgent transaction
    kYoungest,        // most recently started transaction in the cycle
    kRequester,       // the transaction whose request closed the cycle
  };

  struct Options {
    LockTable::QueuePolicy queue_policy = LockTable::QueuePolicy::kFifo;
    bool priority_inheritance = false;
    VictimPolicy victim_policy = VictimPolicy::kLowestPriority;
  };

  TwoPhaseLocking(sim::Kernel& kernel, Options options);

  sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                          LockMode mode) override;
  std::string_view name() const override;
  bool quiescent(std::string* why = nullptr) const override;

  const Options& options() const { return options_; }
  std::uint64_t deadlocks() const { return deadlocks_; }
  const LockTable& table() const { return table_; }
  const WaitForGraph& wait_for_graph() const { return wfg_; }

 protected:
  void do_begin(CcTxn& txn) override;
  void do_release_all(CcTxn& txn) override;
  void do_end(CcTxn& txn) override;

 private:
  // Rebuilds the wait-for edges of every waiter queued on `object`.
  void refresh_edges(db::ObjectId object);
  // Detects and resolves cycles created by `request`; throws TxnAborted if
  // the requester itself is chosen. Returns when the requester is cycle-free.
  void resolve_deadlocks(CcTxn& requester, LockTable::Request& request);
  db::TxnId pick_victim(const std::vector<db::TxnId>& cycle,
                        db::TxnId requester) const;
  // PIP: recomputes all inherited priorities to a fixpoint.
  void update_inheritance();

  Options options_;
  LockTable table_;
  WaitForGraph wfg_;
  std::unordered_map<db::TxnId, CcTxn*> active_;
  std::unordered_map<db::TxnId, LockTable::Request*> waiting_;
  std::uint64_t deadlocks_ = 0;
};

// The basic priority-inheritance locking protocol of §3.1 ([Sha87] in the
// paper): priority-ordered queues plus inheritance, but no ceilings — so
// chained blocking and deadlocks remain possible.
class PriorityInheritance2PL : public TwoPhaseLocking {
 public:
  explicit PriorityInheritance2PL(
      sim::Kernel& kernel,
      VictimPolicy victim_policy = VictimPolicy::kLowestPriority)
      : TwoPhaseLocking(kernel,
                        Options{LockTable::QueuePolicy::kPriority, true,
                                victim_policy}) {}

  std::string_view name() const override { return "2PL-PIP"; }
};

}  // namespace rtdb::cc
