#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cc/controller.hpp"
#include "sim/inline_vec.hpp"
#include "sim/semaphore.hpp"

namespace rtdb::cc {

// The priority ceiling protocol of §3.2 (curve "C" in Figures 2-3),
// adapted — as in the paper — to a database setting where transactions
// enter and leave dynamically: the per-object ceilings are derived from the
// declared read/write sets of the *active* transactions.
//
// Definitions (paper, §3.2):
//   write-priority ceiling    of O = priority of the highest-priority
//                                    active transaction that may write O
//   absolute-priority ceiling of O = ... that may read or write O
//   rw-priority ceiling       of O = absolute ceiling while O is
//                                    write-locked; write ceiling while O is
//                                    read-locked (set dynamically)
//
// Grant rule: a transaction T may lock O iff T's priority is strictly
// higher than the highest rw-ceiling among all objects currently locked by
// transactions other than T. Otherwise T blocks on the holder(s) of that
// highest-ceiling lock, which inherit T's priority (transitively).
//
// Guarantees exercised by the tests: no deadlock, and each transaction is
// blocked by at most one lower-priority transaction at any instant.
//
// Options::exclusive_only is the ablation from the paper's conclusion
// ("the analytic study ... read and write semantics of a lock may lead to
// worse performance ... than exclusive semantics"): every lock is treated
// as a write lock.
//
// Dynamic-arrival caveat (documented in DESIGN.md): the classic
// deadlock-freedom proof assumes the ceilings are fixed before any lock is
// taken. With transactions arriving dynamically, a newcomer's declaration
// *raises* the ceiling of an object that is already locked, which can
// retroactively invalidate the grant-time invariant and (rarely) close a
// ceiling-blocking cycle. In the paper's full system such a cycle simply
// dissolves when a participant's hard deadline expires; at the protocol
// layer this implementation additionally offers a backstop
// (Options::deadlock_backstop, on by default) that detects the cycle and
// aborts its lowest-priority member, counted in dynamic_deadlocks(). For
// static task sets — every scenario from the paper's examples — the
// backstop never fires, which the tests assert.
class PriorityCeiling : public ConcurrencyController {
 public:
  struct Options {
    bool exclusive_only = false;
    bool deadlock_backstop = true;
  };

  PriorityCeiling(sim::Kernel& kernel, std::uint32_t object_count)
      : PriorityCeiling(kernel, object_count, Options{}) {}
  PriorityCeiling(sim::Kernel& kernel, std::uint32_t object_count,
                  Options options);
  ~PriorityCeiling() override;

  sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                          LockMode mode) override;
  std::string_view name() const override;
  bool quiescent(std::string* why = nullptr) const override;

  // True when `txn` already holds a lock on `object` satisfying `mode`
  // (a held write lock satisfies a read request, not vice versa). Used by
  // the failover path to make re-issued acquire requests idempotent.
  bool holds(const CcTxn& txn, db::ObjectId object, LockMode mode) const;
  // Failover state reconstruction: installs a lock the transaction was
  // already granted by the failed manager, without the grant rule (the old
  // manager applied it when the lock was first given out). No-op when the
  // lock is already held. `txn` must be active (on_begin seen).
  void adopt(CcTxn& txn, db::ObjectId object, LockMode mode);

  // ---- introspection (tests, monitors) ----
  sim::Priority write_ceiling(db::ObjectId object) const;
  sim::Priority absolute_ceiling(db::ObjectId object) const;
  // rw ceiling of a currently locked object; nullopt when unlocked.
  std::optional<sim::Priority> rw_ceiling(db::ObjectId object) const;
  bool is_locked(db::ObjectId object) const;
  std::size_t active_transactions() const { return active_.size(); }
  std::size_t waiter_count() const { return waiters_.size(); }
  // Total times a transaction was denied a lock on an *unlocked* object —
  // the "insurance premium" of the total-ordering approach.
  std::uint64_t ceiling_denials() const { return ceiling_denials_; }
  // Ceiling-blocking cycles broken by the dynamic-arrival backstop. Always
  // zero for static task sets.
  std::uint64_t dynamic_deadlocks() const { return dynamic_deadlocks_; }
  // The lower-priority transactions currently blocking `txn` (the PCP
  // invariant bounds this at one).
  std::vector<db::TxnId> lower_priority_blockers_of(const CcTxn& txn) const;
  // Distinct transactions of lower base priority than `txn` currently
  // holding a lock whose rw ceiling would deny txn's requests. For a
  // static task set the protocol provably bounds this at one — the
  // "blocked by at most one lower priority transaction" theorem — and the
  // tests assert it. (One such transaction may hold several blocking
  // locks: its own co-held locks are excluded from its ceiling test.)
  std::size_t lower_priority_blocking_txns(const CcTxn& txn) const;

 protected:
  void do_begin(CcTxn& txn) override;
  void do_release_all(CcTxn& txn) override;
  void do_end(CcTxn& txn) override;

 private:
  struct LockState {
    CcTxn* writer = nullptr;
    sim::InlineVec<CcTxn*, 4> readers;
    sim::Priority rw_ceiling = sim::Priority::lowest();

    bool held_by_other(const CcTxn& txn) const;
    bool empty() const { return writer == nullptr && readers.empty(); }
  };

  // One entry per (active transaction, declared object): the inverted form
  // of the declared read/write sets, so ceilings update incrementally on
  // begin/end instead of rescanning every active transaction.
  struct Declarer {
    const CcTxn* txn = nullptr;
    bool write = false;
  };

  struct Waiter {
    CcTxn* txn = nullptr;
    db::ObjectId object = 0;
    LockMode mode = LockMode::kRead;
    sim::Semaphore* wakeup = nullptr;
    bool granted = false;
    std::uint64_t seq = 0;
  };

  LockMode effective_mode(LockMode mode) const {
    return options_.exclusive_only ? LockMode::kWrite : mode;
  }

  // The lock (held at least partly by others) with the strongest
  // rw-ceiling; nullptr when none.
  const LockState* strongest_blocking_lock(const CcTxn& txn) const;
  bool can_grant(const CcTxn& txn) const;
  void grant(CcTxn& txn, db::ObjectId object, LockMode mode);
  // Incremental static-ceiling maintenance over the declaration index: a
  // newcomer's declarations only raise ceilings; a departure recomputes the
  // (few) objects it declared from their remaining declarers.
  void add_declarations(const CcTxn& txn);
  void remove_declarations(const CcTxn& txn);
  void refresh_rw_ceiling(db::ObjectId object, LockState& lock);
  // Priority inheritance to a fixpoint, then grants every waiter the new
  // state allows, repeating until stable; finally runs the deadlock
  // backstop. Re-entrant (a backstop abort re-triggers it) via a dirty flag.
  void stabilize();
  void update_inheritance();
  bool grant_pass();
  // Detects a ceiling-blocking cycle among the waiters and aborts its
  // lowest-priority member. Returns true if it fired.
  bool resolve_dynamic_deadlock();

  Options options_;
  std::uint32_t object_count_;
  std::vector<sim::Priority> write_ceiling_;
  std::vector<sim::Priority> abs_ceiling_;
  std::vector<sim::InlineVec<Declarer, 4>> decls_;  // indexed by object
  // Lock table flattened for the hot scans: per-object slots (stable
  // addresses — `LockState*` stays valid across grants) plus the sorted
  // list of currently locked ids. Ascending iteration over `locked_ids_`
  // reproduces the ordered-map iteration the protocol's tie-breaks
  // (strongest_blocking_lock, release order) were specified against.
  std::vector<LockState> lock_slots_;   // indexed by object
  std::vector<db::ObjectId> locked_ids_;  // sorted ascending
  std::unordered_map<db::TxnId, CcTxn*> active_;
  std::vector<Waiter*> waiters_;  // priority order (highest first)
  // Reused scratch for update_inheritance / resolve_dynamic_deadlock so the
  // stabilize loop allocates nothing. The epoch counter pairs with the
  // scratch marks in CcTxn (stale epochs read as unmarked).
  std::vector<const LockState*> blocking_scratch_;
  struct DdlFrame {
    CcTxn* node = nullptr;
    std::uint32_t next = 0;
  };
  std::vector<CcTxn*> ddl_targets_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ddl_spans_;
  std::vector<CcTxn*> ddl_path_;
  std::vector<DdlFrame> ddl_stack_;
  std::uint64_t ddl_epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t ceiling_denials_ = 0;
  std::uint64_t dynamic_deadlocks_ = 0;
  bool stabilizing_ = false;
  bool restabilize_ = false;
};

}  // namespace rtdb::cc
