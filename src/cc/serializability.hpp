#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/types.hpp"
#include "db/types.hpp"

namespace rtdb::cc {

// Conflict-serializability oracle used by the test suites: every executed
// operation is recorded in global execution order; at the end of a run the
// committed projection of the history must have an acyclic conflict graph,
// whatever protocol produced it.
class HistoryRecorder {
 public:
  // Records one executed (granted) operation. `txn` is the transaction's
  // stable identity (restarted attempts reuse it; an aborted attempt's
  // operations are discarded by abort()).
  void record(db::TxnId txn, db::ObjectId object, LockMode mode);

  // Marks the transaction's current recorded operations as committed.
  void commit(db::TxnId txn);

  // Discards the transaction's uncommitted operations (aborted attempt; a
  // restart records afresh).
  void abort(db::TxnId txn);

  std::size_t committed_transactions() const { return committed_.size(); }
  std::size_t committed_operations() const;

  // True iff the committed history's conflict graph is acyclic. On failure
  // (and when `explanation` is non-null) describes one conflict cycle.
  bool conflict_serializable(std::string* explanation = nullptr) const;

 private:
  struct Op {
    db::ObjectId object;
    LockMode mode;
    std::uint64_t seq;
  };

  std::unordered_map<db::TxnId, std::vector<Op>> pending_;
  std::unordered_map<db::TxnId, std::vector<Op>> committed_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rtdb::cc
