#include "cc/controller.hpp"

// ConcurrencyController is header-only today; this translation unit anchors
// the vtable-adjacent pieces and keeps a stable home for future out-of-line
// members.

namespace rtdb::cc {}  // namespace rtdb::cc
