#include "cc/two_phase.hpp"

#include <algorithm>
#include <cassert>

#include "sim/semaphore.hpp"

namespace rtdb::cc {

using sim::Priority;

TwoPhaseLocking::TwoPhaseLocking(sim::Kernel& kernel, Options options)
    : ConcurrencyController(kernel),
      options_(options),
      table_(options.queue_policy) {
  table_.set_grant_observer([this](LockTable::Request& request) {
    // The waiter stops waiting the instant it is granted; its edges must
    // go before any further deadlock check can see them.
    wfg_.clear_waits_of(request.txn->id);
    waiting_.erase(request.txn->id);
    end_block(*request.txn);
    notify_grant(*request.txn, request.object, request.mode);
  });
}

void TwoPhaseLocking::do_begin(CcTxn& txn) {
  assert(!active_.contains(txn.id));
  active_.emplace(txn.id, &txn);
}

sim::Task<void> TwoPhaseLocking::acquire(CcTxn& txn, db::ObjectId object,
                                         LockMode mode) {
  assert(active_.contains(txn.id) && "acquire before on_begin");
  if (table_.try_grant(txn, object, mode)) {
    count_grant();
    notify_grant(txn, object, mode);
    co_return;
  }

  sim::Semaphore wakeup{kernel_, 0};
  LockTable::Request request{&txn, object, mode, &wakeup, false, 0};
  table_.enqueue(request);
  waiting_.emplace(txn.id, &request);
  begin_block(txn);
  refresh_edges(object);
  if (observer() != nullptr) {
    notify_block(txn, object, mode, table_.blockers_of(request));
  }

  // Unblock bookkeeping on *every* exit: normal grant (already dequeued,
  // granted=true), kill while blocked (ProcessCancelled), or self-abort as
  // deadlock victim (TxnAborted).
  struct Cleanup {
    TwoPhaseLocking* self;
    LockTable::Request* request;
    ~Cleanup() {
      CcTxn& txn = *request->txn;
      if (!request->granted) {
        self->table_.cancel(*request);
        self->waiting_.erase(txn.id);
        self->wfg_.clear_waits_of(txn.id);
        self->end_block(txn);
        self->refresh_edges(request->object);
      }
      self->update_inheritance();
    }
  } cleanup{this, &request};

  resolve_deadlocks(txn, request);
  update_inheritance();
  if (!request.granted) {
    co_await wakeup.acquire();
  }
  assert(request.granted);
  count_grant();
}

void TwoPhaseLocking::do_release_all(CcTxn& txn) {
  const auto touched = table_.release_all(txn);
  for (db::ObjectId object : touched) refresh_edges(object);
  update_inheritance();
}

void TwoPhaseLocking::do_end(CcTxn& txn) {
  assert(!waiting_.contains(txn.id) && "on_end while still waiting");
  wfg_.remove(txn.id);
  active_.erase(txn.id);
  set_inherited(txn, Priority::lowest());
  update_inheritance();
}

std::string_view TwoPhaseLocking::name() const {
  if (options_.priority_inheritance) return "2PL-PIP";
  return options_.queue_policy == LockTable::QueuePolicy::kPriority
             ? "2PL-P"
             : "2PL";
}

bool TwoPhaseLocking::quiescent(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = "2PL: " + reason;
    return false;
  };
  if (!active_.empty()) {
    return fail(std::to_string(active_.size()) + " transactions still active");
  }
  if (table_.waiting_requests() != 0) {
    return fail(std::to_string(table_.waiting_requests()) +
                " requests still waiting");
  }
  if (table_.locked_objects() != 0) {
    return fail(std::to_string(table_.locked_objects()) +
                " objects still locked");
  }
  return true;
}

void TwoPhaseLocking::refresh_edges(db::ObjectId object) {
  table_.for_each_queued(object, [&](LockTable::Request& request) {
    wfg_.clear_waits_of(request.txn->id);
    table_.for_each_blocker(request, [&](CcTxn& blocker) {
      wfg_.add_edge(request.txn->id, blocker.id);
    });
  });
}

void TwoPhaseLocking::resolve_deadlocks(CcTxn& requester,
                                        LockTable::Request& request) {
  for (;;) {
    if (request.granted) return;  // a victim's release granted us meanwhile
    const auto cycle = wfg_.find_cycle_from(requester.id);
    if (cycle.empty()) return;
    ++deadlocks_;
    count_protocol_abort();
    const db::TxnId victim = pick_victim(cycle, requester.id);
    notify_abort(victim, AbortReason::kDeadlockVictim);
    if (victim == requester.id) {
      // Cleanup (dequeue, edges, block accounting) runs in the awaiter's
      // RAII guard as the exception unwinds acquire().
      throw TxnAborted{AbortReason::kDeadlockVictim};
    }
    assert(hooks_.abort_txn != nullptr);
    hooks_.abort_txn(victim, AbortReason::kDeadlockVictim);
    // The abort released the victim's locks synchronously; loop to check
    // for further cycles (or discover we were granted).
  }
}

db::TxnId TwoPhaseLocking::pick_victim(const std::vector<db::TxnId>& cycle,
                                       db::TxnId requester) const {
  assert(!cycle.empty());
  switch (options_.victim_policy) {
    case VictimPolicy::kRequester:
      if (std::find(cycle.begin(), cycle.end(), requester) != cycle.end()) {
        return requester;
      }
      [[fallthrough]];  // requester not on the cycle: fall back
    case VictimPolicy::kLowestPriority: {
      db::TxnId worst = cycle.front();
      for (db::TxnId id : cycle) {
        const CcTxn* a = active_.at(id);
        const CcTxn* b = active_.at(worst);
        if (b->effective_priority().higher_than(a->effective_priority())) {
          worst = id;
        }
      }
      return worst;
    }
    case VictimPolicy::kYoungest: {
      db::TxnId youngest = cycle.front();
      for (db::TxnId id : cycle) {
        if (youngest < id) youngest = id;
      }
      return youngest;
    }
  }
  return cycle.front();
}

void TwoPhaseLocking::update_inheritance() {
  if (!options_.priority_inheritance) return;
  // Fixpoint: a blocker inherits the strongest effective priority among the
  // waiters it blocks; effective priorities feed back through chains
  // (T1 waits on T2 which waits on T3: T3 inherits T1's priority). The
  // accumulator lives in each context's scratch_priority so the pass
  // allocates nothing.
  for (const auto& [id, txn] : active_) {
    (void)id;
    txn->scratch_priority = Priority::lowest();
  }
  auto effective = [](const CcTxn* txn) {
    return Priority::stronger(txn->base_priority, txn->scratch_priority);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [id, request] : waiting_) {
      (void)id;
      const Priority urgency = effective(request->txn);
      table_.for_each_blocker(*request, [&](CcTxn& blocker) {
        if (urgency.higher_than(blocker.scratch_priority)) {
          blocker.scratch_priority = urgency;
          changed = true;
        }
      });
    }
  }
  // Applied in active-map order: deterministic and independent of where the
  // contexts happen to live in memory. The order is observable (the
  // priority hook drives CPU rescheduling, which allocates event
  // sequence numbers), so it must not depend on the allocator.
  for (const auto& [id, txn] : active_) {
    (void)id;
    set_inherited(*txn, txn->scratch_priority);
  }
}

}  // namespace rtdb::cc
