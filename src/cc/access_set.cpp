#include "cc/access_set.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::cc {

const char* to_string(AbortReason reason) {
  switch (reason) {
    case AbortReason::kDeadlineMiss:
      return "deadline miss";
    case AbortReason::kDeadlockVictim:
      return "deadlock victim";
    case AbortReason::kWounded:
      return "wounded";
    case AbortReason::kTimestampOrder:
      return "timestamp order";
    case AbortReason::kAgeBased:
      return "age based (wait-die)";
    case AbortReason::kSystem:
      return "system";
  }
  return "?";
}

AccessSet AccessSet::from_operations(std::vector<Operation> operations) {
  AccessSet result;
  result.operations_.reserve(operations.size());
  for (const Operation& op : operations) {
    auto it = std::find_if(
        result.operations_.begin(), result.operations_.end(),
        [&](const Operation& o) { return o.object == op.object; });
    if (it == result.operations_.end()) {
      result.operations_.push_back(op);
    } else if (op.mode == LockMode::kWrite && it->mode == LockMode::kRead) {
      it->mode = LockMode::kWrite;  // upgrade the declaration in place
    }
  }
  result.write_count_ = static_cast<std::size_t>(
      std::count_if(result.operations_.begin(), result.operations_.end(),
                    [](const Operation& o) { return o.mode == LockMode::kWrite; }));
  return result;
}

AccessSet AccessSet::reads_then_writes(std::vector<db::ObjectId> reads,
                                       std::vector<db::ObjectId> writes) {
  std::vector<Operation> ops;
  ops.reserve(reads.size() + writes.size());
  for (db::ObjectId o : reads) ops.push_back(Operation{o, LockMode::kRead});
  for (db::ObjectId o : writes) ops.push_back(Operation{o, LockMode::kWrite});
  return from_operations(std::move(ops));
}

AccessSet AccessSet::coarsened(std::uint32_t granularity) const {
  assert(granularity >= 1);
  std::vector<Operation> ops;
  ops.reserve(operations_.size());
  for (const Operation& op : operations_) {
    ops.push_back(Operation{op.object / granularity, op.mode});
  }
  return from_operations(std::move(ops));
}

bool AccessSet::touches(db::ObjectId object) const {
  return std::any_of(operations_.begin(), operations_.end(),
                     [&](const Operation& o) { return o.object == object; });
}

bool AccessSet::writes(db::ObjectId object) const {
  return std::any_of(operations_.begin(), operations_.end(),
                     [&](const Operation& o) {
                       return o.object == object && o.mode == LockMode::kWrite;
                     });
}

std::vector<db::ObjectId> AccessSet::write_set() const {
  std::vector<db::ObjectId> result;
  for (const Operation& o : operations_) {
    if (o.mode == LockMode::kWrite) result.push_back(o.object);
  }
  return result;
}

std::vector<db::ObjectId> AccessSet::read_set() const {
  std::vector<db::ObjectId> result;
  for (const Operation& o : operations_) {
    if (o.mode == LockMode::kRead) result.push_back(o.object);
  }
  return result;
}

}  // namespace rtdb::cc
