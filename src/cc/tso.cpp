#include "cc/tso.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::cc {

TimestampOrdering::TimestampOrdering(sim::Kernel& kernel)
    : ConcurrencyController(kernel) {}

void TimestampOrdering::do_begin(CcTxn& txn) {
  // Fresh timestamp per attempt: a restarted attempt re-enters through
  // on_begin after on_end dropped its old timestamp. (Keeping the old
  // timestamp would livelock a rejected reader: the object's write
  // timestamp only grows, so the same read would be rejected forever.)
  timestamp_of(txn.id);
}

std::uint64_t TimestampOrdering::timestamp_of(db::TxnId txn) {
  auto [it, inserted] = timestamps_.try_emplace(txn, next_ts_);
  if (inserted) ++next_ts_;
  return it->second;
}

void TimestampOrdering::forget_timestamp(db::TxnId txn) {
  timestamps_.erase(txn);
}

sim::Task<void> TimestampOrdering::acquire(CcTxn& txn, db::ObjectId object,
                                           LockMode mode) {
  const std::uint64_t ts = timestamp_of(txn.id);
  ObjectTs& state = objects_[object];
  if (mode == LockMode::kRead) {
    if (ts < state.write_ts) {
      ++rejections_;
      count_protocol_abort();
      notify_tso_access(txn, object, mode, ts, false);
      throw TxnAborted{AbortReason::kTimestampOrder};
    }
    state.read_ts = std::max(state.read_ts, ts);
  } else {
    if (ts < state.read_ts || ts < state.write_ts) {
      ++rejections_;
      count_protocol_abort();
      notify_tso_access(txn, object, mode, ts, false);
      throw TxnAborted{AbortReason::kTimestampOrder};
    }
    state.write_ts = ts;
  }
  count_grant();
  notify_tso_access(txn, object, mode, ts, true);
  co_return;
}

void TimestampOrdering::do_release_all(CcTxn& txn) {
  // Nothing to release: timestamp ordering holds no locks.
  (void)txn;
}

void TimestampOrdering::do_end(CcTxn& txn) { forget_timestamp(txn.id); }

}  // namespace rtdb::cc
