#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cc/controller.hpp"

namespace rtdb::cc {

// Basic timestamp ordering — the third concurrency-control family the
// prototyping environment's configuration menu offers ("locking, timestamp
// ordering, and priority-based").
//
// Each transaction attempt draws a fresh timestamp at on_begin (classic
// restart-with-new-timestamp TO; see on_begin for why a kept timestamp
// would livelock). Conflicts are resolved without blocking:
//   read(O):  rejected (abort + restart) if ts < write-ts(O)
//   write(O): rejected if ts < read-ts(O) or ts < write-ts(O)
//             (no Thomas write rule: the paper's model applies writes at
//             commit, so a late write cannot simply be skipped)
//
// Simplification (documented in DESIGN.md): accesses operate on committed
// state and the schedule is validated at operation-grant level; commit
// dependencies of uncommitted writes are not tracked. For the performance
// questions studied here only the conflict/restart behaviour matters.
class TimestampOrdering : public ConcurrencyController {
 public:
  explicit TimestampOrdering(sim::Kernel& kernel);

  sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                          LockMode mode) override;
  std::string_view name() const override { return "TSO"; }

  // Assigns (if absent) or retrieves the timestamp of the current attempt.
  std::uint64_t timestamp_of(db::TxnId txn);
  void forget_timestamp(db::TxnId txn);

  std::uint64_t rejections() const { return rejections_; }

 protected:
  void do_begin(CcTxn& txn) override;
  void do_release_all(CcTxn& txn) override;
  void do_end(CcTxn& txn) override;

 private:
  struct ObjectTs {
    std::uint64_t read_ts = 0;
    std::uint64_t write_ts = 0;
  };

  std::unordered_map<db::ObjectId, ObjectTs> objects_;
  std::unordered_map<db::TxnId, std::uint64_t> timestamps_;
  std::uint64_t next_ts_ = 1;
  std::uint64_t rejections_ = 0;
};

}  // namespace rtdb::cc
