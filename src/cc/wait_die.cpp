#include "cc/wait_die.hpp"

#include <algorithm>
#include <cassert>

#include "sim/semaphore.hpp"

namespace rtdb::cc {

AgeBased2PL::AgeBased2PL(sim::Kernel& kernel, Flavour flavour)
    : ConcurrencyController(kernel),
      flavour_(flavour),
      // FIFO queues: age decides who waits at all; among waiters arrival
      // order is the classic treatment.
      table_(LockTable::QueuePolicy::kFifo) {
  table_.set_grant_observer([this](LockTable::Request& request) {
    end_block(*request.txn);
    notify_grant(*request.txn, request.object, request.mode);
  });
}

sim::Task<void> AgeBased2PL::acquire(CcTxn& txn, db::ObjectId object,
                                     LockMode mode) {
  for (;;) {
    if (table_.try_grant(txn, object, mode)) {
      count_grant();
      notify_grant(txn, object, mode);
      co_return;
    }
    // Probe who we would wait for.
    LockTable::Request probe{&txn, object, mode, nullptr, false, 0};
    table_.enqueue(probe);
    const std::vector<CcTxn*> blockers = table_.blockers_of(probe);
    table_.cancel(probe);
    assert(!blockers.empty());

    if (flavour_ == Flavour::kWaitDie) {
      const bool all_blockers_younger = std::all_of(
          blockers.begin(), blockers.end(),
          [&](const CcTxn* blocker) { return older(txn, *blocker); });
      if (!all_blockers_younger) {
        // Younger than some holder: die (restart with the same age).
        ++dies_;
        count_protocol_abort();
        notify_abort(txn.id, AbortReason::kAgeBased);
        throw TxnAborted{AbortReason::kAgeBased};
      }
      // Older than everyone in the way: wait.
    } else {
      // Wound-Wait: wound every younger blocker that holds the lock; if
      // all blockers are older, wait.
      bool wounded_any = false;
      for (CcTxn* blocker : blockers) {
        if (older(txn, *blocker)) {
          ++wounds_;
          count_protocol_abort();
          notify_abort(blocker->id, AbortReason::kWounded);
          assert(hooks_.abort_txn != nullptr);
          hooks_.abort_txn(blocker->id, AbortReason::kWounded);
          wounded_any = true;
        }
      }
      if (wounded_any) continue;  // re-probe: the lock may be free now
    }

    sim::Semaphore wakeup{kernel_, 0};
    LockTable::Request request{&txn, object, mode, &wakeup, false, 0};
    table_.enqueue(request);
    begin_block(txn);
    notify_block(txn, object, mode, blockers);
    struct Cleanup {
      AgeBased2PL* self;
      LockTable::Request* request;
      ~Cleanup() {
        if (!request->granted) {
          self->table_.cancel(*request);
          self->end_block(*request->txn);
        }
      }
    } cleanup{this, &request};
    co_await wakeup.acquire();
    assert(request.granted);
    count_grant();
    co_return;
  }
}

void AgeBased2PL::do_release_all(CcTxn& txn) { table_.release_all(txn); }

}  // namespace rtdb::cc
