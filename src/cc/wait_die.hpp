#pragma once

#include <cstdint>
#include <string_view>

#include "cc/controller.hpp"
#include "cc/lock_table.hpp"

namespace rtdb::cc {

// The classic age-based deadlock-free 2PL variants from the scheduling
// literature the paper builds on ([Abb88] evaluates this family for
// real-time transactions). Transaction age = first-arrival order, which is
// exactly the TxnId (stable across restarts, so a restarted transaction
// keeps its seniority and eventually wins — the liveness argument).
//
//   Wait-Die   : an older requester may wait for younger holders; a
//                younger requester "dies" (aborts and restarts) instead of
//                waiting for an older holder.
//   Wound-Wait : an older requester "wounds" (aborts) younger holders and
//                takes the lock; a younger requester waits for older
//                holders.
//
// Both orient every wait older->younger... precisely: Wait-Die waits only
// older-for-younger, Wound-Wait waits only younger-for-older — either way
// the wait-for relation is acyclic, so neither can deadlock (asserted by
// the tests).
class AgeBased2PL : public ConcurrencyController {
 public:
  enum class Flavour : std::uint8_t { kWaitDie, kWoundWait };

  AgeBased2PL(sim::Kernel& kernel, Flavour flavour);

  sim::Task<void> acquire(CcTxn& txn, db::ObjectId object,
                          LockMode mode) override;
  std::string_view name() const override {
    return flavour_ == Flavour::kWaitDie ? "2PL-WD" : "2PL-WW";
  }

  Flavour flavour() const { return flavour_; }
  std::uint64_t dies() const { return dies_; }
  std::uint64_t wounds() const { return wounds_; }
  const LockTable& table() const { return table_; }

 protected:
  void do_release_all(CcTxn& txn) override;

 private:
  static bool older(const CcTxn& a, const CcTxn& b) { return a.id < b.id; }

  Flavour flavour_;
  LockTable table_;
  std::uint64_t dies_ = 0;
  std::uint64_t wounds_ = 0;
};

class WaitDie2PL : public AgeBased2PL {
 public:
  explicit WaitDie2PL(sim::Kernel& kernel)
      : AgeBased2PL(kernel, Flavour::kWaitDie) {}
};

class WoundWait2PL : public AgeBased2PL {
 public:
  explicit WoundWait2PL(sim::Kernel& kernel)
      : AgeBased2PL(kernel, Flavour::kWoundWait) {}
};

}  // namespace rtdb::cc
