#include "cc/serializability.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace rtdb::cc {

void HistoryRecorder::record(db::TxnId txn, db::ObjectId object,
                             LockMode mode) {
  pending_[txn].push_back(Op{object, mode, next_seq_++});
}

void HistoryRecorder::commit(db::TxnId txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;  // empty transaction
  committed_[txn] = std::move(it->second);
  pending_.erase(it);
}

void HistoryRecorder::abort(db::TxnId txn) { pending_.erase(txn); }

std::size_t HistoryRecorder::committed_operations() const {
  std::size_t n = 0;
  for (const auto& [_, ops] : committed_) n += ops.size();
  return n;
}

bool HistoryRecorder::conflict_serializable(std::string* explanation) const {
  // Build the conflict graph: an edge a -> b when a committed operation of
  // a precedes a conflicting committed operation of b on the same object.
  struct Access {
    db::TxnId txn;
    LockMode mode;
    std::uint64_t seq;
  };
  std::map<db::ObjectId, std::vector<Access>> per_object;
  for (const auto& [txn, ops] : committed_) {
    for (const Op& op : ops) {
      per_object[op.object].push_back(Access{txn, op.mode, op.seq});
    }
  }
  std::map<db::TxnId, std::set<db::TxnId>> edges;
  for (auto& [object, accesses] : per_object) {
    (void)object;
    std::sort(accesses.begin(), accesses.end(),
              [](const Access& a, const Access& b) { return a.seq < b.seq; });
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const Access& a = accesses[i];
        const Access& b = accesses[j];
        if (a.txn == b.txn) continue;
        if (!compatible(a.mode, b.mode)) edges[a.txn].insert(b.txn);
      }
    }
  }

  // Cycle detection by iterative three-colour DFS.
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<db::TxnId, Colour> colour;
  for (const auto& [txn, _] : committed_) colour[txn] = Colour::kWhite;

  std::vector<db::TxnId> path;
  auto describe_cycle = [&](db::TxnId repeat) {
    if (explanation == nullptr) return;
    std::string text = "conflict cycle:";
    auto it = std::find(path.begin(), path.end(), repeat);
    for (; it != path.end(); ++it) {
      text += " T" + std::to_string(it->value) + " ->";
    }
    text += " T" + std::to_string(repeat.value);
    *explanation = text;
  };

  for (const auto& [root, _] : committed_) {
    if (colour[root] != Colour::kWhite) continue;
    struct Frame {
      db::TxnId node;
      std::vector<db::TxnId> targets;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    auto push = [&](db::TxnId node) {
      colour[node] = Colour::kGrey;
      path.push_back(node);
      Frame frame{node, {}, 0};
      if (auto e = edges.find(node); e != edges.end()) {
        frame.targets.assign(e->second.begin(), e->second.end());
      }
      stack.push_back(std::move(frame));
    };
    push(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.targets.size()) {
        colour[frame.node] = Colour::kBlack;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const db::TxnId next = frame.targets[frame.next++];
      if (colour[next] == Colour::kGrey) {
        describe_cycle(next);
        return false;
      }
      if (colour[next] == Colour::kWhite) push(next);
    }
  }
  return true;
}

}  // namespace rtdb::cc
