#include "dist/local_ceiling.hpp"

#include <cassert>

namespace rtdb::dist {

ReplicatedExecutor::ReplicatedExecutor(Services services, Costs costs)
    : services_(services), costs_(costs) {
  assert(services_.kernel != nullptr && services_.cpu != nullptr &&
         services_.rm != nullptr && services_.cc != nullptr &&
         services_.replication != nullptr);
}

sim::Priority ReplicatedExecutor::sched_priority(const cc::CcTxn& ctx) const {
  return costs_.use_priority_scheduling ? ctx.effective_priority()
                                        : sim::Priority{0, 0};
}

sim::Task<void> ReplicatedExecutor::run(txn::AttemptContext& attempt,
                                        const txn::TransactionSpec& spec) {
  cc::CcTxn& ctx = attempt.ctx;
  services_.cc->on_begin(ctx);
  attempt.began = true;
  for (const cc::Operation& op : spec.access.operations()) {
    // The local ceiling manager synchronizes both primary and replica
    // copies at this site; everything is a local access.
    assert(services_.rm->schema().has_copy(spec.home_site, op.object));
    assert(op.mode == cc::LockMode::kRead ||
           services_.rm->schema().is_primary(spec.home_site, op.object));
    co_await services_.cc->acquire(ctx, op.object, op.mode);
    if (services_.history != nullptr) {
      services_.history->record(spec.id, op.object, op.mode);
    }
    co_await services_.rm->read(op.object, sched_priority(ctx));
    co_await services_.cpu->execute(costs_.cpu_per_object,
                                    sched_priority(ctx), &attempt.cpu_job);
    attempt.cpu_job = {};
  }
  const auto writes = spec.access.write_set();
  if (!writes.empty()) {
    // "Every transaction must be committed before updating remote
    // secondary copies": install locally first, then ship asynchronously.
    auto versions = co_await services_.rm->commit_writes(spec.id, writes,
                                                         sched_priority(ctx));
    services_.replication->propagate(writes, versions);
  }
}

void ReplicatedExecutor::release(txn::AttemptContext& attempt,
                                 const txn::TransactionSpec& spec,
                                 bool committed) {
  if (!attempt.began) return;
  attempt.began = false;
  services_.cc->release_all(attempt.ctx);
  services_.cc->on_end(attempt.ctx);
  if (services_.history != nullptr) {
    if (committed) {
      services_.history->commit(spec.id);
    } else {
      services_.history->abort(spec.id);
    }
  }
}

}  // namespace rtdb::dist
