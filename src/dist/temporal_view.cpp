#include "dist/temporal_view.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::dist {

TemporalView::TemporalView(sim::Kernel& kernel, const db::ResourceManager& rm,
                           sim::Duration lag_bound)
    : kernel_(kernel),
      history_(*rm.version_history()),
      lag_bound_(lag_bound) {
  assert(rm.version_history() != nullptr &&
         "TemporalView requires keep_version_history");
  assert(!lag_bound_.is_negative());
}

const db::Version& TemporalView::read(db::ObjectId object) const {
  sim::TimePoint at = safe_time();
  if (at < sim::TimePoint::origin()) at = sim::TimePoint::origin();
  return history_.read_at(object, at);
}

std::vector<db::Version> TemporalView::read_snapshot(
    std::span<const db::ObjectId> objects) const {
  std::vector<db::Version> result;
  result.reserve(objects.size());
  for (const db::ObjectId object : objects) result.push_back(read(object));
  return result;
}

bool TemporalView::mutually_consistent(
    const db::MultiVersionStore& history,
    std::span<const db::ObjectId> objects,
    std::span<const db::Version> versions) {
  std::vector<const db::MultiVersionStore*> histories(objects.size(),
                                                      &history);
  return mutually_consistent(histories, objects, versions);
}

bool TemporalView::mutually_consistent(
    std::span<const db::MultiVersionStore* const> histories,
    std::span<const db::ObjectId> objects,
    std::span<const db::Version> versions) {
  assert(objects.size() == versions.size());
  assert(histories.size() == objects.size());
  // Version v of object o is current over [v.written_at, succ.written_at)
  // where succ is o's next retained version (or forever for the newest).
  // The set is consistent iff those windows share an instant:
  // max(starts) < min(ends).
  sim::TimePoint latest_start = sim::TimePoint::origin();
  sim::TimePoint earliest_end = sim::TimePoint::max();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const db::Version& v = versions[i];
    const auto chain = histories[i]->versions_of(objects[i]);
    const auto it = std::find(chain.begin(), chain.end(), v);
    if (it == chain.end()) return false;  // not a retained version at all
    latest_start = std::max(latest_start, v.written_at);
    if (it + 1 != chain.end()) {
      earliest_end = std::min(earliest_end, (it + 1)->written_at);
    }
  }
  return latest_start < earliest_end;
}

}  // namespace rtdb::dist
