#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "db/resource_manager.hpp"
#include "dist/replication.hpp"
#include "net/message_server.hpp"
#include "net/reliable.hpp"

namespace rtdb::dist {

// Replica catch-up after an outage. The local-ceiling scheme's propagation
// is fire-and-forget ("the time-out mechanism will unblock the sender" —
// updates to a down site are simply lost), so a recovering site's
// secondary copies can be arbitrarily stale until their objects happen to
// be written again. The recovery manager closes that gap: on demand it
// asks every other site for the current versions of that site's primary
// copies and installs whatever is newer through the same monotonic apply
// path replication uses.
//
// Wire messages:
struct SyncRequestMsg {
  // Empty: "send me the current versions of your primaries".
};
struct SyncReplyMsg {
  std::vector<ReplicaUpdateMsg> updates;
};

class RecoveryManager {
 public:
  struct Options {
    // Total tries per sync round (first request + retries) for a site that
    // has not replied. 1 reproduces the fire-and-forget behaviour.
    int max_attempts = 1;
    // How long to wait for a site's SyncReply before re-requesting; zero
    // disables retries regardless of max_attempts.
    sim::Duration retry_timeout{};
  };

  RecoveryManager(net::MessageServer& server, db::ResourceManager& rm)
      : RecoveryManager(server, rm, Options{}, nullptr) {}
  RecoveryManager(net::MessageServer& server, db::ResourceManager& rm,
                  Options options, net::ReliableChannel* channel);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Starts one catch-up round: a SyncRequest to every other site. Replies
  // apply asynchronously as they arrive (one communication round trip per
  // site); silent sites are re-asked up to Options::max_attempts times.
  // Call after the site rejoins the network.
  void request_catch_up();

  std::uint64_t catch_ups_started() const { return catch_ups_; }
  std::uint64_t sync_requests_served() const { return served_; }
  // Versions applied from sync replies that were newer than our copy.
  std::uint64_t versions_recovered() const { return recovered_; }
  // Re-sent SyncRequests to sites whose reply never came.
  std::uint64_t sync_retries() const { return retries_; }
  std::size_t awaiting_replies() const { return pending_.size(); }

 private:
  void serve_sync_request(net::SiteId requester);
  void apply_sync_reply(net::SiteId from, SyncReplyMsg reply);
  void on_retry_timer();
  void arm_retry_timer();
  template <typename T>
  void send_control(net::SiteId to, T message) {
    if (channel_ != nullptr) {
      channel_->send(to, std::move(message));
    } else {
      server_.send(to, std::move(message));
    }
  }

  net::MessageServer& server_;
  db::ResourceManager& rm_;
  Options options_;
  net::ReliableChannel* channel_ = nullptr;
  // Sites of the current round that have not replied yet (ordered so the
  // retry pass is deterministic).
  std::set<net::SiteId> pending_;
  int attempts_ = 0;
  sim::EventId retry_timer_{};
  std::uint64_t catch_ups_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace rtdb::dist
