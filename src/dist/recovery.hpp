#pragma once

#include <cstdint>
#include <vector>

#include "db/resource_manager.hpp"
#include "dist/replication.hpp"
#include "net/message_server.hpp"

namespace rtdb::dist {

// Replica catch-up after an outage. The local-ceiling scheme's propagation
// is fire-and-forget ("the time-out mechanism will unblock the sender" —
// updates to a down site are simply lost), so a recovering site's
// secondary copies can be arbitrarily stale until their objects happen to
// be written again. The recovery manager closes that gap: on demand it
// asks every other site for the current versions of that site's primary
// copies and installs whatever is newer through the same monotonic apply
// path replication uses.
//
// Wire messages:
struct SyncRequestMsg {
  // Empty: "send me the current versions of your primaries".
};
struct SyncReplyMsg {
  std::vector<ReplicaUpdateMsg> updates;
};

class RecoveryManager {
 public:
  RecoveryManager(net::MessageServer& server, db::ResourceManager& rm);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Starts one catch-up round: a SyncRequest to every other site. Replies
  // apply asynchronously as they arrive (one communication round trip per
  // site). Call after the site rejoins the network.
  void request_catch_up();

  std::uint64_t catch_ups_started() const { return catch_ups_; }
  std::uint64_t sync_requests_served() const { return served_; }
  // Versions applied from sync replies that were newer than our copy.
  std::uint64_t versions_recovered() const { return recovered_; }

 private:
  void serve_sync_request(net::SiteId requester);
  void apply_sync_reply(SyncReplyMsg reply);

  net::MessageServer& server_;
  db::ResourceManager& rm_;
  std::uint64_t catch_ups_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t recovered_ = 0;
};

}  // namespace rtdb::dist
