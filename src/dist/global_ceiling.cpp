#include "dist/global_ceiling.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::dist {

using net::SiteId;

// ---- GlobalCeilingManager ----

GlobalCeilingManager::GlobalCeilingManager(net::MessageServer& server,
                                           net::RpcDispatcher& rpc,
                                           std::uint32_t object_count,
                                           net::ReliableChannel* channel,
                                           bool active, bool reap_orphans,
                                           net::BatchChannel* batch)
    : server_(server),
      pcp_(server.kernel(), object_count),
      channel_(channel),
      active_(active),
      reap_orphans_(reap_orphans) {
  install_hooks();
  // Through the batch channel when given (unpacks coalesced frames and
  // registers the layers below), else through the reliable channel
  // (registers the raw handlers too), so retransmitted control messages
  // arrive deduplicated.
  auto on_register = [this](SiteId from, RegisterTxnMsg message) {
    handle_register(from, std::move(message));
  };
  auto on_release = [this](SiteId /*from*/, ReleaseAllMsg message) {
    handle_release(message);
  };
  auto on_end = [this](SiteId /*from*/, EndTxnMsg message) {
    handle_end(message);
  };
  if (batch != nullptr) {
    batch->on<RegisterTxnMsg>(on_register);
    batch->on<ReleaseAllMsg>(on_release);
    batch->on<EndTxnMsg>(on_end);
  } else if (channel_ != nullptr) {
    channel_->on<RegisterTxnMsg>(on_register);
    channel_->on<ReleaseAllMsg>(on_release);
    channel_->on<EndTxnMsg>(on_end);
  } else {
    server_.on<RegisterTxnMsg>(on_register);
    server_.on<ReleaseAllMsg>(on_release);
    server_.on<EndTxnMsg>(on_end);
  }
  rpc.on<AcquireReq>([this](SiteId /*from*/, AcquireReq request,
                            net::RpcServer::Responder respond) {
    handle_acquire(std::move(request), std::move(respond));
  });
}

GlobalCeilingManager::GlobalCeilingManager(Routed, net::MessageServer& server,
                                           std::uint32_t object_count,
                                           bool active, bool reap_orphans)
    : server_(server),
      pcp_(server.kernel(), object_count),
      active_(active),
      reap_orphans_(reap_orphans) {
  install_hooks();
  // No handler registration: the ShardRouter owns the per-type slots.
}

void GlobalCeilingManager::install_hooks() {
  pcp_.set_hooks(cc::ControllerHooks{
      [this](db::TxnId victim, cc::AbortReason reason) {
        abort_mirror(victim, reason);
      },
      // Inherited priorities are not propagated to remote CPUs (the
      // grant/wake ordering at the manager still honours them).
      [](const cc::CcTxn&) {}});
}

void GlobalCeilingManager::handle_register(SiteId from,
                                           RegisterTxnMsg message) {
  if (!active_) return;  // not the manager; the client will re-target
  if (message.attempt > 0) {
    // A finished attempt's retransmitted Register must not resurrect it.
    if (auto t = ended_.find(message.txn);
        t != ended_.end() && t->second >= message.attempt) {
      return;
    }
  }
  auto it = mirrors_.find(message.txn);
  if (it != mirrors_.end()) {
    Mirror& existing = *it->second;
    if (message.attempt > 0 && existing.attempt > 0) {
      // Attempt-stamped traffic: a duplicate or stale Register is ignored;
      // a newer attempt's Register means the old attempt ended but its
      // EndTxn is still in flight (or lost) — tear the old mirror down.
      if (existing.attempt >= message.attempt) return;
      remove_mirror(it);
    } else {
      // Legacy heuristic (unstamped senders): ignore duplicates for the
      // live attempt; an *aborted* mirror still present means the EndTxn
      // was lost and this is the restarted attempt re-registering.
      if (!existing.aborted) return;
      disarm_reap(existing);
      mirrors_.erase(it);
    }
  }
  auto mirror = std::make_unique<Mirror>();
  mirror->ctx.id = db::TxnId{message.txn};
  mirror->ctx.attempt = message.attempt;
  mirror->home = from;
  mirror->attempt = message.attempt;
  mirror->ctx.base_priority =
      sim::Priority{message.priority_key, message.priority_tie};
  mirror->ctx.access = cc::AccessSet::from_operations(message.operations);
  pcp_.on_begin(mirror->ctx);
  // Failover re-registration: adopt the locks the previous manager had
  // already granted this attempt.
  for (const cc::Operation& op : message.held) {
    pcp_.adopt(mirror->ctx, op.object, op.mode);
    ++orphans_reclaimed_;
  }
  Mirror& installed = *mirror;
  mirrors_.emplace(message.txn, std::move(mirror));
  arm_reap(message.txn, installed, message.deadline_ticks);
  ++registrations_;
}

void GlobalCeilingManager::arm_reap(std::uint64_t txn, Mirror& mirror,
                                    std::int64_t deadline_ticks) {
  if (!reap_orphans_ || deadline_ticks <= 0) return;
  // One unit past the deadline: strictly after the home watchdog's kill
  // event, so a reap can never race a live transaction. Firing before the
  // (in-flight, possibly lost) ReleaseAll/EndTxn is harmless — the reap
  // performs exactly their teardown, and the late messages then no-op.
  // A retransmitted or re-registered Register can arrive after the
  // deadline has already passed — the sender is dead, reap immediately.
  const sim::TimePoint when = std::max(
      sim::TimePoint::at_ticks(deadline_ticks) + sim::Duration::units(1),
      server_.kernel().now());
  mirror.reap_event = server_.kernel().schedule_at(
      when, [this, txn, attempt = mirror.attempt] { reap_orphan(txn, attempt); });
  mirror.reap_armed = true;
}

void GlobalCeilingManager::disarm_reap(Mirror& mirror) {
  if (!mirror.reap_armed) return;
  mirror.reap_armed = false;
  server_.kernel().cancel_event(mirror.reap_event);
}

void GlobalCeilingManager::reap_orphan(std::uint64_t txn,
                                       std::uint32_t attempt) {
  auto it = mirrors_.find(txn);
  if (it == mirrors_.end() || it->second->attempt != attempt) return;
  it->second->reap_armed = false;  // this very event fired
  // Tombstone the attempt so a late duplicate Register cannot resurrect
  // the mirror (no restarted attempt can outlive the deadline: the home
  // watchdog killed the transaction at it).
  if (attempt > 0) {
    auto [t, inserted] = ended_.try_emplace(txn, attempt);
    if (!inserted && t->second < attempt) t->second = attempt;
  }
  ++orphans_reaped_;
  remove_mirror(it);
}

void GlobalCeilingManager::cancel_pending(Mirror& mirror) {
  // Cancel grants still waiting (e.g. the home site hit the deadline while
  // the request was queued here); each replies "denied" on unwind, which
  // the (dead) caller ignores.
  auto pending = mirror.pending;
  mirror.pending.clear();
  for (const sim::ProcessId pid : pending) {
    if (server_.kernel().alive(pid)) server_.kernel().kill(pid);
  }
}

void GlobalCeilingManager::remove_mirror(
    std::unordered_map<std::uint64_t, std::unique_ptr<Mirror>>::iterator it) {
  Mirror& mirror = *it->second;
  disarm_reap(mirror);
  cancel_pending(mirror);
  if (!mirror.aborted) {
    pcp_.release_all(mirror.ctx);
    pcp_.on_end(mirror.ctx);
  }
  mirrors_.erase(it);
}

void GlobalCeilingManager::handle_release(const ReleaseAllMsg& message) {
  if (!active_) return;
  auto it = mirrors_.find(message.txn);
  if (it == mirrors_.end()) return;
  Mirror& mirror = *it->second;
  // A stale attempt's (retransmitted) release must not strip the locks of
  // the attempt now registered.
  if (message.attempt > 0 && mirror.attempt > 0 &&
      mirror.attempt != message.attempt) {
    return;
  }
  cancel_pending(mirror);
  if (!mirror.aborted) pcp_.release_all(mirror.ctx);
}

void GlobalCeilingManager::handle_end(const EndTxnMsg& message) {
  if (!active_) return;
  if (message.attempt > 0) {
    auto [t, inserted] = ended_.try_emplace(message.txn, message.attempt);
    if (!inserted && t->second < message.attempt) t->second = message.attempt;
  }
  auto it = mirrors_.find(message.txn);
  if (it == mirrors_.end()) return;
  // Under message jitter the EndTxn can overtake the ReleaseAll (and under
  // drops the ReleaseAll may never arrive): cancel waiting grants and drop
  // held locks before deregistering, so no CcTxn pointer survives in the
  // lock table. release_all is idempotent, so the common ordered path is
  // unchanged. A stale attempt's EndTxn leaves the newer mirror alone.
  if (message.attempt > 0 && it->second->attempt > message.attempt) return;
  remove_mirror(it);
}

void GlobalCeilingManager::abort_site(net::SiteId site) {
  std::vector<std::uint64_t> victims;
  for (const auto& [txn, mirror] : mirrors_) {
    if (mirror->home == site) victims.push_back(txn);
  }
  // mirrors_ iteration order is unspecified; sort for deterministic replay.
  std::sort(victims.begin(), victims.end());
  for (const std::uint64_t txn : victims) {
    auto it = mirrors_.find(txn);
    disarm_reap(*it->second);
    finish_abort(*it->second);
    mirrors_.erase(it);
  }
}

void GlobalCeilingManager::deactivate() {
  if (!active_) return;
  active_ = false;
  std::vector<std::uint64_t> victims;
  victims.reserve(mirrors_.size());
  for (const auto& [txn, mirror] : mirrors_) {
    (void)mirror;
    victims.push_back(txn);
  }
  std::sort(victims.begin(), victims.end());
  for (const std::uint64_t txn : victims) {
    auto it = mirrors_.find(txn);
    disarm_reap(*it->second);
    finish_abort(*it->second);
    mirrors_.erase(it);
  }
}

void GlobalCeilingManager::on_crash() {
  // Same teardown as losing an election — every mirror is volatile state
  // (finish_abort's denials go to the network, which drops a down sender's
  // messages) — plus the tombstones, which are volatile too.
  deactivate();
  ended_.clear();
}

void GlobalCeilingManager::handle_acquire(AcquireReq request,
                                          net::RpcServer::Responder respond) {
  ++acquire_requests_;
  auto it = mirrors_.find(request.txn);
  if (!active_ || it == mirrors_.end() || it->second->aborted ||
      (request.attempt > 0 && it->second->attempt > 0 &&
       it->second->attempt != request.attempt)) {
    ++denials_;
    respond(std::any{AcquireResp{false, lease_term_}});
    return;
  }
  if (fenced_) {
    // Read fence: this manager's lease expired (it cannot reach a majority
    // of sites), so it must not extend any transaction's lock set — the
    // majority side may already be electing a successor that will adopt
    // the current held sets.
    ++denials_;
    ++fence_denials_;
    respond(std::any{AcquireResp{false, lease_term_}});
    return;
  }
  Mirror& mirror = *it->second;
  // Re-issued request for a lock this attempt already holds (the grant's
  // reply was lost): answer immediately, idempotently.
  if (pcp_.holds(mirror.ctx, request.object, request.mode)) {
    respond(std::any{AcquireResp{true, lease_term_}});
    return;
  }
  // Re-issued request while the original grant is still being served:
  // piggyback on its outcome rather than double-acquiring.
  if (auto inflight = mirror.inflight.find(request.object);
      inflight != mirror.inflight.end()) {
    inflight->second.push_back(std::move(respond));
    return;
  }
  mirror.inflight.emplace(request.object,
                          std::vector<net::RpcServer::Responder>{});
  const sim::ProcessId pid = server_.kernel().spawn(
      "gcm-acquire-" + std::to_string(request.txn),
      serve_acquire(mirror, request, std::move(respond)));
  mirror.pending.push_back(pid);
}

sim::Task<void> GlobalCeilingManager::serve_acquire(
    Mirror& mirror, AcquireReq request, net::RpcServer::Responder respond) {
  // Reply on every exit path; a kill (release/abort racing in) replies
  // "denied" from the destructor. Re-issued requests that piggybacked on
  // this grant (mirror->inflight) get the same answer.
  struct ReplyGuard {
    net::RpcServer::Responder respond;
    GlobalCeilingManager* self;
    Mirror* mirror;
    db::ObjectId object;
    sim::ProcessId pid;
    bool granted = false;
    bool sent = false;
    void send() {
      if (sent) return;
      sent = true;
      std::erase(mirror->pending, pid);
      if (granted && self->fenced_) {
        // The lease expired while this grant waited in the ceiling queue:
        // a fenced manager must not let it out (the lock itself stays in
        // the book and is torn down by the client's abort path).
        granted = false;
        ++self->fence_denials_;
      }
      if (!granted) ++self->denials_;
      respond(std::any{AcquireResp{granted, self->lease_term_}});
      if (auto it = mirror->inflight.find(object);
          it != mirror->inflight.end()) {
        auto extras = std::move(it->second);
        mirror->inflight.erase(it);
        for (net::RpcServer::Responder& extra : extras) {
          extra(std::any{AcquireResp{granted, self->lease_term_}});
        }
      }
      if (granted && self->observer_ != nullptr) {
        self->observer_->on_lease_grant(self->server_.site(),
                                        self->lease_term_);
      }
    }
    ~ReplyGuard() { send(); }
  } reply{std::move(respond), this, &mirror, request.object,
          server_.kernel().current()->id()};

  try {
    co_await pcp_.acquire(mirror.ctx, request.object, request.mode);
    reply.granted = true;
  } catch (const cc::TxnAborted&) {
    // This very request closed a (dynamic-arrival) cycle and the mirror
    // was chosen as victim: finish the abort on its behalf.
    finish_abort(mirror);
  }
  reply.send();
}

void GlobalCeilingManager::abort_mirror(db::TxnId victim,
                                        cc::AbortReason reason) {
  auto it = mirrors_.find(victim.value);
  assert(it != mirrors_.end());
  Mirror& mirror = *it->second;
  assert(!mirror.aborted);
  const sim::Process* current = server_.kernel().current();
  if (current != nullptr &&
      std::find(mirror.pending.begin(), mirror.pending.end(), current->id()) !=
          mirror.pending.end()) {
    // The victim's own waiting grant is the running process: unwind it; its
    // catch block completes the abort.
    throw cc::TxnAborted{reason};
  }
  auto pending = mirror.pending;
  mirror.pending.clear();
  for (const sim::ProcessId pid : pending) server_.kernel().kill(pid);
  finish_abort(mirror);
}

void GlobalCeilingManager::finish_abort(Mirror& mirror) {
  if (mirror.aborted) return;
  mirror.aborted = true;
  auto pending = mirror.pending;
  mirror.pending.clear();
  for (const sim::ProcessId pid : pending) {
    const sim::Process* current = server_.kernel().current();
    if (current != nullptr && current->id() == pid) continue;
    server_.kernel().kill(pid);
  }
  pcp_.release_all(mirror.ctx);
  pcp_.on_end(mirror.ctx);
}

// ---- GlobalCeilingClient ----

GlobalCeilingClient::GlobalCeilingClient(sim::Kernel& kernel,
                                         net::MessageServer& server,
                                         net::RpcClient& rpc, Options options,
                                         net::ReliableChannel* channel)
    : cc::ConcurrencyController(kernel),
      server_(server),
      rpc_(rpc),
      manager_site_(options.manager_site),
      acquire_timeout_(options.acquire_timeout),
      channel_(channel) {}

void GlobalCeilingClient::do_begin(cc::CcTxn& txn) {
  RegisterTxnMsg message;
  message.txn = txn.id.value;
  message.attempt = txn.attempt;
  message.priority_key = txn.base_priority.key();
  message.priority_tie = txn.base_priority.tie();
  message.deadline_ticks = txn.deadline.as_ticks();
  const auto ops = txn.access.operations();
  message.operations.assign(ops.begin(), ops.end());
  registered_[txn.id.value] = Registration{message};
  send_control(std::move(message));
}

sim::Task<void> GlobalCeilingClient::acquire(cc::CcTxn& txn,
                                             db::ObjectId object,
                                             cc::LockMode mode) {
  // The whole round trip — two communication delays plus any remote
  // ceiling blocking — counts as blocked time; it is exactly the
  // synchronization delay the paper attributes to this scheme.
  begin_block(txn);
  notify_block(txn, object, mode, {});  // blockers unknown: they are remote
  struct EndBlock {
    GlobalCeilingClient* self;
    cc::CcTxn* txn;
    ~EndBlock() { self->end_block(*txn); }
  } guard{this, &txn};
  const AcquireReq request{txn.id.value, txn.attempt, object, mode};
  AcquireResp resp{};
  // The Register this acquire depends on may still sit in the batch
  // window; push it out before blocking on the manager's answer.
  if (batch_ != nullptr) batch_->flush(manager_site_);
  if (acquire_timeout_.is_zero()) {
    std::optional<std::any> response =
        co_await rpc_.call(manager_site_, std::any{request});
    assert(response.has_value());  // no client-side timeout in use
    resp = std::any_cast<AcquireResp>(*response);
  } else {
    // Faulty runs: the manager may have crashed (no reply ever) or the
    // request/reply may have been dropped. Re-issue until an answer comes
    // back — after a failover, manager_site_ already points at the
    // successor. The manager side makes re-issues idempotent; the attempt
    // deadline watchdog bounds the loop.
    while (true) {
      // After a failover, the re-registration may be queued for the new
      // manager; it must land before this re-issued request.
      if (batch_ != nullptr) batch_->flush(manager_site_);
      std::optional<std::any> response = co_await rpc_.call(
          manager_site_, std::any{request}, acquire_timeout_);
      if (!response.has_value()) {
        ++acquire_retries_;
        continue;
      }
      resp = std::any_cast<AcquireResp>(*response);
      if (resp.term < term_) {
        // The response is stamped with an expired term: it came from a
        // manager that lost an election we already learned about (e.g. a
        // fenced-off minority-side manager answering a retried request).
        // Never act on it — not even on a denial — and re-issue against
        // the current manager.
        ++stale_grants_rejected_;
        ++acquire_retries_;
        continue;
      }
      break;
    }
  }
  if (!resp.granted) {
    count_protocol_abort();
    notify_abort(txn.id, cc::AbortReason::kDeadlockVictim);
    throw cc::TxnAborted{cc::AbortReason::kDeadlockVictim};
  }
  if (observer_ != nullptr) {
    observer_->on_grant_accepted(server_.site(), resp.term);
  }
  // Track the held set for failover re-registration.
  if (auto it = registered_.find(txn.id.value); it != registered_.end()) {
    it->second.msg.held.push_back(cc::Operation{object, mode});
  }
  count_grant();
  notify_grant(txn, object, mode);
}

void GlobalCeilingClient::do_release_all(cc::CcTxn& txn) {
  if (auto it = registered_.find(txn.id.value); it != registered_.end()) {
    it->second.msg.held.clear();
  }
  send_control(ReleaseAllMsg{txn.id.value, txn.attempt});
}

void GlobalCeilingClient::do_end(cc::CcTxn& txn) {
  registered_.erase(txn.id.value);
  send_control(EndTxnMsg{txn.id.value, txn.attempt});
}

void GlobalCeilingClient::set_manager(net::SiteId manager,
                                      std::uint64_t term) {
  if (term > term_) term_ = term;  // terms only move forward
  if (manager == manager_site_) return;
  manager_site_ = manager;
  // Rebuild the new manager's state: re-register every live local
  // transaction with its current held set (std::map order keeps the
  // replay deterministic).
  for (const auto& [txn, registration] : registered_) {
    (void)txn;
    send_control(registration.msg);
  }
}

// ---- DataServer ----

DataServer::DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
                       db::ResourceManager& rm,
                       txn::CommitParticipant::Options participant_options)
    : server_(server),
      rm_(rm),
      participant_(
          server,
          txn::CommitParticipant::Callbacks{
              [this](db::TxnId txn) { return staged_.contains(txn.value); },
              [this](db::TxnId txn, bool commit) {
                auto it = staged_.find(txn.value);
                if (it == staged_.end()) return;
                WriteSetMsg staged = std::move(it->second);
                staged_.erase(it);
                if (!commit) return;
                if (!staged.versions.empty()) {
                  // Replicated-synchronous: install the shipped versions.
                  assert(staged.versions.size() == staged.objects.size());
                  for (std::size_t i = 0; i < staged.objects.size(); ++i) {
                    rm_.apply_update(staged.objects[i], staged.versions[i]);
                  }
                  ++applied_commits_;
                  return;
                }
                // Partitioned: this owner computes the versions itself.
                // Memory-resident in the distributed experiments — the
                // apply is instantaneous; run in a process so a nonzero
                // I/O configuration would also work.
                server_.kernel().spawn(
                    "apply-" + std::to_string(txn.value),
                    [](db::ResourceManager& manager, db::TxnId writer,
                       std::vector<db::ObjectId> objects,
                       std::uint64_t& counter) -> sim::Task<void> {
                      co_await manager.commit_writes(writer, objects,
                                                     sim::Priority::highest());
                      ++counter;
                    }(rm_, txn, std::move(staged.objects), applied_commits_));
              }},
          participant_options) {
  server_.on<WriteSetMsg>([this](SiteId /*from*/, WriteSetMsg message) {
    staged_[message.txn] = std::move(message);
  });
  rpc.on<DataReadReq>([this](SiteId /*from*/, DataReadReq request,
                             net::RpcServer::Responder respond) {
    ++remote_reads_;
    respond(std::any{DataReadResp{rm_.current(request.object)}});
  });
}

// ---- GlobalExecutor ----

GlobalExecutor::GlobalExecutor(Services services, Costs costs)
    : services_(services), costs_(costs) {
  assert(services_.kernel != nullptr && services_.cpu != nullptr &&
         services_.rm != nullptr && services_.schema != nullptr &&
         services_.cc != nullptr && services_.server != nullptr &&
         services_.rpc != nullptr && services_.coordinator != nullptr);
}

sim::Priority GlobalExecutor::sched_priority(const cc::CcTxn& ctx) const {
  return costs_.use_priority_scheduling ? ctx.effective_priority()
                                        : sim::Priority{0, 0};
}

sim::Task<void> GlobalExecutor::run(txn::AttemptContext& attempt,
                                    const txn::TransactionSpec& spec) {
  cc::CcTxn& ctx = attempt.ctx;
  services_.cc->on_begin(ctx);
  attempt.began = true;
  const SiteId home = spec.home_site;

  for (const cc::Operation& op : spec.access.operations()) {
    co_await services_.cc->acquire(ctx, op.object, op.mode);
    if (services_.history != nullptr) {
      services_.history->record(spec.id, op.object, op.mode);
    }
    if (services_.schema->has_copy(home, op.object)) {
      co_await services_.rm->read(op.object, sched_priority(ctx));
    } else {
      // Partitioned placement, remote primary copy: one round trip.
      auto response = co_await services_.rpc->call(
          services_.schema->primary_site(op.object),
          std::any{DataReadReq{op.object}});
      assert(response.has_value());
      (void)response;
    }
    co_await services_.cpu->execute(costs_.cpu_per_object,
                                    sched_priority(ctx), &attempt.cpu_job);
    attempt.cpu_job = {};
  }

  const auto writes = spec.access.write_set();
  if (writes.empty()) co_return;

  if (services_.schema->placement() == db::Placement::kFullyReplicated) {
    // Synchronous replicated commit: compute the new versions under the
    // global locks and install them at every site before releasing, so all
    // copies stay identical ("every data object maintains most up-to-date
    // value").
    std::vector<db::Version> versions;
    versions.reserve(writes.size());
    for (const db::ObjectId object : writes) {
      versions.push_back(db::Version{
          services_.rm->current(object).sequence + 1, spec.id,
          services_.kernel->now()});
    }
    std::vector<SiteId> participants;
    for (SiteId site = 0; site < services_.schema->site_count(); ++site) {
      if (site == home) continue;
      services_.server->send(site,
                             WriteSetMsg{spec.id.value, writes, versions});
      participants.push_back(site);
    }
    const bool ok = co_await services_.coordinator->commit(
        spec.id, participants, costs_.vote_timeout);
    if (!ok) throw cc::TxnAborted{cc::AbortReason::kSystem};
    for (std::size_t i = 0; i < writes.size(); ++i) {
      services_.rm->apply_update(writes[i], versions[i]);
    }
    co_return;
  }

  // Partitioned placement: 2PC across the owner sites of the write set.
  std::vector<db::ObjectId> local_writes;
  std::map<SiteId, std::vector<db::ObjectId>> remote_writes;
  for (const db::ObjectId object : writes) {
    const SiteId owner = services_.schema->primary_site(object);
    if (owner == home) {
      local_writes.push_back(object);
    } else {
      remote_writes[owner].push_back(object);
    }
  }
  std::vector<SiteId> participants;
  for (auto& [owner, objects] : remote_writes) {
    services_.server->send(owner, WriteSetMsg{spec.id.value, objects, {}});
    participants.push_back(owner);
  }
  const bool ok = co_await services_.coordinator->commit(
      spec.id, participants, costs_.vote_timeout);
  if (!ok) throw cc::TxnAborted{cc::AbortReason::kSystem};
  if (!local_writes.empty()) {
    co_await services_.rm->commit_writes(spec.id, local_writes,
                                         sched_priority(ctx));
  }
}

void GlobalExecutor::release(txn::AttemptContext& attempt,
                             const txn::TransactionSpec& spec,
                             bool committed) {
  if (!attempt.began) return;
  attempt.began = false;
  services_.cc->release_all(attempt.ctx);
  services_.cc->on_end(attempt.ctx);
  if (services_.history != nullptr) {
    if (committed) {
      services_.history->commit(spec.id);
    } else {
      services_.history->abort(spec.id);
    }
  }
}

}  // namespace rtdb::dist
