#include "dist/partitioned.hpp"

#include <cassert>
#include <utility>

namespace rtdb::dist {

using net::SiteId;

// ---- ShardRouter ----

ShardRouter::ShardRouter(net::MessageServer& server, net::RpcDispatcher& rpc,
                         std::uint32_t shards, net::ReliableChannel* channel,
                         net::BatchChannel* batch)
    : server_(server),
      shards_(shards),
      managers_(shards, nullptr),
      failovers_(shards, nullptr) {
  assert(shards >= 1);
  auto on_register = [this](SiteId from, RegisterTxnMsg message) {
    route_register(from, std::move(message));
  };
  auto on_release = [this](SiteId /*from*/, ReleaseAllMsg message) {
    route_release(message);
  };
  auto on_end = [this](SiteId /*from*/, EndTxnMsg message) {
    route_end(message);
  };
  if (batch != nullptr) {
    batch->on<RegisterTxnMsg>(on_register);
    batch->on<ReleaseAllMsg>(on_release);
    batch->on<EndTxnMsg>(on_end);
  } else if (channel != nullptr) {
    channel->on<RegisterTxnMsg>(on_register);
    channel->on<ReleaseAllMsg>(on_release);
    channel->on<EndTxnMsg>(on_end);
  } else {
    server_.on<RegisterTxnMsg>(on_register);
    server_.on<ReleaseAllMsg>(on_release);
    server_.on<EndTxnMsg>(on_end);
  }
  auto on_beat = [this](SiteId from, HeartbeatMsg msg) {
    route_view(from, msg.term, msg.manager, msg.shard);
  };
  auto on_elected = [this](SiteId from, ManagerElectedMsg msg) {
    route_view(from, msg.term, msg.manager, msg.shard);
  };
  if (batch != nullptr) {
    batch->on<HeartbeatMsg>(on_beat);
    batch->on<ManagerElectedMsg>(on_elected);
  } else {
    server_.on<HeartbeatMsg>(on_beat);
    server_.on<ManagerElectedMsg>(on_elected);
  }
  rpc.on<AcquireReq>([this](SiteId /*from*/, AcquireReq request,
                            net::RpcServer::Responder respond) {
    route_acquire(std::move(request), std::move(respond));
  });
}

void ShardRouter::set_manager(std::uint32_t shard,
                              GlobalCeilingManager* manager) {
  assert(shard < shards_);
  managers_[shard] = manager;
}

void ShardRouter::set_failover(std::uint32_t shard,
                               FailoverCoordinator* failover) {
  assert(shard < shards_);
  failovers_[shard] = failover;
}

void ShardRouter::route_register(SiteId from, RegisterTxnMsg message) {
  if (message.shard >= shards_) {
    ++misrouted_;
    return;
  }
  GlobalCeilingManager* manager = managers_[message.shard];
  if (manager != nullptr) manager->route_register(from, std::move(message));
}

void ShardRouter::route_release(const ReleaseAllMsg& message) {
  if (message.shard >= shards_) {
    ++misrouted_;
    return;
  }
  GlobalCeilingManager* manager = managers_[message.shard];
  if (manager != nullptr) manager->route_release(message);
}

void ShardRouter::route_end(const EndTxnMsg& message) {
  if (message.shard >= shards_) {
    ++misrouted_;
    return;
  }
  GlobalCeilingManager* manager = managers_[message.shard];
  if (manager != nullptr) manager->route_end(message);
}

void ShardRouter::route_acquire(AcquireReq request,
                                net::RpcServer::Responder respond) {
  if (request.shard >= shards_) {
    ++misrouted_;
    respond(std::any{AcquireResp{false, 0}});
    return;
  }
  GlobalCeilingManager* manager = managers_[request.shard];
  if (manager == nullptr) {
    // No endpoint for this shard here (fault-free single-host layout, or
    // a standby never wired): deny; the client re-targets on its next
    // election view.
    respond(std::any{AcquireResp{false, 0}});
    return;
  }
  manager->route_acquire(std::move(request), std::move(respond));
}

void ShardRouter::route_view(SiteId from, std::uint64_t term, SiteId manager,
                             std::uint32_t shard) {
  if (shard >= shards_) {
    ++misrouted_;
    return;
  }
  FailoverCoordinator* failover = failovers_[shard];
  if (failover != nullptr) failover->deliver_view(from, term, manager);
}

// ---- PartitionedCeilingClient ----

PartitionedCeilingClient::PartitionedCeilingClient(
    sim::Kernel& kernel, net::MessageServer& server, net::RpcClient& rpc,
    Options options, net::ReliableChannel* channel, net::BatchChannel* batch)
    : cc::ConcurrencyController(kernel),
      server_(server),
      rpc_(rpc),
      options_(std::move(options)),
      channel_(channel),
      batch_(batch),
      shards_(options_.shards) {
  assert(options_.shards >= 1);
  assert(options_.shard_of);
  // Shard s's initial manager is site s (see SystemConfig::shards).
  for (std::uint32_t s = 0; s < options_.shards; ++s) {
    shards_[s].manager_site = static_cast<SiteId>(s);
  }
}

void PartitionedCeilingClient::do_begin(cc::CcTxn& txn) {
  auto& by_shard = registered_[txn.id.value];
  by_shard.clear();
  for (const cc::Operation& op : txn.access.operations()) {
    const std::uint32_t shard = options_.shard_of(op.object);
    auto [it, inserted] = by_shard.try_emplace(shard);
    if (inserted) {
      RegisterTxnMsg& msg = it->second;
      msg.txn = txn.id.value;
      msg.attempt = txn.attempt;
      msg.priority_key = txn.base_priority.key();
      msg.priority_tie = txn.base_priority.tie();
      msg.deadline_ticks = txn.deadline.as_ticks();
      msg.shard = shard;
    }
    it->second.operations.push_back(op);
  }
  // Ascending shard order: deterministic, and matches the order acquire
  // walks the declared set.
  for (const auto& [shard, msg] : by_shard) send_control(shard, msg);
}

sim::Task<void> PartitionedCeilingClient::acquire(cc::CcTxn& txn,
                                                  db::ObjectId object,
                                                  cc::LockMode mode) {
  const std::uint32_t shard = options_.shard_of(object);
  // The round trip plus any remote ceiling blocking counts as blocked
  // time, exactly as under the global scheme.
  begin_block(txn);
  notify_block(txn, object, mode, {});  // blockers unknown: they are remote
  struct EndBlock {
    PartitionedCeilingClient* self;
    cc::CcTxn* txn;
    ~EndBlock() { self->end_block(*txn); }
  } guard{this, &txn};
  const AcquireReq request{txn.id.value, txn.attempt, object, mode, shard};
  Shard& sh = shards_[shard];
  AcquireResp resp{};
  // The Register this acquire depends on may still sit in the batch
  // window; push it out before blocking on the shard manager's answer.
  if (batch_ != nullptr) batch_->flush(sh.manager_site);
  if (options_.acquire_timeout.is_zero()) {
    std::optional<std::any> response =
        co_await rpc_.call(sh.manager_site, std::any{request});
    assert(response.has_value());  // no client-side timeout in use
    resp = std::any_cast<AcquireResp>(*response);
  } else {
    // Faulty runs: re-issue until an answer comes back; after a failover
    // sh.manager_site already points at the shard's successor.
    while (true) {
      if (batch_ != nullptr) batch_->flush(sh.manager_site);
      std::optional<std::any> response = co_await rpc_.call(
          sh.manager_site, std::any{request}, options_.acquire_timeout);
      if (!response.has_value()) {
        ++acquire_retries_;
        continue;
      }
      resp = std::any_cast<AcquireResp>(*response);
      if (resp.term < sh.term) {
        // Stamped with an expired term for this shard: a fenced-off old
        // manager answered a retried request. Never act on it.
        ++stale_grants_rejected_;
        ++acquire_retries_;
        continue;
      }
      break;
    }
  }
  if (!resp.granted) {
    count_protocol_abort();
    notify_abort(txn.id, cc::AbortReason::kDeadlockVictim);
    throw cc::TxnAborted{cc::AbortReason::kDeadlockVictim};
  }
  if (sh.observer != nullptr) {
    sh.observer->on_grant_accepted(server_.site(), resp.term);
  }
  // Track the held set for failover re-registration of this shard.
  if (auto it = registered_.find(txn.id.value); it != registered_.end()) {
    if (auto s = it->second.find(shard); s != it->second.end()) {
      s->second.held.push_back(cc::Operation{object, mode});
    }
  }
  count_grant();
  notify_grant(txn, object, mode);
}

void PartitionedCeilingClient::do_release_all(cc::CcTxn& txn) {
  auto it = registered_.find(txn.id.value);
  if (it == registered_.end()) return;
  for (auto& [shard, msg] : it->second) {
    msg.held.clear();
    send_control(shard, ReleaseAllMsg{txn.id.value, txn.attempt, shard});
  }
}

void PartitionedCeilingClient::do_end(cc::CcTxn& txn) {
  auto it = registered_.find(txn.id.value);
  if (it == registered_.end()) return;
  for (const auto& [shard, msg] : it->second) {
    (void)msg;
    send_control(shard, EndTxnMsg{txn.id.value, txn.attempt, shard});
  }
  registered_.erase(it);
}

void PartitionedCeilingClient::set_manager(std::uint32_t shard,
                                           SiteId manager,
                                           std::uint64_t term) {
  Shard& sh = shards_[shard];
  if (term > sh.term) sh.term = term;  // terms only move forward
  if (manager == sh.manager_site) return;
  sh.manager_site = manager;
  // Rebuild the successor's shard state: re-register every live local
  // transaction's slice of this shard with its current held set.
  for (const auto& [txn, by_shard] : registered_) {
    (void)txn;
    if (auto it = by_shard.find(shard); it != by_shard.end()) {
      send_control(shard, it->second);
    }
  }
}

}  // namespace rtdb::dist
