#pragma once

#include <optional>
#include <span>
#include <vector>

#include "db/multiversion.hpp"
#include "db/resource_manager.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

namespace rtdb::dist {

// Temporally consistent reads over replicated data — the mechanism §4
// closes with: "we can utilize the periodicity of the update transaction
// as a timestamp mechanism. If the system provides multiple versions of
// data objects, ensuring a temporally consistent view becomes a real-time
// scheduling problem in which the time lags in the distributed versions
// need to be controlled."
//
// A TemporalView sits on one site's multi-version store. Given a bound on
// the replication lag (for our network: the maximum communication delay
// from any primary to this site), every version written at or before
//     safe_time(now) = now - lag_bound
// has already arrived here, so reading all objects "as of" safe_time
// yields a cut of the global primary history: mutually consistent values,
// just slightly old. Reading "as of now" instead would mix fresh local
// values with stale remote ones — exactly the §4 inconsistency.
class TemporalView {
 public:
  // The resource manager must have been built with version history.
  TemporalView(sim::Kernel& kernel, const db::ResourceManager& rm,
               sim::Duration lag_bound);

  sim::Duration lag_bound() const { return lag_bound_; }

  // The newest instant whose global state is fully visible here. One tick
  // strictly older than now - lag_bound: a version written exactly at that
  // boundary arrives exactly now, and within one virtual instant delivery
  // is not ordered before the read.
  sim::TimePoint safe_time() const {
    return kernel_.now() - lag_bound_ - sim::Duration::ticks(1);
  }

  // The version of `object` visible at the view's safe time.
  const db::Version& read(db::ObjectId object) const;

  // Reads a whole set of objects as one consistent cut.
  std::vector<db::Version> read_snapshot(
      std::span<const db::ObjectId> objects) const;

  // Checks that a set of versions could have been observed together, i.e.
  // there is an instant at which each is the current version of its
  // object. Used by the tests as the consistency oracle and available to
  // applications that assemble views from multiple sources.
  //
  // Judging a replica's reads requires ground truth: a lagging replica's
  // own chain cannot see a version's successor before it arrives, so pass
  // the *primaries'* histories — the second overload takes one history per
  // object for exactly that.
  static bool mutually_consistent(const db::MultiVersionStore& history,
                                  std::span<const db::ObjectId> objects,
                                  std::span<const db::Version> versions);
  static bool mutually_consistent(
      std::span<const db::MultiVersionStore* const> histories,
      std::span<const db::ObjectId> objects,
      std::span<const db::Version> versions);

 private:
  sim::Kernel& kernel_;
  const db::MultiVersionStore& history_;
  sim::Duration lag_bound_;
};

}  // namespace rtdb::dist
