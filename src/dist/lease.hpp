#pragma once

#include <cstdint>

#include "net/fault.hpp"

namespace rtdb::dist {

// Narrow observer for the manager-lease lifecycle and grant stamping,
// implemented by the conformance checker (check::LeaseAudit). Mirrors
// txn::CommitObserver: the interface lives with the observed subsystem so
// check/ can depend on dist/ without a dependency cycle. All callbacks
// fire synchronously from the observed site's event context.
class LeaseObserver {
 public:
  virtual ~LeaseObserver() = default;

  // `site` now holds the manager lease for `term` (initial grant,
  // self-promotion, or renewal after a fence lifted).
  virtual void on_lease_acquired(net::SiteId site, std::uint64_t term) = 0;
  // `site` no longer holds the lease for `term` (fence, demotion, crash).
  virtual void on_lease_released(net::SiteId site, std::uint64_t term) = 0;
  // The manager at `site` granted a global lock stamped with `term`.
  virtual void on_lease_grant(net::SiteId site, std::uint64_t term) = 0;
  // The failover view at `site` advanced to `term` (promotion or adoption
  // of an outranking election). Establishes the fence the acceptance rule
  // audits against: once a site adopts T it may never act on a grant < T.
  virtual void on_term_adopted(net::SiteId site, std::uint64_t term) = 0;
  // The client at `site` accepted (acted on) a grant stamped with `term`.
  virtual void on_grant_accepted(net::SiteId site, std::uint64_t term) = 0;
};

}  // namespace rtdb::dist
