#include "dist/election.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::dist {

using net::SiteId;

ElectionState::ElectionState(Options options)
    : options_(options),
      manager_(options.initial_manager),
      last_heard_(options.site_count, sim::TimePoint::origin()) {
  assert(options_.site_count > 0);
  lease_interval_ =
      options_.lease_interval.is_zero()
          ? options_.heartbeat_interval *
                static_cast<std::int64_t>(
                    std::max<std::uint32_t>(1, options_.miss_threshold - 1))
          : options_.lease_interval;
  // The fence-before-election argument needs the lease window strictly
  // inside the election window; a custom lease_interval must respect it.
  assert(lease_interval_ <=
         options_.heartbeat_interval *
             static_cast<std::int64_t>(options_.miss_threshold));
}

void ElectionState::reset(sim::TimePoint now) {
  for (sim::TimePoint& t : last_heard_) t = now;
  lease_held_ = false;
}

void ElectionState::acquire_initial_lease() {
  assert(is_manager() && !lease_held_);
  lease_held_ = true;
}

bool ElectionState::recently_heard(SiteId site, sim::TimePoint now) const {
  return now - last_heard_[site] <=
         options_.heartbeat_interval *
             static_cast<std::int64_t>(options_.miss_threshold);
}

bool ElectionState::majority_reachable(sim::TimePoint now) const {
  std::uint32_t heard = 0;
  for (SiteId site = 0; site < options_.site_count; ++site) {
    if (site == options_.self || now - last_heard_[site] <= lease_interval_) {
      ++heard;
    }
  }
  return heard * 2 > options_.site_count;
}

ElectionState::Event ElectionState::observe(SiteId from, std::uint64_t term,
                                            SiteId manager,
                                            sim::TimePoint now) {
  last_heard_[from] = now;
  if (term < term_ || (term == term_ && manager >= manager_)) {
    return Event::kNone;
  }
  term_ = term;
  manager_ = manager;
  lease_held_ = false;  // an outranking view invalidates any lease we held
  return Event::kAdopted;
}

ElectionState::Event ElectionState::tick(sim::TimePoint now) {
  if (is_manager()) {
    const bool quorum = majority_reachable(now);
    if (lease_held_ && !quorum) {
      lease_held_ = false;
      ++lease_expiries_;
      return Event::kFenced;
    }
    if (!lease_held_ && quorum) {
      lease_held_ = true;
      return Event::kUnfenced;
    }
    return Event::kNone;
  }
  if (recently_heard(manager_, now)) return Event::kNone;

  // Manager declared dead: the successor is the lowest-id site still heard
  // from (ourselves always counting as live). Every live site computes the
  // same successor from the same heartbeat history; only the successor
  // acts — and only with a majority in reach, so the minority side of a
  // partition waits instead of electing a twin.
  for (SiteId site = 0; site < options_.site_count; ++site) {
    if (site == manager_) continue;
    if (site != options_.self && !recently_heard(site, now)) continue;
    if (site != options_.self) return Event::kNone;  // lower id promotes
    if (!majority_reachable(now)) return Event::kNone;
    term_ += 1;
    manager_ = options_.self;
    lease_held_ = true;
    ++promotions_;
    return Event::kPromoted;
  }
  return Event::kNone;
}

}  // namespace rtdb::dist
