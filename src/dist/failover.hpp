#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message_server.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"

namespace rtdb::dist {

// Periodic liveness beacon; every site broadcasts one per interval. It
// carries the sender's view of the election so a site that missed the
// (unreliable, once-off) ManagerElectedMsg converges on the next beat.
struct HeartbeatMsg {
  std::uint64_t term = 0;
  net::SiteId manager = 0;
};
// Announced once by a site that promoted itself; heartbeats repair losses.
struct ManagerElectedMsg {
  std::uint64_t term = 0;
  net::SiteId manager = 0;
};

// Deterministic ceiling-manager failover: every site runs one of these,
// exchanging heartbeats. When the current manager misses `miss_threshold`
// consecutive intervals, the next live site by id promotes itself, bumps
// the term, and announces. Ties (two sites promoting in the same term)
// resolve toward the lower site id. The hooks wire the election into the
// global-ceiling machinery: promote/demote flip the co-located manager's
// active flag, manager_changed re-targets the local client (which
// re-registers its live transactions, rebuilding the lock state).
//
// Everything is driven by the virtual clock and the deterministic message
// order, so a run's failover history is a pure function of (config, seed).
class FailoverCoordinator {
 public:
  struct Options {
    sim::Duration heartbeat_interval = sim::Duration::units(20);
    // Missed intervals before the manager is declared dead.
    std::uint32_t miss_threshold = 3;
    net::SiteId initial_manager = 0;
    std::uint32_t site_count = 0;
  };
  struct Hooks {
    // This site became / stopped being the manager.
    std::function<void()> promote;
    std::function<void()> demote;
    // The (possibly remote) manager changed; re-target and re-register.
    std::function<void(net::SiteId)> manager_changed;
    // Heartbeating continues only while this returns true; when the system
    // has drained the loops exit so the kernel's event queue can empty.
    std::function<bool()> keep_running;
  };

  FailoverCoordinator(net::MessageServer& server, Options options,
                      Hooks hooks);

  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  // Spawns the heartbeat loop; call once after the servers are started.
  void start();
  // Site failure: the loop dies with the site (timers are volatile).
  void on_crash();
  // Site restart: rejoin with a fresh grace period. The site keeps its
  // (possibly stale) term and re-learns the current election from the
  // first heartbeat that outranks it.
  void on_restore();

  net::SiteId manager() const { return manager_; }
  std::uint64_t term() const { return term_; }
  // Times *this site* promoted itself to manager.
  std::uint64_t promotions() const { return promotions_; }

 private:
  sim::Task<void> beat_loop();
  void check_manager();
  void handle_heartbeat(net::SiteId from, HeartbeatMsg msg);
  void handle_elected(net::SiteId from, ManagerElectedMsg msg);
  // Accepts (term, manager) as the new election state; fires demote /
  // manager_changed hooks on an actual change.
  void adopt(std::uint64_t term, net::SiteId manager);
  void broadcast_elected();
  bool recently_heard(net::SiteId site, sim::TimePoint now) const;

  net::MessageServer& server_;
  Options options_;
  Hooks hooks_;
  std::uint64_t term_ = 0;
  net::SiteId manager_ = 0;
  std::vector<sim::TimePoint> last_heard_;
  sim::ProcessId loop_{};
  bool started_ = false;
  std::uint64_t promotions_ = 0;
};

}  // namespace rtdb::dist
