#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dist/election.hpp"
#include "dist/lease.hpp"
#include "net/batch.hpp"
#include "net/message_server.hpp"
#include "sim/kernel.hpp"
#include "sim/task.hpp"

namespace rtdb::dist {

// Periodic liveness beacon; every site broadcasts one per interval. It
// carries the sender's view of the election so a site that missed the
// (unreliable, once-off) ManagerElectedMsg converges on the next beat.
struct HeartbeatMsg {
  std::uint64_t term = 0;
  net::SiteId manager = 0;
  // Which shard's election this beat speaks for (partitioned scheme; the
  // global scheme always sends 0). Last so positional initializers keep
  // their meaning.
  std::uint32_t shard = 0;
};
// Announced once by a site that promoted itself; heartbeats repair losses.
struct ManagerElectedMsg {
  std::uint64_t term = 0;
  net::SiteId manager = 0;
  std::uint32_t shard = 0;
};

// Deterministic ceiling-manager failover: every site runs one of these,
// exchanging heartbeats. The election + lease decisions live in the
// substrate-free ElectionState (see dist/election.hpp for the
// fence-before-election safety argument); this class supplies the sim
// transport and timers and translates decision events into hooks.
//
// The active manager holds a term-stamped lease renewed every beat while a
// majority of sites is in heartbeat reach. Losing quorum fences the
// co-located manager (it stops granting) strictly before any successor's
// election window can elapse; promotion also requires quorum. Clients
// independently reject grants stamped with a stale term, closing the
// one-way-partition window the quorum fence cannot see.
//
// Everything is driven by the virtual clock and the deterministic message
// order, so a run's failover history is a pure function of (config, seed).
class FailoverCoordinator {
 public:
  struct Options {
    sim::Duration heartbeat_interval = sim::Duration::units(20);
    // Missed intervals before the manager is declared dead.
    std::uint32_t miss_threshold = 3;
    net::SiteId initial_manager = 0;
    std::uint32_t site_count = 0;
    // Lease validity window; zero derives heartbeat_interval *
    // (miss_threshold - 1). See ElectionState::Options.
    sim::Duration lease_interval{};
    // Partitioned scheme: the shard whose manager this coordinator
    // elects. Stamped into outgoing heartbeats/announcements so the
    // per-site ShardRouter can demultiplex.
    std::uint32_t shard = 0;
    // False = routed mode: the coordinator registers NO handlers (the
    // ShardRouter owns the per-type slots and calls deliver_view).
    bool register_handlers = true;
  };
  struct Hooks {
    // This site became / stopped being the manager; promote carries the
    // lease term the new manager stamps into its grants.
    std::function<void(std::uint64_t term)> promote;
    std::function<void()> demote;
    // The co-located manager's lease expired (true) or was renewed
    // (false); a fenced manager stops granting but keeps serving
    // registers/releases so the lock book stays current for adoption.
    std::function<void(bool fenced)> set_fenced;
    // The (possibly remote) manager or its term changed; re-target the
    // client and refresh the term it accepts grants against.
    std::function<void(net::SiteId, std::uint64_t term)> manager_changed;
    // Heartbeating continues only while this returns true; when the system
    // has drained the loops exit so the kernel's event queue can empty.
    std::function<bool()> keep_running;
  };

  FailoverCoordinator(net::MessageServer& server, Options options,
                      Hooks hooks);

  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  // Spawns the heartbeat loop; call once after the servers are started.
  void start();
  // Site failure: the loop dies with the site (timers and lease are
  // volatile).
  void on_crash();
  // Site restart: rejoin with a fresh grace period. The site keeps its
  // (possibly stale) term and re-learns the current election from the
  // first heartbeat that outranks it.
  void on_restore();

  // Conformance audit tap (optional; may be null).
  void set_observer(LeaseObserver* observer) { observer_ = observer; }
  // Coalesce heartbeats/announcements through the site's BatchChannel
  // (fire-and-forget pathway, so they stay loss-tolerant). May be null.
  void set_batch(net::BatchChannel* batch) { batch_ = batch; }

  // Routed mode: the ShardRouter feeds election views (heartbeats and
  // elected announcements) for this coordinator's shard through here.
  void deliver_view(net::SiteId from, std::uint64_t term,
                    net::SiteId manager) {
    handle_view(from, term, manager);
  }

  net::SiteId manager() const { return state_.manager(); }
  std::uint64_t term() const { return state_.term(); }
  bool lease_held() const { return state_.lease_held(); }
  // Times *this site* promoted itself to manager.
  std::uint64_t promotions() const { return state_.promotions(); }
  // Times this site's held lease expired because quorum was lost.
  std::uint64_t lease_expiries() const { return state_.lease_expiries(); }

 private:
  sim::Task<void> beat_loop();
  std::string loop_name() const;
  void handle_view(net::SiteId from, std::uint64_t term, net::SiteId manager);
  void apply_tick_event(ElectionState::Event event);
  void broadcast_elected();

  net::MessageServer& server_;
  Options options_;
  Hooks hooks_;
  ElectionState state_;
  LeaseObserver* observer_ = nullptr;
  net::BatchChannel* batch_ = nullptr;
  sim::ProcessId loop_{};
  bool started_ = false;
};

}  // namespace rtdb::dist
