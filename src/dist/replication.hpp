#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "db/resource_manager.hpp"
#include "db/types.hpp"
#include "net/message_server.hpp"
#include "net/reliable.hpp"

namespace rtdb::dist {

// One propagated primary-copy version.
struct ReplicaUpdateMsg {
  db::ObjectId object = 0;
  db::Version version{};
};

// The replication side of the local-ceiling scheme (§4 restrictions 1-3):
// the database is fully replicated; updates commit locally on the primary
// copy and are then shipped asynchronously to the secondary copies at every
// other site, which therefore hold (slightly) historical values.
//
// Secondary copies are applied without locking: the single-writer model
// rules out write-write races on a copy, and readers of replicas explicitly
// accept temporal inconsistency — the paper's trade for responsiveness.
// The manager measures that staleness (the "time lag" of §4).
class ReplicationManager {
 public:
  // With `channel` given (and enabled), replica updates travel acked and
  // retransmitted instead of fire-and-forget — a lost update then delays
  // convergence by a backoff instead of waiting for the next write or a
  // recovery round.
  ReplicationManager(net::MessageServer& server, db::ResourceManager& rm,
                     net::ReliableChannel* channel = nullptr);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  // Ships the freshly committed versions of `objects` to every other site.
  void propagate(std::span<const db::ObjectId> objects,
                 std::span<const db::Version> versions);

  std::uint64_t updates_sent() const { return sent_; }
  std::uint64_t updates_applied() const { return applied_; }
  std::uint64_t updates_stale() const { return stale_; }

  // Observed replication lag (apply time minus primary commit time).
  sim::Duration max_lag() const { return max_lag_; }
  sim::Duration mean_lag() const {
    return applied_ == 0
               ? sim::Duration::zero()
               : sim::Duration::ticks(total_lag_.as_ticks() /
                                      static_cast<std::int64_t>(applied_));
  }

 private:
  void apply(ReplicaUpdateMsg message);

  net::MessageServer& server_;
  db::ResourceManager& rm_;
  net::ReliableChannel* channel_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t stale_ = 0;
  sim::Duration total_lag_{};
  sim::Duration max_lag_{};
};

}  // namespace rtdb::dist
