#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cc/controller.hpp"
#include "dist/failover.hpp"
#include "dist/global_ceiling.hpp"
#include "net/batch.hpp"
#include "net/rpc.hpp"

namespace rtdb::dist {

// The partitioned ceiling scheme (DPCP-style resource agents): the object
// space is split across `shards` ceiling managers, each a full
// GlobalCeilingManager running the ceiling protocol over its shard's
// declared sets. Shard s's manager initially lives at site s; under
// failover every site hosts a standby per shard and each shard runs its
// own lease-fenced election. What the scheme buys is the removal of the
// global scheme's single serialization point — transactions touching
// disjoint shards never queue behind one another's control traffic.
//
// A site has exactly ONE handler slot per message type, but hosts many
// shard endpoints; the ShardRouter owns those slots and demultiplexes on
// the `shard` field every control message carries.
class ShardRouter {
 public:
  ShardRouter(net::MessageServer& server, net::RpcDispatcher& rpc,
              std::uint32_t shards, net::ReliableChannel* channel,
              net::BatchChannel* batch);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Wire up this site's endpoint for `shard` (null = no endpoint here;
  // acquires are denied and the client re-targets after the election).
  void set_manager(std::uint32_t shard, GlobalCeilingManager* manager);
  void set_failover(std::uint32_t shard, FailoverCoordinator* failover);

  GlobalCeilingManager* manager(std::uint32_t shard) const {
    return managers_[shard];
  }

  // Messages carrying a shard this site has never heard of (config
  // mismatch — a bug, not a fault).
  std::uint64_t misrouted() const { return misrouted_; }

 private:
  void route_register(net::SiteId from, RegisterTxnMsg message);
  void route_release(const ReleaseAllMsg& message);
  void route_end(const EndTxnMsg& message);
  void route_acquire(AcquireReq request, net::RpcServer::Responder respond);
  void route_view(net::SiteId from, std::uint64_t term, net::SiteId manager,
                  std::uint32_t shard);

  net::MessageServer& server_;
  std::uint32_t shards_;
  std::vector<GlobalCeilingManager*> managers_;
  std::vector<FailoverCoordinator*> failovers_;
  std::uint64_t misrouted_ = 0;
};

// The client-side controller each site runs under the partitioned scheme.
// Identical in spirit to GlobalCeilingClient, but every protocol step is
// split per shard: begin registers the transaction's declared subset with
// each shard it touches, acquire targets the owning shard's manager, and
// release/end fan out to every registered shard. Each shard has its own
// manager site, election term, and (optional) lease-audit observer.
class PartitionedCeilingClient : public cc::ConcurrencyController {
 public:
  struct Options {
    std::uint32_t shards = 1;
    // Object -> shard map (core::shard_of bound to the run's config).
    std::function<std::uint32_t(db::ObjectId)> shard_of;
    // Per-try deadline on the acquire RPC; zero waits forever (fault-free).
    sim::Duration acquire_timeout{};
  };

  PartitionedCeilingClient(sim::Kernel& kernel, net::MessageServer& server,
                           net::RpcClient& rpc, Options options,
                           net::ReliableChannel* channel,
                           net::BatchChannel* batch);

  sim::Task<void> acquire(cc::CcTxn& txn, db::ObjectId object,
                          cc::LockMode mode) override;
  std::string_view name() const override { return "PCP-part"; }

  net::SiteId manager_site(std::uint32_t shard) const {
    return shards_[shard].manager_site;
  }
  std::uint64_t term(std::uint32_t shard) const {
    return shards_[shard].term;
  }
  // Failover of one shard: re-target its manager and re-register every
  // live local transaction's slice of that shard (held locks included, so
  // the successor adopts them). Other shards are untouched.
  void set_manager(std::uint32_t shard, net::SiteId manager,
                   std::uint64_t term);
  void set_lease_observer(std::uint32_t shard, LeaseObserver* observer) {
    shards_[shard].observer = observer;
  }

  std::uint64_t acquire_retries() const { return acquire_retries_; }
  std::uint64_t stale_grants_rejected() const {
    return stale_grants_rejected_;
  }

 protected:
  void do_begin(cc::CcTxn& txn) override;
  void do_release_all(cc::CcTxn& txn) override;
  void do_end(cc::CcTxn& txn) override;

 private:
  struct Shard {
    net::SiteId manager_site = 0;
    std::uint64_t term = 0;
    LeaseObserver* observer = nullptr;
  };

  template <typename T>
  void send_control(std::uint32_t shard, T message) {
    const net::SiteId to = shards_[shard].manager_site;
    if (batch_ != nullptr) {
      batch_->send(to, std::move(message));
    } else if (channel_ != nullptr) {
      channel_->send(to, std::move(message));
    } else {
      server_.send(to, std::move(message));
    }
  }

  net::MessageServer& server_;
  net::RpcClient& rpc_;
  Options options_;
  net::ReliableChannel* channel_ = nullptr;
  net::BatchChannel* batch_ = nullptr;
  std::vector<Shard> shards_;
  // txn -> (shard -> registration message, held kept current). Ordered at
  // both levels so failover re-registration replays deterministically.
  std::map<std::uint64_t, std::map<std::uint32_t, RegisterTxnMsg>>
      registered_;
  std::uint64_t acquire_retries_ = 0;
  std::uint64_t stale_grants_rejected_ = 0;
};

}  // namespace rtdb::dist
