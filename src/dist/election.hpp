#pragma once

#include <cstdint>
#include <vector>

#include "net/fault.hpp"
#include "sim/time.hpp"

namespace rtdb::dist {

// Substrate-free election + lease state machine: the pure decision core of
// FailoverCoordinator, with no kernel, network, or timer dependencies. The
// coordinator drives it from the sim kernel's beat loop; tests/rt/ drive
// the same object from real rt::ThreadBackend timers — the logic is
// identical, only the clock and the message transport differ.
//
// Lease discipline: the manager holds a term-stamped lease that is only
// considered live while it has heard from a strict majority of sites
// within `lease_interval`. The lease window is strictly shorter than the
// election window (`heartbeat_interval * miss_threshold`), and both are
// measured from the same heartbeat arrival stamps, so a manager cut off by
// a partition fences itself at least one beat before any successor can
// promote — the minority-side manager can never race a majority-side
// election into a double grant. Promotion itself also requires a majority,
// which keeps the minority side of a split from electing its own manager.
class ElectionState {
 public:
  struct Options {
    net::SiteId self = 0;
    std::uint32_t site_count = 0;
    net::SiteId initial_manager = 0;
    sim::Duration heartbeat_interval = sim::Duration::units(20);
    // Missed intervals before the manager is declared dead.
    std::uint32_t miss_threshold = 3;
    // Lease validity window; zero derives heartbeat_interval *
    // (miss_threshold - 1), one full beat inside the election window.
    sim::Duration lease_interval{};
  };

  enum class Event : std::uint8_t {
    kNone,      // nothing changed
    kAdopted,   // adopted a (term, manager) view that outranks ours
    kPromoted,  // this site promoted itself (lease acquired with the term)
    kFenced,    // we are the manager but lost quorum: lease expired
    kUnfenced,  // we are the manager and regained quorum: lease renewed
  };

  explicit ElectionState(Options options);

  // (Re)start: refresh every liveness stamp to `now` (fresh grace period)
  // and drop any held lease — a (re)joining manager must re-establish
  // quorum before granting again.
  void reset(sim::TimePoint now);

  // The initial manager's lease at system start; term 0 is born held.
  void acquire_initial_lease();

  // A heartbeat / election announcement arrived from `from` carrying its
  // view of the election. Stamps liveness; returns kAdopted when the view
  // outranks ours (higher term, or same term with a lower manager id) —
  // adopting drops any lease we held.
  Event observe(net::SiteId from, std::uint64_t term, net::SiteId manager,
                sim::TimePoint now);

  // One beat boundary. A non-manager may promote itself (manager silent
  // past the election window, we are the lowest-id live site, and a
  // majority is reachable); the manager renews or fences its lease.
  Event tick(sim::TimePoint now);

  // Site failure: the lease is volatile state and dies with the site.
  void drop_lease() { lease_held_ = false; }

  bool is_manager() const { return manager_ == options_.self; }
  net::SiteId manager() const { return manager_; }
  std::uint64_t term() const { return term_; }
  bool lease_held() const { return lease_held_; }
  sim::Duration lease_interval() const { return lease_interval_; }
  // Times this site promoted itself to manager.
  std::uint64_t promotions() const { return promotions_; }
  // Times a held lease expired because quorum was lost.
  std::uint64_t lease_expiries() const { return lease_expiries_; }
  // Heard from a strict majority of sites (self included) within the
  // lease window ending at `now`.
  bool majority_reachable(sim::TimePoint now) const;

 private:
  bool recently_heard(net::SiteId site, sim::TimePoint now) const;

  Options options_;
  sim::Duration lease_interval_{};
  std::uint64_t term_ = 0;
  net::SiteId manager_ = 0;
  bool lease_held_ = false;
  std::vector<sim::TimePoint> last_heard_;
  std::uint64_t promotions_ = 0;
  std::uint64_t lease_expiries_ = 0;
};

}  // namespace rtdb::dist
