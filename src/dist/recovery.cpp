#include "dist/recovery.hpp"

namespace rtdb::dist {

RecoveryManager::RecoveryManager(net::MessageServer& server,
                                 db::ResourceManager& rm, Options options,
                                 net::ReliableChannel* channel)
    : server_(server), rm_(rm), options_(options), channel_(channel) {
  auto on_request = [this](net::SiteId from, SyncRequestMsg) {
    serve_sync_request(from);
  };
  auto on_reply = [this](net::SiteId from, SyncReplyMsg reply) {
    apply_sync_reply(from, std::move(reply));
  };
  if (channel_ != nullptr) {
    channel_->on<SyncRequestMsg>(on_request);
    channel_->on<SyncReplyMsg>(on_reply);
  } else {
    server_.on<SyncRequestMsg>(on_request);
    server_.on<SyncReplyMsg>(on_reply);
  }
}

RecoveryManager::~RecoveryManager() {
  if (retry_timer_.valid()) server_.kernel().cancel_event(retry_timer_);
}

void RecoveryManager::request_catch_up() {
  ++catch_ups_;
  if (retry_timer_.valid()) {
    server_.kernel().cancel_event(retry_timer_);
    retry_timer_ = {};
  }
  pending_.clear();
  attempts_ = 1;
  const std::uint32_t sites = server_.network().site_count();
  for (net::SiteId site = 0; site < sites; ++site) {
    if (site == server_.site()) continue;
    pending_.insert(site);
    send_control(site, SyncRequestMsg{});
  }
  arm_retry_timer();
}

void RecoveryManager::arm_retry_timer() {
  if (pending_.empty() || attempts_ >= options_.max_attempts ||
      options_.retry_timeout.is_zero()) {
    return;
  }
  retry_timer_ = server_.kernel().schedule_in(options_.retry_timeout,
                                              [this] { on_retry_timer(); });
}

void RecoveryManager::on_retry_timer() {
  retry_timer_ = {};
  if (pending_.empty()) return;
  ++attempts_;
  for (const net::SiteId site : pending_) {
    ++retries_;
    send_control(site, SyncRequestMsg{});
  }
  arm_retry_timer();
}

void RecoveryManager::serve_sync_request(net::SiteId requester) {
  ++served_;
  SyncReplyMsg reply;
  for (const db::ObjectId object : rm_.schema().primaries_at(server_.site())) {
    reply.updates.push_back(ReplicaUpdateMsg{object, rm_.current(object)});
  }
  send_control(requester, std::move(reply));
}

void RecoveryManager::apply_sync_reply(net::SiteId from, SyncReplyMsg reply) {
  pending_.erase(from);
  for (const ReplicaUpdateMsg& update : reply.updates) {
    // Initial (sequence 0) versions carry no information; the monotonic
    // apply would reject them anyway, but skip the call for clarity.
    if (update.version.sequence == 0) continue;
    if (rm_.apply_replica_update(update.object, update.version)) {
      ++recovered_;
    }
  }
}

}  // namespace rtdb::dist
