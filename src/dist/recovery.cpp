#include "dist/recovery.hpp"

namespace rtdb::dist {

RecoveryManager::RecoveryManager(net::MessageServer& server,
                                 db::ResourceManager& rm)
    : server_(server), rm_(rm) {
  server_.on<SyncRequestMsg>([this](net::SiteId from, SyncRequestMsg) {
    serve_sync_request(from);
  });
  server_.on<SyncReplyMsg>([this](net::SiteId /*from*/, SyncReplyMsg reply) {
    apply_sync_reply(std::move(reply));
  });
}

void RecoveryManager::request_catch_up() {
  ++catch_ups_;
  const std::uint32_t sites = server_.network().site_count();
  for (net::SiteId site = 0; site < sites; ++site) {
    if (site == server_.site()) continue;
    server_.send(site, SyncRequestMsg{});
  }
}

void RecoveryManager::serve_sync_request(net::SiteId requester) {
  ++served_;
  SyncReplyMsg reply;
  for (const db::ObjectId object : rm_.schema().primaries_at(server_.site())) {
    reply.updates.push_back(ReplicaUpdateMsg{object, rm_.current(object)});
  }
  server_.send(requester, std::move(reply));
}

void RecoveryManager::apply_sync_reply(SyncReplyMsg reply) {
  for (const ReplicaUpdateMsg& update : reply.updates) {
    // Initial (sequence 0) versions carry no information; the monotonic
    // apply would reject them anyway, but skip the call for clarity.
    if (update.version.sequence == 0) continue;
    if (rm_.apply_replica_update(update.object, update.version)) {
      ++recovered_;
    }
  }
}

}  // namespace rtdb::dist
