#pragma once

#include "cc/controller.hpp"
#include "cc/serializability.hpp"
#include "db/resource_manager.hpp"
#include "dist/replication.hpp"
#include "sched/cpu.hpp"
#include "sim/kernel.hpp"
#include "txn/transaction.hpp"

namespace rtdb::dist {

// The local ceiling approach of §4: every site runs its own priority
// ceiling manager over its full replica of the database; update
// transactions execute entirely locally against primary copies co-located
// with them, commit locally, and only then propagate the new versions to
// the secondary copies asynchronously. Read-only transactions read local
// copies, accepting temporal inconsistency.
//
// No locks are ever held across the network, so there can be no
// distributed deadlock (each site's ceiling manager handles local safety).
class ReplicatedExecutor : public txn::TxnExecutor {
 public:
  struct Services {
    sim::Kernel* kernel = nullptr;
    sched::PreemptiveCpu* cpu = nullptr;
    db::ResourceManager* rm = nullptr;
    cc::ConcurrencyController* cc = nullptr;  // the site's ceiling manager
    ReplicationManager* replication = nullptr;
    cc::HistoryRecorder* history = nullptr;  // optional oracle
  };
  struct Costs {
    sim::Duration cpu_per_object{};
    bool use_priority_scheduling = true;
  };

  ReplicatedExecutor(Services services, Costs costs);

  sim::Task<void> run(txn::AttemptContext& attempt,
                      const txn::TransactionSpec& spec) override;
  void release(txn::AttemptContext& attempt, const txn::TransactionSpec& spec,
               bool committed) override;

 private:
  sim::Priority sched_priority(const cc::CcTxn& ctx) const;

  Services services_;
  Costs costs_;
};

}  // namespace rtdb::dist
