#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/controller.hpp"
#include "cc/pcp.hpp"
#include "cc/serializability.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "net/message_server.hpp"
#include "net/rpc.hpp"
#include "sched/cpu.hpp"
#include "sim/kernel.hpp"
#include "txn/transaction.hpp"
#include "txn/two_phase_commit.hpp"

namespace rtdb::dist {

// ---- wire messages of the global ceiling scheme ----

struct RegisterTxnMsg {
  std::uint64_t txn = 0;
  std::int64_t priority_key = 0;
  std::uint32_t priority_tie = 0;
  std::vector<cc::Operation> operations;
};
struct ReleaseAllMsg {
  std::uint64_t txn = 0;
};
struct EndTxnMsg {
  std::uint64_t txn = 0;
};
// RPC request/response for lock acquisition.
struct AcquireReq {
  std::uint64_t txn = 0;
  db::ObjectId object = 0;
  cc::LockMode mode = cc::LockMode::kRead;
};
struct AcquireResp {
  bool granted = false;
};
// RPC for reading a remote primary copy.
struct DataReadReq {
  db::ObjectId object = 0;
};
struct DataReadResp {
  db::Version version{};
};
// Ships an update transaction's writes to a participant ahead of 2PC.
// With `versions` filled in (the replicated-synchronous variant) the
// participant installs them verbatim; empty versions (the partitioned
// variant) mean the owner computes versions itself on commit.
struct WriteSetMsg {
  std::uint64_t txn = 0;
  std::vector<db::ObjectId> objects;
  std::vector<db::Version> versions;
};

// The global ceiling manager of §4: one site holds all the information for
// the ceiling protocol and takes every ceiling-blocking decision; lock
// requests from every site travel to it and grants travel back, so locks
// are held across the network for the whole transaction.
//
// Each registered transaction has a mirror CcTxn here; a waiting grant is a
// kernel process blocked inside the embedded PriorityCeiling instance.
class GlobalCeilingManager {
 public:
  GlobalCeilingManager(net::MessageServer& server, net::RpcDispatcher& rpc,
                       std::uint32_t object_count);

  GlobalCeilingManager(const GlobalCeilingManager&) = delete;
  GlobalCeilingManager& operator=(const GlobalCeilingManager&) = delete;

  const cc::PriorityCeiling& protocol() const { return pcp_; }
  std::uint64_t registrations() const { return registrations_; }
  std::uint64_t acquire_requests() const { return acquire_requests_; }
  std::uint64_t denials() const { return denials_; }
  // Transactions currently registered here; 0 once the system drains.
  std::size_t live_mirrors() const { return mirrors_.size(); }

  // Failure-detector hook: aborts and deregisters every mirror homed at
  // `site` (the site crashed — its transactions will never send their
  // release/end messages), releasing whatever they held so the survivors
  // are not blocked behind a dead site's locks.
  void abort_site(net::SiteId site);

 private:
  struct Mirror {
    cc::CcTxn ctx;
    net::SiteId home = 0;
    std::vector<sim::ProcessId> pending;
    bool aborted = false;
  };

  void handle_register(net::SiteId from, RegisterTxnMsg message);
  void handle_release(std::uint64_t txn);
  void handle_end(std::uint64_t txn);
  void handle_acquire(AcquireReq request, net::RpcServer::Responder respond);
  sim::Task<void> serve_acquire(Mirror& mirror, AcquireReq request,
                                net::RpcServer::Responder respond);
  // PCP backstop hook (dynamic-arrival deadlock at the manager).
  void abort_mirror(db::TxnId victim, cc::AbortReason reason);
  void finish_abort(Mirror& mirror);

  net::MessageServer& server_;
  cc::PriorityCeiling pcp_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Mirror>> mirrors_;
  std::uint64_t registrations_ = 0;
  std::uint64_t acquire_requests_ = 0;
  std::uint64_t denials_ = 0;
};

// The client-side controller each site runs: every protocol step is a
// message to the manager. acquire() blocks for the round trip and for the
// (possibly long) remote ceiling blocking; a denial (the manager aborted
// the transaction) surfaces as TxnAborted, restarting the attempt.
class GlobalCeilingClient : public cc::ConcurrencyController {
 public:
  GlobalCeilingClient(sim::Kernel& kernel, net::MessageServer& server,
                      net::RpcClient& rpc, net::SiteId manager_site);

  void on_begin(cc::CcTxn& txn) override;
  sim::Task<void> acquire(cc::CcTxn& txn, db::ObjectId object,
                          cc::LockMode mode) override;
  void release_all(cc::CcTxn& txn) override;
  void on_end(cc::CcTxn& txn) override;
  std::string_view name() const override { return "PCP-global"; }

 private:
  net::MessageServer& server_;
  net::RpcClient& rpc_;
  net::SiteId manager_site_;
};

// Per-site data service for the partitioned database: answers remote
// primary-copy reads and acts as the 2PC participant that applies shipped
// write sets on commit.
class DataServer {
 public:
  DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
             db::ResourceManager& rm)
      : DataServer(server, rpc, rm, sim::Duration::zero()) {}
  // `decision_timeout` > 0 arms presumed abort on the embedded 2PC
  // participant (see txn::CommitParticipant::Options).
  DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
             db::ResourceManager& rm, sim::Duration decision_timeout);

  DataServer(const DataServer&) = delete;
  DataServer& operator=(const DataServer&) = delete;

  // Site crash: staged (uncommitted) write sets are volatile state and die
  // with the site.
  void on_crash() { staged_.clear(); }

  std::uint64_t remote_reads() const { return remote_reads_; }
  std::uint64_t applied_commits() const { return applied_commits_; }
  std::uint64_t presumed_aborts() const {
    return participant_.presumed_aborts();
  }

 private:
  net::MessageServer& server_;
  db::ResourceManager& rm_;
  txn::CommitParticipant participant_;
  std::unordered_map<std::uint64_t, WriteSetMsg> staged_;
  std::uint64_t remote_reads_ = 0;
  std::uint64_t applied_commits_ = 0;
};

// Transaction body under the global scheme: every lock is acquired through
// the remote ceiling manager and held across the network for the whole
// transaction. Two data placements are supported, selected by the schema:
//
//  * kFullyReplicated (the paper's setting — "every data object maintains
//    most up-to-date value"): reads are local, and commits install the new
//    versions at *every* site synchronously under the global locks (2PC to
//    all other sites), which is what guarantees temporal consistency and
//    what makes the scheme expensive;
//  * kPartitioned (extension): reads of remote primaries are DataReadReq
//    round trips and commits run 2PC across the owner sites only.
class GlobalExecutor : public txn::TxnExecutor {
 public:
  struct Services {
    sim::Kernel* kernel = nullptr;
    sched::PreemptiveCpu* cpu = nullptr;
    db::ResourceManager* rm = nullptr;  // this site's partition
    const db::Database* schema = nullptr;
    GlobalCeilingClient* cc = nullptr;
    net::MessageServer* server = nullptr;
    net::RpcClient* rpc = nullptr;
    txn::CommitCoordinator* coordinator = nullptr;
    cc::HistoryRecorder* history = nullptr;
  };
  struct Costs {
    sim::Duration cpu_per_object{};
    bool use_priority_scheduling = true;
    sim::Duration vote_timeout = sim::Duration::units(1000);
  };

  GlobalExecutor(Services services, Costs costs);

  sim::Task<void> run(txn::AttemptContext& attempt,
                      const txn::TransactionSpec& spec) override;
  void release(txn::AttemptContext& attempt, const txn::TransactionSpec& spec,
               bool committed) override;

 private:
  sim::Priority sched_priority(const cc::CcTxn& ctx) const;

  Services services_;
  Costs costs_;
};

}  // namespace rtdb::dist
