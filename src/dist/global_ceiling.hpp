#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/controller.hpp"
#include "cc/pcp.hpp"
#include "cc/serializability.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "dist/lease.hpp"
#include "net/batch.hpp"
#include "net/message_server.hpp"
#include "net/reliable.hpp"
#include "net/rpc.hpp"
#include "sched/cpu.hpp"
#include "sim/kernel.hpp"
#include "txn/transaction.hpp"
#include "txn/two_phase_commit.hpp"

namespace rtdb::dist {

// ---- wire messages of the global ceiling scheme ----

// Control messages carry the 1-based attempt number of the sending attempt
// (0 = legacy sender): with retransmission in play, a duplicate from an
// aborted attempt must not corrupt the state of the current one.
//
// Under the partitioned scheme every control message also carries the
// shard it addresses: a site hosts one handler slot per message type, so
// a per-site ShardRouter demultiplexes on this field. 0 (the only value
// the global scheme ever sends) routes to the sole manager.
struct RegisterTxnMsg {
  std::uint64_t txn = 0;
  std::uint32_t attempt = 0;
  std::int64_t priority_key = 0;
  std::uint32_t priority_tie = 0;
  // Hard deadline of the transaction (ticks since the origin; 0 from
  // legacy senders). Past it the home watchdog has provably killed the
  // transaction, so a reaping manager may treat a surviving mirror as an
  // orphan whose teardown messages were lost.
  std::int64_t deadline_ticks = 0;
  std::vector<cc::Operation> operations;
  // Locks the attempt already holds (failover re-registration only): the
  // successor manager adopts them instead of re-running the grant rule.
  std::vector<cc::Operation> held;
  // Last so existing positional initializers keep their meaning.
  std::uint32_t shard = 0;
};
struct ReleaseAllMsg {
  std::uint64_t txn = 0;
  std::uint32_t attempt = 0;
  std::uint32_t shard = 0;
};
struct EndTxnMsg {
  std::uint64_t txn = 0;
  std::uint32_t attempt = 0;
  std::uint32_t shard = 0;
};
// RPC request/response for lock acquisition.
struct AcquireReq {
  std::uint64_t txn = 0;
  std::uint32_t attempt = 0;
  db::ObjectId object = 0;
  cc::LockMode mode = cc::LockMode::kRead;
  std::uint32_t shard = 0;
};
struct AcquireResp {
  bool granted = false;
  // The granting manager's lease term. A client that has adopted a newer
  // election rejects a grant stamped with an older term — the stale-grant
  // fence that closes the split-brain window a healed minority-side
  // manager could otherwise exploit. Denials carry the term too (it is
  // ignored). 0 for the fault-free single-manager configuration.
  std::uint64_t term = 0;
};
// RPC for reading a remote primary copy.
struct DataReadReq {
  db::ObjectId object = 0;
};
struct DataReadResp {
  db::Version version{};
};
// Ships an update transaction's writes to a participant ahead of 2PC.
// With `versions` filled in (the replicated-synchronous variant) the
// participant installs them verbatim; empty versions (the partitioned
// variant) mean the owner computes versions itself on commit.
struct WriteSetMsg {
  std::uint64_t txn = 0;
  std::vector<db::ObjectId> objects;
  std::vector<db::Version> versions;
};

// The global ceiling manager of §4: one site holds all the information for
// the ceiling protocol and takes every ceiling-blocking decision; lock
// requests from every site travel to it and grants travel back, so locks
// are held across the network for the whole transaction.
//
// Each registered transaction has a mirror CcTxn here; a waiting grant is a
// kernel process blocked inside the embedded PriorityCeiling instance.
class GlobalCeilingManager {
 public:
  GlobalCeilingManager(net::MessageServer& server, net::RpcDispatcher& rpc,
                       std::uint32_t object_count)
      : GlobalCeilingManager(server, rpc, object_count, nullptr, true, false) {}
  // With failover, every site hosts a manager instance but only the
  // elected one is `active`; control messages optionally travel over the
  // site's ReliableChannel. An inactive manager ignores registrations and
  // denies acquires (the client retries against the real manager).
  // `reap_orphans` arms the deadline-based orphan reaper — required under
  // faults (a partition can eat a dead transaction's ReleaseAll/EndTxn for
  // longer than the retransmit budget, leaving its mirror and any blocked
  // grant stuck here forever) and left off in fault-free runs so no extra
  // kernel events exist and artifacts stay byte-identical.
  // `batch` non-null routes the handler registrations through the site's
  // BatchChannel so coalesced control frames are unpacked (the channel is
  // an exact passthrough when its window is zero).
  GlobalCeilingManager(net::MessageServer& server, net::RpcDispatcher& rpc,
                       std::uint32_t object_count,
                       net::ReliableChannel* channel, bool active,
                       bool reap_orphans = false,
                       net::BatchChannel* batch = nullptr);

  // Routed mode (the partitioned scheme): the manager registers NO
  // handlers — a per-site ShardRouter owns the per-type handler slots and
  // feeds the right shard's manager through the route_* entry points.
  struct Routed {};
  GlobalCeilingManager(Routed, net::MessageServer& server,
                       std::uint32_t object_count, bool active,
                       bool reap_orphans);

  // Entry points for the ShardRouter (routed mode; harmless otherwise).
  void route_register(net::SiteId from, RegisterTxnMsg message) {
    handle_register(from, std::move(message));
  }
  void route_release(const ReleaseAllMsg& message) { handle_release(message); }
  void route_end(const EndTxnMsg& message) { handle_end(message); }
  void route_acquire(AcquireReq request, net::RpcServer::Responder respond) {
    handle_acquire(std::move(request), std::move(respond));
  }

  GlobalCeilingManager(const GlobalCeilingManager&) = delete;
  GlobalCeilingManager& operator=(const GlobalCeilingManager&) = delete;

  const cc::PriorityCeiling& protocol() const { return pcp_; }
  // Non-const access for wiring (conformance observer attachment).
  cc::PriorityCeiling& protocol() { return pcp_; }
  std::uint64_t registrations() const { return registrations_; }
  std::uint64_t acquire_requests() const { return acquire_requests_; }
  std::uint64_t denials() const { return denials_; }
  // Locks re-installed from failover re-registrations (`held` sets): locks
  // that would otherwise have been orphaned at the dead manager.
  std::uint64_t orphan_locks_reclaimed() const { return orphans_reclaimed_; }
  // Mirrors reaped past their deadline (teardown messages lost for good).
  std::uint64_t orphans_reaped() const { return orphans_reaped_; }
  // Transactions currently registered here; 0 once the system drains.
  std::size_t live_mirrors() const { return mirrors_.size(); }
  bool active() const { return active_; }
  bool fenced() const { return fenced_; }
  // Acquires denied because the lease was fenced at grant time.
  std::uint64_t fence_denials() const { return fence_denials_; }

  // Failover: this site was elected manager with a lease for `term`; start
  // accepting state and stamp grants with the term.
  void activate(std::uint64_t term) {
    active_ = true;
    fenced_ = false;
    lease_term_ = term;
  }
  void activate() { activate(lease_term_); }
  // Lease fence: a fenced manager stops granting (acquires are denied,
  // in-flight grants deny at reply time) but keeps serving registers,
  // releases, and ends — the lock book stays current so the successor's
  // re-registrations adopt an accurate held set.
  void set_fenced(bool fenced) { fenced_ = fenced; }
  // Conformance audit tap for grant stamping (optional; may be null).
  void set_lease_observer(LeaseObserver* observer) { observer_ = observer; }
  // Failover: a peer outranked this manager (stale restored site). Drops
  // every mirror — the authoritative state now lives at the new manager,
  // rebuilt from the clients' re-registrations.
  void deactivate();
  // Site failure: all volatile manager state dies with the site.
  void on_crash();

  // Failure-detector hook: aborts and deregisters every mirror homed at
  // `site` (the site crashed — its transactions will never send their
  // release/end messages), releasing whatever they held so the survivors
  // are not blocked behind a dead site's locks.
  void abort_site(net::SiteId site);

 private:
  struct Mirror {
    cc::CcTxn ctx;
    net::SiteId home = 0;
    std::uint32_t attempt = 0;
    std::vector<sim::ProcessId> pending;
    // Re-issued acquires for an object already being served: the extra
    // responders piggyback on the in-flight grant's result (answering a
    // retried RPC's live correlation; the first reply is dropped as late).
    std::map<db::ObjectId, std::vector<net::RpcServer::Responder>> inflight;
    bool aborted = false;
    // Armed orphan-reap timer (reaping managers only); disarmed on every
    // normal removal path.
    sim::EventId reap_event{};
    bool reap_armed = false;
  };

  void install_hooks();
  void handle_register(net::SiteId from, RegisterTxnMsg message);
  void handle_release(const ReleaseAllMsg& message);
  void handle_end(const EndTxnMsg& message);
  void handle_acquire(AcquireReq request, net::RpcServer::Responder respond);
  sim::Task<void> serve_acquire(Mirror& mirror, AcquireReq request,
                                net::RpcServer::Responder respond);
  // Kills waiting grants and releases everything; shared teardown of
  // handle_release / handle_end.
  void cancel_pending(Mirror& mirror);
  // Orphan reaper (faulty runs only): every registration arms a timer at
  // the transaction's deadline plus one unit; a mirror still present when
  // it fires lost its teardown messages for good and is removed as if the
  // ReleaseAll + EndTxn had arrived.
  void arm_reap(std::uint64_t txn, Mirror& mirror, std::int64_t deadline_ticks);
  void disarm_reap(Mirror& mirror);
  void reap_orphan(std::uint64_t txn, std::uint32_t attempt);
  void remove_mirror(std::unordered_map<
                     std::uint64_t, std::unique_ptr<Mirror>>::iterator it);
  // PCP backstop hook (dynamic-arrival deadlock at the manager).
  void abort_mirror(db::TxnId victim, cc::AbortReason reason);
  void finish_abort(Mirror& mirror);

  net::MessageServer& server_;
  cc::PriorityCeiling pcp_;
  net::ReliableChannel* channel_ = nullptr;
  LeaseObserver* observer_ = nullptr;
  bool active_ = true;
  bool fenced_ = false;
  bool reap_orphans_ = false;
  std::uint64_t lease_term_ = 0;
  std::uint64_t fence_denials_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<Mirror>> mirrors_;
  // Highest attempt known to have ended, per transaction: a retransmitted
  // Register of a finished attempt must not resurrect its mirror.
  std::unordered_map<std::uint64_t, std::uint32_t> ended_;
  std::uint64_t registrations_ = 0;
  std::uint64_t acquire_requests_ = 0;
  std::uint64_t denials_ = 0;
  std::uint64_t orphans_reclaimed_ = 0;
  std::uint64_t orphans_reaped_ = 0;
};

// The client-side controller each site runs: every protocol step is a
// message to the manager. acquire() blocks for the round trip and for the
// (possibly long) remote ceiling blocking; a denial (the manager aborted
// the transaction) surfaces as TxnAborted, restarting the attempt.
class GlobalCeilingClient : public cc::ConcurrencyController {
 public:
  struct Options {
    net::SiteId manager_site = 0;
    // Per-try deadline on the acquire RPC; on expiry the request is
    // re-issued (possibly to a new manager after a failover). Zero waits
    // forever — the fault-free behaviour, where a response is guaranteed.
    sim::Duration acquire_timeout{};
  };

  GlobalCeilingClient(sim::Kernel& kernel, net::MessageServer& server,
                      net::RpcClient& rpc, net::SiteId manager_site)
      : GlobalCeilingClient(kernel, server, rpc, Options{manager_site, {}},
                            nullptr) {}
  GlobalCeilingClient(sim::Kernel& kernel, net::MessageServer& server,
                      net::RpcClient& rpc, Options options,
                      net::ReliableChannel* channel);

  sim::Task<void> acquire(cc::CcTxn& txn, db::ObjectId object,
                          cc::LockMode mode) override;
  std::string_view name() const override { return "PCP-global"; }

  net::SiteId manager_site() const { return manager_site_; }
  // Failover: re-target the manager and re-register every live local
  // transaction there (including the locks it already holds, which the new
  // manager adopts). In-flight acquires re-issue themselves on their next
  // timeout. `term` is the election term the client accepts grants
  // against; a term-only change (same manager, newer election learned
  // late) just refreshes the fence without re-registering.
  void set_manager(net::SiteId manager, std::uint64_t term);
  void set_manager(net::SiteId manager) { set_manager(manager, term_); }
  std::uint64_t term() const { return term_; }
  // Acquire RPCs re-issued after a timeout.
  std::uint64_t acquire_retries() const { return acquire_retries_; }
  // Grants rejected because their term predated the client's election
  // view (a fenced-off old manager answered a retried request).
  std::uint64_t stale_grants_rejected() const {
    return stale_grants_rejected_;
  }
  // Conformance audit tap for grant acceptance (optional; may be null).
  void set_lease_observer(LeaseObserver* observer) { observer_ = observer; }
  // Routes control messages through the site's BatchChannel (coalesced
  // same-destination frames). May be null; a disabled channel passes
  // through unchanged.
  void set_batch(net::BatchChannel* batch) { batch_ = batch; }

 protected:
  void do_begin(cc::CcTxn& txn) override;
  void do_release_all(cc::CcTxn& txn) override;
  void do_end(cc::CcTxn& txn) override;

 private:
  // Everything needed to (re-)register a live transaction with a manager.
  struct Registration {
    RegisterTxnMsg msg;  // held kept current as locks are granted
  };

  template <typename T>
  void send_control(T message) {
    if (batch_ != nullptr) {
      batch_->send(manager_site_, std::move(message));
    } else if (channel_ != nullptr) {
      channel_->send(manager_site_, std::move(message));
    } else {
      server_.send(manager_site_, std::move(message));
    }
  }

  net::MessageServer& server_;
  net::RpcClient& rpc_;
  net::SiteId manager_site_;
  std::uint64_t term_ = 0;
  sim::Duration acquire_timeout_{};
  net::ReliableChannel* channel_ = nullptr;
  net::BatchChannel* batch_ = nullptr;
  LeaseObserver* observer_ = nullptr;
  std::map<std::uint64_t, Registration> registered_;
  std::uint64_t acquire_retries_ = 0;
  std::uint64_t stale_grants_rejected_ = 0;
};

// Per-site data service for the partitioned database: answers remote
// primary-copy reads and acts as the 2PC participant that applies shipped
// write sets on commit.
class DataServer {
 public:
  DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
             db::ResourceManager& rm)
      : DataServer(server, rpc, rm, txn::CommitParticipant::Options{}) {}
  // `decision_timeout` > 0 arms presumed abort on the embedded 2PC
  // participant (see txn::CommitParticipant::Options).
  DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
             db::ResourceManager& rm, sim::Duration decision_timeout)
      : DataServer(server, rpc, rm,
                   txn::CommitParticipant::Options{decision_timeout}) {}
  DataServer(net::MessageServer& server, net::RpcDispatcher& rpc,
             db::ResourceManager& rm,
             txn::CommitParticipant::Options participant_options);

  DataServer(const DataServer&) = delete;
  DataServer& operator=(const DataServer&) = delete;

  // Site crash: staged (uncommitted) write sets are volatile state and die
  // with the site.
  void on_crash() { staged_.clear(); }

  // The embedded 2PC participant (wire an outcome source for cooperative
  // termination).
  txn::CommitParticipant& participant() { return participant_; }

  std::uint64_t remote_reads() const { return remote_reads_; }
  std::uint64_t applied_commits() const { return applied_commits_; }
  std::uint64_t presumed_aborts() const {
    return participant_.presumed_aborts();
  }
  std::uint64_t termination_queries() const {
    return participant_.termination_queries();
  }
  std::uint64_t termination_resolutions() const {
    return participant_.termination_resolutions();
  }

 private:
  net::MessageServer& server_;
  db::ResourceManager& rm_;
  txn::CommitParticipant participant_;
  std::unordered_map<std::uint64_t, WriteSetMsg> staged_;
  std::uint64_t remote_reads_ = 0;
  std::uint64_t applied_commits_ = 0;
};

// Transaction body under the global scheme: every lock is acquired through
// the remote ceiling manager and held across the network for the whole
// transaction. Two data placements are supported, selected by the schema:
//
//  * kFullyReplicated (the paper's setting — "every data object maintains
//    most up-to-date value"): reads are local, and commits install the new
//    versions at *every* site synchronously under the global locks (2PC to
//    all other sites), which is what guarantees temporal consistency and
//    what makes the scheme expensive;
//  * kPartitioned (extension): reads of remote primaries are DataReadReq
//    round trips and commits run 2PC across the owner sites only.
class GlobalExecutor : public txn::TxnExecutor {
 public:
  struct Services {
    sim::Kernel* kernel = nullptr;
    sched::PreemptiveCpu* cpu = nullptr;
    db::ResourceManager* rm = nullptr;  // this site's partition
    const db::Database* schema = nullptr;
    // Any remote-client controller (GlobalCeilingClient or the
    // partitioned scheme's PartitionedCeilingClient); only the base
    // lifecycle is used.
    cc::ConcurrencyController* cc = nullptr;
    net::MessageServer* server = nullptr;
    net::RpcClient* rpc = nullptr;
    txn::CommitCoordinator* coordinator = nullptr;
    cc::HistoryRecorder* history = nullptr;
  };
  struct Costs {
    sim::Duration cpu_per_object{};
    bool use_priority_scheduling = true;
    sim::Duration vote_timeout = sim::Duration::units(1000);
  };

  GlobalExecutor(Services services, Costs costs);

  sim::Task<void> run(txn::AttemptContext& attempt,
                      const txn::TransactionSpec& spec) override;
  void release(txn::AttemptContext& attempt, const txn::TransactionSpec& spec,
               bool committed) override;

 private:
  sim::Priority sched_priority(const cc::CcTxn& ctx) const;

  Services services_;
  Costs costs_;
};

}  // namespace rtdb::dist
