#include "dist/replication.hpp"

#include <cassert>

namespace rtdb::dist {

ReplicationManager::ReplicationManager(net::MessageServer& server,
                                       db::ResourceManager& rm,
                                       net::ReliableChannel* channel)
    : server_(server), rm_(rm), channel_(channel) {
  // channel->on also registers the raw handler, so legacy senders and the
  // disabled-channel path keep working unchanged.
  if (channel_ != nullptr) {
    channel_->on<ReplicaUpdateMsg>(
        [this](net::SiteId /*from*/, ReplicaUpdateMsg message) {
          apply(message);
        });
  } else {
    server_.on<ReplicaUpdateMsg>(
        [this](net::SiteId /*from*/, ReplicaUpdateMsg message) {
          apply(message);
        });
  }
}

void ReplicationManager::propagate(std::span<const db::ObjectId> objects,
                                   std::span<const db::Version> versions) {
  assert(objects.size() == versions.size());
  const std::uint32_t sites = server_.network().site_count();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    assert(rm_.schema().is_primary(server_.site(), objects[i]));
    for (net::SiteId site = 0; site < sites; ++site) {
      if (site == server_.site()) continue;
      if (channel_ != nullptr) {
        channel_->send(site, ReplicaUpdateMsg{objects[i], versions[i]});
      } else {
        server_.send(site, ReplicaUpdateMsg{objects[i], versions[i]});
      }
      ++sent_;
    }
  }
}

void ReplicationManager::apply(ReplicaUpdateMsg message) {
  const sim::Duration lag =
      server_.kernel().now() - message.version.written_at;
  if (rm_.apply_replica_update(message.object, message.version)) {
    ++applied_;
    total_lag_ += lag;
    if (lag > max_lag_) max_lag_ = lag;
  } else {
    ++stale_;
  }
}

}  // namespace rtdb::dist
