#include "dist/failover.hpp"

#include <cassert>
#include <string>

namespace rtdb::dist {

using net::SiteId;

FailoverCoordinator::FailoverCoordinator(net::MessageServer& server,
                                         Options options, Hooks hooks)
    : server_(server),
      options_(options),
      hooks_(std::move(hooks)),
      state_(ElectionState::Options{server.site(), options.site_count,
                                    options.initial_manager,
                                    options.heartbeat_interval,
                                    options.miss_threshold,
                                    options.lease_interval}) {
  assert(options_.site_count > 0);
  if (!options_.register_handlers) return;  // routed mode: deliver_view
  server_.on<HeartbeatMsg>([this](SiteId from, HeartbeatMsg msg) {
    handle_view(from, msg.term, msg.manager);
  });
  server_.on<ManagerElectedMsg>([this](SiteId from, ManagerElectedMsg msg) {
    handle_view(from, msg.term, msg.manager);
  });
}

void FailoverCoordinator::start() {
  assert(!started_);
  started_ = true;
  state_.reset(server_.kernel().now());
  if (state_.is_manager()) {
    // Term 0 is born held: the initial manager grants from the first tick.
    state_.acquire_initial_lease();
    if (observer_ != nullptr) {
      observer_->on_lease_acquired(server_.site(), state_.term());
    }
  }
  loop_ = server_.kernel().spawn(loop_name(), beat_loop());
}

void FailoverCoordinator::on_crash() {
  if (started_ && server_.kernel().alive(loop_)) server_.kernel().kill(loop_);
  if (state_.lease_held()) {
    state_.drop_lease();
    if (observer_ != nullptr) {
      observer_->on_lease_released(server_.site(), state_.term());
    }
  }
}

void FailoverCoordinator::on_restore() {
  if (!started_) return;
  // Fresh grace period: nobody is declared dead on stale pre-crash stamps.
  // The lease stays dropped until quorum is re-established by a tick.
  state_.reset(server_.kernel().now());
  loop_ = server_.kernel().spawn(loop_name(), beat_loop());
}

std::string FailoverCoordinator::loop_name() const {
  std::string name = "failover-" + std::to_string(server_.site());
  // Routed (per-shard) coordinators share a site; disambiguate traces.
  if (!options_.register_handlers) {
    name += "-s" + std::to_string(options_.shard);
  }
  return name;
}

sim::Task<void> FailoverCoordinator::beat_loop() {
  while (true) {
    co_await server_.kernel().delay(options_.heartbeat_interval);
    if (hooks_.keep_running && !hooks_.keep_running()) co_return;
    for (SiteId site = 0; site < options_.site_count; ++site) {
      if (site == server_.site()) continue;
      const HeartbeatMsg beat{state_.term(), state_.manager(),
                              options_.shard};
      if (batch_ != nullptr) {
        batch_->send_raw(site, beat);
      } else {
        server_.send(site, beat);
      }
    }
    apply_tick_event(state_.tick(server_.kernel().now()));
  }
}

void FailoverCoordinator::apply_tick_event(ElectionState::Event event) {
  switch (event) {
    case ElectionState::Event::kPromoted:
      if (observer_ != nullptr) {
        observer_->on_term_adopted(server_.site(), state_.term());
        observer_->on_lease_acquired(server_.site(), state_.term());
      }
      if (hooks_.promote) hooks_.promote(state_.term());
      if (hooks_.manager_changed) {
        hooks_.manager_changed(state_.manager(), state_.term());
      }
      broadcast_elected();
      break;
    case ElectionState::Event::kFenced:
      if (hooks_.set_fenced) hooks_.set_fenced(true);
      if (observer_ != nullptr) {
        observer_->on_lease_released(server_.site(), state_.term());
      }
      break;
    case ElectionState::Event::kUnfenced:
      if (observer_ != nullptr) {
        observer_->on_lease_acquired(server_.site(), state_.term());
      }
      if (hooks_.set_fenced) hooks_.set_fenced(false);
      break;
    case ElectionState::Event::kNone:
    case ElectionState::Event::kAdopted:
      break;
  }
}

void FailoverCoordinator::broadcast_elected() {
  for (SiteId site = 0; site < options_.site_count; ++site) {
    if (site == server_.site()) continue;
    const ManagerElectedMsg msg{state_.term(), state_.manager(),
                                options_.shard};
    if (batch_ != nullptr) {
      batch_->send_raw(site, msg);
    } else {
      server_.send(site, msg);
    }
  }
}

void FailoverCoordinator::handle_view(SiteId from, std::uint64_t term,
                                      SiteId manager) {
  const bool was_manager = state_.is_manager();
  const bool had_lease = state_.lease_held();
  const std::uint64_t prev_term = state_.term();
  const SiteId prev_manager = state_.manager();
  const ElectionState::Event event =
      state_.observe(from, term, manager, server_.kernel().now());
  if (event != ElectionState::Event::kAdopted) return;
  if (had_lease && observer_ != nullptr) {
    observer_->on_lease_released(server_.site(), prev_term);
  }
  if (observer_ != nullptr && state_.term() != prev_term) {
    observer_->on_term_adopted(server_.site(), state_.term());
  }
  if (was_manager && !state_.is_manager() && hooks_.demote) hooks_.demote();
  if (hooks_.manager_changed && (state_.manager() != prev_manager ||
                                 state_.term() != prev_term)) {
    hooks_.manager_changed(state_.manager(), state_.term());
  }
}

}  // namespace rtdb::dist
