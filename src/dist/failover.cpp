#include "dist/failover.hpp"

#include <cassert>

namespace rtdb::dist {

using net::SiteId;

FailoverCoordinator::FailoverCoordinator(net::MessageServer& server,
                                         Options options, Hooks hooks)
    : server_(server),
      options_(options),
      hooks_(std::move(hooks)),
      manager_(options.initial_manager),
      last_heard_(options.site_count, sim::TimePoint::origin()) {
  assert(options_.site_count > 0);
  server_.on<HeartbeatMsg>([this](SiteId from, HeartbeatMsg msg) {
    handle_heartbeat(from, msg);
  });
  server_.on<ManagerElectedMsg>([this](SiteId from, ManagerElectedMsg msg) {
    handle_elected(from, msg);
  });
}

void FailoverCoordinator::start() {
  assert(!started_);
  started_ = true;
  const sim::TimePoint now = server_.kernel().now();
  for (sim::TimePoint& t : last_heard_) t = now;
  loop_ = server_.kernel().spawn(
      "failover-" + std::to_string(server_.site()), beat_loop());
}

void FailoverCoordinator::on_crash() {
  if (started_ && server_.kernel().alive(loop_)) server_.kernel().kill(loop_);
}

void FailoverCoordinator::on_restore() {
  if (!started_) return;
  // Fresh grace period: nobody is declared dead on stale pre-crash stamps.
  const sim::TimePoint now = server_.kernel().now();
  for (sim::TimePoint& t : last_heard_) t = now;
  loop_ = server_.kernel().spawn(
      "failover-" + std::to_string(server_.site()), beat_loop());
}

sim::Task<void> FailoverCoordinator::beat_loop() {
  while (true) {
    co_await server_.kernel().delay(options_.heartbeat_interval);
    if (hooks_.keep_running && !hooks_.keep_running()) co_return;
    for (SiteId site = 0; site < options_.site_count; ++site) {
      if (site == server_.site()) continue;
      server_.send(site, HeartbeatMsg{term_, manager_});
    }
    check_manager();
  }
}

bool FailoverCoordinator::recently_heard(SiteId site,
                                         sim::TimePoint now) const {
  return now - last_heard_[site] <=
         options_.heartbeat_interval *
             static_cast<std::int64_t>(options_.miss_threshold);
}

void FailoverCoordinator::check_manager() {
  if (manager_ == server_.site()) return;  // we are the manager
  const sim::TimePoint now = server_.kernel().now();
  if (recently_heard(manager_, now)) return;

  // Manager declared dead: the successor is the lowest-id site still heard
  // from (ourselves always counting as live). Every live site computes the
  // same successor from the same heartbeat history; only the successor
  // acts, the rest wait for its announcement (or its own failure).
  for (SiteId site = 0; site < options_.site_count; ++site) {
    if (site == manager_) continue;
    if (site != server_.site() && !recently_heard(site, now)) continue;
    if (site != server_.site()) return;  // a lower-id live site will promote
    term_ += 1;
    manager_ = server_.site();
    ++promotions_;
    if (hooks_.promote) hooks_.promote();
    if (hooks_.manager_changed) hooks_.manager_changed(manager_);
    broadcast_elected();
    return;
  }
}

void FailoverCoordinator::broadcast_elected() {
  for (SiteId site = 0; site < options_.site_count; ++site) {
    if (site == server_.site()) continue;
    server_.send(site, ManagerElectedMsg{term_, manager_});
  }
}

void FailoverCoordinator::handle_heartbeat(SiteId from, HeartbeatMsg msg) {
  last_heard_[from] = server_.kernel().now();
  if (msg.term > term_ ||
      (msg.term == term_ && msg.manager < manager_)) {
    adopt(msg.term, msg.manager);
  }
}

void FailoverCoordinator::handle_elected(SiteId from, ManagerElectedMsg msg) {
  last_heard_[from] = server_.kernel().now();
  if (msg.term > term_ ||
      (msg.term == term_ && msg.manager < manager_)) {
    adopt(msg.term, msg.manager);
  }
}

void FailoverCoordinator::adopt(std::uint64_t term, SiteId manager) {
  term_ = term;
  if (manager == manager_) return;
  const bool was_me = manager_ == server_.site();
  manager_ = manager;
  if (was_me && hooks_.demote) hooks_.demote();
  if (hooks_.manager_changed) hooks_.manager_changed(manager_);
}

}  // namespace rtdb::dist
