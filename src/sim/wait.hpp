#pragma once

#include <coroutine>
#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace rtdb::sim {

class Process;

// Outcome a blocked process observes when it is woken.
enum class WakeStatus : std::uint8_t {
  kOk,         // the awaited condition was satisfied
  kCancelled,  // the process was killed while blocked
  kTimeout,    // a timed wait expired
};

// Thrown inside a process when it is killed while blocked (deadline miss,
// deadlock-victim abort, explicit kill). Process code lets it propagate —
// RAII cleanup along the unwind path releases any held resources — or
// catches it at a well-defined boundary (the transaction wrapper does).
class ProcessCancelled : public std::runtime_error {
 public:
  ProcessCancelled() : std::runtime_error("process cancelled") {}
};

class Waitable;

// One blocked wait. Lives inside an awaiter object in the blocked
// coroutine's frame; linked into the owning primitive's wait queue and
// registered with the process so kill() can find and cancel it.
struct WaitNode {
  Process* proc = nullptr;
  std::coroutine_handle<> handle{};
  // Primitive currently queueing this node; null once the node has been
  // dequeued (e.g. a wake is already scheduled).
  Waitable* owner = nullptr;
  WakeStatus status = WakeStatus::kOk;
  // Set while a deferred wake (Kernel::wake_later) is scheduled, so kill()
  // can cancel it and unwind the process immediately instead.
  EventId pending_wake{};
  // Scratch fields for the owner: which internal queue the node is in, and
  // a back-pointer to the awaiter holding per-wait extras (timeout timer,
  // grant flag, delivered item).
  int tag = 0;
  void* ctx = nullptr;
  WaitNode* prev_ = nullptr;
  WaitNode* next_ = nullptr;
};

// Interface every blocking primitive implements so the kernel can revoke a
// pending wait when the blocked process is killed. cancel_wait() must
// unlink the node from the primitive's queues and undo any grant already
// attributed to it; it must not resume the process (the kernel does that).
class Waitable {
 public:
  virtual void cancel_wait(WaitNode& node) noexcept = 0;

 protected:
  ~Waitable() = default;
};

}  // namespace rtdb::sim
