#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rtdb::sim {

namespace {
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
constexpr int kMaxShift = 40;
// Health check: every kCheckWindow ops, more than kOverworkPerOp wasted
// steps per op on average flags the current layout as mismatched.
constexpr std::uint64_t kCheckWindow = 4096;
constexpr std::uint64_t kOverworkPerOp = 16;
}  // namespace

EventQueue::EventQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {
  // Initial width: 2^10 ticks (about one simulated time unit); the first
  // rebuild replaces the guess with the measured inter-event gap.
  shift_ = 10;
}

std::uint32_t EventQueue::new_slot(EventCallback callback) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.live = true;
  s.callback = std::move(callback);
  return slot;
}

void EventQueue::retire_slot(std::uint32_t slot) {
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
}

EventId EventQueue::schedule(TimePoint when, EventCallback callback) {
  const std::uint32_t slot = new_slot(std::move(callback));
  const Entry entry{when.as_ticks(), next_seq_++, slot};
  ++live_;
  ++stored_;
  if (heap_mode_) {
    heap_push(entry);
  } else {
    insert_entry(entry);
    if (stored_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      rebuild();
    }
    note_op();
  }
  return EventId{slot, slots_[slot].generation};
}

bool EventQueue::cancel(EventId id) {
  if (!pending(id)) return false;
  Slot& s = slots_[id.slot];
  s.live = false;
  s.callback = nullptr;
  // The stored entry stays; it is discarded when it reaches a bucket front
  // (or the heap top). The slot is recycled there too (not here) so the
  // structure never refers to a reused slot.
  --live_;
  return true;
}

bool EventQueue::pending(EventId id) const {
  return id.valid() && id.slot < slots_.size() &&
         slots_[id.slot].generation == id.generation && slots_[id.slot].live;
}

std::optional<TimePoint> EventQueue::next_time() {
  if (heap_mode_) {
    drop_dead_top();
    if (heap_.empty()) return std::nullopt;
    return TimePoint::at_ticks(heap_.front().time_ticks);
  }
  Bucket* bucket = find_front();
  if (bucket == nullptr) return std::nullopt;
  return TimePoint::at_ticks(bucket->front().time_ticks);
}

std::optional<EventQueue::ReadyEvent> EventQueue::pop() {
  Entry entry;
  if (heap_mode_) {
    drop_dead_top();
    if (heap_.empty()) return std::nullopt;
    entry = heap_pop_top();
    --stored_;
  } else {
    Bucket* bucket = find_front();
    if (bucket == nullptr) return std::nullopt;
    entry = bucket->front();
    ++bucket->head;
    --stored_;
    compact(*bucket);
    if (buckets_.size() > kMinBuckets && stored_ < buckets_.size() / 8) {
      rebuild();
    }
    note_op();
  }
  Slot& s = slots_[entry.slot];
  assert(s.live);
  ReadyEvent ready{TimePoint::at_ticks(entry.time_ticks),
                   std::move(s.callback)};
  s.live = false;
  s.callback = nullptr;
  retire_slot(entry.slot);
  --live_;
  return ready;
}

void EventQueue::insert_entry(const Entry& entry) {
  const std::int64_t day = day_of(entry.time_ticks);
  // A schedule behind the scan position (legal: the scan may sit on a
  // later window than "now") rewinds it, keeping the invariant that every
  // live entry's window is >= cur_window_.
  if (day < cur_window_) cur_window_ = day;
  Bucket& bucket = bucket_of(day);
  auto& items = bucket.items;
  std::size_t pos = items.size();
  while (pos > bucket.head && earlier(entry, items[pos - 1])) --pos;
  overwork_ += items.size() - pos;  // entries shifted by this insert
  items.insert(items.begin() + static_cast<std::ptrdiff_t>(pos), entry);
}

EventQueue::Bucket* EventQueue::find_front() {
  if (stored_ == 0) return nullptr;
  // Scan forward one window at a time. Windows verified empty are skipped
  // for good (cur_window_ advances); insert_entry rewinds on a schedule
  // behind the scan position. Within a bucket the due-now entries are
  // exactly a sorted prefix, because an entry of a later year is at least
  // a whole year away in time.
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    Bucket& bucket = bucket_of(cur_window_);
    purge_front(bucket);
    if (!bucket.empty() && day_of(bucket.front().time_ticks) == cur_window_) {
      overwork_ += scanned;
      return &bucket;
    }
    ++cur_window_;
  }
  overwork_ += buckets_.size();
  // A whole year with nothing due: jump straight to the earliest front.
  Bucket* best = nullptr;
  for (Bucket& bucket : buckets_) {
    purge_front(bucket);
    if (bucket.empty()) continue;
    if (best == nullptr || earlier(bucket.front(), best->front())) {
      best = &bucket;
    }
  }
  if (best == nullptr) return nullptr;  // everything stored was cancelled
  cur_window_ = day_of(best->front().time_ticks);
  return best;
}

void EventQueue::purge_front(Bucket& bucket) {
  while (!bucket.empty() && !slots_[bucket.front().slot].live) {
    retire_slot(bucket.front().slot);
    ++bucket.head;
    --stored_;
  }
  compact(bucket);
}

void EventQueue::compact(Bucket& bucket) {
  // Reclaim the consumed prefix once it dominates the vector, so a bucket
  // fed and drained concurrently doesn't grow without bound.
  if (bucket.head == bucket.items.size()) {
    bucket.items.clear();
    bucket.head = 0;
  } else if (bucket.head > 64 && bucket.head * 2 >= bucket.items.size()) {
    bucket.items.erase(
        bucket.items.begin(),
        bucket.items.begin() + static_cast<std::ptrdiff_t>(bucket.head));
    bucket.head = 0;
  }
}

void EventQueue::rebuild() {
  ++rebuilds_;
  rebuild_scratch_.clear();
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.items.size(); ++i) {
      const Entry& entry = bucket.items[i];
      if (slots_[entry.slot].live) {
        rebuild_scratch_.push_back(entry);
      } else {
        retire_slot(entry.slot);
      }
    }
    bucket.items.clear();
    bucket.head = 0;
  }
  std::sort(rebuild_scratch_.begin(), rebuild_scratch_.end(), earlier);
  stored_ = rebuild_scratch_.size();

  const std::size_t want = std::min(
      kMaxBuckets, std::bit_ceil(std::max(kMinBuckets, stored_)));
  buckets_.resize(want);
  mask_ = want - 1;

  // Bucket width tracks the mean gap between pending events (rounded up to
  // a power of two), aiming at about one event per bucket per year.
  if (stored_ >= 2) {
    const std::int64_t span = rebuild_scratch_.back().time_ticks -
                              rebuild_scratch_.front().time_ticks;
    const std::int64_t gap = span / static_cast<std::int64_t>(stored_ - 1);
    shift_ = gap <= 0 ? 0
                      : std::min(kMaxShift,
                                 static_cast<int>(std::bit_width(
                                     static_cast<std::uint64_t>(gap))));
  }
  cur_window_ = rebuild_scratch_.empty()
                    ? 0
                    : day_of(rebuild_scratch_.front().time_ticks);
  // Ascending append keeps every bucket sorted.
  for (const Entry& entry : rebuild_scratch_) {
    bucket_of(day_of(entry.time_ticks)).items.push_back(entry);
  }
}

void EventQueue::note_op() {
  if (++op_count_ < kCheckWindow) return;
  const bool overworked = overwork_ > kCheckWindow * kOverworkPerOp;
  op_count_ = 0;
  overwork_ = 0;
  if (!overworked) {
    prev_window_rebuilt_ = false;
    return;
  }
  if (prev_window_rebuilt_) {
    // Re-estimating didn't help: the distribution defeats the calendar
    // (e.g. exponentially spreading gaps). Use the ordered structure.
    enter_heap_mode();
    return;
  }
  prev_window_rebuilt_ = true;
  rebuild();
}

void EventQueue::enter_heap_mode() {
  heap_mode_ = true;
  heap_.clear();
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.items.size(); ++i) {
      const Entry& entry = bucket.items[i];
      if (slots_[entry.slot].live) {
        heap_.push_back(entry);
      } else {
        retire_slot(entry.slot);
      }
    }
  }
  stored_ = heap_.size();
  buckets_.clear();
  buckets_.shrink_to_fit();
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::heap_push(Entry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

EventQueue::Entry EventQueue::heap_pop_top() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    retire_slot(heap_pop_top().slot);
    --stored_;
  }
}

}  // namespace rtdb::sim
