#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::sim {

EventId EventQueue::schedule(TimePoint when, EventCallback callback) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.live = true;
  s.callback = std::move(callback);
  heap_push(HeapEntry{when.as_ticks(), next_seq_++, slot});
  ++live_;
  return EventId{slot, s.generation};
}

bool EventQueue::cancel(EventId id) {
  if (!pending(id)) return false;
  Slot& s = slots_[id.slot];
  s.live = false;
  s.callback = nullptr;
  // The heap entry stays; pop() discards it. The slot is recycled there too
  // (not here) so the heap never refers to a reused slot.
  --live_;
  return true;
}

bool EventQueue::pending(EventId id) const {
  return id.valid() && id.slot < slots_.size() &&
         slots_[id.slot].generation == id.generation && slots_[id.slot].live;
}

std::optional<TimePoint> EventQueue::next_time() {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  return TimePoint::at_ticks(heap_.front().time_ticks);
}

std::optional<EventQueue::ReadyEvent> EventQueue::pop() {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  HeapEntry top = heap_pop();
  Slot& s = slots_[top.slot];
  assert(s.live);
  ReadyEvent ready{TimePoint::at_ticks(top.time_ticks), std::move(s.callback)};
  s.live = false;
  s.callback = nullptr;
  ++s.generation;
  free_slots_.push_back(top.slot);
  --live_;
  return ready;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    HeapEntry dead = heap_pop();
    ++slots_[dead.slot].generation;
    free_slots_.push_back(dead.slot);
  }
}

void EventQueue::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

EventQueue::HeapEntry EventQueue::heap_pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  HeapEntry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

}  // namespace rtdb::sim
