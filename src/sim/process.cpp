#include "sim/process.hpp"

namespace rtdb::sim {

const char* to_string(ProcessState state) {
  switch (state) {
    case ProcessState::kCreated:
      return "created";
    case ProcessState::kRunning:
      return "running";
    case ProcessState::kWaiting:
      return "waiting";
    case ProcessState::kDone:
      return "done";
  }
  return "?";
}

}  // namespace rtdb::sim
