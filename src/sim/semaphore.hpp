#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "sim/intrusive_list.hpp"
#include "sim/kernel.hpp"
#include "sim/wait.hpp"

namespace rtdb::sim {

// Counting semaphore with FIFO waiters, direct hand-off (a release gives
// the credit straight to the longest-waiting process, so later arrivals
// cannot barge), optional timeouts, and kill-safety (a credit handed to a
// process that is killed before it resumes is returned to the semaphore).
//
// This is the "private semaphore" blocking primitive of the paper's
// StarLite kernel.
class Semaphore : public Waitable {
 public:
  explicit Semaphore(Kernel& kernel, std::int64_t initial = 0)
      : kernel_(kernel), count_(initial) {
    assert(initial >= 0);
  }

  class [[nodiscard]] AcquireAwaiter {
   public:
    AcquireAwaiter(Semaphore& sem, std::optional<Duration> timeout)
        : sem_(sem), timeout_(timeout) {}

    bool await_ready() {
      if (sem_.count_ > 0) {
        --sem_.count_;
        fast_ = true;
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      sem_.kernel_.prepare_wait(node_, &sem_, h);
      node_.ctx = this;
      sem_.waiters_.push_back(node_);
      if (timeout_.has_value()) {
        timeout_event_ = sem_.kernel_.schedule_in(*timeout_, [this] {
          sem_.waiters_.remove(node_);
          node_.owner = nullptr;
          sem_.kernel_.wake_now(node_, WakeStatus::kTimeout);
        });
      }
    }

    WakeStatus await_resume() {
      if (fast_) return WakeStatus::kOk;
      if (node_.status == WakeStatus::kCancelled) {
        // A grant may already have been handed to us; give it back so the
        // credit is not lost.
        if (granted_) sem_.release(1);
        throw ProcessCancelled{};
      }
      return node_.status;
    }

   private:
    friend class Semaphore;
    Semaphore& sem_;
    std::optional<Duration> timeout_;
    WaitNode node_{};
    EventId timeout_event_{};
    bool granted_ = false;
    bool fast_ = false;
  };

  // Blocks until a credit is available. Always resumes with kOk (or throws
  // ProcessCancelled if the process is killed while blocked).
  AcquireAwaiter acquire() { return AcquireAwaiter{*this, std::nullopt}; }

  // As acquire(), but gives up after `timeout`, resuming with kTimeout.
  AcquireAwaiter acquire_for(Duration timeout) {
    return AcquireAwaiter{*this, timeout};
  }

  bool try_acquire() {
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  void release(std::int64_t n = 1) {
    assert(n >= 0);
    while (n > 0 && !waiters_.empty()) {
      WaitNode* node = waiters_.pop_front();
      auto* awaiter = static_cast<AcquireAwaiter*>(node->ctx);
      awaiter->granted_ = true;
      if (awaiter->timeout_event_.valid()) {
        kernel_.cancel_event(awaiter->timeout_event_);
        awaiter->timeout_event_ = {};
      }
      node->owner = nullptr;
      kernel_.wake_later(*node, WakeStatus::kOk);
      --n;
    }
    count_ += n;
  }

  std::int64_t available() const { return count_; }
  std::size_t waiter_count() const { return waiters_.size(); }

  void cancel_wait(WaitNode& node) noexcept override {
    waiters_.remove(node);
    auto* awaiter = static_cast<AcquireAwaiter*>(node.ctx);
    if (awaiter->timeout_event_.valid()) {
      kernel_.cancel_event(awaiter->timeout_event_);
      awaiter->timeout_event_ = {};
    }
  }

 private:
  Kernel& kernel_;
  std::int64_t count_;
  IntrusiveList<WaitNode> waiters_;
};

}  // namespace rtdb::sim
