#pragma once

#include <cassert>
#include <deque>
#include <optional>
#include <utility>

#include "sim/intrusive_list.hpp"
#include "sim/kernel.hpp"
#include "sim/wait.hpp"

namespace rtdb::sim {

// Typed message port, the inter-process communication primitive of the
// prototyping environment. Supports:
//   * asynchronous send()            — never blocks, message queued;
//   * rendezvous send_sync()         — Ada-style: the sender blocks until a
//                                      receiver retrieves the message, with
//                                      an optional timeout (the paper's
//                                      mechanism for unblocking a sender
//                                      when the receiving site is down);
//   * blocking receive()             — FIFO among waiting receivers;
//   * receive_for()                  — timed receive returning nullopt.
//
// All wake-ups are scheduled (not inlined), so a send never runs the
// receiver in the middle of the sender's statement.
template <typename T>
class Mailbox : public Waitable {
  enum Tag : int { kReceiver = 1, kSender = 2 };

 public:
  explicit Mailbox(Kernel& kernel) : kernel_(kernel) {}

  // ---- receive ----

  class [[nodiscard]] ReceiveAwaiter {
   public:
    ReceiveAwaiter(Mailbox& mb, std::optional<Duration> timeout)
        : mb_(mb), timeout_(timeout) {}

    bool await_ready() {
      item_ = mb_.try_take();
      return item_.has_value();
    }

    void await_suspend(std::coroutine_handle<> h) {
      mb_.kernel_.prepare_wait(node_, &mb_, h);
      node_.tag = kReceiver;
      node_.ctx = this;
      mb_.receivers_.push_back(node_);
      if (timeout_.has_value()) {
        timeout_event_ = mb_.kernel_.schedule_in(*timeout_, [this] {
          mb_.receivers_.remove(node_);
          node_.owner = nullptr;
          mb_.kernel_.wake_now(node_, WakeStatus::kTimeout);
        });
      }
    }

    std::optional<T> await_resume() {
      if (node_.status == WakeStatus::kCancelled) {
        // A message may have been delivered into our slot before the kill;
        // put it back at the head so it is not lost.
        if (item_.has_value()) mb_.items_.push_front(std::move(*item_));
        throw ProcessCancelled{};
      }
      if (node_.status == WakeStatus::kTimeout) return std::nullopt;
      return std::move(item_);
    }

   private:
    friend class Mailbox;
    Mailbox& mb_;
    std::optional<Duration> timeout_;
    WaitNode node_{};
    EventId timeout_event_{};
    std::optional<T> item_{};
  };

  // Blocks until a message arrives; the returned optional is always
  // engaged (the optional form exists only to share the timed path).
  ReceiveAwaiter receive() { return ReceiveAwaiter{*this, std::nullopt}; }

  // Blocks up to `timeout`; nullopt if nothing arrived.
  ReceiveAwaiter receive_for(Duration timeout) {
    return ReceiveAwaiter{*this, timeout};
  }

  // Non-blocking take.
  std::optional<T> try_take() {
    if (!items_.empty()) {
      T item = std::move(items_.front());
      items_.pop_front();
      return item;
    }
    if (!senders_.empty()) {
      WaitNode* node = senders_.pop_front();
      auto* sender = static_cast<SendAwaiter*>(node->ctx);
      T item = std::move(*sender->item_);
      sender->item_.reset();
      complete_sender(*node, *sender);
      return item;
    }
    return std::nullopt;
  }

  // ---- send ----

  // Asynchronous send: queues the message (or hands it to a waiting
  // receiver) and returns immediately.
  void send(T item) {
    if (!receivers_.empty()) {
      deliver(std::move(item));
    } else {
      items_.push_back(std::move(item));
    }
  }

  class [[nodiscard]] SendAwaiter {
   public:
    SendAwaiter(Mailbox& mb, T item, std::optional<Duration> timeout)
        : mb_(mb), item_(std::move(item)), timeout_(timeout) {}

    bool await_ready() {
      if (!mb_.receivers_.empty()) {
        mb_.deliver(std::move(*item_));
        item_.reset();
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      mb_.kernel_.prepare_wait(node_, &mb_, h);
      node_.tag = kSender;
      node_.ctx = this;
      mb_.senders_.push_back(node_);
      if (timeout_.has_value()) {
        timeout_event_ = mb_.kernel_.schedule_in(*timeout_, [this] {
          mb_.senders_.remove(node_);
          node_.owner = nullptr;
          mb_.kernel_.wake_now(node_, WakeStatus::kTimeout);
        });
      }
    }

    // kOk once a receiver retrieved the message; kTimeout if it was never
    // retrieved in time (the message is then withdrawn).
    WakeStatus await_resume() {
      Kernel::check_cancelled(node_);
      return node_.status;
    }

   private:
    friend class Mailbox;
    Mailbox& mb_;
    std::optional<T> item_;
    std::optional<Duration> timeout_;
    WaitNode node_{};
    EventId timeout_event_{};
  };

  // Rendezvous send: blocks until a receiver takes the message.
  SendAwaiter send_sync(T item) {
    return SendAwaiter{*this, std::move(item), std::nullopt};
  }

  // Rendezvous send with timeout; on timeout the message is withdrawn.
  SendAwaiter send_sync_for(T item, Duration timeout) {
    return SendAwaiter{*this, std::move(item), timeout};
  }

  // Discards every queued (not yet retrieved) message. Blocked senders and
  // receivers are untouched — a rendezvous sender keeps waiting for its
  // timeout. Used to model a site crash losing its undispatched inbox.
  void clear() { items_.clear(); }

  std::size_t queued() const { return items_.size(); }
  std::size_t waiting_receivers() const { return receivers_.size(); }
  std::size_t waiting_senders() const { return senders_.size(); }
  bool empty() const {
    return items_.empty() && senders_.empty();
  }

  void cancel_wait(WaitNode& node) noexcept override {
    if (node.tag == kReceiver) {
      receivers_.remove(node);
      auto* awaiter = static_cast<ReceiveAwaiter*>(node.ctx);
      if (awaiter->timeout_event_.valid()) {
        kernel_.cancel_event(awaiter->timeout_event_);
        awaiter->timeout_event_ = {};
      }
    } else {
      senders_.remove(node);
      auto* awaiter = static_cast<SendAwaiter*>(node.ctx);
      if (awaiter->timeout_event_.valid()) {
        kernel_.cancel_event(awaiter->timeout_event_);
        awaiter->timeout_event_ = {};
      }
    }
  }

 private:
  // Hands `item` to the longest-waiting receiver. Pre: receivers_ nonempty.
  void deliver(T item) {
    WaitNode* node = receivers_.pop_front();
    auto* receiver = static_cast<ReceiveAwaiter*>(node->ctx);
    receiver->item_.emplace(std::move(item));
    if (receiver->timeout_event_.valid()) {
      kernel_.cancel_event(receiver->timeout_event_);
      receiver->timeout_event_ = {};
    }
    node->owner = nullptr;
    kernel_.wake_later(*node, WakeStatus::kOk);
  }

  void complete_sender(WaitNode& node, SendAwaiter& sender) {
    if (sender.timeout_event_.valid()) {
      kernel_.cancel_event(sender.timeout_event_);
      sender.timeout_event_ = {};
    }
    node.owner = nullptr;
    kernel_.wake_later(node, WakeStatus::kOk);
  }

  Kernel& kernel_;
  std::deque<T> items_;
  IntrusiveList<WaitNode> receivers_;
  IntrusiveList<WaitNode> senders_;
};

}  // namespace rtdb::sim
