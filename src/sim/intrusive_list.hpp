#pragma once

#include <cassert>
#include <cstddef>

namespace rtdb::sim {

// Minimal intrusive doubly-linked list.
//
// T must expose public members `T* prev_` and `T* next_` (both initialised
// to nullptr). Nodes are owned elsewhere; the list never allocates. Removal
// of a known node is O(1), which is what wait-queue cancellation needs.
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() = default;
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }
  T* front() const { return head_; }
  T* back() const { return tail_; }

  void push_back(T& node) {
    assert(!contains(node));
    node.prev_ = tail_;
    node.next_ = nullptr;
    if (tail_ != nullptr) {
      tail_->next_ = &node;
    } else {
      head_ = &node;
    }
    tail_ = &node;
    ++size_;
  }

  void push_front(T& node) {
    assert(!contains(node));
    node.next_ = head_;
    node.prev_ = nullptr;
    if (head_ != nullptr) {
      head_->prev_ = &node;
    } else {
      tail_ = &node;
    }
    head_ = &node;
    ++size_;
  }

  // Inserts `node` immediately before `pos` (which must be linked).
  void insert_before(T& pos, T& node) {
    assert(contains(pos));
    if (pos.prev_ == nullptr) {
      push_front(node);
      return;
    }
    node.prev_ = pos.prev_;
    node.next_ = &pos;
    pos.prev_->next_ = &node;
    pos.prev_ = &node;
    ++size_;
  }

  T* pop_front() {
    T* node = head_;
    if (node != nullptr) {
      remove(*node);
    }
    return node;
  }

  void remove(T& node) {
    assert(contains(node));
    if (node.prev_ != nullptr) {
      node.prev_->next_ = node.next_;
    } else {
      head_ = node.next_;
    }
    if (node.next_ != nullptr) {
      node.next_->prev_ = node.prev_;
    } else {
      tail_ = node.prev_;
    }
    node.prev_ = nullptr;
    node.next_ = nullptr;
    --size_;
  }

  // Linear scan; intended for assertions and low-frequency membership tests.
  bool contains(const T& node) const {
    for (const T* it = head_; it != nullptr; it = it->next_) {
      if (it == &node) return true;
    }
    return false;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (T* it = head_; it != nullptr;) {
      T* next = it->next_;  // allow fn to unlink it
      fn(*it);
      it = next;
    }
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rtdb::sim
