#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::sim {

// Deterministic pseudo-random stream (xoshiro256** seeded via splitmix64).
//
// Implemented from scratch rather than with <random> distributions because
// the standard distributions are implementation-defined: results would not
// reproduce across standard libraries. Every experiment in this repository
// is exactly reproducible from its seed on any platform.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1) with 53 random bits.
  double next_double();

  // Uniform integer in [lo, hi], inclusive, unbiased.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  double uniform_real(double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);
  Duration exponential_duration(Duration mean);

  bool bernoulli(double p);

  // k distinct values drawn uniformly from {0, 1, ..., n-1}, in random
  // order. Used to pick a transaction's data objects from the database.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  // Derives an independent child stream. Based on the original seed and the
  // stream id only, so forks are stable regardless of how many values have
  // been drawn from the parent.
  RandomStream fork(std::uint64_t stream_id) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace rtdb::sim
