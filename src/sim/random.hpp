#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::sim {

// Deterministic pseudo-random stream (xoshiro256** seeded via splitmix64).
//
// Implemented from scratch rather than with <random> distributions because
// the standard distributions are implementation-defined: results would not
// reproduce across standard libraries. Every experiment in this repository
// is exactly reproducible from its seed on any platform.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1) with 53 random bits.
  double next_double();

  // Uniform integer in [lo, hi], inclusive, unbiased.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  double uniform_real(double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);
  Duration exponential_duration(Duration mean);

  bool bernoulli(double p);

  // k distinct values drawn uniformly from {0, 1, ..., n-1}, in random
  // order. Used to pick a transaction's data objects from the database.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  // Derives an independent child stream. Based on the original seed and the
  // stream id only, so forks are stable regardless of how many values have
  // been drawn from the parent.
  RandomStream fork(std::uint64_t stream_id) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

// Bounded Zipf over the ranks {0, 1, ..., n-1}: P(rank r) proportional to
// 1 / (r + 1)^theta. theta = 0 is the uniform distribution; theta around 1
// is the classic web/OLTP hot-key skew. Sampling is one uniform draw
// inverted through the precomputed CDF, so the draw count (and therefore
// the stream position of every later draw) is independent of theta — a
// property the workload generator's replay determinism relies on.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint32_t n, double theta);

  std::uint32_t sample(RandomStream& rng) const;

  // Analytic probability mass of `rank` (tests compare empirical
  // frequencies against this).
  double mass(std::uint32_t rank) const;

  std::uint32_t size() const { return static_cast<std::uint32_t>(cdf_.size()); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); cdf_[n-1] == 1
};

}  // namespace rtdb::sim
