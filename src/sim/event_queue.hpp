#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::sim {

using EventCallback = std::function<void()>;

// Handle to a scheduled event; generation-checked so a stale id (event
// already fired or cancelled, slot reused) is detected and ignored.
struct EventId {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(EventId, EventId) = default;
};

// Cancellable time-ordered event queue.
//
// Structure: a calendar queue (Brown, CACM 1988) — an open hash of events
// into a power-of-two ring of time buckets, each `2^shift_` ticks wide.
// Scheduling appends into (or sorted-inserts within) one bucket and popping
// scans forward from the current window, both O(1) amortized when the
// bucket width tracks the mean inter-event gap. The width and bucket count
// are re-estimated whenever the population outgrows the ring, and a health
// check falls back to a plain binary heap for event-time distributions the
// calendar handles badly (see `heap_fallback()`).
//
// Ordering contract (what the simulator's determinism rests on): events pop
// in strictly ascending (time, schedule-sequence) order — equal times fire
// in schedule order (FIFO) — regardless of structure, resizes, or
// fallback. Equal-time events always share a bucket, and buckets are
// consumed window-by-window, so the calendar preserves the exact total
// order the previous heap implementation produced.
//
// Cancellation is O(1): the slot is marked dead and the stored entry is
// discarded lazily when it reaches a bucket front (or at a rebuild).
class EventQueue {
 public:
  EventQueue();

  EventId schedule(TimePoint when, EventCallback callback);

  // Returns true if the event was still pending and is now cancelled.
  bool cancel(EventId id);

  bool pending(EventId id) const;

  // Number of live (non-cancelled) events.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Earliest live event time; nullopt when empty.
  std::optional<TimePoint> next_time();

  struct ReadyEvent {
    TimePoint time;
    EventCallback callback;
  };
  // Removes and returns the earliest live event; nullopt when empty.
  std::optional<ReadyEvent> pop();

  // ---- introspection (tests, benchmarks) ----
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t rebuilds() const { return rebuilds_; }
  // True once the queue abandoned the calendar for the heap fallback.
  bool heap_fallback() const { return heap_mode_; }

 private:
  // A scheduled occurrence: flat and trivially copyable so bucket inserts
  // and rebuilds are plain memmoves. The callback lives in the slot.
  struct Entry {
    std::int64_t time_ticks;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
    EventCallback callback{};
  };
  // items[head..] sorted ascending by (time, seq); [0, head) is consumed.
  struct Bucket {
    std::vector<Entry> items;
    std::size_t head = 0;

    bool empty() const { return head == items.size(); }
    Entry& front() { return items[head]; }
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time_ticks != b.time_ticks) return a.time_ticks < b.time_ticks;
    return a.seq < b.seq;
  }
  static bool later(const Entry& a, const Entry& b) { return earlier(b, a); }

  std::int64_t day_of(std::int64_t time_ticks) const {
    return time_ticks >> shift_;
  }
  Bucket& bucket_of(std::int64_t day) {
    return buckets_[static_cast<std::size_t>(day) & mask_];
  }

  std::uint32_t new_slot(EventCallback callback);
  void retire_slot(std::uint32_t slot);

  void insert_entry(const Entry& entry);
  // Advances to and returns the bucket holding the globally earliest live
  // entry (as its front); nullptr when none. Leaves cur_window_ on that
  // entry's window.
  Bucket* find_front();
  void purge_front(Bucket& bucket);
  void compact(Bucket& bucket);
  // Re-estimates bucket width from the pending population and
  // redistributes. Also purges every dead entry.
  void rebuild();
  void note_op();
  void enter_heap_mode();
  void heap_push(Entry entry);
  Entry heap_pop_top();
  void drop_dead_top();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;    // non-cancelled events
  std::size_t stored_ = 0;  // entries held, including not-yet-purged dead

  // ---- calendar state ----
  std::vector<Bucket> buckets_;  // power-of-two size
  std::size_t mask_ = 0;
  int shift_ = 0;               // bucket width = 2^shift_ ticks
  std::int64_t cur_window_ = 0;  // next window to scan (monotone per year)
  std::vector<Entry> rebuild_scratch_;
  std::uint64_t rebuilds_ = 0;

  // ---- structure-health accounting ----
  // Wasted work (insert shifts + empty-window scans) per op window; two
  // consecutive overworked windows mean the distribution defeats the
  // calendar and we switch to the heap for good.
  std::uint64_t op_count_ = 0;
  std::uint64_t overwork_ = 0;
  bool prev_window_rebuilt_ = false;
  bool heap_mode_ = false;
  std::vector<Entry> heap_;
};

}  // namespace rtdb::sim
