#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace rtdb::sim {

using EventCallback = std::function<void()>;

// Handle to a scheduled event; generation-checked so a stale id (event
// already fired or cancelled, slot reused) is detected and ignored.
struct EventId {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;

  bool valid() const { return slot != kInvalidSlot; }
  friend bool operator==(EventId, EventId) = default;
};

// Cancellable time-ordered event queue.
//
// Events at equal times fire in schedule order (FIFO), which together with
// the integer clock makes every simulation run fully deterministic.
// Cancellation is O(1): the slot is marked dead and the heap entry is
// discarded lazily when popped.
class EventQueue {
 public:
  EventQueue() = default;

  EventId schedule(TimePoint when, EventCallback callback);

  // Returns true if the event was still pending and is now cancelled.
  bool cancel(EventId id);

  bool pending(EventId id) const;

  // Number of live (non-cancelled) events.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Earliest live event time; nullopt when empty.
  std::optional<TimePoint> next_time();

  struct ReadyEvent {
    TimePoint time;
    EventCallback callback;
  };
  // Removes and returns the earliest live event; nullopt when empty.
  std::optional<ReadyEvent> pop();

 private:
  struct HeapEntry {
    std::int64_t time_ticks;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
    EventCallback callback{};
  };

  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_ticks != b.time_ticks) return a.time_ticks > b.time_ticks;
    return a.seq > b.seq;
  }

  void heap_push(HeapEntry entry);
  HeapEntry heap_pop();
  void drop_dead_top();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace rtdb::sim
