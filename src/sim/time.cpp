#include "sim/time.hpp"

#include <cstdio>

namespace rtdb::sim {

namespace {

std::string format_ticks(std::int64_t ticks) {
  const std::int64_t whole = ticks / kTicksPerUnit;
  const std::int64_t frac = ticks % kTicksPerUnit;
  char buf[48];
  if (frac == 0) {
    std::snprintf(buf, sizeof(buf), "%lldtu", static_cast<long long>(whole));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld.%03lldtu",
                  static_cast<long long>(whole),
                  static_cast<long long>(frac < 0 ? -frac : frac));
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ticks(ticks_); }

std::string TimePoint::to_string() const { return format_ticks(ticks_); }

}  // namespace rtdb::sim
