#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace rtdb::sim {

// Identifies a kernel process. Ids are never reused within one kernel.
struct ProcessId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value = kInvalid;

  bool valid() const { return value != kInvalid; }
  friend bool operator==(ProcessId, ProcessId) = default;
};

enum class ProcessState : std::uint8_t {
  kCreated,   // spawned, start event pending
  kRunning,   // currently executing (it is the kernel's current process)
  kWaiting,   // blocked on a primitive or pending wake
  kDone,      // body finished or process was killed
};

const char* to_string(ProcessState state);

// Process control block. The StarLite kernel of the paper provides process
// create/ready/block/terminate; this is the equivalent record for our
// coroutine-based processes. Owned by the Kernel.
class Process {
 public:
  Process(ProcessId id, std::string name, Task<void> body)
      : id_(id), name_(std::move(name)), body_(std::move(body)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }
  ProcessState state() const { return state_; }
  bool done() const { return state_ == ProcessState::kDone; }
  bool kill_requested() const { return kill_requested_; }

 private:
  friend class Kernel;

  ProcessId id_;
  std::string name_;
  Task<void> body_;
  ProcessState state_ = ProcessState::kCreated;
  bool kill_requested_ = false;
  // The wait this process is currently blocked on, if any. Remains set from
  // suspension until the wake actually resumes the coroutine, so kill() can
  // always reach it.
  WaitNode* waiting_on_ = nullptr;
  EventId start_event_{};
};

}  // namespace rtdb::sim
