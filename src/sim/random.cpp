#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <unordered_map>

namespace rtdb::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

RandomStream::RandomStream(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t RandomStream::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RandomStream::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double RandomStream::uniform_real(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double RandomStream::exponential(double mean) {
  assert(mean > 0);
  // Inverse transform; 1 - u is in (0, 1] so the log is finite.
  return -mean * std::log(1.0 - next_double());
}

Duration RandomStream::exponential_duration(Duration mean) {
  assert(mean > Duration::zero());
  return Duration::from_units(exponential(mean.as_units()));
}

bool RandomStream::bernoulli(double p) {
  assert(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

std::vector<std::uint32_t> RandomStream::sample_without_replacement(
    std::uint32_t n, std::uint32_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over a sparse view of {0..n-1}: O(k) time/space.
  std::unordered_map<std::uint32_t, std::uint32_t> displaced;
  displaced.reserve(k * 2);
  std::vector<std::uint32_t> result;
  result.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::uint32_t>(
        uniform_int(i, static_cast<std::int64_t>(n) - 1));
    auto value_at = [&](std::uint32_t idx) {
      auto it = displaced.find(idx);
      return it == displaced.end() ? idx : it->second;
    };
    const std::uint32_t picked = value_at(j);
    displaced[j] = value_at(i);
    result.push_back(picked);
  }
  return result;
}

RandomStream RandomStream::fork(std::uint64_t stream_id) const {
  std::uint64_t mix = seed_ ^ (stream_id * 0x9e3779b97f4a7c15ull + 0x1234567);
  return RandomStream{splitmix64(mix)};
}

ZipfDistribution::ZipfDistribution(std::uint32_t n, double theta)
    : theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, theta);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_[n - 1] = 1.0;  // exact, despite rounding
}

std::uint32_t ZipfDistribution::sample(RandomStream& rng) const {
  const double u = rng.next_double();  // in [0, 1)
  // First rank whose CDF exceeds u; binary search keeps sampling O(log n).
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(cdf_.size()) - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double ZipfDistribution::mass(std::uint32_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rtdb::sim
