#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rtdb::sim {

// A vector with inline storage for the first `N` elements that spills to
// the heap only beyond that. Used for hot containers whose typical
// population is tiny (lock holders, grant queues, declaration lists) so the
// common case does no heap traffic and stays on the owner's cache lines.
//
// Intended payloads are pointers and small PODs, hence the nothrow-move
// requirement. Iterator/pointer invalidation follows std::vector rules:
// any growth past capacity() invalidates, as does moving the container
// while it is still inline.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0);
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  InlineVec(const InlineVec& other) {
    reserve(other.size_);
    for (const T& v : other) emplace_back(v);
  }

  InlineVec(InlineVec&& other) noexcept { steal_from(other); }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) emplace_back(v);
    }
    return *this;
  }

  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~InlineVec() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  iterator erase(iterator pos) {
    assert(pos >= begin() && pos < end());
    for (T* p = pos; p + 1 != end(); ++p) *p = std::move(p[1]);
    pop_back();
    return pos;
  }

  iterator insert(iterator pos, T value) {
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    if (size_ == capacity_) grow(capacity_ * 2);
    if (idx == size_) {
      new (data_ + size_) T(std::move(value));
    } else {
      new (data_ + size_) T(std::move(data_[size_ - 1]));
      for (std::size_t i = size_ - 1; i > idx; --i) {
        data_[i] = std::move(data_[i - 1]);
      }
      data_[idx] = std::move(value);
    }
    ++size_;
    return data_ + idx;
  }

 private:
  bool on_heap() const { return data_ != inline_data(); }
  T* inline_data() { return reinterpret_cast<T*>(inline_buf_); }
  const T* inline_data() const {
    return reinterpret_cast<const T*>(inline_buf_);
  }

  void grow(std::size_t want) {
    const std::size_t cap = want < 2 * N ? 2 * N : want;
    T* fresh = static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (on_heap()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = fresh;
    capacity_ = cap;
  }

  // Destroys elements and frees any heap buffer, leaving *this unusable
  // until steal_from()/reset; callers immediately re-initialize.
  void release() {
    clear();
    if (on_heap()) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = inline_data();
    capacity_ = N;
  }

  void steal_from(InlineVec& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        new (data_ + i) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) std::byte inline_buf_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace rtdb::sim
