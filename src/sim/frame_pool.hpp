#pragma once

#include <cstddef>
#include <new>

namespace rtdb::sim {

// Thread-local size-bucketed free lists for coroutine frames (and other
// small same-thread allocations on the simulator hot path). A frame churns
// for every co_await'd call — one per data-object access, lock request, and
// message send — so recycling frames of the same size class beats the
// general-purpose allocator and keeps the memory cache-warm.
//
// Blocks join the free list of the thread that releases them; each
// simulated System lives on exactly one experiment worker thread, so
// allocate/deallocate pairs stay thread-local and no synchronization is
// needed. Every cached block is returned to the global heap when its
// thread's cache is destroyed, keeping ASan/LSan clean.
class FramePool {
  struct Node {
    Node* next;
  };

  // Size classes in 64-byte granules up to 2 KiB; larger requests (rare:
  // deeply-nested frames with big locals) bypass the pool.
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 32;

  struct Cache {
    Node* free[kClasses] = {};
    ~Cache() {
      for (Node* node : free) {
        while (node != nullptr) {
          Node* next = node->next;
          ::operator delete(node);
          node = next;
        }
      }
    }
  };

  static Cache& cache() {
    static thread_local Cache tls;
    return tls;
  }

  static std::size_t class_of(std::size_t bytes) {
    return bytes == 0 ? 0 : (bytes - 1) / kGranule;
  }

 public:
  static void* allocate(std::size_t bytes) {
    const std::size_t idx = class_of(bytes);
    if (idx >= kClasses) return ::operator new(bytes);
    Cache& c = cache();
    if (Node* node = c.free[idx]) {
      c.free[idx] = node->next;
      return node;
    }
    return ::operator new((idx + 1) * kGranule);
  }

  static void deallocate(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) return;
    const std::size_t idx = class_of(bytes);
    if (idx >= kClasses) {
      ::operator delete(p);
      return;
    }
    Cache& c = cache();
    Node* node = static_cast<Node*>(p);
    node->next = c.free[idx];
    c.free[idx] = node;
  }
};

}  // namespace rtdb::sim
