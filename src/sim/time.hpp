#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace rtdb::sim {

// Virtual time for the discrete-event kernel.
//
// The paper reports costs and communication delays in abstract "time units".
// One time unit is kTicksPerUnit ticks so fractional unit costs (e.g. a
// communication delay of 0.5 units) remain exactly representable. For
// throughput reporting we follow the convention that one time unit is one
// millisecond, i.e. kUnitsPerSecond time units make a "second".
inline constexpr std::int64_t kTicksPerUnit = 1000;
inline constexpr std::int64_t kUnitsPerSecond = 1000;

// A signed span of virtual time.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration ticks(std::int64_t t) { return Duration{t}; }
  static constexpr Duration units(std::int64_t u) {
    return Duration{u * kTicksPerUnit};
  }
  // Rounds to the nearest tick; useful for costs derived from real-valued
  // distributions.
  static Duration from_units(double u) {
    return Duration{static_cast<std::int64_t>(std::llround(u * kTicksPerUnit))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t as_ticks() const { return ticks_; }
  constexpr double as_units() const {
    return static_cast<double>(ticks_) / kTicksPerUnit;
  }
  constexpr double as_seconds() const {
    return as_units() / kUnitsPerSecond;
  }

  constexpr bool is_zero() const { return ticks_ == 0; }
  constexpr bool is_negative() const { return ticks_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ticks_ + b.ticks_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ticks_ - b.ticks_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ticks_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  // Scaling by a real factor (kept as a named function so integer literals
  // never face an int64/double overload ambiguity).
  Duration scaled(double k) const {
    return Duration{static_cast<std::int64_t>(
        std::llround(static_cast<double>(ticks_) * k))};
  }
  constexpr Duration& operator+=(Duration b) {
    ticks_ += b.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration b) {
    ticks_ -= b.ticks_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_ = 0;
};

// An absolute instant of virtual time. The kernel starts at TimePoint{0}.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint at_ticks(std::int64_t t) { return TimePoint{t}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t as_ticks() const { return ticks_; }
  constexpr double as_units() const {
    return static_cast<double>(ticks_) / kTicksPerUnit;
  }
  constexpr double as_seconds() const {
    return as_units() / kUnitsPerSecond;
  }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ticks_ + d.as_ticks()};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ticks_ - d.as_ticks()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::ticks(a.ticks_ - b.ticks_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_ = 0;
};

}  // namespace rtdb::sim
