#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "sim/wait.hpp"

namespace rtdb::sim {

// The discrete-event kernel: virtual clock, cancellable event queue, and
// coroutine processes with StarLite-style control (create / block / ready /
// terminate). Single-threaded; all concurrency is virtual, which makes every
// run bit-for-bit reproducible for a given seed.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- time ----
  TimePoint now() const { return now_; }

  EventId schedule_at(TimePoint when, EventCallback cb);
  EventId schedule_in(Duration delay, EventCallback cb);
  bool cancel_event(EventId id) { return events_.cancel(id); }

  // ---- process control ----
  ProcessId spawn(std::string name, Task<void> body);
  // Kills a process: if blocked, its wait is cancelled and ProcessCancelled
  // unwinds it immediately (RAII releases its resources); if not yet
  // started, it never runs. Killing the current process throws directly.
  void kill(ProcessId id);
  bool alive(ProcessId id) const;
  Process* current() const { return current_; }
  std::size_t live_process_count() const { return live_processes_; }
  const std::string& process_name(ProcessId id) const;

  // ---- run control ----
  // Runs until the event queue drains.
  void run();
  // Runs all events with time <= deadline; clock ends at
  // min(deadline, last event time >= current clock).
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }
  // Executes at most one event. Returns false when the queue is empty.
  bool step();

  std::uint64_t events_executed() const { return events_executed_; }

  // ---- awaitables ----
  class DelayAwaiter : public Waitable {
   public:
    DelayAwaiter(Kernel& kernel, Duration d) : kernel_(kernel), delay_(d) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const;
    void cancel_wait(WaitNode& node) noexcept override;

   private:
    Kernel& kernel_;
    Duration delay_;
    WaitNode node_{};
    EventId event_{};
  };

  // Suspends the calling process for `d` of virtual time.
  DelayAwaiter delay(Duration d) { return DelayAwaiter{*this, d}; }
  // Reschedules the calling process at the current time (lets other
  // ready work at this instant run first).
  DelayAwaiter yield() { return DelayAwaiter{*this, Duration::zero()}; }

  // ---- wait plumbing (used by blocking primitives, not end users) ----
  // Fills in the node for the current process and records it as the
  // process's active wait. Must be called from await_suspend.
  void prepare_wait(WaitNode& node, Waitable* owner,
                    std::coroutine_handle<> h);
  // Resumes the blocked process immediately (same virtual instant),
  // re-entrantly safe. Used by kill and by event callbacks.
  void wake_now(WaitNode& node, WakeStatus status);
  // Schedules the wake as an event at the current time; preferred by
  // primitives so a release never runs the waiter in the middle of the
  // releaser's statement.
  void wake_later(WaitNode& node, WakeStatus status);
  // Throws ProcessCancelled if the wake carried kCancelled.
  static void check_cancelled(const WaitNode& node) {
    if (node.status == WakeStatus::kCancelled) throw ProcessCancelled{};
  }

  Tracer& tracer() { return tracer_; }

 private:
  void start_process(Process& p);
  void resume_process(Process& p, WaitNode& node);
  void after_resume(Process& p);
  void finalize(Process& p);
  Process& get(ProcessId id);
  const Process& get(ProcessId id) const;

  TimePoint now_{};
  EventQueue events_;
  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;
  std::size_t live_processes_ = 0;
  std::uint64_t events_executed_ = 0;
  Tracer tracer_;
};

}  // namespace rtdb::sim
