#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"

namespace rtdb::sim {

template <typename T = void>
class Task;

namespace detail {

template <typename T>
struct TaskPromise;

// Shared machinery for Task<T> and Task<void> promises: lazy start,
// continuation chaining via symmetric transfer, and exception capture.
template <typename Derived>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  // Frames are allocated through the thread-local pool: one frame churns
  // per awaited call on the hot path, and same-size-class recycling keeps
  // that off the general-purpose allocator.
  static void* operator new(std::size_t bytes) {
    return FramePool::allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FramePool::deallocate(p, bytes);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase<TaskPromise<T>> {
  std::optional<T> value{};

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T take_result() {
    if (this->exception) std::rethrow_exception(this->exception);
    assert(value.has_value());
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase<TaskPromise<void>> {
  Task<void> get_return_object();
  void return_void() noexcept {}

  void take_result() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

// A lazily-started coroutine used both for top-level kernel processes and
// for composable sub-operations (`co_await some_task()`). The Task object
// owns the coroutine frame; awaiting does not transfer ownership, so the
// usual pattern of awaiting a temporary keeps the frame alive for the whole
// co_await expression.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  // Starts or resumes the coroutine; used by the kernel for top-level
  // processes. Composed tasks are started by awaiting them instead.
  void resume() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  // Exception that escaped the coroutine body, if any (valid once done()).
  std::exception_ptr exception() const noexcept {
    return handle_ ? handle_.promise().exception : nullptr;
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> continuation) noexcept {
      handle.promise().continuation = continuation;
      return handle;  // symmetric transfer: run the child task now
    }
    T await_resume() { return handle.promise().take_result(); }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>{
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace rtdb::sim
