#include "sim/trace.hpp"

#include <cstdio>

namespace rtdb::sim {

void Tracer::print_to_stdout() {
  set_sink([](TimePoint at, std::string_view source, std::string_view message) {
    std::printf("t=%-12s [%.*s] %.*s\n", at.to_string().c_str(),
                static_cast<int>(source.size()), source.data(),
                static_cast<int>(message.size()), message.data());
  });
}

}  // namespace rtdb::sim
