#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace rtdb::sim {

// Bump allocator for attempt-scoped scratch data. Allocations are carved
// sequentially out of chunks; reset() rewinds to empty while keeping the
// chunks, so after the first attempt a retry allocates nothing from the
// global heap. The destructor frees every chunk, keeping ASan/LSan clean.
//
// Only trivially-destructible element types are supported: reset() never
// runs destructors.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 4096;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (cur_ < chunks_.size()) {
      Chunk& chunk = chunks_[cur_];
      // Align the absolute address, not the offset: chunk bases are only
      // guaranteed the default operator-new alignment.
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      const std::size_t aligned = align_up(base + offset_, align) - base;
      if (aligned + bytes <= chunk.size) {
        offset_ = aligned + bytes;
        return chunk.data.get() + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  // A value-initialised array of `count` Ts, alive until reset().
  template <typename T>
  std::span<T> make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "reset() never runs destructors");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (data + i) T{};
    return {data, count};
  }

  // Rewinds to empty. Chunks are retained for reuse; nothing is freed.
  void reset() {
    cur_ = 0;
    offset_ = 0;
  }

  // ---- introspection (tests, leak accounting) ----
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::uintptr_t align_up(std::uintptr_t n, std::uintptr_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Move to the next retained chunk that fits, or grow. A request larger
    // than the configured chunk size gets a dedicated chunk.
    while (cur_ + 1 < chunks_.size()) {
      ++cur_;
      offset_ = 0;
      if (bytes + align <= chunks_[cur_].size) return allocate(bytes, align);
    }
    const std::size_t size = std::max(chunk_bytes_, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    cur_ = chunks_.size() - 1;
    offset_ = 0;
    return allocate(bytes, align);
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;     // chunk currently being bumped
  std::size_t offset_ = 0;  // bump offset within chunks_[cur_]
  std::size_t chunk_bytes_;
};

}  // namespace rtdb::sim
