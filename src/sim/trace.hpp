#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rtdb::sim {

// Lightweight debug/trace hook. Disabled by default; when enabled, every
// emit() is forwarded to the sink (tests install a recording sink, the
// examples install a printf sink). Callers must guard expensive message
// construction with enabled().
class Tracer {
 public:
  using Sink =
      std::function<void(TimePoint, std::string_view source, std::string_view message)>;

  bool enabled() const { return static_cast<bool>(sink_); }
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear() { sink_ = nullptr; }

  void emit(TimePoint at, std::string_view source, std::string_view message) const {
    if (sink_) sink_(at, source, message);
  }

  // Installs a sink that prints "t=<time> [<source>] <message>" to stdout.
  void print_to_stdout();

 private:
  Sink sink_{};
};

}  // namespace rtdb::sim
