#include "sim/kernel.hpp"

#include <cassert>
#include <utility>

namespace rtdb::sim {

EventId Kernel::schedule_at(TimePoint when, EventCallback cb) {
  assert(when >= now_);
  return events_.schedule(when, std::move(cb));
}

EventId Kernel::schedule_in(Duration delay, EventCallback cb) {
  assert(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(cb));
}

ProcessId Kernel::spawn(std::string name, Task<void> body) {
  const ProcessId id{static_cast<std::uint32_t>(processes_.size())};
  processes_.push_back(
      std::make_unique<Process>(id, std::move(name), std::move(body)));
  Process& p = *processes_.back();
  ++live_processes_;
  // Start via an event so spawn() is safe from any context (including from
  // inside another process) and processes start in deterministic order.
  p.start_event_ = schedule_at(now_, [this, &p] { start_process(p); });
  return id;
}

void Kernel::kill(ProcessId id) {
  Process& p = get(id);
  if (p.done()) return;
  p.kill_requested_ = true;
  switch (p.state_) {
    case ProcessState::kCreated:
      cancel_event(p.start_event_);
      p.start_event_ = {};
      finalize(p);
      break;
    case ProcessState::kRunning:
      // Self-kill: unwind right here.
      assert(current_ == &p);
      throw ProcessCancelled{};
    case ProcessState::kWaiting: {
      WaitNode& node = *p.waiting_on_;
      if (node.owner != nullptr) {
        node.owner->cancel_wait(node);
        node.owner = nullptr;
      } else if (node.pending_wake.valid()) {
        // A wake was already scheduled; revoke it and unwind now instead.
        cancel_event(node.pending_wake);
        node.pending_wake = {};
      }
      wake_now(node, WakeStatus::kCancelled);
      break;
    }
    case ProcessState::kDone:
      break;
  }
}

bool Kernel::alive(ProcessId id) const { return !get(id).done(); }

const std::string& Kernel::process_name(ProcessId id) const {
  return get(id).name();
}

void Kernel::run() {
  while (step()) {
  }
}

void Kernel::run_until(TimePoint deadline) {
  while (true) {
    auto t = events_.next_time();
    if (!t.has_value() || *t > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

bool Kernel::step() {
  auto ev = events_.pop();
  if (!ev.has_value()) return false;
  assert(ev->time >= now_);
  now_ = ev->time;
  ++events_executed_;
  ev->callback();
  return true;
}

void Kernel::prepare_wait(WaitNode& node, Waitable* owner,
                          std::coroutine_handle<> h) {
  assert(current_ != nullptr && "blocking awaitables require a process context");
  assert(current_->state_ == ProcessState::kRunning);
  node.proc = current_;
  node.handle = h;
  node.owner = owner;
  node.status = WakeStatus::kOk;
  node.pending_wake = {};
  current_->waiting_on_ = &node;
  current_->state_ = ProcessState::kWaiting;
}

void Kernel::wake_now(WaitNode& node, WakeStatus status) {
  node.status = status;
  resume_process(*node.proc, node);
}

void Kernel::wake_later(WaitNode& node, WakeStatus status) {
  assert(node.owner == nullptr &&
         "primitive must dequeue the node before scheduling its wake");
  assert(!node.pending_wake.valid());
  node.status = status;
  node.pending_wake = schedule_at(now_, [this, &node] {
    node.pending_wake = {};
    resume_process(*node.proc, node);
  });
}

void Kernel::start_process(Process& p) {
  p.start_event_ = {};
  assert(p.state_ == ProcessState::kCreated);
  Process* prev = current_;
  current_ = &p;
  p.state_ = ProcessState::kRunning;
  p.body_.resume();
  current_ = prev;
  after_resume(p);
}

void Kernel::resume_process(Process& p, WaitNode& node) {
  assert(p.state_ == ProcessState::kWaiting);
  assert(p.waiting_on_ == &node);
  p.waiting_on_ = nullptr;
  p.state_ = ProcessState::kRunning;
  Process* prev = current_;
  current_ = &p;
  node.handle.resume();
  current_ = prev;
  after_resume(p);
}

void Kernel::after_resume(Process& p) {
  if (p.body_.done()) {
    finalize(p);
    return;
  }
  assert(p.state_ == ProcessState::kWaiting &&
         "a suspended process must be blocked on a kernel awaitable");
}

void Kernel::finalize(Process& p) {
  assert(p.state_ != ProcessState::kDone);
  p.state_ = ProcessState::kDone;
  --live_processes_;
  const std::exception_ptr escaped =
      p.body_.valid() ? p.body_.exception() : nullptr;
  p.body_ = Task<void>{};  // release the coroutine frame
  if (escaped) {
    try {
      std::rethrow_exception(escaped);
    } catch (const ProcessCancelled&) {
      // Normal kill path: the cancellation unwound the whole body.
    }
    // Any other exception type propagates out of the rethrow above and
    // escapes Kernel::run(), surfacing the bug to the caller/test.
  }
}

void Kernel::DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  kernel_.prepare_wait(node_, this, h);
  event_ = kernel_.schedule_in(delay_, [this] {
    node_.owner = nullptr;
    kernel_.wake_now(node_, WakeStatus::kOk);
  });
}

void Kernel::DelayAwaiter::await_resume() const {
  Kernel::check_cancelled(node_);
}

void Kernel::DelayAwaiter::cancel_wait(WaitNode& node) noexcept {
  assert(&node == &node_);
  (void)node;
  kernel_.cancel_event(event_);
  event_ = {};
}

Process& Kernel::get(ProcessId id) {
  assert(id.valid() && id.value < processes_.size());
  return *processes_[id.value];
}

const Process& Kernel::get(ProcessId id) const {
  assert(id.valid() && id.value < processes_.size());
  return *processes_[id.value];
}

}  // namespace rtdb::sim
