#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <utility>

namespace rtdb::sim {

// Transaction/task priority.
//
// Convention throughout the library: a *smaller* key means a *higher*
// priority. Priorities are assigned from deadlines (earliest deadline =
// highest priority = smallest key), so the key is naturally the deadline in
// ticks; `tie` breaks equal deadlines deterministically (transaction id).
//
// All comparisons go through the named helpers below — never compare keys
// with raw operators in protocol code, so "higher" is unambiguous.
class Priority {
 public:
  constexpr Priority() = default;
  constexpr Priority(std::int64_t key, std::uint32_t tie) : key_(key), tie_(tie) {}

  // The weakest possible priority; also the identity for ceiling maxima.
  static constexpr Priority lowest() {
    return Priority{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::uint32_t>::max()};
  }
  // The strongest possible priority.
  static constexpr Priority highest() {
    return Priority{std::numeric_limits<std::int64_t>::min(), 0};
  }

  constexpr std::int64_t key() const { return key_; }
  constexpr std::uint32_t tie() const { return tie_; }

  constexpr bool higher_than(Priority other) const {
    return rank() < other.rank();
  }
  constexpr bool lower_than(Priority other) const {
    return rank() > other.rank();
  }
  constexpr bool at_least(Priority other) const { return !lower_than(other); }

  // Returns the higher (stronger) of two priorities; used when computing
  // priority ceilings and inherited priorities.
  static constexpr Priority stronger(Priority a, Priority b) {
    return a.higher_than(b) ? a : b;
  }

  friend constexpr bool operator==(Priority, Priority) = default;

  // Heap/sort comparator ordering by descending strength (highest first).
  struct HigherFirst {
    constexpr bool operator()(Priority a, Priority b) const {
      return a.higher_than(b);
    }
  };

 private:
  constexpr std::pair<std::int64_t, std::uint32_t> rank() const {
    return {key_, tie_};
  }
  std::int64_t key_ = std::numeric_limits<std::int64_t>::max();
  std::uint32_t tie_ = std::numeric_limits<std::uint32_t>::max();
};

}  // namespace rtdb::sim
