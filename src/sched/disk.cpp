#include "sched/disk.hpp"

#include <cassert>

namespace rtdb::sched {

using sim::Priority;
using sim::WaitNode;
using sim::WakeStatus;

IoSubsystem::IoSubsystem(sim::Kernel& kernel, int servers, std::string name)
    : kernel_(kernel), servers_(servers), name_(std::move(name)) {
  assert(servers_ >= 0);
}

IoSubsystem::~IoSubsystem() {
  assert(queue_.empty() && busy_ == 0 &&
         "I/O subsystem destroyed with requests in flight");
}

void IoSubsystem::IoAwaiter::await_suspend(std::coroutine_handle<> h) {
  io_.kernel_.prepare_wait(node_, &io_, h);
  node_.ctx = this;
  if (io_.unlimited() || io_.busy_ < io_.servers_) {
    io_.start_service(*this);
    return;
  }
  // Insert in priority order (FIFO among equals: insert before the first
  // strictly lower-priority entry).
  WaitNode* pos = nullptr;
  io_.queue_.for_each([&](WaitNode& n) {
    if (pos != nullptr) return;
    auto* other = static_cast<IoAwaiter*>(n.ctx);
    if (priority_.higher_than(other->priority_)) pos = &n;
  });
  if (pos != nullptr) {
    io_.queue_.insert_before(*pos, node_);
  } else {
    io_.queue_.push_back(node_);
  }
}

void IoSubsystem::start_service(IoAwaiter& awaiter) {
  ++busy_;
  awaiter.in_service_ = true;
  awaiter.started_ = kernel_.now();
  awaiter.completion_ = kernel_.schedule_in(
      awaiter.service_, [this, &awaiter] { finish_service(awaiter); });
}

void IoSubsystem::finish_service(IoAwaiter& awaiter) {
  assert(awaiter.in_service_);
  --busy_;
  ++completed_;
  busy_accum_ += awaiter.service_;
  awaiter.in_service_ = false;
  awaiter.completion_ = {};
  awaiter.node_.owner = nullptr;
  kernel_.wake_later(awaiter.node_, WakeStatus::kOk);
  dispatch_next();
}

void IoSubsystem::dispatch_next() {
  if (unlimited()) return;
  while (busy_ < servers_ && !queue_.empty()) {
    WaitNode* node = queue_.pop_front();
    start_service(*static_cast<IoAwaiter*>(node->ctx));
  }
}

void IoSubsystem::cancel_wait(WaitNode& node) noexcept {
  auto* awaiter = static_cast<IoAwaiter*>(node.ctx);
  if (awaiter->in_service_) {
    kernel_.cancel_event(awaiter->completion_);
    awaiter->completion_ = {};
    awaiter->in_service_ = false;
    --busy_;
    busy_accum_ += kernel_.now() - awaiter->started_;
    dispatch_next();
  } else {
    queue_.remove(node);
  }
}

}  // namespace rtdb::sched
