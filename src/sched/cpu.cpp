#include "sched/cpu.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::sched {

using sim::Duration;
using sim::Priority;
using sim::WaitNode;
using sim::WakeStatus;

PreemptiveCpu::PreemptiveCpu(sim::Kernel& kernel, int cores, std::string name)
    : kernel_(kernel), cores_(cores), name_(std::move(name)) {
  assert(cores_ >= 1);
}

PreemptiveCpu::~PreemptiveCpu() {
  assert(live_jobs_ == 0 && "CPU destroyed with jobs still admitted");
}

void PreemptiveCpu::ExecuteAwaiter::await_suspend(std::coroutine_handle<> h) {
  cpu_.kernel_.prepare_wait(node_, &cpu_, h);
  node_.ctx = this;
  id_ = cpu_.admit(work_, priority_, &node_);
  if (handle_out_ != nullptr) *handle_out_ = id_;
}

JobId PreemptiveCpu::admit(Duration work, Priority priority, WaitNode* node) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
  }
  Job& job = jobs_[slot];
  job.live = true;
  job.running = false;
  job.priority = priority;
  job.remaining = work;
  job.node = node;
  job.completion = {};
  job.admit_seq = admit_seq_++;
  ++live_jobs_;
  reschedule();
  return JobId{slot, job.generation};
}

void PreemptiveCpu::set_priority(JobId id, Priority priority) {
  if (find(id) == nullptr) return;  // job already finished; stale id
  jobs_[id.slot].priority = priority;
  reschedule();
}

bool PreemptiveCpu::job_active(JobId id) const { return find(id) != nullptr; }

std::size_t PreemptiveCpu::running_jobs() const {
  std::size_t n = 0;
  for (const Job& j : jobs_) {
    if (j.live && j.running) ++n;
  }
  return n;
}

Duration PreemptiveCpu::busy_time() const {
  Duration running_now{};
  for (const Job& j : jobs_) {
    if (j.live && j.running) running_now += kernel_.now() - j.started;
  }
  return busy_accum_ + running_now;
}

void PreemptiveCpu::cancel_wait(WaitNode& node) noexcept {
  auto* awaiter = static_cast<ExecuteAwaiter*>(node.ctx);
  remove(awaiter->id_);
}

PreemptiveCpu::Job& PreemptiveCpu::get(JobId id) {
  assert(id.valid() && id.slot < jobs_.size() && jobs_[id.slot].live &&
         jobs_[id.slot].generation == id.generation);
  return jobs_[id.slot];
}

const PreemptiveCpu::Job* PreemptiveCpu::find(JobId id) const {
  if (!id.valid() || id.slot >= jobs_.size()) return nullptr;
  const Job& job = jobs_[id.slot];
  return (job.live && job.generation == id.generation) ? &job : nullptr;
}

void PreemptiveCpu::remove(JobId id) {
  Job& job = get(id);
  if (job.running) stop_running(job);
  job.live = false;
  job.node = nullptr;
  ++job.generation;
  --live_jobs_;
  free_slots_.push_back(id.slot);
  reschedule();
}

void PreemptiveCpu::complete(JobId id) {
  Job& job = get(id);
  assert(job.running);
  busy_accum_ += kernel_.now() - job.started;
  job.running = false;
  job.remaining = Duration::zero();
  job.completion = {};
  WaitNode* node = job.node;
  job.live = false;
  job.node = nullptr;
  ++job.generation;
  --live_jobs_;
  free_slots_.push_back(id.slot);
  node->owner = nullptr;
  kernel_.wake_later(*node, WakeStatus::kOk);
  reschedule();
}

void PreemptiveCpu::reschedule() {
  // This runs on every admit/complete/priority change, so the single-core
  // configuration (the paper's) gets a sort-free fast path and the general
  // path reuses a member scratch vector instead of allocating.
  if (cores_ == 1) {
    // The strongest live job (priority, then admission order) takes the
    // core; everyone else is preempted.
    Job* best = nullptr;
    std::uint32_t best_slot = 0;
    for (std::uint32_t i = 0; i < jobs_.size(); ++i) {
      Job& job = jobs_[i];
      if (!job.live) continue;
      if (best == nullptr || job.priority.higher_than(best->priority) ||
          (job.priority == best->priority &&
           job.admit_seq < best->admit_seq)) {
        best = &job;
        best_slot = i;
      }
    }
    // Preempt first so the core is free before the winner starts.
    for (Job& job : jobs_) {
      if (job.live && job.running && &job != best) stop_running(job);
    }
    if (best != nullptr && !best->running) {
      start_running(JobId{best_slot, best->generation}, *best);
    }
    return;
  }

  // Gather live jobs ordered by (priority, admission order); the first
  // `cores_` of them should hold the cores.
  std::vector<std::uint32_t>& order = order_scratch_;
  order.clear();
  order.reserve(live_jobs_);
  for (std::uint32_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].live) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    const Job& ja = jobs_[a];
    const Job& jb = jobs_[b];
    if (ja.priority != jb.priority) return ja.priority.higher_than(jb.priority);
    return ja.admit_seq < jb.admit_seq;
  });
  const std::size_t n_run = std::min<std::size_t>(order.size(), cores_);

  // Preempt first so cores are free before new jobs start.
  for (std::size_t i = n_run; i < order.size(); ++i) {
    Job& job = jobs_[order[i]];
    if (job.running) stop_running(job);
  }
  for (std::size_t i = 0; i < n_run; ++i) {
    Job& job = jobs_[order[i]];
    if (!job.running) start_running(JobId{order[i], job.generation}, job);
  }
}

void PreemptiveCpu::stop_running(Job& job) {
  assert(job.running);
  const Duration done = kernel_.now() - job.started;
  busy_accum_ += done;
  job.remaining -= done;
  assert(!job.remaining.is_negative());
  job.running = false;
  kernel_.cancel_event(job.completion);
  job.completion = {};
}

void PreemptiveCpu::start_running(JobId id, Job& job) {
  assert(!job.running);
  job.running = true;
  job.started = kernel_.now();
  job.completion =
      kernel_.schedule_in(job.remaining, [this, id] { complete(id); });
}

}  // namespace rtdb::sched
