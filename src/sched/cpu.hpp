#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/priority.hpp"
#include "sim/time.hpp"
#include "sim/wait.hpp"

namespace rtdb::sched {

// Identifies a job admitted to a PreemptiveCpu. Valid until the job
// completes or its process is killed.
struct JobId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t slot = kInvalid;
  std::uint32_t generation = 0;
  bool valid() const { return slot != kInvalid; }
  friend bool operator==(JobId, JobId) = default;
};

// A priority-preemptive CPU with one or more identical cores.
//
// A transaction executes its computation with `co_await cpu.execute(work,
// priority, &job)`; a higher-priority arrival immediately preempts the
// lowest-priority running job (the preempted job keeps its remaining work
// and resumes when a core frees up). set_priority() supports priority
// inheritance: raising a blocked-holder's priority re-evaluates the
// running set at once.
//
// All scheduling decisions are deterministic: ties are broken by admission
// order.
class PreemptiveCpu : public sim::Waitable {
 public:
  PreemptiveCpu(sim::Kernel& kernel, int cores = 1, std::string name = "cpu");
  ~PreemptiveCpu();

  PreemptiveCpu(const PreemptiveCpu&) = delete;
  PreemptiveCpu& operator=(const PreemptiveCpu&) = delete;

  class [[nodiscard]] ExecuteAwaiter {
   public:
    ExecuteAwaiter(PreemptiveCpu& cpu, sim::Duration work,
                   sim::Priority priority, JobId* handle_out)
        : cpu_(cpu), work_(work), priority_(priority), handle_out_(handle_out) {}

    bool await_ready() const { return work_.is_zero(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const { sim::Kernel::check_cancelled(node_); }

   private:
    friend class PreemptiveCpu;
    PreemptiveCpu& cpu_;
    sim::Duration work_;
    sim::Priority priority_;
    JobId* handle_out_;
    JobId id_{};
    sim::WaitNode node_{};
  };

  // Runs `work` of computation at `priority`, competing with every other
  // job on this CPU. If `handle_out` is non-null it receives the JobId on
  // admission (for later set_priority calls).
  ExecuteAwaiter execute(sim::Duration work, sim::Priority priority,
                         JobId* handle_out = nullptr) {
    return ExecuteAwaiter{*this, work, priority, handle_out};
  }

  // Priority inheritance hook: changes a live job's priority and
  // immediately re-evaluates which jobs hold the cores. No-op for
  // completed/killed jobs (stale ids are detected).
  void set_priority(JobId id, sim::Priority priority);

  bool job_active(JobId id) const;

  int cores() const { return cores_; }
  std::size_t active_jobs() const { return live_jobs_; }
  std::size_t running_jobs() const;

  // Total core-busy virtual time accumulated so far (across all cores).
  sim::Duration busy_time() const;

  void cancel_wait(sim::WaitNode& node) noexcept override;

 private:
  struct Job {
    std::uint32_t generation = 0;
    bool live = false;
    bool running = false;
    sim::Priority priority;
    sim::Duration remaining;
    sim::TimePoint started;       // last time it was put on a core
    sim::WaitNode* node = nullptr;
    sim::EventId completion{};
    std::uint64_t admit_seq = 0;  // deterministic tie-break
  };

  Job& get(JobId id);
  const Job* find(JobId id) const;
  JobId admit(sim::Duration work, sim::Priority priority, sim::WaitNode* node);
  void remove(JobId id);
  void complete(JobId id);
  // Ensures the `cores_` highest-priority live jobs (and only they) are
  // running; charges preempted jobs for the work done so far.
  void reschedule();
  void stop_running(Job& job);
  void start_running(JobId id, Job& job);

  sim::Kernel& kernel_;
  int cores_;
  std::string name_;
  std::vector<Job> jobs_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> order_scratch_;  // reschedule(), multi-core path
  std::size_t live_jobs_ = 0;
  std::uint64_t admit_seq_ = 0;
  mutable sim::Duration busy_accum_{};
};

}  // namespace rtdb::sched
