#pragma once

#include <cstdint>
#include <string>

#include "sim/intrusive_list.hpp"
#include "sim/kernel.hpp"
#include "sim/priority.hpp"
#include "sim/time.hpp"
#include "sim/wait.hpp"

namespace rtdb::sched {

// I/O subsystem of one site.
//
// Models `servers` identical disks fed by a single queue (priority order,
// ties FIFO). With servers == kUnlimited it degenerates to a pure delay,
// which is the paper's "parallel I/O processing" assumption for the
// single-site experiments; the distributed experiments use a
// memory-resident database and skip I/O entirely.
class IoSubsystem : public sim::Waitable {
 public:
  static constexpr int kUnlimited = 0;

  IoSubsystem(sim::Kernel& kernel, int servers = kUnlimited,
              std::string name = "io");
  ~IoSubsystem();

  IoSubsystem(const IoSubsystem&) = delete;
  IoSubsystem& operator=(const IoSubsystem&) = delete;

  class [[nodiscard]] IoAwaiter {
   public:
    IoAwaiter(IoSubsystem& io, sim::Duration service, sim::Priority priority)
        : io_(io), service_(service), priority_(priority) {}

    bool await_ready() const { return service_.is_zero(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const { sim::Kernel::check_cancelled(node_); }

   private:
    friend class IoSubsystem;
    IoSubsystem& io_;
    sim::Duration service_;
    sim::Priority priority_;
    bool in_service_ = false;
    sim::TimePoint started_{};
    sim::EventId completion_{};
    sim::WaitNode node_{};
  };

  // Performs one I/O taking `service` of disk time; queues when all disks
  // are busy. Higher-priority requests are served first.
  IoAwaiter io(sim::Duration service,
               sim::Priority priority = sim::Priority::lowest()) {
    return IoAwaiter{*this, service, priority};
  }

  bool unlimited() const { return servers_ == kUnlimited; }
  int busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }
  sim::Duration busy_time() const { return busy_accum_; }

  void cancel_wait(sim::WaitNode& node) noexcept override;

 private:
  void start_service(IoAwaiter& awaiter);
  void finish_service(IoAwaiter& awaiter);
  void dispatch_next();

  sim::Kernel& kernel_;
  int servers_;
  std::string name_;
  int busy_ = 0;
  std::uint64_t completed_ = 0;
  sim::Duration busy_accum_{};
  sim::IntrusiveList<sim::WaitNode> queue_;
};

}  // namespace rtdb::sched
