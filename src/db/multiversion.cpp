#include "db/multiversion.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::db {

MultiVersionStore::MultiVersionStore(std::uint32_t object_count)
    : history_(object_count) {
  for (auto& versions : history_) {
    versions.push_back(Version{});  // initial version at the origin
  }
}

void MultiVersionStore::install(ObjectId object, Version version) {
  assert(object < history_.size());
  auto& versions = history_[object];
  assert(!versions.empty());
  assert(version.written_at >= versions.back().written_at);
  assert(version.sequence > versions.back().sequence);
  versions.push_back(version);
}

const Version& MultiVersionStore::latest(ObjectId object) const {
  assert(object < history_.size());
  return history_[object].back();
}

const Version& MultiVersionStore::read_at(ObjectId object,
                                          sim::TimePoint at) const {
  assert(object < history_.size());
  const auto& versions = history_[object];
  // Last version with written_at <= at; the initial version is at the
  // origin so a read at/after the origin always finds one.
  auto it = std::upper_bound(
      versions.begin(), versions.end(), at,
      [](sim::TimePoint t, const Version& v) { return t < v.written_at; });
  assert(it != versions.begin());
  return *(it - 1);
}

std::size_t MultiVersionStore::version_count(ObjectId object) const {
  assert(object < history_.size());
  return history_[object].size();
}

std::span<const Version> MultiVersionStore::versions_of(
    ObjectId object) const {
  assert(object < history_.size());
  return history_[object];
}

void MultiVersionStore::prune_before(sim::TimePoint horizon) {
  for (auto& versions : history_) {
    // Keep the newest version written at or before the horizon (still
    // visible) and everything after it.
    auto it = std::upper_bound(
        versions.begin(), versions.end(), horizon,
        [](sim::TimePoint t, const Version& v) { return t < v.written_at; });
    assert(it != versions.begin());
    versions.erase(versions.begin(), it - 1);
  }
}

}  // namespace rtdb::db
