#pragma once

#include <cstdint>
#include <vector>

#include "db/types.hpp"
#include "net/network.hpp"

namespace rtdb::db {

using net::SiteId;

// How object copies are placed across sites.
enum class Placement : std::uint8_t {
  kSingleSite,       // everything at site 0 (the single-site experiments)
  kPartitioned,      // each object has exactly one copy, round-robin homed
                     // (the global ceiling manager experiments)
  kFullyReplicated,  // primary copy round-robin homed + a secondary copy at
                     // every other site (the local ceiling experiments)
};

struct DatabaseConfig {
  std::uint32_t object_count = 0;
  std::uint32_t site_count = 1;
  Placement placement = Placement::kSingleSite;
};

// The logical schema: which sites hold which copies of which objects.
// Pure metadata — values live in the per-site ResourceManagers.
class Database {
 public:
  explicit Database(DatabaseConfig config);

  const DatabaseConfig& config() const { return config_; }
  std::uint32_t object_count() const { return config_.object_count; }
  std::uint32_t site_count() const { return config_.site_count; }
  Placement placement() const { return config_.placement; }

  // The site holding the primary (writable) copy of `object`.
  SiteId primary_site(ObjectId object) const;

  // Whether `site` holds any copy (primary or secondary) of `object`.
  bool has_copy(SiteId site, ObjectId object) const;

  bool is_primary(SiteId site, ObjectId object) const {
    return primary_site(object) == site;
  }

  // All objects whose primary copy lives at `site`.
  std::vector<ObjectId> primaries_at(SiteId site) const;

 private:
  DatabaseConfig config_;
};

}  // namespace rtdb::db
