#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "db/database.hpp"
#include "db/multiversion.hpp"
#include "db/types.hpp"
#include "sched/disk.hpp"
#include "sim/kernel.hpp"
#include "sim/priority.hpp"
#include "sim/task.hpp"

namespace rtdb::db {

// The Resource Manager of one site: owns the local copies of data objects
// and performs the physical accesses, charging I/O through the site's
// IoSubsystem (io_per_access == 0 models the memory-resident database used
// in the distributed experiments).
//
// Optionally keeps the full version history (MultiVersionStore) to support
// temporally consistent reads.
class ResourceManager {
 public:
  ResourceManager(sim::Kernel& kernel, const Database& schema, SiteId site,
                  sched::IoSubsystem& io, sim::Duration io_per_access,
                  bool keep_version_history = false);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  SiteId site() const { return site_; }
  const Database& schema() const { return schema_; }

  // Reads the local copy of `object` (which must exist at this site);
  // charges one I/O at `priority`.
  sim::Task<Version> read(ObjectId object, sim::Priority priority);

  // Applies the write set of a committing transaction to the local
  // *primary* copies, charging one I/O per object. Returns the versions
  // installed (for replication).
  sim::Task<std::vector<Version>> commit_writes(TxnId writer,
                                                std::span<const ObjectId> objects,
                                                sim::Priority priority);

  // Applies a version propagated from a remote primary to the local
  // secondary copy. Stale or duplicate versions (possible after message
  // loss/reordering across objects) are ignored.
  // Returns true if the version was applied.
  bool apply_replica_update(ObjectId object, Version version);

  // Applies an externally computed version to the local copy regardless of
  // primary/secondary role — the synchronous-update path of the global
  // ceiling scheme, where the writing site computes the version under a
  // global lock and every copy installs it. Monotonic like replica updates.
  bool apply_update(ObjectId object, Version version);

  // Current committed version of the local copy; no I/O.
  const Version& current(ObjectId object) const;

  // Version history; non-null only when keep_version_history was set.
  MultiVersionStore* version_history() { return versions_.get(); }
  const MultiVersionStore* version_history() const { return versions_.get(); }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t replica_applies() const { return replica_applies_; }
  std::uint64_t stale_replica_updates() const { return stale_replica_updates_; }

 private:
  void install(ObjectId object, Version version);

  sim::Kernel& kernel_;
  const Database& schema_;
  SiteId site_;
  sched::IoSubsystem& io_;
  sim::Duration io_per_access_;
  std::vector<Version> latest_;
  std::unique_ptr<MultiVersionStore> versions_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t replica_applies_ = 0;
  std::uint64_t stale_replica_updates_ = 0;
};

}  // namespace rtdb::db
