#include "db/resource_manager.hpp"

#include <cassert>

namespace rtdb::db {

ResourceManager::ResourceManager(sim::Kernel& kernel, const Database& schema,
                                 SiteId site, sched::IoSubsystem& io,
                                 sim::Duration io_per_access,
                                 bool keep_version_history)
    : kernel_(kernel),
      schema_(schema),
      site_(site),
      io_(io),
      io_per_access_(io_per_access),
      latest_(schema.object_count()) {
  assert(site_ < schema_.site_count());
  assert(!io_per_access_.is_negative());
  if (keep_version_history) {
    versions_ = std::make_unique<MultiVersionStore>(schema.object_count());
  }
}

sim::Task<Version> ResourceManager::read(ObjectId object,
                                         sim::Priority priority) {
  assert(schema_.has_copy(site_, object));
  if (!io_per_access_.is_zero()) {
    co_await io_.io(io_per_access_, priority);
  }
  ++reads_;
  co_return latest_[object];
}

sim::Task<std::vector<Version>> ResourceManager::commit_writes(
    TxnId writer, std::span<const ObjectId> objects, sim::Priority priority) {
  std::vector<Version> installed;
  installed.reserve(objects.size());
  for (const ObjectId object : objects) {
    assert(schema_.is_primary(site_, object) &&
           "writes must target the local primary copy");
    if (!io_per_access_.is_zero()) {
      co_await io_.io(io_per_access_, priority);
    }
    Version next{latest_[object].sequence + 1, writer, kernel_.now()};
    install(object, next);
    ++writes_;
    installed.push_back(next);
  }
  co_return installed;
}

bool ResourceManager::apply_replica_update(ObjectId object, Version version) {
  assert(schema_.has_copy(site_, object));
  assert(!schema_.is_primary(site_, object) &&
         "replica updates only apply to secondary copies");
  if (version.sequence <= latest_[object].sequence) {
    ++stale_replica_updates_;
    return false;
  }
  install(object, version);
  ++replica_applies_;
  return true;
}

bool ResourceManager::apply_update(ObjectId object, Version version) {
  assert(schema_.has_copy(site_, object));
  if (version.sequence <= latest_[object].sequence) {
    ++stale_replica_updates_;
    return false;
  }
  install(object, version);
  ++writes_;
  return true;
}

const Version& ResourceManager::current(ObjectId object) const {
  assert(schema_.has_copy(site_, object));
  return latest_[object];
}

void ResourceManager::install(ObjectId object, Version version) {
  latest_[object] = version;
  if (versions_ != nullptr) versions_->install(object, version);
}

}  // namespace rtdb::db
