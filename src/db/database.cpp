#include "db/database.hpp"

#include <cassert>

namespace rtdb::db {

Database::Database(DatabaseConfig config) : config_(config) {
  assert(config_.object_count > 0);
  assert(config_.site_count >= 1);
  if (config_.placement == Placement::kSingleSite) {
    assert(config_.site_count == 1);
  }
}

SiteId Database::primary_site(ObjectId object) const {
  assert(object < config_.object_count);
  switch (config_.placement) {
    case Placement::kSingleSite:
      return 0;
    case Placement::kPartitioned:
    case Placement::kFullyReplicated:
      return object % config_.site_count;
  }
  return 0;
}

bool Database::has_copy(SiteId site, ObjectId object) const {
  assert(site < config_.site_count);
  switch (config_.placement) {
    case Placement::kSingleSite:
    case Placement::kPartitioned:
      return primary_site(object) == site;
    case Placement::kFullyReplicated:
      return true;  // "every data object is fully replicated at each site"
  }
  return false;
}

std::vector<ObjectId> Database::primaries_at(SiteId site) const {
  std::vector<ObjectId> result;
  for (ObjectId o = 0; o < config_.object_count; ++o) {
    if (primary_site(o) == site) result.push_back(o);
  }
  return result;
}

}  // namespace rtdb::db
