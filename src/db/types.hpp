#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace rtdb::db {

// A data object in the database; objects are the locking granules.
using ObjectId = std::uint32_t;

// Globally unique transaction identifier (never reused within a run).
struct TxnId {
  static constexpr std::uint64_t kInvalid = 0;
  std::uint64_t value = kInvalid;

  bool valid() const { return value != kInvalid; }
  friend bool operator==(TxnId, TxnId) = default;
  friend bool operator<(TxnId a, TxnId b) { return a.value < b.value; }
};

// One committed state of a data object copy.
struct Version {
  // Per-object sequence number: 0 = initial, incremented by each commit of
  // a writer on the primary copy. Replicas apply primary versions in order.
  std::uint64_t sequence = 0;
  TxnId writer{};
  sim::TimePoint written_at{};

  friend bool operator==(const Version&, const Version&) = default;
};

}  // namespace rtdb::db

template <>
struct std::hash<rtdb::db::TxnId> {
  std::size_t operator()(rtdb::db::TxnId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
