#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "db/types.hpp"
#include "sim/time.hpp"

namespace rtdb::db {

// Multi-version history of object copies, the mechanism the paper sketches
// in §4 for temporally consistent reads in a replicated system: "if the
// system provides multiple versions of data objects, ensuring a temporally
// consistent view becomes a real-time scheduling problem in which the time
// lags in the distributed versions need to be controlled".
//
// Versions of each object are kept in commit-time order; read_at(t) returns
// the version visible at time t, so a read-only transaction can read all
// its objects "as of" one instant even while newer updates stream in.
class MultiVersionStore {
 public:
  explicit MultiVersionStore(std::uint32_t object_count);

  std::uint32_t object_count() const {
    return static_cast<std::uint32_t>(history_.size());
  }

  // Installs a committed version. Versions of one object must arrive in
  // increasing (written_at, sequence) order — replication applies primary
  // commits in order, so this holds by construction.
  void install(ObjectId object, Version version);

  // Latest version (every object starts with an initial sequence-0 version
  // written at the origin).
  const Version& latest(ObjectId object) const;

  // The version visible at time `at`: the newest version with
  // written_at <= at.
  const Version& read_at(ObjectId object, sim::TimePoint at) const;

  std::size_t version_count(ObjectId object) const;

  // The full retained history of one object, oldest first.
  std::span<const Version> versions_of(ObjectId object) const;

  // Drops versions that are invisible to any read at or after `horizon`
  // (all but the newest version written before the horizon).
  void prune_before(sim::TimePoint horizon);

  // The staleness of object's latest local version relative to `now` —
  // the "time lag" of §4.
  sim::Duration lag(ObjectId object, sim::TimePoint now) const {
    return now - latest(object).written_at;
  }

 private:
  std::vector<std::vector<Version>> history_;
};

}  // namespace rtdb::db
