#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/mailbox.hpp"
#include "sim/time.hpp"

namespace rtdb::net {

// One message in flight between sites. `body` carries any application
// payload; `on_retrieved` (optional) is invoked by the destination site's
// MessageServer when it picks the message up — the hook behind rendezvous
// sends ("the sender can block itself ... until the message is retrieved by
// the MS at the receiving site").
struct Envelope {
  SiteId from = 0;
  SiteId to = 0;
  std::any body;
  std::function<void()> on_retrieved;
};

// The simulated communication network: a set of sites with a per-ordered-
// pair communication delay, one inbox per site, and per-site up/down state
// (messages to a down site are dropped at delivery time, which is what
// makes the sender-side timeout observable).
//
// The paper's distributed experiments use a fully interconnected 3-site
// network with a single "communication delay" knob; set_all_delays covers
// that, set_delay allows asymmetric topologies.
class Network {
 public:
  Network(sim::Kernel& kernel, std::uint32_t site_count,
          sim::Duration default_delay = sim::Duration::zero());
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::uint32_t site_count() const { return static_cast<std::uint32_t>(inboxes_.size()); }

  void set_delay(SiteId from, SiteId to, sim::Duration delay);
  void set_all_delays(sim::Duration delay);
  sim::Duration delay(SiteId from, SiteId to) const;

  void set_operational(SiteId site, bool up);
  bool operational(SiteId site) const;

  // Link partitions: while a directed link is cut, messages sent over it
  // are dropped at send time (in-flight deliveries already scheduled keep
  // going, like packets past the failed router). Cuts nest — overlapping
  // partitions each add a cut and the link heals when the last one lifts.
  void cut_link(SiteId from, SiteId to);
  void heal_link(SiteId from, SiteId to);
  bool link_cut(SiteId from, SiteId to) const;
  // Applies / lifts one FaultSpec::Partition (every group<->non-group
  // link, both directions when symmetric, outbound only when not).
  void apply_partition(const FaultSpec::Partition& partition);
  void lift_partition(const FaultSpec::Partition& partition);

  // Installs message-fault injection (drop/duplicate/jitter). The decision
  // stream is seeded independently of the workload; with a zero spec the
  // injector is never consulted and the network behaves exactly as before.
  void install_faults(const FaultSpec& spec, sim::RandomStream stream);
  const FaultInjector* faults() const { return injector_.get(); }

  // Sends asynchronously; the envelope arrives in `to`'s inbox after
  // delay(from, to). Intra-site messages bypass the network (delivered
  // immediately), matching the paper: "inter-process communication within a
  // site does not go through the Message Server".
  void send(Envelope envelope);

  // Sends a copy of `body` from `from` to every other site.
  void broadcast(SiteId from, const std::any& body);

  sim::Mailbox<Envelope>& inbox(SiteId site);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  // Messages lost to a down endpoint (either direction).
  std::uint64_t messages_dropped() const { return dropped_; }
  // Messages lost to a cut link.
  std::uint64_t partition_drops() const { return partition_drops_; }
  // Messages lost / duplicated by the fault injector.
  std::uint64_t fault_drops() const {
    return injector_ ? injector_->drops() : 0;
  }
  std::uint64_t fault_duplicates() const {
    return injector_ ? injector_->duplicates() : 0;
  }

 private:
  void deliver(Envelope envelope);
  void schedule_delivery(Envelope envelope, sim::Duration delay);

  sim::Kernel& kernel_;
  std::vector<std::unique_ptr<sim::Mailbox<Envelope>>> inboxes_;
  std::vector<sim::Duration> delays_;  // site_count x site_count
  std::vector<bool> up_;
  // Per-directed-link cut depth (site_count x site_count); lazily sized on
  // the first cut so partition-free runs never touch it.
  std::vector<std::uint16_t> cuts_;
  std::unique_ptr<FaultInjector> injector_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t partition_drops_ = 0;
};

}  // namespace rtdb::net
