#include "net/batch.hpp"

#include <utility>

namespace rtdb::net {

BatchChannel::BatchChannel(MessageServer& server, ReliableChannel* channel,
                           Options options)
    : server_(server), channel_(channel), options_(options) {
  if (!enabled()) return;  // passthrough: no handler slot, no timer, ever
  auto handler = [this](SiteId from, BatchMsg frame) {
    handle_frame(from, std::move(frame));
  };
  if (channel_ != nullptr) {
    channel_->on<BatchMsg>(std::move(handler));
  } else {
    server_.on<BatchMsg>(std::move(handler));
  }
}

BatchChannel::~BatchChannel() {
  if (timer_armed_) server_.kernel().cancel_event(timer_);
}

void BatchChannel::enqueue(SiteId to, std::any payload, bool reliable) {
  Queues& queues = queued_[to];
  (reliable ? queues.reliable : queues.raw).push_back(std::move(payload));
  ++batched_messages_;
  if (!timer_armed_) {
    timer_armed_ = true;
    timer_ = server_.kernel().schedule_in(options_.window, [this] {
      timer_armed_ = false;
      on_timer();
    });
  }
}

void BatchChannel::flush(SiteId to) {
  auto it = queued_.find(to);
  if (it == queued_.end()) return;
  flush_queues(to, it->second);
  queued_.erase(it);
}

void BatchChannel::flush_queues(SiteId to, Queues& queues) {
  // Reliable frame first: an election result queued reliably must not be
  // overtaken by the raw heartbeats of the same window.
  if (!queues.reliable.empty()) {
    ++batch_flushes_;
    if (channel_ != nullptr) {
      channel_->send(to, BatchMsg{std::move(queues.reliable)});
    } else {
      server_.send(to, BatchMsg{std::move(queues.reliable)});
    }
  }
  if (!queues.raw.empty()) {
    ++batch_flushes_;
    server_.send(to, BatchMsg{std::move(queues.raw)});
  }
}

void BatchChannel::on_timer() {
  // Ascending destination order keeps the delivery schedule a pure
  // function of (config, seed).
  auto queued = std::move(queued_);
  queued_.clear();
  for (auto& [to, queues] : queued) flush_queues(to, queues);
}

void BatchChannel::handle_frame(SiteId from, BatchMsg frame) {
  for (std::any& item : frame.items) {
    auto it = unpackers_.find(std::type_index{item.type()});
    if (it == unpackers_.end()) {
      ++unroutable_;
      continue;
    }
    it->second(from, std::move(item));
  }
}

void BatchChannel::on_crash() {
  if (timer_armed_) {
    server_.kernel().cancel_event(timer_);
    timer_armed_ = false;
  }
  queued_.clear();
}

}  // namespace rtdb::net
