#include "net/reliable.hpp"

#include <utility>

namespace rtdb::net {

ReliableChannel::ReliableChannel(MessageServer& server, Options options,
                                 sim::RandomStream stream)
    : server_(server), options_(options), stream_(stream) {
  server_.on<ReliableMsg>([this](SiteId from, ReliableMsg message) {
    handle_wrapped(from, std::move(message));
  });
  server_.on<ReliableAckMsg>(
      [this](SiteId, ReliableAckMsg message) { handle_ack(message.seq); });
}

ReliableChannel::~ReliableChannel() {
  for (auto& [seq, pending] : pending_) {
    server_.kernel().cancel_event(pending.timer);
  }
}

void ReliableChannel::send_reliable(SiteId to, std::any payload) {
  const std::uint64_t seq = next_seq_++;
  Pending& pending = pending_[seq];
  pending.to = to;
  pending.payload = payload;  // keep a copy for retransmission
  server_.send(to, ReliableMsg{seq, std::move(payload)});
  arm_timer(seq, pending);
}

void ReliableChannel::arm_timer(std::uint64_t seq, Pending& pending) {
  // Exponential backoff with deterministic jitter: base * 2^attempts plus a
  // uniform draw in [0, base) from this channel's forked stream. The wait
  // saturates at backoff_max — without the clamp, ~60 retries overflow the
  // int64 tick count and schedule a negative delay.
  sim::Duration wait = options_.backoff_base;
  for (int i = 0; i < pending.attempts && wait < options_.backoff_max; ++i) {
    wait = wait * 2;
  }
  if (wait > options_.backoff_max) wait = options_.backoff_max;
  const std::int64_t span = options_.backoff_base.as_ticks();
  if (span > 0) {
    wait = wait + sim::Duration::ticks(stream_.uniform_int(0, span - 1));
  }
  pending.waited = wait;
  pending.timer =
      server_.kernel().schedule_in(wait, [this, seq] { on_timer(seq); });
}

void ReliableChannel::on_timer(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked while the timer was in flight
  Pending& pending = it->second;
  // The armed wait actually elapsed; waits cut short by an ack don't count.
  backoff_wait_ = backoff_wait_ + pending.waited;
  if (pending.attempts >= options_.retransmit_max) {
    ++gave_up_;
    pending_.erase(it);
    return;
  }
  ++pending.attempts;
  ++retransmissions_;
  server_.send(pending.to, ReliableMsg{seq, pending.payload});
  arm_timer(seq, pending);
}

void ReliableChannel::handle_wrapped(SiteId from, ReliableMsg message) {
  // Ack every copy: the first ack may have been dropped.
  server_.send(from, ReliableAckMsg{message.seq});
  if (!seen_[from].insert(message.seq).second) {
    ++duplicates_;
    return;
  }
  auto it = wrapped_handlers_.find(std::type_index{message.payload.type()});
  if (it == wrapped_handlers_.end()) {
    ++unroutable_;
    return;
  }
  it->second(from, std::move(message.payload));
}

void ReliableChannel::handle_ack(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack / already gave up
  server_.kernel().cancel_event(it->second.timer);
  pending_.erase(it);
}

void ReliableChannel::on_crash() {
  for (auto& [seq, pending] : pending_) {
    server_.kernel().cancel_event(pending.timer);
  }
  pending_.clear();
}

}  // namespace rtdb::net
