#include "net/rpc.hpp"

namespace rtdb::net {

RpcClient::RpcClient(MessageServer& server) : server_(server) {
  server_.on<RpcResponseMsg>([this](SiteId /*from*/, RpcResponseMsg message) {
    on_response(std::move(message));
  });
}

void RpcClient::on_response(RpcResponseMsg message) {
  auto it = pending_.find(message.correlation);
  if (it == pending_.end()) {
    // Caller timed out or was killed; account the late arrival so retry
    // loops can be audited, and make sure it can't be confused with a
    // response to a newer call.
    if (expired_.erase(message.correlation) > 0) ++late_responses_;
    return;
  }
  it->second->response = std::move(message.payload);
  it->second->arrived.release();
}

sim::Task<std::optional<std::any>> RpcClient::call(
    SiteId to, std::any request, std::optional<sim::Duration> timeout) {
  const std::uint64_t correlation = next_correlation_++;
  auto pending = std::make_shared<Pending>(server_.kernel());
  pending_.emplace(correlation, pending);
  // Deregister on every exit path (normal, timeout, caller killed).
  struct Deregister {
    RpcClient* client;
    std::uint64_t correlation;
    ~Deregister() { client->pending_.erase(correlation); }
  } deregister{this, correlation};

  server_.send(to, RpcRequestMsg{correlation, server_.site(), std::move(request)});
  if (timeout.has_value()) {
    const sim::WakeStatus status = co_await pending->arrived.acquire_for(*timeout);
    if (status != sim::WakeStatus::kOk) {
      expired_.insert(correlation);
      co_return std::nullopt;
    }
  } else {
    co_await pending->arrived.acquire();
  }
  co_return std::move(pending->response);
}

RpcServer::RpcServer(MessageServer& server, Handler handler)
    : server_(server), handler_(std::move(handler)) {
  server_.on<RpcRequestMsg>([this](SiteId from, RpcRequestMsg message) {
    const std::uint64_t correlation = message.correlation;
    const SiteId reply_to = message.reply_to;
    if (!seen_[reply_to].insert(correlation).second) {
      ++duplicates_;
      return;
    }
    ++served_;
    Responder respond = [this, correlation, reply_to](std::any response) {
      server_.send(reply_to, RpcResponseMsg{correlation, std::move(response)});
    };
    handler_(from, std::move(message.payload), std::move(respond));
  });
}

}  // namespace rtdb::net
