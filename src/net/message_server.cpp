#include "net/message_server.hpp"

namespace rtdb::net {

MessageServer::MessageServer(sim::Kernel& kernel, Network& network, SiteId site)
    : kernel_(kernel), network_(network), site_(site) {}

MessageServer::~MessageServer() {
  // The kernel may already have drained; only kill a live dispatcher.
  if (running_ && kernel_.alive(dispatcher_)) kernel_.kill(dispatcher_);
}

void MessageServer::start() {
  if (running_) return;
  running_ = true;
  dispatcher_ = kernel_.spawn("msg-server-" + std::to_string(site_),
                              dispatch_loop());
}

void MessageServer::stop() {
  if (!running_) return;
  running_ = false;
  if (kernel_.alive(dispatcher_)) kernel_.kill(dispatcher_);
}

sim::Task<void> MessageServer::dispatch_loop() {
  auto& inbox = network_.inbox(site_);
  for (;;) {
    auto envelope = co_await inbox.receive();
    // "When the MS retrieves a message, it wakes the sender process and
    // forwards the message to the proper servers or TM."
    if (envelope->on_retrieved) envelope->on_retrieved();
    auto it = handlers_.find(std::type_index{envelope->body.type()});
    if (it == handlers_.end()) {
      ++unhandled_;
      continue;
    }
    ++dispatched_;
    it->second(std::move(*envelope));
  }
}

}  // namespace rtdb::net
