#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>

#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"
#include "sim/task.hpp"

namespace rtdb::net {

// Correlated request/response on top of the message servers. Used by the
// distributed ceiling protocols: a transaction manager calls the (possibly
// remote) ceiling manager and blocks until the grant comes back.
//
// The server side hands each request a Responder that may be invoked
// *later* — exactly what a lock manager needs to defer a grant until the
// lock becomes available — and from any site-local context.

struct RpcRequestMsg {
  std::uint64_t correlation = 0;
  SiteId reply_to = 0;
  std::any payload;
};

struct RpcResponseMsg {
  std::uint64_t correlation = 0;
  std::any payload;
};

class RpcClient {
 public:
  // Registers the RpcResponseMsg handler on `server`; at most one RpcClient
  // per MessageServer.
  explicit RpcClient(MessageServer& server);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Sends `request` to `to` and suspends until the response arrives.
  // Returns nullopt on timeout (when given). Kill-safe: a killed caller
  // deregisters its pending call and a late response is dropped.
  sim::Task<std::optional<std::any>> call(
      SiteId to, std::any request,
      std::optional<sim::Duration> timeout = std::nullopt);

  std::size_t pending_calls() const { return pending_.size(); }
  // Responses that arrived after their caller's timeout and were discarded
  // by correlation id (instead of waking a stale or reused waiter).
  std::uint64_t late_responses() const { return late_responses_; }

 private:
  struct Pending {
    sim::Semaphore arrived;
    std::optional<std::any> response;
    explicit Pending(sim::Kernel& k) : arrived(k, 0) {}
  };

  void on_response(RpcResponseMsg message);

  MessageServer& server_;
  std::uint64_t next_correlation_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  // Correlations whose caller gave up on a timeout: the response may still
  // be in flight and must be dropped on arrival, not treated as unknown.
  std::unordered_set<std::uint64_t> expired_;
  std::uint64_t late_responses_ = 0;
};

class RpcServer {
 public:
  // Invoke to answer the request; safe to call immediately or long after
  // the handler returned (deferred grant).
  using Responder = std::function<void(std::any response)>;
  using Handler = std::function<void(SiteId from, std::any request, Responder respond)>;

  RpcServer(MessageServer& server, Handler handler);

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  std::uint64_t requests_served() const { return served_; }
  // Re-deliveries of an already-served (caller, correlation) pair; the
  // handler must not run twice (it would, e.g., double-acquire a lock).
  std::uint64_t duplicates_dropped() const { return duplicates_; }

 private:
  MessageServer& server_;
  Handler handler_;
  std::unordered_map<SiteId, std::unordered_set<std::uint64_t>> seen_;
  std::uint64_t served_ = 0;
  std::uint64_t duplicates_ = 0;
};

// Routes RPC requests by payload type, so several services (lock manager,
// data server, ...) can share one site's RPC endpoint.
class RpcDispatcher {
 public:
  explicit RpcDispatcher(MessageServer& server)
      : server_{server, [this](SiteId from, std::any request,
                               RpcServer::Responder respond) {
                  dispatch(from, std::move(request), std::move(respond));
                }} {}

  template <typename T>
  void on(std::function<void(SiteId from, T request, RpcServer::Responder respond)>
              handler) {
    handlers_.emplace(
        std::type_index{typeid(T)},
        [handler = std::move(handler)](SiteId from, std::any request,
                                       RpcServer::Responder respond) {
          handler(from, std::any_cast<T>(std::move(request)),
                  std::move(respond));
        });
  }

  std::uint64_t unhandled() const { return unhandled_; }

 private:
  void dispatch(SiteId from, std::any request, RpcServer::Responder respond) {
    auto it = handlers_.find(std::type_index{request.type()});
    if (it == handlers_.end()) {
      ++unhandled_;
      return;  // caller times out (or hangs by design without timeout)
    }
    it->second(from, std::move(request), std::move(respond));
  }

  RpcServer server_;
  std::unordered_map<std::type_index,
                     std::function<void(SiteId, std::any, RpcServer::Responder)>>
      handlers_;
  std::uint64_t unhandled_ = 0;
};

}  // namespace rtdb::net
