#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>

#include "net/message_server.hpp"
#include "sim/random.hpp"

namespace rtdb::net {

// Sequence-numbered wrapper around an application payload. The receiver
// acks every copy it sees (the first ack may itself be lost) and delivers
// the payload to the registered typed handler exactly once.
struct ReliableMsg {
  std::uint64_t seq = 0;
  std::any payload;
};
struct ReliableAckMsg {
  std::uint64_t seq = 0;
};

// At-most-once-delivery networks lose control messages for good; the
// ReliableChannel turns the per-site MessageServer into an acked,
// retransmitting endpoint for the protocol messages that must not vanish
// (ceiling registrations/releases, replica updates, recovery sync rounds).
//
// Retransmission is bounded (Options::retransmit_max) with exponential
// backoff; the per-retry jitter is drawn from a stream forked off the run
// seed, so the whole retransmission schedule is a pure function of
// (config, seed) and the sweep engine's --jobs N byte-identity survives.
//
// A disabled channel (Options::enabled == false, the fault-free default)
// forwards sends verbatim to the raw MessageServer and registers handlers
// for the unwrapped types only — bit-identical to a build without it.
// Intra-site sends always bypass wrapping (they bypass the network too).
//
// At most one ReliableChannel per MessageServer (it owns the ReliableMsg
// and ReliableAckMsg handler slots).
class ReliableChannel {
 public:
  struct Options {
    bool enabled = false;
    // Retransmissions per message before giving up (the original send is
    // not counted).
    int retransmit_max = 5;
    // First retransmission fires after backoff_base (+ jitter); each
    // further one doubles the wait, saturating at backoff_max. The cap
    // keeps the doubling from overflowing Duration's tick count when a
    // long outage (multi-interval partition) meets a large retry budget.
    sim::Duration backoff_base = sim::Duration::units(8);
    sim::Duration backoff_max = sim::Duration::units(256);
  };

  ReliableChannel(MessageServer& server, Options options,
                  sim::RandomStream stream);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Registers the handler for payloads of type T, arriving either raw
  // (disabled channel / legacy sender) or wrapped in a ReliableMsg. One
  // handler per type, shared with the underlying server's registry.
  template <typename T>
  void on(std::function<void(SiteId from, T message)> handler) {
    auto shared = std::make_shared<std::function<void(SiteId, T)>>(
        std::move(handler));
    server_.on<T>(
        [shared](SiteId from, T message) { (*shared)(from, std::move(message)); });
    wrapped_handlers_.emplace(
        std::type_index{typeid(T)},
        [shared](SiteId from, std::any payload) {
          (*shared)(from, std::any_cast<T>(std::move(payload)));
        });
  }

  // Fire-and-forget from the caller's point of view; the channel keeps
  // retransmitting until acked or the retry budget is exhausted.
  template <typename T>
  void send(SiteId to, T message) {
    if (!options_.enabled || to == server_.site()) {
      server_.send(to, std::move(message));
      return;
    }
    send_reliable(to, std::any{std::move(message)});
  }

  // Site failure: un-acked transmissions and their timers are volatile
  // state and die with the site. (Receive-side dedup survives: sequence
  // numbers are never reused, so remembering them is always safe.)
  void on_crash();

  bool enabled() const { return options_.enabled; }
  std::size_t in_flight() const { return pending_.size(); }
  std::uint64_t retransmissions() const { return retransmissions_; }
  // Total virtual time spent waiting in backoff before a retransmission.
  sim::Duration backoff_wait() const { return backoff_wait_; }
  // Messages abandoned after the retry budget (receiver down for longer
  // than the whole backoff schedule).
  std::uint64_t gave_up() const { return gave_up_; }
  std::uint64_t duplicates_suppressed() const { return duplicates_; }

 private:
  struct Pending {
    SiteId to = 0;
    std::any payload;
    int attempts = 0;  // retransmissions sent so far
    sim::Duration waited{};
    sim::EventId timer{};
  };

  void send_reliable(SiteId to, std::any payload);
  void arm_timer(std::uint64_t seq, Pending& pending);
  void on_timer(std::uint64_t seq);
  void handle_wrapped(SiteId from, ReliableMsg message);
  void handle_ack(std::uint64_t seq);

  MessageServer& server_;
  Options options_;
  sim::RandomStream stream_;
  std::unordered_map<std::type_index, std::function<void(SiteId, std::any)>>
      wrapped_handlers_;
  std::uint64_t next_seq_ = 1;
  // Ordered so crash teardown walks it deterministically.
  std::map<std::uint64_t, Pending> pending_;
  std::unordered_map<SiteId, std::unordered_set<std::uint64_t>> seen_;
  std::uint64_t retransmissions_ = 0;
  sim::Duration backoff_wait_{};
  std::uint64_t gave_up_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace rtdb::net
