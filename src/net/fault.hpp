#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rtdb::net {

using SiteId = std::uint32_t;

// Deterministic fault model for the simulated network. Message faults
// (drop, duplicate, jitter) apply independently to every inter-site
// message; crashes are scheduled fail-stop outages of whole sites. All
// random decisions come from a dedicated stream forked off the run seed,
// so the workload trajectory is untouched by the fault knobs and a given
// (config, seed) pair always produces the same fault schedule — the sweep
// engine's `--jobs N` byte-identity survives fault injection.
struct FaultSpec {
  // Probability that an inter-site message is silently lost in transit.
  double drop_rate = 0.0;
  // Probability that an inter-site message is delivered twice.
  double dup_rate = 0.0;
  // Extra per-message delay, uniform in [0, jitter]. Reorders messages on
  // a link once it exceeds the gap between sends.
  sim::Duration jitter{};

  // One scheduled fail-stop outage: the site drops off the network at
  // `at`, its in-flight transaction attempts are killed, and it comes back
  // `down_for` later (zero = stays down for the rest of the run).
  struct Crash {
    SiteId site = 0;
    sim::Duration at{};
    sim::Duration down_for{};
  };
  std::vector<Crash> crashes;

  // One scheduled link partition: at `at` every link between a site in
  // `group` and a site outside it is cut, and restored `heal_after` later
  // (zero = never heals). Symmetric cuts sever both directions; an
  // asymmetric cut only stops traffic *leaving* the group (the classic
  // one-way partition that makes a minority manager keep hearing silence
  // while the majority still hears it). The schedule is pure data — no
  // random draws — so partitioned runs replay bit-identically for any
  // --jobs N, and a run with no partitions never touches the cut state.
  struct Partition {
    std::vector<SiteId> group;
    sim::Duration at{};
    sim::Duration heal_after{};
    bool symmetric = true;
  };
  std::vector<Partition> partitions;

  bool message_faults() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || jitter > sim::Duration::zero();
  }
  bool active() const {
    return message_faults() || !crashes.empty() || !partitions.empty();
  }
};

// Draws the per-message fault decisions. Owned by the Network; consulted
// only when the spec has message faults, so a zero spec leaves the
// fault stream untouched and the simulation bit-identical to a build
// without fault injection.
class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, sim::RandomStream stream)
      : spec_(std::move(spec)), stream_(stream) {}

  struct Decision {
    bool drop = false;
    bool duplicate = false;
    sim::Duration extra_delay{};      // jitter on the original copy
    sim::Duration duplicate_delay{};  // jitter on the duplicate copy
  };

  // The decision for the next inter-site message. Draw order is fixed
  // (drop, then duplicate, then one jitter per delivered copy) so the
  // schedule is a pure function of the spec and the stream seed.
  Decision next();

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  FaultSpec spec_;
  sim::RandomStream stream_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace rtdb::net
