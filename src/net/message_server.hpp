#pragma once

#include <any>
#include <cassert>
#include <functional>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"
#include "sim/task.hpp"

namespace rtdb::net {

// The per-site Message Server of the prototyping environment: a kernel
// process that listens on the site's inbox and forwards each message to the
// handler registered for its payload type (the paper's "forwards the
// message to the proper servers or TM").
//
// Handlers run synchronously in the dispatcher; work that needs to block
// must spawn its own process (the transaction manager does).
class MessageServer {
 public:
  MessageServer(sim::Kernel& kernel, Network& network, SiteId site);
  ~MessageServer();

  MessageServer(const MessageServer&) = delete;
  MessageServer& operator=(const MessageServer&) = delete;

  SiteId site() const { return site_; }
  sim::Kernel& kernel() { return kernel_; }
  Network& network() { return network_; }

  // Registers the handler for payloads of type T. One handler per type.
  template <typename T>
  void on(std::function<void(SiteId from, T message)> handler) {
    const bool inserted =
        handlers_
            .emplace(std::type_index{typeid(T)},
                     [handler = std::move(handler)](Envelope env) {
                       handler(env.from, std::any_cast<T>(std::move(env.body)));
                     })
            .second;
    assert(inserted && "handler for this message type already registered");
    (void)inserted;
  }

  // Fire-and-forget send to `to`'s message server.
  template <typename T>
  void send(SiteId to, T message) {
    network_.send(Envelope{site_, to, std::any{std::move(message)}, nullptr});
  }

  // Rendezvous send: completes with true once the destination Message
  // Server retrieves the message, or false if `timeout` elapses first
  // (e.g. the receiving site is down). This is the paper's synchronous
  // Ada-style send with time-out unblocking.
  template <typename T>
  sim::Task<bool> send_sync(SiteId to, T message, sim::Duration timeout) {
    auto ack = std::make_shared<sim::Semaphore>(kernel_, 0);
    network_.send(Envelope{site_, to, std::any{std::move(message)},
                           [ack] { ack->release(); }});
    const sim::WakeStatus status = co_await ack->acquire_for(timeout);
    co_return status == sim::WakeStatus::kOk;
  }

  // Starts the dispatcher process. Must be called before messages arrive;
  // idempotent.
  void start();
  // Stops the dispatcher; pending inbox messages stay queued.
  void stop();
  bool running() const { return running_; }

  std::uint64_t dispatched() const { return dispatched_; }
  std::uint64_t unhandled() const { return unhandled_; }

 private:
  sim::Task<void> dispatch_loop();

  sim::Kernel& kernel_;
  Network& network_;
  SiteId site_;
  std::unordered_map<std::type_index, std::function<void(Envelope)>> handlers_;
  sim::ProcessId dispatcher_{};
  bool running_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t unhandled_ = 0;
};

}  // namespace rtdb::net
