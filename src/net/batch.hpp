#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "net/reliable.hpp"

namespace rtdb::net {

// One coalesced frame: the payloads queued for a destination within a
// flush window, delivered (and retransmitted, on the reliable pathway) as
// a unit and unpacked in enqueue order at the receiver.
struct BatchMsg {
  std::vector<std::any> items;
};

// Control-message batching on top of the ReliableChannel. The ceiling
// schemes emit many small same-destination control messages back to back —
// a registration burst, per-beat heartbeats to every peer — and at large
// site counts the per-message network events dominate the control plane.
// The BatchChannel holds sends to the same destination for a configurable
// window and flushes them as one framed message.
//
// Two pathways, matching the traffic it carries:
//   - send<T>:     reliable — the frame goes through the ReliableChannel,
//                  so registrations/releases keep their retransmission
//                  guarantee (acked and retried as one unit);
//   - send_raw<T>: fire-and-forget — the frame goes through the raw
//                  MessageServer; heartbeats stay loss-tolerant and a
//                  dropped frame costs one beat, exactly like today.
//
// A disabled channel (window == zero, the default) forwards everything
// verbatim to the layer below and registers no BatchMsg handler —
// bit-identical to a build without it. Intra-site sends always bypass.
//
// At most one BatchChannel per MessageServer (it owns the BatchMsg
// handler slot when enabled).
class BatchChannel {
 public:
  struct Options {
    // Zero = batching off (exact passthrough). Keep well under the
    // failover heartbeat interval; see SystemConfig::batch_window.
    sim::Duration window{};
  };

  // `channel` may be null (no reliable layer): both pathways then frame
  // through the raw server.
  BatchChannel(MessageServer& server, ReliableChannel* channel,
               Options options);
  ~BatchChannel();

  BatchChannel(const BatchChannel&) = delete;
  BatchChannel& operator=(const BatchChannel&) = delete;

  // Registers the handler for payloads of type T, arriving either
  // directly (unbatched sender / disabled channel) or inside a BatchMsg
  // frame. One handler per type, shared with the layers below.
  template <typename T>
  void on(std::function<void(SiteId from, T message)> handler) {
    auto shared = std::make_shared<std::function<void(SiteId, T)>>(
        std::move(handler));
    auto direct = [shared](SiteId from, T message) {
      (*shared)(from, std::move(message));
    };
    if (channel_ != nullptr) {
      channel_->on<T>(std::move(direct));
    } else {
      server_.on<T>(std::move(direct));
    }
    unpackers_.emplace(std::type_index{typeid(T)},
                       [shared](SiteId from, std::any payload) {
                         (*shared)(from, std::any_cast<T>(std::move(payload)));
                       });
  }

  // Reliable pathway (registrations, releases, election results).
  template <typename T>
  void send(SiteId to, T message) {
    if (!enabled() || to == server_.site()) {
      if (channel_ != nullptr) {
        channel_->send(to, std::move(message));
      } else {
        server_.send(to, std::move(message));
      }
      return;
    }
    enqueue(to, std::any{std::move(message)}, /*reliable=*/true);
  }

  // Fire-and-forget pathway (heartbeats).
  template <typename T>
  void send_raw(SiteId to, T message) {
    if (!enabled() || to == server_.site()) {
      server_.send(to, std::move(message));
      return;
    }
    enqueue(to, std::any{std::move(message)}, /*reliable=*/false);
  }

  // Flushes everything queued for `to` right now. Callers that are about
  // to block on a reply from `to` (the client's acquire RPC) use this so
  // the registration the reply depends on is not still sitting in the
  // window.
  void flush(SiteId to);

  // Site failure: queued frames and the flush timer are volatile state.
  void on_crash();

  bool enabled() const { return options_.window > sim::Duration::zero(); }
  // Payloads that rode inside a frame rather than going out on their own.
  std::uint64_t batched_messages() const { return batched_messages_; }
  // Frames actually sent (reliable and raw frames count separately).
  std::uint64_t batch_flushes() const { return batch_flushes_; }

 private:
  struct Queues {
    std::vector<std::any> reliable;
    std::vector<std::any> raw;
  };

  void enqueue(SiteId to, std::any payload, bool reliable);
  void flush_queues(SiteId to, Queues& queues);
  void on_timer();
  void handle_frame(SiteId from, BatchMsg frame);

  MessageServer& server_;
  ReliableChannel* channel_;
  Options options_;
  std::unordered_map<std::type_index, std::function<void(SiteId, std::any)>>
      unpackers_;
  // Ordered so a timer flush walks destinations deterministically.
  std::map<SiteId, Queues> queued_;
  bool timer_armed_ = false;
  sim::EventId timer_{};
  std::uint64_t batched_messages_ = 0;
  std::uint64_t batch_flushes_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace rtdb::net
