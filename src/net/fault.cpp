#include "net/fault.hpp"

namespace rtdb::net {

FaultInjector::Decision FaultInjector::next() {
  Decision decision;
  if (spec_.drop_rate > 0.0 && stream_.bernoulli(spec_.drop_rate)) {
    decision.drop = true;
    ++drops_;
    return decision;
  }
  if (spec_.dup_rate > 0.0 && stream_.bernoulli(spec_.dup_rate)) {
    decision.duplicate = true;
    ++duplicates_;
  }
  if (spec_.jitter > sim::Duration::zero()) {
    decision.extra_delay =
        sim::Duration::from_units(stream_.uniform_real(0.0, spec_.jitter.as_units()));
    if (decision.duplicate) {
      decision.duplicate_delay = sim::Duration::from_units(
          stream_.uniform_real(0.0, spec_.jitter.as_units()));
    }
  }
  return decision;
}

}  // namespace rtdb::net
