#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::net {

Network::Network(sim::Kernel& kernel, std::uint32_t site_count,
                 sim::Duration default_delay)
    : kernel_(kernel),
      delays_(static_cast<std::size_t>(site_count) * site_count, default_delay),
      up_(site_count, true) {
  assert(site_count >= 1);
  inboxes_.reserve(site_count);
  for (std::uint32_t i = 0; i < site_count; ++i) {
    inboxes_.push_back(std::make_unique<sim::Mailbox<Envelope>>(kernel));
  }
  // No delay from a site to itself.
  for (std::uint32_t i = 0; i < site_count; ++i) {
    delays_[static_cast<std::size_t>(i) * site_count + i] = sim::Duration::zero();
  }
}

Network::~Network() = default;

void Network::set_delay(SiteId from, SiteId to, sim::Duration delay) {
  assert(from < site_count() && to < site_count());
  assert(!delay.is_negative());
  delays_[static_cast<std::size_t>(from) * site_count() + to] = delay;
}

void Network::set_all_delays(sim::Duration delay) {
  for (SiteId a = 0; a < site_count(); ++a) {
    for (SiteId b = 0; b < site_count(); ++b) {
      if (a != b) set_delay(a, b, delay);
    }
  }
}

sim::Duration Network::delay(SiteId from, SiteId to) const {
  assert(from < site_count() && to < site_count());
  return delays_[static_cast<std::size_t>(from) * site_count() + to];
}

void Network::set_operational(SiteId site, bool up) {
  assert(site < site_count());
  up_[site] = up;
}

bool Network::operational(SiteId site) const {
  assert(site < site_count());
  return up_[site];
}

void Network::install_faults(const FaultSpec& spec, sim::RandomStream stream) {
  injector_ = std::make_unique<FaultInjector>(spec, stream);
}

void Network::cut_link(SiteId from, SiteId to) {
  assert(from < site_count() && to < site_count());
  if (cuts_.empty()) {
    cuts_.assign(static_cast<std::size_t>(site_count()) * site_count(), 0);
  }
  ++cuts_[static_cast<std::size_t>(from) * site_count() + to];
}

void Network::heal_link(SiteId from, SiteId to) {
  assert(from < site_count() && to < site_count());
  const std::size_t index =
      static_cast<std::size_t>(from) * site_count() + to;
  assert(!cuts_.empty() && cuts_[index] > 0 && "healing an uncut link");
  --cuts_[index];
}

bool Network::link_cut(SiteId from, SiteId to) const {
  if (cuts_.empty()) return false;
  return cuts_[static_cast<std::size_t>(from) * site_count() + to] > 0;
}

void Network::apply_partition(const FaultSpec::Partition& partition) {
  for (const SiteId inside : partition.group) {
    for (SiteId outside = 0; outside < site_count(); ++outside) {
      if (std::find(partition.group.begin(), partition.group.end(),
                    outside) != partition.group.end()) {
        continue;
      }
      cut_link(inside, outside);
      if (partition.symmetric) cut_link(outside, inside);
    }
  }
}

void Network::lift_partition(const FaultSpec::Partition& partition) {
  for (const SiteId inside : partition.group) {
    for (SiteId outside = 0; outside < site_count(); ++outside) {
      if (std::find(partition.group.begin(), partition.group.end(),
                    outside) != partition.group.end()) {
        continue;
      }
      heal_link(inside, outside);
      if (partition.symmetric) heal_link(outside, inside);
    }
  }
}

void Network::send(Envelope envelope) {
  assert(envelope.from < site_count() && envelope.to < site_count());
  ++sent_;
  const sim::Duration d = delay(envelope.from, envelope.to);
  if (envelope.from == envelope.to && d.is_zero()) {
    // Intra-site communication bypasses the Message Server and the fault
    // model alike.
    deliver(std::move(envelope));
    return;
  }
  if (!up_[envelope.from]) {
    // A crashed site sends nothing; whatever its (dying) processes were
    // emitting is lost with the site.
    ++dropped_;
    return;
  }
  if (link_cut(envelope.from, envelope.to)) {
    // The link is partitioned: the message dies at send time, before the
    // fault injector even sees it (a cut link carries nothing to drop,
    // duplicate, or delay). Deliveries scheduled before the cut still
    // arrive — they were already past the failed router.
    ++partition_drops_;
    return;
  }
  if (injector_ != nullptr && injector_->spec().message_faults()) {
    const FaultInjector::Decision decision = injector_->next();
    if (decision.drop) return;
    if (decision.duplicate) {
      schedule_delivery(envelope, d + decision.duplicate_delay);
    }
    schedule_delivery(std::move(envelope), d + decision.extra_delay);
    return;
  }
  schedule_delivery(std::move(envelope), d);
}

void Network::schedule_delivery(Envelope envelope, sim::Duration delay) {
  kernel_.schedule_in(delay, [this, env = std::move(envelope)]() mutable {
    deliver(std::move(env));
  });
}

void Network::broadcast(SiteId from, const std::any& body) {
  for (SiteId to = 0; to < site_count(); ++to) {
    if (to == from) continue;
    send(Envelope{from, to, body, nullptr});
  }
}

void Network::deliver(Envelope envelope) {
  if (!up_[envelope.to]) {
    ++dropped_;
    return;
  }
  ++delivered_;
  inboxes_[envelope.to]->send(std::move(envelope));
}

sim::Mailbox<Envelope>& Network::inbox(SiteId site) {
  assert(site < site_count());
  return *inboxes_[site];
}

}  // namespace rtdb::net
