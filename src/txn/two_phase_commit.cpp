#include "txn/two_phase_commit.hpp"

#include <cassert>

namespace rtdb::txn {

CommitParticipant::CommitParticipant(net::MessageServer& server,
                                     Callbacks callbacks, Options options)
    : server_(server), callbacks_(std::move(callbacks)), options_(options) {
  server_.on<PrepareMsg>([this](net::SiteId /*from*/, PrepareMsg msg) {
    handle_prepare(std::move(msg));
  });
  server_.on<DecisionMsg>([this](net::SiteId /*from*/, DecisionMsg msg) {
    handle_decision(std::move(msg));
  });
  server_.on<DecisionQueryMsg>([this](net::SiteId from, DecisionQueryMsg msg) {
    handle_query(from, std::move(msg));
  });
  server_.on<DecisionInfoMsg>([this](net::SiteId /*from*/, DecisionInfoMsg msg) {
    handle_info(std::move(msg));
  });
}

CommitParticipant::~CommitParticipant() {
  for (auto& [txn, waiting] : awaiting_) {
    if (waiting.timeout.valid()) server_.kernel().cancel_event(waiting.timeout);
  }
}

void CommitParticipant::handle_prepare(PrepareMsg msg) {
  ++prepares_;
  const bool yes =
      callbacks_.vote_yes ? callbacks_.vote_yes(db::TxnId{msg.txn}) : true;
  if (yes && !options_.decision_timeout.is_zero()) {
    // Presumed abort: if the decision never arrives, abort unilaterally.
    // A duplicated prepare re-votes but must not re-arm a fresh timeout
    // for the same round; a newer epoch supersedes the old round's wait.
    auto it = awaiting_.find(msg.txn);
    if (it == awaiting_.end() || it->second.epoch < msg.epoch) {
      if (it != awaiting_.end() && it->second.timeout.valid()) {
        server_.kernel().cancel_event(it->second.timeout);
      }
      AwaitingDecision waiting;
      waiting.epoch = msg.epoch;
      waiting.coordinator = msg.coordinator;
      waiting.peers = msg.peers;
      waiting.timeout = server_.kernel().schedule_in(
          options_.decision_timeout,
          [this, txn = msg.txn, epoch = msg.epoch] {
            on_decision_timer(txn, epoch);
          });
      awaiting_[msg.txn] = waiting;
    }
  }
  if (observer_ != nullptr) {
    observer_->on_vote(db::TxnId{msg.txn}, msg.epoch, server_.site(), yes);
  }
  server_.send(msg.coordinator,
               VoteMsg{msg.txn, msg.epoch, server_.site(), yes});
}

void CommitParticipant::handle_decision(DecisionMsg msg) {
  auto it = awaiting_.find(msg.txn);
  if (it != awaiting_.end() && it->second.epoch <= msg.epoch) {
    if (it->second.timeout.valid()) {
      server_.kernel().cancel_event(it->second.timeout);
    }
    awaiting_.erase(it);
  }
  // Remember the outcome: a peer's decision timer may still fire and ask.
  Decided& record = decided_[msg.txn];
  if (msg.epoch >= record.epoch) record = Decided{msg.epoch, msg.commit};
  if (observer_ != nullptr) {
    observer_->on_apply(db::TxnId{msg.txn}, msg.epoch, server_.site(),
                        msg.commit, DecisionSource::kDecision);
  }
  if (callbacks_.decide) callbacks_.decide(db::TxnId{msg.txn}, msg.commit);
}

std::optional<bool> CommitParticipant::known_outcome(std::uint64_t txn,
                                                     std::uint64_t epoch) const {
  if (auto it = decided_.find(txn); it != decided_.end()) {
    // A newer round of the same transaction implies the queried round was
    // aborted (a restart only happens after an abort).
    if (it->second.epoch == epoch) return it->second.commit;
    if (it->second.epoch > epoch) return false;
  }
  if (outcome_source_) return outcome_source_(txn, epoch);
  return std::nullopt;
}

void CommitParticipant::handle_query(net::SiteId from, DecisionQueryMsg msg) {
  const std::optional<bool> outcome = known_outcome(msg.txn, msg.epoch);
  // Stay silent when the outcome is unknown: an uncertain peer answering
  // "abort" would re-introduce the blind presumption the query exists to
  // avoid.
  if (!outcome.has_value()) return;
  server_.send(from, DecisionInfoMsg{msg.txn, msg.epoch, *outcome});
}

void CommitParticipant::handle_info(DecisionInfoMsg msg) {
  auto it = awaiting_.find(msg.txn);
  if (it == awaiting_.end() || it->second.epoch != msg.epoch) return;
  if (it->second.timeout.valid()) {
    server_.kernel().cancel_event(it->second.timeout);
  }
  awaiting_.erase(it);
  ++termination_resolutions_;
  Decided& record = decided_[msg.txn];
  if (msg.epoch >= record.epoch) record = Decided{msg.epoch, msg.commit};
  if (observer_ != nullptr) {
    observer_->on_apply(db::TxnId{msg.txn}, msg.epoch, server_.site(),
                        msg.commit, DecisionSource::kInfo);
  }
  if (callbacks_.decide) callbacks_.decide(db::TxnId{msg.txn}, msg.commit);
}

void CommitParticipant::on_decision_timer(std::uint64_t txn,
                                          std::uint64_t epoch) {
  auto it = awaiting_.find(txn);
  if (it == awaiting_.end() || it->second.epoch != epoch) return;
  AwaitingDecision& waiting = it->second;
  if (!options_.cooperative || waiting.queries_sent >= options_.query_rounds) {
    presume_abort(txn, epoch);
    return;
  }
  // Cooperative termination: ask everyone who could know the outcome, then
  // wait one more decision_timeout for an answer.
  ++waiting.queries_sent;
  ++termination_queries_;
  const DecisionQueryMsg query{txn, epoch, server_.site()};
  server_.send(waiting.coordinator, query);
  for (const net::SiteId peer : waiting.peers) {
    if (peer == server_.site() || peer == waiting.coordinator) continue;
    server_.send(peer, query);
  }
  waiting.timeout = server_.kernel().schedule_in(
      options_.decision_timeout,
      [this, txn, epoch] { on_decision_timer(txn, epoch); });
}

void CommitParticipant::presume_abort(std::uint64_t txn, std::uint64_t epoch) {
  auto it = awaiting_.find(txn);
  if (it == awaiting_.end() || it->second.epoch != epoch) return;
  awaiting_.erase(it);
  ++presumed_aborts_;
  if (observer_ != nullptr) {
    observer_->on_apply(db::TxnId{txn}, epoch, server_.site(), false,
                        DecisionSource::kPresumed);
  }
  if (callbacks_.decide) callbacks_.decide(db::TxnId{txn}, false);
}

CommitCoordinator::CommitCoordinator(net::MessageServer& server)
    : server_(server) {
  server_.on<VoteMsg>([this](net::SiteId /*from*/, VoteMsg msg) {
    auto it = pending_.find(msg.txn);
    if (it == pending_.end()) return;  // vote after timeout: ignored
    PendingVotes& votes = *it->second;
    if (msg.epoch != votes.epoch) return;        // stale round (restart)
    if (!votes.voted.insert(msg.from).second) return;  // duplicate vote
    if (msg.yes) ++votes.yes;
    votes.arrived.release();
  });
}

sim::Task<bool> CommitCoordinator::commit(db::TxnId txn,
                                          std::vector<net::SiteId> participants,
                                          sim::Duration vote_timeout) {
  const std::uint64_t epoch = ++rounds_;
  if (participants.empty()) co_return true;  // purely local commit

  auto votes = std::make_shared<PendingVotes>(server_.kernel());
  votes->epoch = epoch;
  votes->total = static_cast<int>(participants.size());
  pending_[txn.value] = votes;
  struct Deregister {
    CommitCoordinator* self;
    std::uint64_t txn;
    ~Deregister() { self->pending_.erase(txn); }
  } deregister{this, txn.value};

  if (observer_ != nullptr) {
    observer_->on_round(txn, epoch, server_.site(), participants);
  }
  for (const net::SiteId site : participants) {
    assert(site != server_.site());
    server_.send(site, PrepareMsg{txn.value, epoch, server_.site(), participants});
  }

  // Gather all votes or give up at the timeout (missing vote == NO).
  bool all_yes = true;
  int received = 0;
  const sim::TimePoint give_up = server_.kernel().now() + vote_timeout;
  while (received < votes->total) {
    const sim::Duration left = give_up - server_.kernel().now();
    if (left <= sim::Duration::zero()) break;
    const sim::WakeStatus status = co_await votes->arrived.acquire_for(left);
    if (status == sim::WakeStatus::kTimeout) break;
    ++received;
  }
  if (received < votes->total) ++vote_timeouts_;
  if (received < votes->total || votes->yes < votes->total) all_yes = false;

  if (!all_yes) ++aborts_;
  Decided& record = decided_[txn.value];
  if (epoch >= record.epoch) record = Decided{epoch, all_yes};
  if (observer_ != nullptr) observer_->on_decision(txn, epoch, all_yes);
  for (const net::SiteId site : participants) {
    server_.send(site, DecisionMsg{txn.value, epoch, all_yes});
  }
  co_return all_yes;
}

std::optional<bool> CommitCoordinator::outcome(std::uint64_t txn,
                                               std::uint64_t epoch) const {
  auto it = decided_.find(txn);
  if (it == decided_.end()) return std::nullopt;
  if (it->second.epoch == epoch) return it->second.commit;
  if (it->second.epoch > epoch) return false;  // superseded round: aborted
  return std::nullopt;
}

}  // namespace rtdb::txn
