#include "txn/two_phase_commit.hpp"

#include <cassert>

namespace rtdb::txn {

CommitParticipant::CommitParticipant(net::MessageServer& server,
                                     Callbacks callbacks)
    : server_(server), callbacks_(std::move(callbacks)) {
  server_.on<PrepareMsg>([this](net::SiteId /*from*/, PrepareMsg msg) {
    ++prepares_;
    const bool yes = callbacks_.vote_yes
                         ? callbacks_.vote_yes(db::TxnId{msg.txn})
                         : true;
    server_.send(msg.coordinator, VoteMsg{msg.txn, server_.site(), yes});
  });
  server_.on<DecisionMsg>([this](net::SiteId /*from*/, DecisionMsg msg) {
    if (callbacks_.decide) callbacks_.decide(db::TxnId{msg.txn}, msg.commit);
  });
}

CommitCoordinator::CommitCoordinator(net::MessageServer& server)
    : server_(server) {
  server_.on<VoteMsg>([this](net::SiteId /*from*/, VoteMsg msg) {
    auto it = pending_.find(msg.txn);
    if (it == pending_.end()) return;  // vote after timeout: ignored
    if (msg.yes) ++it->second->yes;
    it->second->arrived.release();
  });
}

sim::Task<bool> CommitCoordinator::commit(db::TxnId txn,
                                          std::vector<net::SiteId> participants,
                                          sim::Duration vote_timeout) {
  ++rounds_;
  if (participants.empty()) co_return true;  // purely local commit

  auto votes = std::make_shared<PendingVotes>(server_.kernel());
  votes->total = static_cast<int>(participants.size());
  pending_.emplace(txn.value, votes);
  struct Deregister {
    CommitCoordinator* self;
    std::uint64_t txn;
    ~Deregister() { self->pending_.erase(txn); }
  } deregister{this, txn.value};

  for (const net::SiteId site : participants) {
    assert(site != server_.site());
    server_.send(site, PrepareMsg{txn.value, server_.site()});
  }

  // Gather all votes or give up at the timeout (missing vote == NO).
  bool all_yes = true;
  int received = 0;
  const sim::TimePoint give_up = server_.kernel().now() + vote_timeout;
  while (received < votes->total) {
    const sim::Duration left = give_up - server_.kernel().now();
    if (left <= sim::Duration::zero()) break;
    const sim::WakeStatus status = co_await votes->arrived.acquire_for(left);
    if (status == sim::WakeStatus::kTimeout) break;
    ++received;
  }
  if (received < votes->total || votes->yes < votes->total) all_yes = false;

  if (!all_yes) ++aborts_;
  for (const net::SiteId site : participants) {
    server_.send(site, DecisionMsg{txn.value, all_yes});
  }
  co_return all_yes;
}

}  // namespace rtdb::txn
