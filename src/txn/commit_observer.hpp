#pragma once

#include <cstdint>
#include <span>

#include "db/types.hpp"
#include "net/network.hpp"

namespace rtdb::txn {

// How a participant learned the outcome it applied.
enum class DecisionSource : std::uint8_t {
  kDecision,  // the coordinator's DecisionMsg
  kInfo,      // a peer's DecisionInfoMsg (cooperative termination)
  kPresumed,  // unilateral presumed abort after the decision timed out
};

// Narrow observation interface onto the two-phase-commit machinery.
// Callbacks are pure observations: implementations must not mutate commit
// state or send messages. One observer instance may be shared by the
// coordinator and every participant in the system — callbacks carry the
// site so the observer can tell sources apart.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;

  // Coordinator starts a round: epoch assigned, prepares about to go out.
  virtual void on_round(db::TxnId txn, std::uint64_t epoch,
                        net::SiteId coordinator,
                        std::span<const net::SiteId> participants) {
    (void)txn;
    (void)epoch;
    (void)coordinator;
    (void)participants;
  }

  // A participant computed its vote for an epoch (before sending it).
  virtual void on_vote(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
                       bool yes) {
    (void)txn;
    (void)epoch;
    (void)site;
    (void)yes;
  }

  // Coordinator recorded the round's outcome (before broadcasting it).
  virtual void on_decision(db::TxnId txn, std::uint64_t epoch, bool commit) {
    (void)txn;
    (void)epoch;
    (void)commit;
  }

  // A participant applied an outcome locally.
  virtual void on_apply(db::TxnId txn, std::uint64_t epoch, net::SiteId site,
                        bool commit, DecisionSource source) {
    (void)txn;
    (void)epoch;
    (void)site;
    (void)commit;
    (void)source;
  }
};

}  // namespace rtdb::txn
