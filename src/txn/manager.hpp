#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "cc/controller.hpp"
#include "sched/cpu.hpp"
#include "sim/kernel.hpp"
#include "stats/monitor.hpp"
#include "txn/transaction.hpp"

namespace rtdb::txn {

// The Transaction Manager of one site: spawns one kernel process per
// transaction attempt ("a separate process for each transaction is created
// for concurrent execution"), arms the hard-deadline watchdog, restarts
// protocol-aborted attempts, and reports every lifecycle event to the
// Performance Monitor.
//
// Hard-deadline semantics (§3.2): "transactions that miss the deadline are
// aborted, and disappear from the system" — the watchdog kills the attempt
// at the deadline, releases everything it held, and records the miss.
class TransactionManager {
 public:
  struct Options {
    // Delay before a protocol-aborted attempt (deadlock victim, wound,
    // timestamp rejection) is restarted.
    sim::Duration restart_backoff = sim::Duration::units(1);
  };

  TransactionManager(sim::Kernel& kernel, cc::ConcurrencyController& cc,
                     TxnExecutor& executor, stats::PerformanceMonitor& monitor)
      : TransactionManager(kernel, cc, executor, monitor, Options{}) {}
  TransactionManager(sim::Kernel& kernel, cc::ConcurrencyController& cc,
                     TxnExecutor& executor, stats::PerformanceMonitor& monitor,
                     Options options);
  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Propagate inherited priorities to this CPU (optional but recommended:
  // without it, inheritance affects lock decisions but not execution).
  void connect_cpu(sched::PreemptiveCpu& cpu) { cpu_ = &cpu; }

  // Accepts a transaction: records its arrival, starts the first attempt,
  // and arms the watchdog. The spec's arrival/deadline must be >= now.
  void submit(TransactionSpec spec);

  std::size_t live_count() const { return live_.size(); }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t deadline_kills() const { return deadline_kills_; }
  std::uint64_t crash_kills() const { return crash_kills_; }

  // Kills every live transaction (teardown between experiment runs).
  void abort_all();

  // Site failure (fail-stop): kills every running attempt — their volatile
  // state is lost — and parks all live transactions in Phase::kDown.
  // Watchdogs stay armed: a deadline passing while the site is down is
  // still a recorded miss. Transactions submitted while down are queued.
  void crash();
  // Site restart: resumes from the deadline watchdogs — every transaction
  // whose deadline has not yet passed starts a fresh attempt.
  void restore();
  bool down() const { return down_; }

 private:
  enum class Phase : std::uint8_t { kRunning, kAwaitingRestart, kDown };

  struct Live {
    TransactionSpec spec;
    AttemptContext attempt;
    Phase phase = Phase::kRunning;
    std::uint32_t attempts = 0;
    sim::ProcessId pid{};
    sim::EventId watchdog{};
    sim::EventId restart_event{};
  };

  void install_hooks();
  void start_attempt(Live& live);
  sim::Task<void> attempt_body(Live& live);
  // Controller hook: abort (and restart) another transaction's attempt.
  void abort_attempt(db::TxnId victim, cc::AbortReason reason);
  void schedule_restart(Live& live, cc::AbortReason reason);
  void deadline_expired(db::TxnId id);
  void finish(Live& live, bool committed);
  void collect_attempt_stats(Live& live);

  sim::Kernel& kernel_;
  cc::ConcurrencyController& cc_;
  TxnExecutor& executor_;
  stats::PerformanceMonitor& monitor_;
  Options options_;
  sched::PreemptiveCpu* cpu_ = nullptr;
  std::unordered_map<db::TxnId, std::unique_ptr<Live>> live_;
  bool down_ = false;
  std::uint64_t restarts_ = 0;
  std::uint64_t deadline_kills_ = 0;
  std::uint64_t crash_kills_ = 0;
};

}  // namespace rtdb::txn
