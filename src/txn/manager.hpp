#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "cc/controller.hpp"
#include "sched/cpu.hpp"
#include "sim/kernel.hpp"
#include "stats/monitor.hpp"
#include "txn/admission.hpp"
#include "txn/transaction.hpp"

namespace rtdb::txn {

// The Transaction Manager of one site: spawns one kernel process per
// transaction attempt ("a separate process for each transaction is created
// for concurrent execution"), arms the hard-deadline watchdog, restarts
// protocol-aborted attempts, and reports every lifecycle event to the
// Performance Monitor.
//
// Hard-deadline semantics (§3.2): "transactions that miss the deadline are
// aborted, and disappear from the system" — the watchdog kills the attempt
// at the deadline, releases everything it held, and records the miss.
class TransactionManager {
 public:
  struct Options {
    // Delay before a protocol-aborted attempt (deadlock victim, wound,
    // timestamp rejection) is restarted.
    sim::Duration restart_backoff = sim::Duration::units(1);
    // Deadline-aware admission control (see txn/admission.hpp); disabled
    // by default, in which case every submitted transaction is admitted
    // immediately and the manager behaves exactly as before.
    AdmissionConfig admission;
  };

  TransactionManager(sim::Kernel& kernel, cc::ConcurrencyController& cc,
                     TxnExecutor& executor, stats::PerformanceMonitor& monitor)
      : TransactionManager(kernel, cc, executor, monitor, Options{}) {}
  TransactionManager(sim::Kernel& kernel, cc::ConcurrencyController& cc,
                     TxnExecutor& executor, stats::PerformanceMonitor& monitor,
                     Options options);
  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Propagate inherited priorities to this CPU (optional but recommended:
  // without it, inheritance affects lock decisions but not execution).
  void connect_cpu(sched::PreemptiveCpu& cpu) { cpu_ = &cpu; }

  // Accepts a transaction: records its arrival and, if admission control
  // admits it, starts the first attempt (or parks it in the admission
  // queue) and arms the watchdog. A shed transaction is recorded as such
  // and disappears immediately — no attempt, no watchdog, no miss.
  // The spec's arrival/deadline must be >= now.
  void submit(TransactionSpec spec);

  std::size_t live_count() const { return live_.size(); }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t deadline_kills() const { return deadline_kills_; }
  std::uint64_t crash_kills() const { return crash_kills_; }
  // Admission control outcomes (admitted + shed == submitted).
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed() const { return shed_; }
  std::size_t admission_queue_depth() const {
    return admission_queue_.size();
  }
  // The current per-class response estimate admission decisions use.
  sim::Duration estimated_response(const TransactionSpec& spec) const;

  // Kills every live transaction (teardown between experiment runs).
  void abort_all();

  // Site failure (fail-stop): kills every running attempt — their volatile
  // state is lost — and parks all live transactions in Phase::kDown.
  // Watchdogs stay armed: a deadline passing while the site is down is
  // still a recorded miss. Transactions submitted while down are queued.
  void crash();
  // Site restart: resumes from the deadline watchdogs — every transaction
  // whose deadline has not yet passed starts a fresh attempt.
  void restore();
  bool down() const { return down_; }

 private:
  enum class Phase : std::uint8_t {
    kRunning,
    kAwaitingRestart,
    kDown,
    kQueued,  // admitted, waiting for a max_running slot
  };

  struct Live {
    TransactionSpec spec;
    AttemptContext attempt;
    Phase phase = Phase::kRunning;
    std::uint32_t attempts = 0;
    sim::ProcessId pid{};
    sim::EventId watchdog{};
    sim::EventId restart_event{};
  };

  void install_hooks();
  // Admitted transactions not parked in the admission queue.
  std::size_t running_count() const {
    return live_.size() - admission_queue_.size();
  }
  static std::uint32_t class_key(const TransactionSpec& spec);
  void note_commit_response(const TransactionSpec& spec,
                            sim::Duration response);
  // Starts queued transactions while max_running slots are free.
  void pump_admission_queue();
  void start_attempt(Live& live);
  sim::Task<void> attempt_body(Live& live);
  // Controller hook: abort (and restart) another transaction's attempt.
  void abort_attempt(db::TxnId victim, cc::AbortReason reason);
  void schedule_restart(Live& live, cc::AbortReason reason);
  void deadline_expired(db::TxnId id);
  void finish(Live& live, bool committed);
  void collect_attempt_stats(Live& live);

  sim::Kernel& kernel_;
  cc::ConcurrencyController& cc_;
  TxnExecutor& executor_;
  stats::PerformanceMonitor& monitor_;
  Options options_;
  sched::PreemptiveCpu* cpu_ = nullptr;
  std::unordered_map<db::TxnId, std::unique_ptr<Live>> live_;
  // Ids of Live entries in Phase::kQueued, FIFO (exact correspondence is
  // an invariant; both sides are updated together).
  std::deque<db::TxnId> admission_queue_;
  // Per-class (read-only flag x size) EMA of committed response times;
  // ordered map for deterministic replay.
  std::map<std::uint32_t, sim::Duration> estimates_;
  bool down_ = false;
  std::uint64_t restarts_ = 0;
  std::uint64_t deadline_kills_ = 0;
  std::uint64_t crash_kills_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace rtdb::txn
