#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rtdb::txn {

// Deadline-aware admission control (overload shedding) for the per-site
// TransactionManager. Under open-loop arrival past saturation, admitting
// everything makes *every* transaction miss late, after burning CPU on it;
// the right real-time behaviour is to reject doomed work at arrival, while
// it is still cheap. A transaction is shed when its remaining slack cannot
// cover `safety_factor` times the estimated response time of its class
// (read-only flag × size), estimated as an exponential moving average of
// committed response times; or when the bounded admission queue is full.
//
// Disabled by default: with `enabled == false` no estimate is maintained,
// no queue exists, and the manager behaves exactly as before — fault-free
// artifacts stay byte-identical.
struct AdmissionConfig {
  bool enabled = false;
  // Transactions concurrently admitted (running, blocked, or between
  // restart attempts); 0 = unlimited. Arrivals beyond it wait in the
  // admission queue.
  std::uint32_t max_running = 0;
  // Waiting room beyond max_running; arrivals past it are shed. Only
  // meaningful with max_running > 0.
  std::uint32_t queue_limit = 16;
  // Admit only if remaining slack >= safety_factor * estimated response.
  double safety_factor = 1.0;
  // Seeds the per-class estimate before the first commit of that class:
  // size * initial_estimate_per_object.
  sim::Duration initial_estimate_per_object = sim::Duration::units(3);
  // Weight of a fresh committed-response sample in the running estimate.
  double ema_alpha = 0.25;
};

}  // namespace rtdb::txn
