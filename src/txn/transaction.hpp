#pragma once

#include <cstdint>

#include "cc/access_set.hpp"
#include "cc/controller.hpp"
#include "cc/serializability.hpp"
#include "cc/txn_ctx.hpp"
#include "db/resource_manager.hpp"
#include "db/types.hpp"
#include "net/network.hpp"
#include "sched/cpu.hpp"
#include "sim/arena.hpp"
#include "sim/kernel.hpp"
#include "sim/priority.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace rtdb::txn {

// Immutable description of one transaction, fixed at arrival.
struct TransactionSpec {
  db::TxnId id{};
  net::SiteId home_site = 0;
  bool read_only = false;
  cc::AccessSet access;
  sim::TimePoint arrival{};
  sim::TimePoint deadline{};
  // Assigned at arrival: earliest deadline = highest priority, fixed for
  // the transaction's lifetime.
  sim::Priority priority{};

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(access.size());
  }
};

// Per-attempt mutable state shared between the TransactionManager and the
// executor.
struct AttemptContext {
  cc::CcTxn ctx;
  // The attempt's current CPU job, published by the executor so priority
  // inheritance can be propagated to the scheduler mid-computation.
  sched::JobId cpu_job{};
  // Set by the executor once the controller saw on_begin; release() is a
  // no-op before that (an attempt can be killed before it ever ran).
  bool began = false;
  // Attempt-scoped working sets (acquired-granule list, write batches) are
  // carved from here; rewound wholesale between attempts.
  sim::Arena scratch;

  // Fresh state for the next attempt. The arena keeps its chunks, so a
  // restarted transaction allocates nothing new for its scratch data.
  void reset() {
    ctx = cc::CcTxn{};
    cpu_job = {};
    began = false;
    scratch.reset();
  }
};

// Executes transaction attempts against a site's services. The manager
// owns the lifecycle (watchdog, restarts, statistics); the executor owns
// the body (which differs between the single-site system and the two
// distributed ceiling schemes).
//
// Contract per attempt:
//   run()      returns normally => the transaction committed;
//              throws cc::TxnAborted => protocol restart;
//              unwinds with ProcessCancelled => the attempt was killed.
//   release()  called exactly once after run() ended by any path (by the
//              body on normal/self-abort paths, by the manager after a
//              kill); must synchronously free everything the attempt held.
class TxnExecutor {
 public:
  virtual ~TxnExecutor() = default;
  virtual sim::Task<void> run(AttemptContext& attempt,
                              const TransactionSpec& spec) = 0;
  virtual void release(AttemptContext& attempt, const TransactionSpec& spec,
                       bool committed) = 0;
};

// The standard single-site body from §3: for each declared operation,
// acquire the lock, read the object (one I/O), compute (cpu_per_object);
// at commit, write the write set (one I/O per object) and release — a
// strict two-phase schedule.
class LocalExecutor : public TxnExecutor {
 public:
  struct Services {
    sim::Kernel* kernel = nullptr;
    sched::PreemptiveCpu* cpu = nullptr;
    db::ResourceManager* rm = nullptr;
    cc::ConcurrencyController* cc = nullptr;
    cc::HistoryRecorder* history = nullptr;  // optional oracle
  };
  struct Costs {
    sim::Duration cpu_per_object{};
    // When false (the paper's plain-2PL configuration "L"), transactions
    // compete for CPU and disk without priorities.
    bool use_priority_scheduling = true;
    // Locking granularity (the UI's "database ... granularity" knob):
    // objects per locking granule. Locks and declared sets operate on
    // granule ids (object / granularity); physical reads and writes stay
    // per-object. 1 = object-level locking.
    std::uint32_t lock_granularity = 1;
  };

  LocalExecutor(Services services, Costs costs);

  sim::Task<void> run(AttemptContext& attempt,
                      const TransactionSpec& spec) override;
  void release(AttemptContext& attempt, const TransactionSpec& spec,
               bool committed) override;

  // The priority the CPU/disk schedulers see for this attempt.
  sim::Priority sched_priority(const cc::CcTxn& ctx) const;

 private:
  Services services_;
  Costs costs_;
};

}  // namespace rtdb::txn
