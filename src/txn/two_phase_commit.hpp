#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/types.hpp"
#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"
#include "sim/task.hpp"
#include "txn/commit_observer.hpp"

namespace rtdb::txn {

// Two-phase commit over the message servers ("TM executes the two-phase
// commit protocol to ensure that a transaction commits or aborts
// globally"). Used by the global-ceiling distributed scheme, whose update
// transactions write primary copies at several sites.
//
// Wire messages (sent through the per-site MessageServer). Every message
// carries the coordinator round (`epoch`): a restarted transaction reuses
// its TxnId, so under message jitter a vote from a previous attempt could
// otherwise be credited to the current round.
struct PrepareMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  net::SiteId coordinator = 0;
  // All participant sites of this round (cooperative termination: a
  // participant that loses the coordinator asks the others). Empty for
  // legacy senders; recipients filter themselves out.
  std::vector<net::SiteId> peers;
};
struct VoteMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  net::SiteId from = 0;
  bool yes = false;
};
struct DecisionMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  bool commit = false;
};
// Cooperative termination (decision timer fired without a decision): ask
// the coordinator and the peer participants what happened to the round.
struct DecisionQueryMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  net::SiteId from = 0;
};
// Answer to a DecisionQueryMsg; only sent when the outcome is known.
struct DecisionInfoMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  bool commit = false;
};

// Participant side: the application registers callbacks deciding the vote
// and applying the decision for a given transaction.
//
// Fault tolerance: handlers are idempotent under message duplication (a
// re-delivered prepare just re-votes; a re-delivered decision is ignored),
// and an optional decision timeout implements presumed abort — a
// participant that voted yes and then hears nothing (lost decision,
// crashed coordinator) aborts unilaterally once the timeout expires.
class CommitParticipant {
 public:
  struct Callbacks {
    // Whether this site can commit the transaction (it holds the writes).
    std::function<bool(db::TxnId)> vote_yes;
    // Apply the global decision locally.
    std::function<void(db::TxnId, bool commit)> decide;
  };
  struct Options {
    // How long to wait for the decision after voting yes before presuming
    // abort; zero waits forever (the pre-fault-injection behaviour).
    sim::Duration decision_timeout{};
    // Cooperative termination: when the decision timer fires, query the
    // coordinator and the round's peers for the outcome (up to
    // query_rounds times, one decision_timeout apart) before presuming
    // abort. A coordinator crash after a unanimous yes then no longer
    // aborts a committable transaction as long as any peer saw the commit.
    bool cooperative = false;
    int query_rounds = 2;
  };

  CommitParticipant(net::MessageServer& server, Callbacks callbacks)
      : CommitParticipant(server, std::move(callbacks), Options{}) {}
  CommitParticipant(net::MessageServer& server, Callbacks callbacks,
                    Options options);
  ~CommitParticipant();

  CommitParticipant(const CommitParticipant&) = delete;
  CommitParticipant& operator=(const CommitParticipant&) = delete;

  std::uint64_t prepares_handled() const { return prepares_; }
  // Yes-votes aborted unilaterally because the decision never arrived.
  std::uint64_t presumed_aborts() const { return presumed_aborts_; }
  // Cooperative-termination traffic: outcome queries sent, and rounds
  // resolved by a peer's answer instead of a presumption.
  std::uint64_t termination_queries() const { return termination_queries_; }
  std::uint64_t termination_resolutions() const {
    return termination_resolutions_;
  }

  // Extra source of decided outcomes consulted when answering a peer's
  // DecisionQueryMsg (typically the co-located coordinator's record).
  // Returns nullopt when unknown.
  using OutcomeSource =
      std::function<std::optional<bool>(std::uint64_t txn, std::uint64_t epoch)>;
  void set_outcome_source(OutcomeSource source) {
    outcome_source_ = std::move(source);
  }

  // Optional conformance observer; never consulted for protocol decisions.
  void set_observer(CommitObserver* observer) { observer_ = observer; }

 private:
  struct AwaitingDecision {
    std::uint64_t epoch = 0;
    sim::EventId timeout{};
    net::SiteId coordinator = 0;
    std::vector<net::SiteId> peers;
    int queries_sent = 0;
  };
  struct Decided {
    std::uint64_t epoch = 0;
    bool commit = false;
  };

  void handle_prepare(PrepareMsg msg);
  void handle_decision(DecisionMsg msg);
  void handle_query(net::SiteId from, DecisionQueryMsg msg);
  void handle_info(DecisionInfoMsg msg);
  void on_decision_timer(std::uint64_t txn, std::uint64_t epoch);
  void presume_abort(std::uint64_t txn, std::uint64_t epoch);
  std::optional<bool> known_outcome(std::uint64_t txn,
                                    std::uint64_t epoch) const;

  net::MessageServer& server_;
  Callbacks callbacks_;
  Options options_;
  // Yes-votes whose decision is still outstanding (timeout armed).
  std::unordered_map<std::uint64_t, AwaitingDecision> awaiting_;
  // Last *received* decision per transaction (presumptions are guesses and
  // are never served to peers).
  std::unordered_map<std::uint64_t, Decided> decided_;
  OutcomeSource outcome_source_;
  CommitObserver* observer_ = nullptr;
  std::uint64_t prepares_ = 0;
  std::uint64_t presumed_aborts_ = 0;
  std::uint64_t termination_queries_ = 0;
  std::uint64_t termination_resolutions_ = 0;
};

// Coordinator side: drives prepare/vote/decision for one transaction at a
// time per call. Votes are gathered in parallel (one round trip), with a
// timeout treated as a NO vote (a down participant must not block the
// coordinator forever). Duplicate and stale-epoch votes are ignored.
class CommitCoordinator {
 public:
  explicit CommitCoordinator(net::MessageServer& server);

  // Runs 2PC across `participants` (remote sites; the coordinator's own
  // site must not be listed — its vote is implicit). Returns the decision.
  sim::Task<bool> commit(db::TxnId txn, std::vector<net::SiteId> participants,
                         sim::Duration vote_timeout);

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t aborts() const { return aborts_; }
  // Rounds aborted because some vote never arrived in time.
  std::uint64_t vote_timeouts() const { return vote_timeouts_; }

  // The recorded outcome of a finished round, for cooperative termination:
  // the exact epoch's decision, `false` for an epoch superseded by a newer
  // round of the same transaction (the old round can only have aborted),
  // nullopt when this coordinator knows nothing about it.
  std::optional<bool> outcome(std::uint64_t txn, std::uint64_t epoch) const;

  // Optional conformance observer; never consulted for protocol decisions.
  void set_observer(CommitObserver* observer) { observer_ = observer; }

 private:
  struct PendingVotes {
    sim::Semaphore arrived;
    std::uint64_t epoch = 0;
    std::unordered_set<net::SiteId> voted;
    int yes = 0;
    int total = 0;
    explicit PendingVotes(sim::Kernel& k) : arrived(k, 0) {}
  };

  struct Decided {
    std::uint64_t epoch = 0;
    bool commit = false;
  };

  net::MessageServer& server_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingVotes>> pending_;
  // Highest finished round per transaction, served to cooperative
  // terminators that lost the DecisionMsg.
  std::unordered_map<std::uint64_t, Decided> decided_;
  CommitObserver* observer_ = nullptr;
  std::uint64_t rounds_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t vote_timeouts_ = 0;
};

}  // namespace rtdb::txn
