#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "db/types.hpp"
#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"
#include "sim/task.hpp"

namespace rtdb::txn {

// Two-phase commit over the message servers ("TM executes the two-phase
// commit protocol to ensure that a transaction commits or aborts
// globally"). Used by the global-ceiling distributed scheme, whose update
// transactions write primary copies at several sites.
//
// Wire messages (sent through the per-site MessageServer):
struct PrepareMsg {
  std::uint64_t txn = 0;
  net::SiteId coordinator = 0;
};
struct VoteMsg {
  std::uint64_t txn = 0;
  net::SiteId from = 0;
  bool yes = false;
};
struct DecisionMsg {
  std::uint64_t txn = 0;
  bool commit = false;
};

// Participant side: the application registers callbacks deciding the vote
// and applying the decision for a given transaction.
class CommitParticipant {
 public:
  struct Callbacks {
    // Whether this site can commit the transaction (it holds the writes).
    std::function<bool(db::TxnId)> vote_yes;
    // Apply the global decision locally.
    std::function<void(db::TxnId, bool commit)> decide;
  };

  CommitParticipant(net::MessageServer& server, Callbacks callbacks);

  std::uint64_t prepares_handled() const { return prepares_; }

 private:
  net::MessageServer& server_;
  Callbacks callbacks_;
  std::uint64_t prepares_ = 0;
};

// Coordinator side: drives prepare/vote/decision for one transaction at a
// time per call. Votes are gathered in parallel (one round trip), with a
// timeout treated as a NO vote (a down participant must not block the
// coordinator forever).
class CommitCoordinator {
 public:
  explicit CommitCoordinator(net::MessageServer& server);

  // Runs 2PC across `participants` (remote sites; the coordinator's own
  // site must not be listed — its vote is implicit). Returns the decision.
  sim::Task<bool> commit(db::TxnId txn, std::vector<net::SiteId> participants,
                         sim::Duration vote_timeout);

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t aborts() const { return aborts_; }

 private:
  struct PendingVotes {
    sim::Semaphore arrived;
    int yes = 0;
    int total = 0;
    explicit PendingVotes(sim::Kernel& k) : arrived(k, 0) {}
  };

  net::MessageServer& server_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingVotes>> pending_;
  std::uint64_t rounds_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace rtdb::txn
