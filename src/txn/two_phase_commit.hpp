#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/types.hpp"
#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"
#include "sim/task.hpp"

namespace rtdb::txn {

// Two-phase commit over the message servers ("TM executes the two-phase
// commit protocol to ensure that a transaction commits or aborts
// globally"). Used by the global-ceiling distributed scheme, whose update
// transactions write primary copies at several sites.
//
// Wire messages (sent through the per-site MessageServer). Every message
// carries the coordinator round (`epoch`): a restarted transaction reuses
// its TxnId, so under message jitter a vote from a previous attempt could
// otherwise be credited to the current round.
struct PrepareMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  net::SiteId coordinator = 0;
};
struct VoteMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  net::SiteId from = 0;
  bool yes = false;
};
struct DecisionMsg {
  std::uint64_t txn = 0;
  std::uint64_t epoch = 0;
  bool commit = false;
};

// Participant side: the application registers callbacks deciding the vote
// and applying the decision for a given transaction.
//
// Fault tolerance: handlers are idempotent under message duplication (a
// re-delivered prepare just re-votes; a re-delivered decision is ignored),
// and an optional decision timeout implements presumed abort — a
// participant that voted yes and then hears nothing (lost decision,
// crashed coordinator) aborts unilaterally once the timeout expires.
class CommitParticipant {
 public:
  struct Callbacks {
    // Whether this site can commit the transaction (it holds the writes).
    std::function<bool(db::TxnId)> vote_yes;
    // Apply the global decision locally.
    std::function<void(db::TxnId, bool commit)> decide;
  };
  struct Options {
    // How long to wait for the decision after voting yes before presuming
    // abort; zero waits forever (the pre-fault-injection behaviour).
    sim::Duration decision_timeout{};
  };

  CommitParticipant(net::MessageServer& server, Callbacks callbacks)
      : CommitParticipant(server, std::move(callbacks), Options{}) {}
  CommitParticipant(net::MessageServer& server, Callbacks callbacks,
                    Options options);
  ~CommitParticipant();

  CommitParticipant(const CommitParticipant&) = delete;
  CommitParticipant& operator=(const CommitParticipant&) = delete;

  std::uint64_t prepares_handled() const { return prepares_; }
  // Yes-votes aborted unilaterally because the decision never arrived.
  std::uint64_t presumed_aborts() const { return presumed_aborts_; }

 private:
  struct AwaitingDecision {
    std::uint64_t epoch = 0;
    sim::EventId timeout{};
  };

  void handle_prepare(PrepareMsg msg);
  void handle_decision(DecisionMsg msg);
  void presume_abort(std::uint64_t txn, std::uint64_t epoch);

  net::MessageServer& server_;
  Callbacks callbacks_;
  Options options_;
  // Yes-votes whose decision is still outstanding (timeout armed).
  std::unordered_map<std::uint64_t, AwaitingDecision> awaiting_;
  std::uint64_t prepares_ = 0;
  std::uint64_t presumed_aborts_ = 0;
};

// Coordinator side: drives prepare/vote/decision for one transaction at a
// time per call. Votes are gathered in parallel (one round trip), with a
// timeout treated as a NO vote (a down participant must not block the
// coordinator forever). Duplicate and stale-epoch votes are ignored.
class CommitCoordinator {
 public:
  explicit CommitCoordinator(net::MessageServer& server);

  // Runs 2PC across `participants` (remote sites; the coordinator's own
  // site must not be listed — its vote is implicit). Returns the decision.
  sim::Task<bool> commit(db::TxnId txn, std::vector<net::SiteId> participants,
                         sim::Duration vote_timeout);

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t aborts() const { return aborts_; }
  // Rounds aborted because some vote never arrived in time.
  std::uint64_t vote_timeouts() const { return vote_timeouts_; }

 private:
  struct PendingVotes {
    sim::Semaphore arrived;
    std::uint64_t epoch = 0;
    std::unordered_set<net::SiteId> voted;
    int yes = 0;
    int total = 0;
    explicit PendingVotes(sim::Kernel& k) : arrived(k, 0) {}
  };

  net::MessageServer& server_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingVotes>> pending_;
  std::uint64_t rounds_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t vote_timeouts_ = 0;
};

}  // namespace rtdb::txn
