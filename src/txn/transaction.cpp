#include "txn/transaction.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace rtdb::txn {

LocalExecutor::LocalExecutor(Services services, Costs costs)
    : services_(services), costs_(costs) {
  assert(services_.kernel != nullptr && services_.cpu != nullptr &&
         services_.rm != nullptr && services_.cc != nullptr);
}

sim::Priority LocalExecutor::sched_priority(const cc::CcTxn& ctx) const {
  // Without priority scheduling every transaction competes equally; the
  // schedulers then fall back to admission order (FCFS).
  return costs_.use_priority_scheduling ? ctx.effective_priority()
                                        : sim::Priority{0, 0};
}

sim::Task<void> LocalExecutor::run(AttemptContext& attempt,
                                   const TransactionSpec& spec) {
  cc::CcTxn& ctx = attempt.ctx;
  const std::uint32_t granularity = costs_.lock_granularity;
  // Locks (and the ceiling protocol's declared sets) live at granule
  // level; the physical accesses below stay per-object.
  if (granularity > 1) ctx.access = spec.access.coarsened(granularity);
  services_.cc->on_begin(ctx);
  attempt.began = true;
  // Granules acquired so far; at most one per declared operation, so the
  // attempt arena can size the list up front.
  auto held = attempt.scratch.make_array<db::ObjectId>(spec.access.size());
  std::size_t held_count = 0;
  for (const cc::Operation& op : spec.access.operations()) {
    const db::ObjectId granule = op.object / granularity;
    const auto held_end =
        held.begin() + static_cast<std::ptrdiff_t>(held_count);
    if (std::find(held.begin(), held_end, granule) == held_end) {
      // Acquire each granule once, in the mode the (coarsened) declared
      // set prescribes: write if any object inside it is written.
      const cc::LockMode granule_mode = ctx.access.writes(granule)
                                            ? cc::LockMode::kWrite
                                            : cc::LockMode::kRead;
      co_await services_.cc->acquire(ctx, granule, granule_mode);
      held[held_count++] = granule;
      if (services_.history != nullptr) {
        services_.history->record(spec.id, granule, granule_mode);
      }
    }
    co_await services_.rm->read(op.object, sched_priority(ctx));
    co_await services_.cpu->execute(costs_.cpu_per_object,
                                    sched_priority(ctx), &attempt.cpu_job);
    attempt.cpu_job = {};
  }
  if (spec.access.write_count() > 0) {
    // The write set in execution order, like AccessSet::write_set() but
    // built in the attempt arena.
    auto writes =
        attempt.scratch.make_array<db::ObjectId>(spec.access.write_count());
    std::size_t nw = 0;
    for (const cc::Operation& op : spec.access.operations()) {
      if (op.mode == cc::LockMode::kWrite) writes[nw++] = op.object;
    }
    co_await services_.rm->commit_writes(spec.id, writes,
                                         sched_priority(ctx));
  }
}

void LocalExecutor::release(AttemptContext& attempt,
                            const TransactionSpec& spec, bool committed) {
  if (!attempt.began) return;
  attempt.began = false;
  services_.cc->release_all(attempt.ctx);
  services_.cc->on_end(attempt.ctx);
  if (services_.history != nullptr) {
    if (committed) {
      services_.history->commit(spec.id);
    } else {
      services_.history->abort(spec.id);
    }
  }
}

}  // namespace rtdb::txn
