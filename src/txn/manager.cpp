#include "txn/manager.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::txn {

TransactionManager::TransactionManager(sim::Kernel& kernel,
                                       cc::ConcurrencyController& cc,
                                       TxnExecutor& executor,
                                       stats::PerformanceMonitor& monitor,
                                       Options options)
    : kernel_(kernel),
      cc_(cc),
      executor_(executor),
      monitor_(monitor),
      options_(options) {
  install_hooks();
}

TransactionManager::~TransactionManager() {
  // Live transactions reference this manager from their coroutine frames;
  // tear them down first.
  abort_all();
}

void TransactionManager::install_hooks() {
  cc_.set_hooks(cc::ControllerHooks{
      [this](db::TxnId victim, cc::AbortReason reason) {
        abort_attempt(victim, reason);
      },
      [this](const cc::CcTxn& ctx) {
        if (cpu_ == nullptr) return;
        auto it = live_.find(ctx.id);
        if (it == live_.end()) return;
        cpu_->set_priority(it->second->attempt.cpu_job,
                           ctx.effective_priority());
      }});
}

void TransactionManager::submit(TransactionSpec spec) {
  assert(spec.id.valid());
  assert(!live_.contains(spec.id));
  assert(spec.deadline > kernel_.now());

  stats::TxnRecord record;
  record.id = spec.id;
  record.site = spec.home_site;
  record.read_only = spec.read_only;
  record.size = spec.size();
  record.arrival = spec.arrival;
  record.deadline = spec.deadline;
  monitor_.on_arrival(record);

  auto live = std::make_unique<Live>();
  live->spec = std::move(spec);
  Live& ref = *live;
  live_.emplace(ref.spec.id, std::move(live));

  ref.watchdog = kernel_.schedule_at(
      ref.spec.deadline, [this, id = ref.spec.id] { deadline_expired(id); });
  if (down_) {
    // Site is crashed: queue the transaction; restore() starts it (the
    // watchdog is armed, so it can also miss its deadline while queued).
    ref.phase = Phase::kDown;
    return;
  }
  start_attempt(ref);
}

void TransactionManager::start_attempt(Live& live) {
  live.phase = Phase::kRunning;
  live.restart_event = {};
  // Fresh cc view per attempt; identity and priority are stable.
  live.attempt.reset();
  live.attempt.ctx.id = live.spec.id;
  live.attempt.ctx.attempt = live.attempts + 1;  // 1-based; 0 = unstamped
  live.attempt.ctx.base_priority = live.spec.priority;
  live.attempt.ctx.access = live.spec.access;
  live.pid = kernel_.spawn("txn-" + std::to_string(live.spec.id.value),
                           attempt_body(live));
  monitor_.on_start(live.spec.id, kernel_.now());
}

sim::Task<void> TransactionManager::attempt_body(Live& live) {
  bool committed = false;
  bool restart = false;
  cc::AbortReason reason = cc::AbortReason::kSystem;
  try {
    co_await executor_.run(live.attempt, live.spec);
    committed = true;
  } catch (const cc::TxnAborted& aborted) {
    restart = true;
    reason = aborted.reason();
  }
  // Kill paths (deadline, hook abort) unwind past this point with
  // ProcessCancelled; their cleanup runs in deadline_expired /
  // abort_attempt instead.
  collect_attempt_stats(live);
  executor_.release(live.attempt, live.spec, committed);
  if (committed) {
    finish(live, true);
  } else {
    assert(restart);
    (void)restart;
    monitor_.on_restart(live.spec.id);
    ++restarts_;
    schedule_restart(live, reason);
  }
}

void TransactionManager::abort_attempt(db::TxnId victim,
                                       cc::AbortReason reason) {
  auto it = live_.find(victim);
  assert(it != live_.end() && "abort hook for unknown transaction");
  Live& live = *it->second;
  assert(live.phase == Phase::kRunning);
  if (kernel_.current() != nullptr && kernel_.current()->id() == live.pid) {
    // The victim is the currently running attempt (it closed the cycle
    // itself): deliver the abort as an exception so its own body restarts.
    throw cc::TxnAborted{reason};
  }
  kernel_.kill(live.pid);
  collect_attempt_stats(live);
  executor_.release(live.attempt, live.spec, /*committed=*/false);
  monitor_.on_restart(live.spec.id);
  ++restarts_;
  schedule_restart(live, reason);
}

void TransactionManager::schedule_restart(Live& live, cc::AbortReason reason) {
  live.phase = Phase::kAwaitingRestart;
  live.restart_event = {};
  ++live.attempts;
  // Age-based dies (wait-die) re-collide with the same older holder if
  // retried immediately — a restart livelock; back off exponentially with
  // the attempt count. Other abort reasons (deadlock victim, wound, TSO)
  // change the state that caused them, so the flat backoff suffices.
  sim::Duration backoff = options_.restart_backoff;
  if (reason == cc::AbortReason::kAgeBased) {
    const std::uint32_t shift = std::min<std::uint32_t>(live.attempts, 6);
    backoff = backoff * static_cast<std::int64_t>(1u << shift);
  }
  const sim::TimePoint at = kernel_.now() + backoff;
  if (at >= live.spec.deadline) {
    // The watchdog will fire first and record the miss; nothing to do.
    return;
  }
  live.restart_event = kernel_.schedule_at(at, [this, id = live.spec.id] {
    auto it = live_.find(id);
    if (it == live_.end()) return;
    start_attempt(*it->second);
  });
}

void TransactionManager::deadline_expired(db::TxnId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;  // committed at this very instant
  Live& live = *it->second;
  ++deadline_kills_;
  if (live.phase == Phase::kRunning) {
    kernel_.kill(live.pid);
    collect_attempt_stats(live);
    executor_.release(live.attempt, live.spec, /*committed=*/false);
  } else if (live.restart_event.valid()) {
    kernel_.cancel_event(live.restart_event);
  }
  monitor_.on_deadline_miss(id, kernel_.now());
  live_.erase(it);
}

void TransactionManager::finish(Live& live, bool committed) {
  assert(committed);
  (void)committed;
  kernel_.cancel_event(live.watchdog);
  monitor_.on_commit(live.spec.id, kernel_.now());
  live_.erase(live.spec.id);
}

void TransactionManager::collect_attempt_stats(Live& live) {
  monitor_.on_attempt_stats(live.spec.id, live.attempt.ctx.blocked_total,
                            live.attempt.ctx.ceiling_blocks);
}

void TransactionManager::crash() {
  assert(!down_);
  down_ = true;
  // Map order is unspecified; process in TxnId order for deterministic
  // replay (kills release locks, which reorders grant queues).
  std::vector<db::TxnId> ids;
  ids.reserve(live_.size());
  for (const auto& [id, live] : live_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(),
            [](db::TxnId a, db::TxnId b) { return a.value < b.value; });
  for (const db::TxnId id : ids) {
    Live& live = *live_.at(id);
    if (live.phase == Phase::kRunning) {
      if (kernel_.alive(live.pid)) kernel_.kill(live.pid);
      collect_attempt_stats(live);
      // Release messages go through the (now down) network and vanish;
      // remote lock-manager state is cleaned up by the failure detector.
      executor_.release(live.attempt, live.spec, /*committed=*/false);
      ++crash_kills_;
    } else if (live.restart_event.valid()) {
      kernel_.cancel_event(live.restart_event);
      live.restart_event = {};
    }
    live.phase = Phase::kDown;
  }
}

void TransactionManager::restore() {
  assert(down_);
  down_ = false;
  std::vector<db::TxnId> ids;
  for (const auto& [id, live] : live_) {
    if (live->phase == Phase::kDown) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(),
            [](db::TxnId a, db::TxnId b) { return a.value < b.value; });
  for (const db::TxnId id : ids) {
    auto it = live_.find(id);
    if (it == live_.end()) continue;
    start_attempt(*it->second);
  }
}

void TransactionManager::abort_all() {
  while (!live_.empty()) {
    auto it = live_.begin();
    Live& live = *it->second;
    kernel_.cancel_event(live.watchdog);
    if (live.phase == Phase::kRunning) {
      if (kernel_.alive(live.pid)) kernel_.kill(live.pid);
      executor_.release(live.attempt, live.spec, /*committed=*/false);
    } else if (live.restart_event.valid()) {
      kernel_.cancel_event(live.restart_event);
    }
    live_.erase(it);
  }
}

}  // namespace rtdb::txn
