#include "txn/manager.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::txn {

TransactionManager::TransactionManager(sim::Kernel& kernel,
                                       cc::ConcurrencyController& cc,
                                       TxnExecutor& executor,
                                       stats::PerformanceMonitor& monitor,
                                       Options options)
    : kernel_(kernel),
      cc_(cc),
      executor_(executor),
      monitor_(monitor),
      options_(options) {
  install_hooks();
}

TransactionManager::~TransactionManager() {
  // Live transactions reference this manager from their coroutine frames;
  // tear them down first.
  abort_all();
}

void TransactionManager::install_hooks() {
  cc_.set_hooks(cc::ControllerHooks{
      [this](db::TxnId victim, cc::AbortReason reason) {
        abort_attempt(victim, reason);
      },
      [this](const cc::CcTxn& ctx) {
        if (cpu_ == nullptr) return;
        auto it = live_.find(ctx.id);
        if (it == live_.end()) return;
        cpu_->set_priority(it->second->attempt.cpu_job,
                           ctx.effective_priority());
      }});
}

void TransactionManager::submit(TransactionSpec spec) {
  assert(spec.id.valid());
  assert(!live_.contains(spec.id));
  assert(spec.deadline > kernel_.now());

  stats::TxnRecord record;
  record.id = spec.id;
  record.site = spec.home_site;
  record.read_only = spec.read_only;
  record.size = spec.size();
  record.arrival = spec.arrival;
  record.deadline = spec.deadline;
  monitor_.on_arrival(record);

  const AdmissionConfig& admission = options_.admission;
  bool queue_full = false;
  if (admission.enabled) {
    // Shed work that is already doomed (slack below the estimated
    // response for its class) or that would overflow the bounded
    // admission queue — while it is still cheap: no attempt, no watchdog.
    const sim::Duration slack = spec.deadline - kernel_.now();
    const sim::Duration needed =
        estimated_response(spec).scaled(admission.safety_factor);
    queue_full = admission.max_running > 0 &&
                 running_count() >= admission.max_running &&
                 admission_queue_.size() >= admission.queue_limit;
    if (slack < needed || queue_full) {
      ++shed_;
      monitor_.on_shed(spec.id);
      return;
    }
  }
  ++admitted_;

  auto live = std::make_unique<Live>();
  live->spec = std::move(spec);
  Live& ref = *live;
  live_.emplace(ref.spec.id, std::move(live));

  ref.watchdog = kernel_.schedule_at(
      ref.spec.deadline, [this, id = ref.spec.id] { deadline_expired(id); });
  if (down_) {
    // Site is crashed: queue the transaction; restore() starts it (the
    // watchdog is armed, so it can also miss its deadline while queued).
    ref.phase = Phase::kDown;
    return;
  }
  if (admission.enabled && admission.max_running > 0 &&
      running_count() > admission.max_running) {
    // running_count() already includes this transaction; over the cap it
    // waits in FIFO order for a slot (the watchdog stays armed, so a
    // queue wait past the deadline is an honest recorded miss).
    ref.phase = Phase::kQueued;
    admission_queue_.push_back(ref.spec.id);
    return;
  }
  start_attempt(ref);
}

std::uint32_t TransactionManager::class_key(const TransactionSpec& spec) {
  return (spec.read_only ? 0x8000'0000u : 0u) |
         static_cast<std::uint32_t>(spec.size());
}

sim::Duration TransactionManager::estimated_response(
    const TransactionSpec& spec) const {
  if (const auto it = estimates_.find(class_key(spec));
      it != estimates_.end()) {
    return it->second;
  }
  return options_.admission.initial_estimate_per_object *
         static_cast<std::int64_t>(spec.size());
}

void TransactionManager::note_commit_response(const TransactionSpec& spec,
                                              sim::Duration response) {
  if (!options_.admission.enabled) return;
  const auto [it, inserted] = estimates_.try_emplace(class_key(spec), response);
  if (!inserted) {
    // ema += alpha * (sample - ema); Duration::scaled rounds
    // deterministically, so the estimate stream replays bit-identically.
    it->second =
        it->second + (response - it->second).scaled(options_.admission.ema_alpha);
  }
}

void TransactionManager::pump_admission_queue() {
  if (down_) return;
  const AdmissionConfig& admission = options_.admission;
  while (!admission_queue_.empty() &&
         (admission.max_running == 0 ||
          running_count() < admission.max_running)) {
    const db::TxnId id = admission_queue_.front();
    admission_queue_.pop_front();
    auto it = live_.find(id);
    assert(it != live_.end() && it->second->phase == Phase::kQueued);
    start_attempt(*it->second);
  }
}

void TransactionManager::start_attempt(Live& live) {
  live.phase = Phase::kRunning;
  live.restart_event = {};
  // Fresh cc view per attempt; identity and priority are stable.
  live.attempt.reset();
  live.attempt.ctx.id = live.spec.id;
  live.attempt.ctx.attempt = live.attempts + 1;  // 1-based; 0 = unstamped
  live.attempt.ctx.base_priority = live.spec.priority;
  live.attempt.ctx.deadline = live.spec.deadline;
  live.attempt.ctx.access = live.spec.access;
  live.pid = kernel_.spawn("txn-" + std::to_string(live.spec.id.value),
                           attempt_body(live));
  monitor_.on_start(live.spec.id, kernel_.now());
}

sim::Task<void> TransactionManager::attempt_body(Live& live) {
  bool committed = false;
  bool restart = false;
  cc::AbortReason reason = cc::AbortReason::kSystem;
  try {
    co_await executor_.run(live.attempt, live.spec);
    committed = true;
  } catch (const cc::TxnAborted& aborted) {
    restart = true;
    reason = aborted.reason();
  }
  // Kill paths (deadline, hook abort) unwind past this point with
  // ProcessCancelled; their cleanup runs in deadline_expired /
  // abort_attempt instead.
  collect_attempt_stats(live);
  executor_.release(live.attempt, live.spec, committed);
  if (committed) {
    finish(live, true);
  } else {
    assert(restart);
    (void)restart;
    monitor_.on_restart(live.spec.id);
    ++restarts_;
    schedule_restart(live, reason);
  }
}

void TransactionManager::abort_attempt(db::TxnId victim,
                                       cc::AbortReason reason) {
  auto it = live_.find(victim);
  assert(it != live_.end() && "abort hook for unknown transaction");
  Live& live = *it->second;
  assert(live.phase == Phase::kRunning);
  if (kernel_.current() != nullptr && kernel_.current()->id() == live.pid) {
    // The victim is the currently running attempt (it closed the cycle
    // itself): deliver the abort as an exception so its own body restarts.
    throw cc::TxnAborted{reason};
  }
  kernel_.kill(live.pid);
  collect_attempt_stats(live);
  executor_.release(live.attempt, live.spec, /*committed=*/false);
  monitor_.on_restart(live.spec.id);
  ++restarts_;
  schedule_restart(live, reason);
}

void TransactionManager::schedule_restart(Live& live, cc::AbortReason reason) {
  live.phase = Phase::kAwaitingRestart;
  live.restart_event = {};
  ++live.attempts;
  // Age-based dies (wait-die) re-collide with the same older holder if
  // retried immediately — a restart livelock; back off exponentially with
  // the attempt count. Other abort reasons (deadlock victim, wound, TSO)
  // change the state that caused them, so the flat backoff suffices.
  sim::Duration backoff = options_.restart_backoff;
  if (reason == cc::AbortReason::kAgeBased) {
    const std::uint32_t shift = std::min<std::uint32_t>(live.attempts, 6);
    backoff = backoff * static_cast<std::int64_t>(1u << shift);
  }
  const sim::TimePoint at = kernel_.now() + backoff;
  if (at >= live.spec.deadline) {
    // The watchdog will fire first and record the miss; nothing to do.
    return;
  }
  live.restart_event = kernel_.schedule_at(at, [this, id = live.spec.id] {
    auto it = live_.find(id);
    if (it == live_.end()) return;
    start_attempt(*it->second);
  });
}

void TransactionManager::deadline_expired(db::TxnId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;  // committed at this very instant
  Live& live = *it->second;
  ++deadline_kills_;
  const bool held_slot = live.phase != Phase::kQueued;
  if (live.phase == Phase::kRunning) {
    kernel_.kill(live.pid);
    collect_attempt_stats(live);
    executor_.release(live.attempt, live.spec, /*committed=*/false);
  } else if (live.phase == Phase::kQueued) {
    // Admitted but never dispatched: the queue wait ate the deadline.
    std::erase(admission_queue_, id);
  } else if (live.restart_event.valid()) {
    kernel_.cancel_event(live.restart_event);
  }
  monitor_.on_deadline_miss(id, kernel_.now());
  live_.erase(it);
  if (held_slot) pump_admission_queue();
}

void TransactionManager::finish(Live& live, bool committed) {
  assert(committed);
  (void)committed;
  kernel_.cancel_event(live.watchdog);
  monitor_.on_commit(live.spec.id, kernel_.now());
  note_commit_response(live.spec, kernel_.now() - live.spec.arrival);
  live_.erase(live.spec.id);
  pump_admission_queue();
}

void TransactionManager::collect_attempt_stats(Live& live) {
  monitor_.on_attempt_stats(live.spec.id, live.attempt.ctx.blocked_total,
                            live.attempt.ctx.ceiling_blocks);
}

void TransactionManager::crash() {
  assert(!down_);
  down_ = true;
  // Map order is unspecified; process in TxnId order for deterministic
  // replay (kills release locks, which reorders grant queues).
  std::vector<db::TxnId> ids;
  ids.reserve(live_.size());
  for (const auto& [id, live] : live_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(),
            [](db::TxnId a, db::TxnId b) { return a.value < b.value; });
  for (const db::TxnId id : ids) {
    Live& live = *live_.at(id);
    if (live.phase == Phase::kRunning) {
      if (kernel_.alive(live.pid)) kernel_.kill(live.pid);
      collect_attempt_stats(live);
      // Release messages go through the (now down) network and vanish;
      // remote lock-manager state is cleaned up by the failure detector.
      executor_.release(live.attempt, live.spec, /*committed=*/false);
      ++crash_kills_;
    } else if (live.restart_event.valid()) {
      kernel_.cancel_event(live.restart_event);
      live.restart_event = {};
    }
    live.phase = Phase::kDown;
  }
  // Queued admissions ride out the outage as kDown like everything else;
  // restore() restarts them all from the watchdogs.
  admission_queue_.clear();
}

void TransactionManager::restore() {
  assert(down_);
  down_ = false;
  std::vector<db::TxnId> ids;
  for (const auto& [id, live] : live_) {
    if (live->phase == Phase::kDown) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(),
            [](db::TxnId a, db::TxnId b) { return a.value < b.value; });
  for (const db::TxnId id : ids) {
    auto it = live_.find(id);
    if (it == live_.end()) continue;
    start_attempt(*it->second);
  }
}

void TransactionManager::abort_all() {
  admission_queue_.clear();
  while (!live_.empty()) {
    auto it = live_.begin();
    Live& live = *it->second;
    kernel_.cancel_event(live.watchdog);
    if (live.phase == Phase::kRunning) {
      if (kernel_.alive(live.pid)) kernel_.kill(live.pid);
      executor_.release(live.attempt, live.spec, /*committed=*/false);
    } else if (live.restart_event.valid()) {
      kernel_.cancel_event(live.restart_event);
    }
    live_.erase(it);
  }
}

}  // namespace rtdb::txn
