#include "analysis/bounds.hpp"

#include <algorithm>
#include <string>

namespace rtdb::analysis {

namespace {

// Real-clock wakeup overshoot allowed on the thread backend before an
// episode counts against the bound: condvar timeouts and cooperative
// abort checkpoints land late by OS-scheduling latency, not by protocol
// behavior. 500ms of real time, converted at the run's clock scale.
constexpr double kThreadJitterNanos = 500e6;

DerivationKind kind_of(const core::SystemConfig& config) {
  // The distributed schemes run ceiling managers regardless of the
  // single-site protocol knob.
  if (config.scheme != core::DistScheme::kSingleSite) {
    return DerivationKind::kSingleCriticalSection;
  }
  switch (config.protocol) {
    case core::Protocol::kPriorityCeiling:
    case core::Protocol::kPriorityCeilingExclusive:
      return DerivationKind::kSingleCriticalSection;
    case core::Protocol::kTwoPhase:
    case core::Protocol::kWoundWait:
      return DerivationKind::kFixedChain;
    case core::Protocol::kTwoPhasePriority:
    case core::Protocol::kPriorityInheritance:
    case core::Protocol::kHighPriority:
      return DerivationKind::kDeadlineBackstop;
    case core::Protocol::kTimestampOrdering:
    case core::Protocol::kWaitDie:
      return DerivationKind::kUnbounded;
  }
  return DerivationKind::kUnbounded;
}

std::string unbounded_reason(core::Protocol protocol) {
  if (protocol == core::Protocol::kTimestampOrdering) {
    return "restart-based: conflicts abort instead of blocking, and the "
           "restart count of one transaction has no finite bound under "
           "open-loop arrivals";
  }
  return "wait-die waits only behind younger holders, and a freshly "
         "arrived (still younger) transaction can seize a free lock and "
         "extend the transitive chain — newcomers are recruited without "
         "an arrival-independent limit";
}

std::string bounded_argument(DerivationKind kind) {
  switch (kind) {
    case DerivationKind::kSingleCriticalSection:
      return "ceiling blocking admits one lower-priority critical section "
             "and no newcomers; its holder is committed or watchdog-killed "
             "within the largest relative deadline";
    case DerivationKind::kFixedChain:
      return "the delaying set is fixed when the wait opens (FIFO admits "
             "newcomers only behind the waiter; wound-wait chains point to "
             "strictly older transactions) and drains within the largest "
             "relative deadline";
    case DerivationKind::kDeadlineBackstop:
      return "priority queues admit more-urgent cut-ins, but every cutter "
             "has an earlier deadline than the waiter, whose own watchdog "
             "closes the episode at its deadline at the latest";
    case DerivationKind::kUnbounded:
      break;
  }
  return "";
}

// The teardown / clock allowance added on top of every class bound.
// Returns false when some scheduled outage never ends — there is then no
// finite margin and the verdict degrades to Unbounded with `reason` set.
bool compute_margin(const core::SystemConfig& config, sim::Duration* margin,
                    std::string* reason) {
  *margin = sim::Duration::zero();
  if (config.scheme != core::DistScheme::kSingleSite) {
    // A blocked mirror at a ceiling manager stays observable until the
    // home site's release/abort reaches it: request, grant, release and
    // teardown acknowledgement hops, each possibly batched and jittered.
    const sim::Duration hop =
        config.comm_delay + config.batch_window + config.faults.jitter;
    *margin += 4 * hop;
    if (config.faults.message_faults()) {
      // Worst case every copy of one control message is lost until the
      // last retry: the full exponential backoff ladder plus one hop per
      // resend (net/reliable.hpp's schedule, evaluated statically).
      sim::Duration backoff = config.backoff_base;
      for (int attempt = 0; attempt < config.retransmit_max; ++attempt) {
        *margin += std::min(backoff, config.backoff_max) + hop;
        backoff = backoff * 2;
      }
    }
    if (!config.faults.crashes.empty() || !config.faults.partitions.empty()) {
      // Failure detection + promotion window before a successor manager
      // resumes granting (dist/failover.hpp).
      *margin += config.heartbeat_interval *
                 (static_cast<std::int64_t>(config.heartbeat_miss_threshold) +
                  2);
    }
    for (const net::FaultSpec::Crash& crash : config.faults.crashes) {
      if (crash.down_for.is_zero()) {
        *reason = "a scheduled site crash never recovers, so manager-side "
                  "teardown of its blocked mirrors has no finite margin";
        return false;
      }
      *margin += crash.down_for;
    }
    for (const net::FaultSpec::Partition& partition :
         config.faults.partitions) {
      if (partition.heal_after.is_zero()) {
        *reason = "a scheduled link partition never heals, so release "
                  "traffic to the ceiling manager has no finite margin";
        return false;
      }
      *margin += partition.heal_after;
    }
  }
  if (config.backend == core::BackendKind::kThreads) {
    const double unit_nanos =
        static_cast<double>(std::max<std::uint64_t>(1, config.rt_unit_nanos));
    *margin += sim::Duration::from_units(kThreadJitterNanos / unit_nanos);
  }
  return true;
}

// The per-class relative deadlines, computed exactly as the workload
// generator does (generator.cpp): aperiodic D = (est * size) scaled by the
// worst slack draw, periodic D = period scaled by the source's slack.
std::vector<ClassBound> enumerate_classes(const core::SystemConfig& config) {
  std::vector<ClassBound> classes;
  const workload::WorkloadConfig& w = config.workload;
  if (w.transaction_count > 0 && w.size_min <= w.size_max) {
    // Bounds are monotone in size; a pathologically wide size range keeps
    // only its endpoints (the worst bound is exact either way).
    std::vector<std::uint32_t> sizes;
    if (w.size_max - w.size_min <= 64) {
      for (std::uint32_t size = w.size_min; size <= w.size_max; ++size) {
        sizes.push_back(size);
      }
    } else {
      sizes = {w.size_min, w.size_max};
    }
    for (const std::uint32_t size : sizes) {
      ClassBound c;
      c.label = "size=" + std::to_string(size);
      c.relative_deadline =
          (w.est_time_per_object * static_cast<std::int64_t>(size))
              .scaled(w.slack_max);
      classes.push_back(std::move(c));
    }
  }
  for (std::size_t i = 0; i < w.periodic.size(); ++i) {
    const workload::PeriodicSource& source = w.periodic[i];
    ClassBound c;
    c.label = "periodic[" + std::to_string(i) + "]";
    c.relative_deadline = source.period.scaled(source.deadline_slack);
    classes.push_back(std::move(c));
  }
  return classes;
}

}  // namespace

const char* to_string(DerivationKind kind) {
  switch (kind) {
    case DerivationKind::kSingleCriticalSection:
      return "single-critical-section";
    case DerivationKind::kFixedChain:
      return "fixed-chain";
    case DerivationKind::kDeadlineBackstop:
      return "deadline-backstop";
    case DerivationKind::kUnbounded:
      return "unbounded";
  }
  return "?";
}

BlockingBounds analyze(const core::SystemConfig& config) {
  BlockingBounds result;
  result.kind = kind_of(config);
  if (result.kind == DerivationKind::kUnbounded) {
    result.argument = unbounded_reason(config.protocol);
    return result;
  }

  std::string margin_reason;
  if (!compute_margin(config, &result.margin, &margin_reason)) {
    result.kind = DerivationKind::kUnbounded;
    result.argument = std::move(margin_reason);
    result.margin = sim::Duration::zero();
    return result;
  }

  result.classes = enumerate_classes(config);
  sim::Duration r_max = sim::Duration::zero();
  for (const ClassBound& c : result.classes) {
    r_max = std::max(r_max, c.relative_deadline);
  }
  for (ClassBound& c : result.classes) {
    c.bound = std::min(c.relative_deadline, r_max);
    result.worst_bound = std::max(result.worst_bound, c.bound + result.margin);
  }
  result.bounded = true;
  result.argument = bounded_argument(result.kind);
  return result;
}

}  // namespace rtdb::analysis
