#pragma once

// Static blocking-bound analysis: the worst-case time one transaction
// attempt can spend blocked behind other transactions, derived from the
// configuration alone — no execution. The 1990 study only *measures*
// blocking; the modern RT-locking literature (Brandenburg's survey, the
// DPCP line of work for the distributed case) derives analytic bounds
// from the task set, and this module closes that loop for the shipped
// protocols so the conformance monitor can gate observation against
// theory (check/monitor.hpp, --bounds).
//
// The workload model has no static priority levels: priorities are
// deadlines (EDF-style), transactions arrive open-loop, and a watchdog
// kills every attempt at its deadline. The analysis therefore works in
// per-*class* terms — one class per aperiodic transaction size plus one
// per periodic source, each with a relative deadline D_c that the
// generator computes the same way — and bounds a single *blocking
// episode* (one block→unblock span of a lock wait, the unit the
// conformance monitor observes):
//
//   * Every blocker holding a lock when the episode opens began its
//     attempt earlier, so its own deadline — where the watchdog kills it
//     — lies within R_max (the largest relative deadline of any class)
//     of the episode start. How the protocol *structures* the wait
//     decides whether that residence argument alone closes the episode:
//
//     - kSingleCriticalSection (ceiling protocols, incl. the distributed
//       schemes): the classic PCP argument — while a transaction is
//       ceiling-blocked, the blocking lock's ceiling denies every
//       lower-priority newcomer a first lock, so exactly the one blocking
//       critical section must drain; no recruitment.
//     - kFixedChain (2PL-FIFO, wound-wait): the set of transactions that
//       can delay the waiter is fixed when the episode opens (FIFO queues
//       admit newcomers only behind it; wound-wait chains point strictly
//       to older transactions and wound every younger intruder), and every
//       member is gone — committed or killed — within R_max.
//     - kDeadlineBackstop (2PL-P, PIP, 2PL-HP): priority queues let
//       later-but-more-urgent arrivals cut in, so no arrival-independent
//       structural bound exists; but every cutter has an earlier deadline
//       than the waiter, so the waiter is granted — or killed by its own
//       watchdog — no later than its own deadline.
//
//     In all three cases the per-class episode bound is
//     B_c = min(D_c, R_max) = D_c, met with equality only by an attempt
//     that blocks the instant it arrives and waits until its kill.
//
//   * kUnbounded: timestamp ordering never blocks — conflicts restart,
//     and the restart count under open-loop arrivals has no finite bound,
//     so "blocking until access" is unbounded by construction. Wait-die
//     waits only behind *younger* holders, and a freshly arrived (still
//     younger) transaction can seize a free lock and extend the transitive
//     chain, recruiting unboundedly many newcomers. Both verdicts are
//     results, not gaps: the analyzer reports them explicitly and the
//     monitor measures without gating.
//
// On top of the per-class bound the analyzer adds a statically known
// margin: distributed schemes observe a blocked mirror at the ceiling
// manager until the release/abort message arrives (communication hops,
// batching windows, worst-case retransmission backoff, failover detection
// and scheduled outages — all pure functions of the config), and the
// thread backend measures with a real clock whose wakeups overshoot
// (OS-scheduling allowance). An outage that never heals leaves no finite
// teardown margin, and the verdict degrades to Unbounded.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/time.hpp"

namespace rtdb::analysis {

// Which structural argument closes a blocking episode (see file comment).
enum class DerivationKind : std::uint8_t {
  kSingleCriticalSection,  // ceiling protocols: one blocking CS, no recruits
  kFixedChain,             // FIFO / wound-wait: delay set fixed at block time
  kDeadlineBackstop,       // priority cut-ins; own watchdog closes the span
  kUnbounded,              // no finite bound exists (reason says why)
};

const char* to_string(DerivationKind kind);

// One priority class: aperiodic transactions of one size, or one periodic
// source. `relative_deadline` is exactly what the workload generator
// computes for the class's worst draw, so observed spans compare against
// it tick-for-tick.
struct ClassBound {
  std::string label;                  // "size=8", "periodic[1]"
  sim::Duration relative_deadline{};  // D_c
  sim::Duration bound{};              // per-episode bound, margin excluded
};

// The analyzer's verdict for one configuration.
struct BlockingBounds {
  bool bounded = false;
  DerivationKind kind = DerivationKind::kUnbounded;
  // Bounded: a one-line sketch of the argument. Unbounded: the reason.
  std::string argument;
  std::vector<ClassBound> classes;
  // Teardown / clock allowance added on top of every class bound
  // (communication, retransmission, failover, thread-clock overshoot).
  sim::Duration margin{};
  // max over classes of (bound + margin); zero when !bounded.
  sim::Duration worst_bound{};

  // The artifact scalar: 0 is the documented "no finite bound" sentinel
  // (a bounded verdict always has a positive bound — every class bound is
  // at least one tick of relative deadline).
  double worst_bound_units() const {
    return bounded ? worst_bound.as_units() : 0.0;
  }
};

// Derives the blocking bounds for `config`. Pure function of the config —
// deterministic, no execution, cheap enough to run per run_once.
BlockingBounds analyze(const core::SystemConfig& config);

}  // namespace rtdb::analysis
