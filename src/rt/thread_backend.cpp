#include "rt/thread_backend.hpp"

#include <chrono>

#include "rt/pqlock.hpp"

namespace rtdb::rt {

using std::chrono::nanoseconds;
using std::chrono::steady_clock;

ThreadBackend::ThreadBackend(ThreadBackendConfig config)
    : config_(config),
      worker_count_(config.workers != 0
                        ? config.workers
                        : std::max(1u, std::thread::hardware_concurrency())),
      epoch_(steady_clock::now()) {
  threads_.reserve(worker_count_);
  for (std::uint32_t i = 0; i < worker_count_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadBackend::~ThreadBackend() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

sim::TimePoint ThreadBackend::now() const {
  const auto elapsed = steady_clock::now() - epoch_;
  const auto ns = std::chrono::duration_cast<nanoseconds>(elapsed).count();
  return sim::TimePoint::at_ticks(
      ns * sim::kTicksPerUnit /
      static_cast<std::int64_t>(config_.unit_nanos));
}

steady_clock::time_point ThreadBackend::to_real(sim::TimePoint t) const {
  return epoch_ + nanoseconds(t.as_ticks() *
                              static_cast<std::int64_t>(config_.unit_nanos) /
                              sim::kTicksPerUnit);
}

void ThreadBackend::advance(sim::Duration d) {
  if (d <= sim::Duration::zero()) return;
  // Absolute target so repeated bursts do not accumulate sleep overshoot.
  const auto target = steady_clock::now() +
                      nanoseconds(d.as_ticks() *
                                  static_cast<std::int64_t>(config_.unit_nanos) /
                                  sim::kTicksPerUnit);
  // Sleep the bulk, spin the tail: OS sleeps routinely overshoot by tens
  // of microseconds, which at 20 µs/unit would smear every CPU burst.
  constexpr auto kSpinTail = std::chrono::microseconds(100);
  if (target - steady_clock::now() > kSpinTail) {
    std::this_thread::sleep_until(target - kSpinTail);
  }
  while (steady_clock::now() < target) cpu_relax();
}

void ThreadBackend::spawn(std::string name, std::function<void()> body) {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    queue_.push_back(Job{std::move(name), std::move(body)});
    ++outstanding_;
  }
  queue_cv_.notify_one();
}

bool ThreadBackend::block(WaitToken& token, sim::TimePoint until) {
  std::unique_lock<std::mutex> guard(token.mutex);
  // wait() invokes the predicate with the lock held; the annotation states
  // what the analysis cannot see through the condition_variable template.
  const auto is_signaled = [&token]() RTDB_REQUIRES(token.mutex) {
    return token.signaled;
  };
  if (until == sim::TimePoint::max()) {
    token.cv.wait(guard, is_signaled);
    return true;
  }
  return token.cv.wait_until(guard, to_real(until), is_signaled);
}

void ThreadBackend::wake(WaitToken& token) {
  {
    const std::lock_guard<std::mutex> guard(token.mutex);
    token.signaled = true;
  }
  token.cv.notify_all();
}

void ThreadBackend::run() {
  std::unique_lock<std::mutex> guard(mutex_);
  idle_cv_.wait(guard,
                [this]() RTDB_REQUIRES(mutex_) { return outstanding_ == 0; });
}

std::uint64_t ThreadBackend::body_exceptions() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return exceptions_;
}

void ThreadBackend::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> guard(mutex_);
      queue_cv_.wait(guard, [this]() RTDB_REQUIRES(mutex_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job.body();
    } catch (...) {
      const std::lock_guard<std::mutex> guard(mutex_);
      ++exceptions_;
    }
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      if (--outstanding_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rtdb::rt
