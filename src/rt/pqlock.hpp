#pragma once

// Priority-queuing spinlock for the real-thread backend, after the
// PQMcsLock idiom in the oltp-cc-bench exemplar (SNIPPETS.md §3): each
// waiter spins locally on a flag in its own queue node (never on shared
// state), and the releaser hands the lock directly to the
// highest-priority waiter. Unlike plain MCS the queue is not
// FIFO-by-arrival — the handoff order is priority order, which is what a
// real-time lock table needs underneath it.
//
// The waiter list itself is guarded by a tiny test-and-set latch; the
// critical sections under the latch are a few pointer operations plus a
// linear scan over current waiters, so the latch never becomes the
// contention point the lock is protecting against.

#include <atomic>
#include <cassert>
#include <thread>

#include "sim/priority.hpp"

namespace rtdb::rt {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

class PqSpinLock {
 public:
  // One per waiting thread, stack-allocated across the lock/unlock pair.
  // The node must stay alive until lock() returns (the releaser writes
  // its `granted` flag during handoff).
  struct Node {
    sim::Priority pri{};
    std::atomic<bool> granted{false};
    Node* next = nullptr;  // intrusive list link, guarded by the latch
  };

  PqSpinLock() = default;
  PqSpinLock(const PqSpinLock&) = delete;
  PqSpinLock& operator=(const PqSpinLock&) = delete;

  void lock(Node& node, sim::Priority pri) {
    latch_acquire();
    if (!held_) {
      held_ = true;
      latch_release();
      return;
    }
    node.pri = pri;
    node.granted.store(false, std::memory_order_relaxed);
    node.next = waiters_;
    waiters_ = &node;
    latch_release();
    // Local spin: only this thread reads this flag; only the releaser
    // writes it, exactly once, during handoff.
    std::uint32_t spins = 0;
    while (!node.granted.load(std::memory_order_acquire)) {
      if (++spins < kSpinsBeforeYield) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }

  void unlock() {
    latch_acquire();
    assert(held_);
    Node* winner = pop_highest_priority();
    if (winner == nullptr) {
      held_ = false;
      latch_release();
      return;
    }
    latch_release();
    // Direct handoff: held_ stays true, ownership transfers to winner.
    winner->granted.store(true, std::memory_order_release);
  }

  // Currently queued waiters (latched snapshot). Observability for tests;
  // the count is stale the moment the latch drops.
  std::size_t waiter_count() {
    latch_acquire();
    std::size_t n = 0;
    for (Node* node = waiters_; node != nullptr; node = node->next) ++n;
    latch_release();
    return n;
  }

  // RAII guard for straight-line critical sections.
  class Guard {
   public:
    Guard(PqSpinLock& lock, sim::Priority pri) : lock_(lock) {
      lock_.lock(node_, pri);
    }
    ~Guard() { lock_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    PqSpinLock& lock_;
    Node node_{};
  };

 private:
  static constexpr std::uint32_t kSpinsBeforeYield = 1024;

  void latch_acquire() {
    while (latch_.test_and_set(std::memory_order_acquire)) {
      cpu_relax();
    }
  }
  void latch_release() { latch_.clear(std::memory_order_release); }

  // Unlinks and returns the strongest waiter (ties broken by Priority's
  // deterministic tie field). Latch must be held.
  Node* pop_highest_priority() {
    Node* best = waiters_;
    if (best == nullptr) return nullptr;
    Node** best_link = &waiters_;
    for (Node** link = &waiters_; *link != nullptr; link = &(*link)->next) {
      if ((*link)->pri.higher_than(best->pri)) {
        best = *link;
        best_link = link;
      }
    }
    *best_link = best->next;
    best->next = nullptr;
    return best;
  }

  std::atomic_flag latch_ = ATOMIC_FLAG_INIT;
  bool held_ = false;     // guarded by latch_
  Node* waiters_ = nullptr;  // guarded by latch_
};

}  // namespace rtdb::rt
