#include "rt/lock_table.hpp"

#include <algorithm>
#include <cassert>

namespace rtdb::rt {

using cc::AbortReason;
using cc::LockMode;
using cc::TxnAborted;
using core::Protocol;
using sim::Priority;

bool RtLockTable::CeilingLock::held_by_other(const RtTxn& txn) const {
  if (writer != nullptr && writer != &txn) return true;
  return std::any_of(readers.begin(), readers.end(),
                     [&](const RtTxn* r) { return r != &txn; });
}

RtLockTable::RtLockTable(Options options, ExecutionBackend& backend)
    : options_(options), backend_(backend) {
  if (family() == Family::kCeiling) {
    write_ceiling_.assign(options_.object_count, Priority::lowest());
    abs_ceiling_.assign(options_.object_count, Priority::lowest());
  }
}

RtLockTable::Family RtLockTable::family() const {
  switch (options_.protocol) {
    case Protocol::kPriorityCeiling:
    case Protocol::kPriorityCeilingExclusive:
      return Family::kCeiling;
    case Protocol::kTimestampOrdering:
      return Family::kTimestamp;
    default:
      return Family::kLocking;
  }
}

bool RtLockTable::priority_queues() const {
  return options_.protocol == Protocol::kTwoPhasePriority ||
         options_.protocol == Protocol::kPriorityInheritance ||
         options_.protocol == Protocol::kHighPriority;
}

bool RtLockTable::uses_inheritance() const {
  return options_.protocol == Protocol::kPriorityInheritance;
}

bool RtLockTable::uses_wfg() const {
  return options_.protocol == Protocol::kTwoPhase ||
         options_.protocol == Protocol::kTwoPhasePriority ||
         options_.protocol == Protocol::kPriorityInheritance;
}

void RtLockTable::unlock_latch() {
  std::vector<WaitToken*> wakes;
  wakes.swap(pending_wakes_);
  latch_.unlock();
  // Tokens are signaled outside the spinlock so a woken thread never spins
  // on a latch its waker still holds.
  for (WaitToken* token : wakes) backend_.wake(*token);
}

void RtLockTable::throw_if_wounded(RtTxn& txn) {
  if (!txn.wounded.load(std::memory_order_relaxed)) return;
  const AbortReason reason = txn.wound_reason;
  unlock_latch();
  throw TxnAborted{reason};
}

void RtLockTable::begin_block(RtTxn& txn) {
  txn.blocked = true;
  txn.blocked_since = backend_.now();
  ++txn.block_count;
}

void RtLockTable::end_block(RtTxn& txn) {
  const sim::Duration span = backend_.now() - txn.blocked_since;
  txn.blocked_total += span;
  txn.blocked = false;
  if (span > stats_.max_block_span) stats_.max_block_span = span;
  if (!options_.bound_gate.is_zero() && span > options_.bound_gate) {
    ++stats_.bound_violations;
  }
}

bool RtLockTable::wound(RtTxn& victim, AbortReason reason) {
  if (victim.wounded.load(std::memory_order_relaxed)) return false;
  victim.wound_reason = reason;
  victim.wounded.store(true, std::memory_order_release);
  if (victim.blocked) queue_wake(victim);
  return true;
}

void RtLockTable::audit_fail(const char* what) {
  ++stats_.audit_violations;
  if (first_audit_failure_.empty()) first_audit_failure_ = what;
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

void RtLockTable::on_begin(RtTxn& txn) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  if (options_.audit && active_.contains(txn.id)) {
    audit_fail("on_begin for an already active transaction");
  }
  active_.emplace(txn.id, &txn);
  switch (family()) {
    case Family::kCeiling:
      refresh_static_ceilings(txn);
      // A new declaration only raises ceilings, but a raise can redirect
      // which lock blocks an existing waiter — the dynamic-arrival way a
      // blocking cycle can close (see cc/pcp.cpp).
      if (options_.pcp_deadlock_backstop) stabilize();
      break;
    case Family::kTimestamp: {
      // Fresh timestamp per attempt; a retained timestamp would livelock a
      // rejected reader.
      auto [it, inserted] = timestamps_.try_emplace(txn.id, next_ts_);
      (void)it;
      if (inserted) ++next_ts_;
      break;
    }
    case Family::kLocking:
      break;
  }
  unlock_latch();
}

void RtLockTable::acquire(RtTxn& txn, db::ObjectId object, LockMode mode) {
  switch (family()) {
    case Family::kLocking:
      acquire_locking(txn, object, mode);
      return;
    case Family::kCeiling:
      acquire_ceiling(txn, object, mode);
      return;
    case Family::kTimestamp:
      acquire_timestamp(txn, object, mode);
      return;
  }
}

void RtLockTable::release_all(RtTxn& txn) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  txn.released = true;
  switch (family()) {
    case Family::kLocking: {
      std::vector<db::ObjectId> touched;
      for (auto& [object, lock] : locks_) {
        auto it = std::find_if(lock.holders.begin(), lock.holders.end(),
                               [&](const auto& h) { return h.first == &txn; });
        if (it != lock.holders.end()) {
          lock.holders.erase(it);
          touched.push_back(object);
        }
      }
      for (db::ObjectId object : touched) {
        auto it = locks_.find(object);
        assert(it != locks_.end());
        promote(object, it->second);
        erase_if_idle(object);
      }
      if (uses_wfg()) {
        for (db::ObjectId object : touched) refresh_edges(object);
      }
      if (uses_inheritance()) update_inheritance();
      break;
    }
    case Family::kCeiling: {
      for (auto it = ceiling_locks_.begin(); it != ceiling_locks_.end();) {
        CeilingLock& lock = it->second;
        if (lock.writer == &txn) lock.writer = nullptr;
        std::erase(lock.readers, &txn);
        if (lock.empty()) {
          it = ceiling_locks_.erase(it);
        } else {
          refresh_rw_ceiling(it->first, lock);
          ++it;
        }
      }
      stabilize();
      break;
    }
    case Family::kTimestamp:
      break;  // timestamp ordering holds no locks
  }
  unlock_latch();
}

void RtLockTable::on_end(RtTxn& txn) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  if (options_.audit && waiting_requests_.contains(txn.id)) {
    audit_fail("on_end while still waiting");
  }
  active_.erase(txn.id);
  txn.inherited = Priority::lowest();
  switch (family()) {
    case Family::kLocking:
      wfg_.remove(txn.id);
      if (uses_inheritance()) update_inheritance();
      break;
    case Family::kCeiling:
      refresh_static_ceilings(txn);
      stabilize();  // lowered ceilings may unblock waiters
      break;
    case Family::kTimestamp:
      timestamps_.erase(txn.id);
      break;
  }
  unlock_latch();
}

std::string RtLockTable::first_audit_failure() const {
  PqSpinLock::Node node;
  latch_.lock(node, Priority::highest());
  std::string copy = first_audit_failure_;
  latch_.unlock();
  return copy;
}

RtLockStats RtLockTable::stats() const {
  PqSpinLock::Node node;
  latch_.lock(node, Priority::highest());
  RtLockStats copy = stats_;
  latch_.unlock();
  return copy;
}

bool RtLockTable::quiescent(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = "rt: " + reason;
    return false;
  };
  PqSpinLock::Node node;
  latch_.lock(node, Priority::highest());
  struct Unlock {
    PqSpinLock& latch;
    ~Unlock() { latch.unlock(); }
  } unlock{latch_};
  if (!active_.empty()) {
    return fail(std::to_string(active_.size()) + " transactions still active");
  }
  if (!locks_.empty()) {
    return fail(std::to_string(locks_.size()) + " objects still locked");
  }
  if (waiting_ != 0) {
    return fail(std::to_string(waiting_) + " requests still waiting");
  }
  if (!ceiling_locks_.empty()) {
    return fail("ceiling lock table not empty");
  }
  if (!ceiling_waiters_.empty()) {
    return fail(std::to_string(ceiling_waiters_.size()) +
                " ceiling waiters still queued");
  }
  for (std::size_t o = 0; o < write_ceiling_.size(); ++o) {
    if (write_ceiling_[o] != Priority::lowest() ||
        abs_ceiling_[o] != Priority::lowest()) {
      return fail("stale ceiling on object " + std::to_string(o));
    }
  }
  if (!timestamps_.empty()) {
    return fail(std::to_string(timestamps_.size()) +
                " live timestamps after drain");
  }
  if (stats_.audit_violations != 0) {
    return fail("audit: " + first_audit_failure_);
  }
  return true;
}

// ---------------------------------------------------------------------------
// 2PL family (mirrors cc/lock_table.cpp + cc/two_phase.cpp + cc/wait_die.cpp
// + cc/hp2pl.cpp)
// ---------------------------------------------------------------------------

bool RtLockTable::compatible_with_holders(const ObjectLock& lock,
                                          LockMode mode) const {
  return std::all_of(
      lock.holders.begin(), lock.holders.end(),
      [&](const auto& h) { return cc::compatible(h.second, mode); });
}

bool RtLockTable::precedes(const Request& a, const Request& b) const {
  if (priority_queues()) {
    const Priority pa = a.txn->effective_priority();
    const Priority pb = b.txn->effective_priority();
    if (pa != pb) return pa.higher_than(pb);
  }
  return a.seq < b.seq;
}

bool RtLockTable::try_grant(RtTxn& txn, db::ObjectId object, LockMode mode) {
  ObjectLock& lock = locks_[object];
  if (!compatible_with_holders(lock, mode)) return false;
  if (!lock.queue.empty()) {
    const Request probe{&txn, object, mode, false, next_seq_};
    if (!precedes(probe, *lock.queue.front())) return false;
  }
  if (options_.audit &&
      std::any_of(lock.holders.begin(), lock.holders.end(),
                  [&](const auto& h) { return h.first == &txn; })) {
    audit_fail("re-acquiring a held lock");
  }
  lock.holders.emplace_back(&txn, mode);
  return true;
}

void RtLockTable::enqueue(Request& request) {
  request.seq = next_seq_++;
  request.granted = false;
  ObjectLock& lock = locks_[request.object];
  auto it = std::find_if(
      lock.queue.begin(), lock.queue.end(),
      [&](const Request* queued) { return precedes(request, *queued); });
  lock.queue.insert(it, &request);
  ++waiting_;
  waiting_requests_.emplace(request.txn->id, &request);
}

void RtLockTable::cancel(Request& request) {
  auto it = locks_.find(request.object);
  assert(it != locks_.end());
  ObjectLock& lock = it->second;
  auto pos = std::find(lock.queue.begin(), lock.queue.end(), &request);
  assert(pos != lock.queue.end());
  lock.queue.erase(pos);
  --waiting_;
  waiting_requests_.erase(request.txn->id);
  promote(request.object, lock);
  erase_if_idle(request.object);
}

void RtLockTable::promote(db::ObjectId object, ObjectLock& lock) {
  (void)object;
  // Grant the longest grantable prefix, exactly as the simulated table:
  // stops at the first waiter that conflicts with the extended holder set.
  while (!lock.queue.empty()) {
    Request* head = lock.queue.front();
    if (!compatible_with_holders(lock, head->mode)) break;
    lock.queue.erase(lock.queue.begin());
    --waiting_;
    waiting_requests_.erase(head->txn->id);
    lock.holders.emplace_back(head->txn, head->mode);
    head->granted = true;
    ++stats_.grants;
    if (uses_wfg()) wfg_.clear_waits_of(head->txn->id);
    end_block(*head->txn);
    queue_wake(*head->txn);
  }
}

void RtLockTable::erase_if_idle(db::ObjectId object) {
  auto it = locks_.find(object);
  if (it != locks_.end() && it->second.holders.empty() &&
      it->second.queue.empty()) {
    locks_.erase(it);
  }
}

std::vector<RtTxn*> RtLockTable::blockers_of(const Request& request) const {
  std::vector<RtTxn*> result;
  auto it = locks_.find(request.object);
  if (it == locks_.end()) return result;
  const ObjectLock& lock = it->second;
  for (const auto& [txn, mode] : lock.holders) {
    if (txn != request.txn && !cc::compatible(mode, request.mode)) {
      result.push_back(txn);
    }
  }
  for (const Request* queued : lock.queue) {
    if (queued == &request) break;
    if (queued->txn != request.txn &&
        !cc::compatible(queued->mode, request.mode)) {
      result.push_back(queued->txn);
    }
  }
  return result;
}

std::vector<RtTxn*> RtLockTable::blockers_for_newcomer(
    db::ObjectId object, LockMode mode, const RtTxn& txn) const {
  // Equivalent to the simulated protocols' enqueue-probe-cancel dance.
  std::vector<RtTxn*> result;
  auto it = locks_.find(object);
  if (it == locks_.end()) return result;
  const ObjectLock& lock = it->second;
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder != &txn && !cc::compatible(held_mode, mode)) {
      result.push_back(holder);
    }
  }
  const Request probe{const_cast<RtTxn*>(&txn), object, mode, false,
                      next_seq_};
  for (const Request* queued : lock.queue) {
    if (!precedes(*queued, probe)) continue;
    if (queued->txn != &txn && !cc::compatible(queued->mode, mode)) {
      result.push_back(queued->txn);
    }
  }
  return result;
}

void RtLockTable::refresh_edges(db::ObjectId object) {
  auto it = locks_.find(object);
  if (it == locks_.end()) return;
  for (Request* request : it->second.queue) {
    wfg_.clear_waits_of(request->txn->id);
    // A wounded waiter is on its way out; treating it as no longer waiting
    // keeps resolved cycles from being re-detected (and re-billed) before
    // its thread has had a chance to withdraw the request.
    if (request->txn->wounded.load(std::memory_order_relaxed)) continue;
    for (const RtTxn* blocker : blockers_of(*request)) {
      wfg_.add_edge(request->txn->id, blocker->id);
    }
  }
}

db::TxnId RtLockTable::pick_victim(const std::vector<db::TxnId>& cycle,
                                   db::TxnId requester) const {
  assert(!cycle.empty());
  switch (options_.victim_policy) {
    case cc::TwoPhaseLocking::VictimPolicy::kRequester:
      if (std::find(cycle.begin(), cycle.end(), requester) != cycle.end()) {
        return requester;
      }
      [[fallthrough]];
    case cc::TwoPhaseLocking::VictimPolicy::kLowestPriority: {
      db::TxnId worst = cycle.front();
      for (db::TxnId id : cycle) {
        const RtTxn* a = active_.at(id);
        const RtTxn* b = active_.at(worst);
        if (b->effective_priority().higher_than(a->effective_priority())) {
          worst = id;
        }
      }
      return worst;
    }
    case cc::TwoPhaseLocking::VictimPolicy::kYoungest: {
      db::TxnId youngest = cycle.front();
      for (db::TxnId id : cycle) {
        if (youngest < id) youngest = id;
      }
      return youngest;
    }
  }
  return cycle.front();
}

void RtLockTable::resolve_deadlocks(RtTxn& txn, Request& request) {
  for (;;) {
    if (request.granted) return;
    const auto cycle = wfg_.find_cycle_from(txn.id);
    if (cycle.empty()) return;
    ++stats_.deadlocks;
    ++stats_.protocol_aborts;
    const db::TxnId victim_id = pick_victim(cycle, txn.id);
    if (victim_id == txn.id) {
      // Requester is its own victim: withdraw and unwind. (The simulated
      // controller does this in the awaiter's RAII guard; here the cleanup
      // is explicit.)
      cancel(request);
      wfg_.clear_waits_of(txn.id);
      end_block(txn);
      refresh_edges(request.object);
      if (uses_inheritance()) update_inheritance();
      unlock_latch();
      throw TxnAborted{AbortReason::kDeadlockVictim};
    }
    RtTxn& victim = *active_.at(victim_id);
    wound(victim, AbortReason::kDeadlockVictim);
    // The victim's thread withdraws its request when it wakes; drop its
    // edges now so this cycle reads as resolved.
    wfg_.clear_waits_of(victim_id);
  }
}

void RtLockTable::update_inheritance() {
  std::unordered_map<const RtTxn*, Priority> inherited;
  inherited.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    (void)id;
    inherited.emplace(txn, Priority::lowest());
  }
  auto effective = [&](const RtTxn* txn) {
    return Priority::stronger(txn->base_priority, inherited.at(txn));
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [id, request] : waiting_requests_) {
      (void)id;
      const Priority urgency = effective(request->txn);
      for (RtTxn* blocker : blockers_of(*request)) {
        auto it = inherited.find(blocker);
        if (it == inherited.end()) continue;
        if (urgency.higher_than(it->second)) {
          it->second = urgency;
          changed = true;
        }
      }
    }
  }
  for (const auto& [txn, priority] : inherited) {
    const_cast<RtTxn*>(txn)->inherited = priority;
  }
}

void RtLockTable::acquire_locking(RtTxn& txn, db::ObjectId object,
                                  LockMode mode) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  throw_if_wounded(txn);
  if (options_.audit && txn.released) {
    audit_fail("acquire after release (two-phase rule)");
  }
  if (try_grant(txn, object, mode)) {
    ++stats_.grants;
    unlock_latch();
    return;
  }

  if (options_.protocol == Protocol::kWaitDie) {
    const auto blockers = blockers_for_newcomer(object, mode, txn);
    assert(!blockers.empty());
    const bool all_blockers_younger =
        std::all_of(blockers.begin(), blockers.end(),
                    [&](const RtTxn* blocker) { return txn.id < blocker->id; });
    if (!all_blockers_younger) {
      // Younger than some holder: die (restart with the same age).
      ++stats_.dies;
      ++stats_.protocol_aborts;
      unlock_latch();
      throw TxnAborted{AbortReason::kAgeBased};
    }
  } else if (options_.protocol == Protocol::kWoundWait) {
    // Wound every younger blocker; unlike the simulation (where an abort
    // releases synchronously and the requester re-probes), the victims die
    // asynchronously and their release promotes us from the queue.
    for (RtTxn* blocker : blockers_for_newcomer(object, mode, txn)) {
      if (txn.id < blocker->id && wound(*blocker, AbortReason::kWounded)) {
        ++stats_.wounds;
        ++stats_.protocol_aborts;
      }
    }
  }

  txn.token.reset();
  Request request{&txn, object, mode, false, 0};
  enqueue(request);
  begin_block(txn);

  if (options_.protocol == Protocol::kHighPriority) {
    // Queue first (priority order), then wound every conflicting holder iff
    // all of them are less urgent; their releases promote us directly.
    const auto blockers = blockers_of(request);
    const bool all_lower = std::all_of(
        blockers.begin(), blockers.end(), [&](const RtTxn* blocker) {
          return txn.effective_priority().higher_than(
              blocker->effective_priority());
        });
    if (all_lower) {
      for (RtTxn* victim : blockers) {
        if (wound(*victim, AbortReason::kWounded)) {
          ++stats_.wounds;
          ++stats_.protocol_aborts;
        }
      }
    }
  }

  if (uses_wfg()) {
    refresh_edges(object);
    resolve_deadlocks(txn, request);  // may unlock + throw
  }
  if (uses_inheritance()) update_inheritance();
  unlock_latch();

  bool woken = backend_.block(txn.token, txn.deadline);

  PqSpinLock::Node node2;
  lock_latch(node2, txn.base_priority);
  // Wakes are delivered outside the latch (unlock_latch), so a preempted
  // waker can land its signal after the wait it meant to end — even into
  // this transaction's next attempt, whose token.reset() raced the
  // delivery. A wake with no cause on the books (no grant, no wound) is
  // such a stale signal: re-arm and keep waiting. A wake with a live
  // cause never reaches the reset — grant and wound both post under the
  // latch before their wake is queued, so the loop condition sees them.
  while (woken && !request.granted &&
         !txn.wounded.load(std::memory_order_relaxed) &&
         backend_.now() < txn.deadline) {
    txn.token.reset();
    unlock_latch();
    woken = backend_.block(txn.token, txn.deadline);
    lock_latch(node2, txn.base_priority);
  }
  if (!request.granted) {
    cancel(request);
    end_block(txn);
    if (uses_wfg()) {
      wfg_.clear_waits_of(txn.id);
      refresh_edges(object);
    }
    if (uses_inheritance()) update_inheritance();
    const bool was_wounded = txn.wounded.load(std::memory_order_relaxed);
    const AbortReason reason =
        was_wounded ? txn.wound_reason : AbortReason::kDeadlineMiss;
    assert(was_wounded || !woken || backend_.now() >= txn.deadline);
    (void)woken;
    unlock_latch();
    throw TxnAborted{reason};
  }
  const bool aborted = txn.wounded.load(std::memory_order_relaxed);
  const AbortReason reason = txn.wound_reason;
  unlock_latch();
  // Granted and wounded can race; the wound wins and release_all frees the
  // just-granted lock.
  if (aborted) throw TxnAborted{reason};
}

// ---------------------------------------------------------------------------
// Ceiling family (mirrors cc/pcp.cpp)
// ---------------------------------------------------------------------------

LockMode RtLockTable::effective_mode(LockMode mode) const {
  return options_.protocol == Protocol::kPriorityCeilingExclusive
             ? LockMode::kWrite
             : mode;
}

Priority RtLockTable::write_ceiling_of(db::ObjectId object) const {
  return options_.protocol == Protocol::kPriorityCeilingExclusive
             ? abs_ceiling_[object]
             : write_ceiling_[object];
}

const RtLockTable::CeilingLock* RtLockTable::strongest_blocking_lock(
    const RtTxn& txn) const {
  const CeilingLock* best = nullptr;
  for (const auto& [object, lock] : ceiling_locks_) {
    (void)object;
    if (!lock.held_by_other(txn)) continue;
    if (best == nullptr || lock.rw_ceiling.higher_than(best->rw_ceiling)) {
      best = &lock;
    }
  }
  return best;
}

bool RtLockTable::ceiling_can_grant(const RtTxn& txn) const {
  // Assigned (base) priority, never the inherited one — see cc/pcp.cpp.
  const CeilingLock* blocking = strongest_blocking_lock(txn);
  return blocking == nullptr ||
         txn.base_priority.higher_than(blocking->rw_ceiling);
}

void RtLockTable::ceiling_grant(RtTxn& txn, db::ObjectId object,
                                LockMode mode) {
  CeilingLock& lock = ceiling_locks_[object];
  if (mode == LockMode::kWrite) {
    if (options_.audit && (lock.writer != nullptr || !lock.readers.empty())) {
      audit_fail("ceiling rule admitted a conflicting write");
    }
    lock.writer = &txn;
  } else {
    if (options_.audit && lock.writer != nullptr) {
      audit_fail("ceiling rule admitted a read under a write lock");
    }
    lock.readers.push_back(&txn);
  }
  refresh_rw_ceiling(object, lock);
}

void RtLockTable::refresh_static_ceilings(const RtTxn& txn) {
  for (const cc::Operation& op : txn.access.operations()) {
    Priority write = Priority::lowest();
    Priority abs = Priority::lowest();
    for (const auto& [id, active] : active_) {
      (void)id;
      if (!active->access.touches(op.object)) continue;
      abs = Priority::stronger(abs, active->base_priority);
      if (active->access.writes(op.object)) {
        write = Priority::stronger(write, active->base_priority);
      }
    }
    write_ceiling_[op.object] = write;
    abs_ceiling_[op.object] = abs;
    if (auto it = ceiling_locks_.find(op.object); it != ceiling_locks_.end()) {
      refresh_rw_ceiling(op.object, it->second);
    }
  }
}

void RtLockTable::refresh_rw_ceiling(db::ObjectId object, CeilingLock& lock) {
  assert(!lock.empty());
  lock.rw_ceiling = lock.writer != nullptr ? abs_ceiling_[object]
                                           : write_ceiling_of(object);
}

void RtLockTable::ceiling_update_inheritance() {
  std::unordered_map<const RtTxn*, Priority> inherited;
  inherited.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    (void)id;
    inherited.emplace(txn, Priority::lowest());
  }
  auto effective = [&](const RtTxn* txn) {
    return Priority::stronger(txn->base_priority, inherited.at(txn));
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CeilingWaiter* waiter : ceiling_waiters_) {
      if (waiter->txn->wounded.load(std::memory_order_relaxed)) continue;
      const CeilingLock* blocking = strongest_blocking_lock(*waiter->txn);
      if (blocking == nullptr) continue;
      const Priority urgency = effective(waiter->txn);
      auto inherit = [&](const RtTxn* holder) {
        if (holder == waiter->txn) return;
        auto it = inherited.find(holder);
        if (it == inherited.end()) return;
        if (urgency.higher_than(it->second)) {
          it->second = urgency;
          changed = true;
        }
      };
      if (blocking->writer != nullptr) inherit(blocking->writer);
      for (const RtTxn* reader : blocking->readers) inherit(reader);
    }
  }
  for (const auto& [id, txn] : active_) {
    (void)id;
    txn->inherited = inherited.at(txn);
  }
}

bool RtLockTable::grant_pass() {
  for (auto it = ceiling_waiters_.begin(); it != ceiling_waiters_.end(); ++it) {
    CeilingWaiter* waiter = *it;
    // A wounded waiter is unwinding; granting it would only hand a lock to
    // a corpse.
    if (waiter->txn->wounded.load(std::memory_order_relaxed)) continue;
    if (!ceiling_can_grant(*waiter->txn)) continue;
    ceiling_waiters_.erase(it);
    if (options_.audit && !ceiling_can_grant(*waiter->txn)) {
      audit_fail("ceiling grant rule violated at queue grant");
    }
    ceiling_grant(*waiter->txn, waiter->object, waiter->mode);
    waiter->granted = true;
    ++stats_.grants;
    end_block(*waiter->txn);
    queue_wake(*waiter->txn);
    return true;
  }
  return false;
}

bool RtLockTable::resolve_dynamic_deadlock() {
  // Blocked-by graph over live (non-wounded) waiters; see cc/pcp.cpp for
  // the rationale. Every node on a cycle is a waiter, so any victim is
  // safely woundable.
  std::unordered_map<const RtTxn*, std::vector<const RtTxn*>> edges;
  for (const CeilingWaiter* waiter : ceiling_waiters_) {
    if (waiter->txn->wounded.load(std::memory_order_relaxed)) continue;
    const CeilingLock* blocking = strongest_blocking_lock(*waiter->txn);
    if (blocking == nullptr) continue;
    auto& targets = edges[waiter->txn];
    if (blocking->writer != nullptr && blocking->writer != waiter->txn) {
      targets.push_back(blocking->writer);
    }
    for (const RtTxn* reader : blocking->readers) {
      if (reader != waiter->txn) targets.push_back(reader);
    }
  }

  for (const CeilingWaiter* start : ceiling_waiters_) {
    if (start->txn->wounded.load(std::memory_order_relaxed)) continue;
    std::vector<const RtTxn*> path;
    std::unordered_map<const RtTxn*, int> colour;
    struct Frame {
      const RtTxn* node;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    auto targets_of =
        [&](const RtTxn* node) -> const std::vector<const RtTxn*>& {
      static const std::vector<const RtTxn*> kEmpty;
      auto it = edges.find(node);
      return it == edges.end() ? kEmpty : it->second;
    };
    colour[start->txn] = 1;
    path.push_back(start->txn);
    stack.push_back(Frame{start->txn});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& targets = targets_of(frame.node);
      if (frame.next >= targets.size()) {
        colour[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const RtTxn* next = targets[frame.next++];
      if (colour[next] == 1) {
        auto it = std::find(path.begin(), path.end(), next);
        assert(it != path.end());
        const RtTxn* victim = *it;
        for (auto member = it; member != path.end(); ++member) {
          if (victim->effective_priority().higher_than(
                  (*member)->effective_priority())) {
            victim = *member;
          }
        }
        ++stats_.pcp_dynamic_deadlocks;
        ++stats_.protocol_aborts;
        wound(*const_cast<RtTxn*>(victim), AbortReason::kDeadlockVictim);
        return true;
      }
      if (colour[next] == 0) {
        colour[next] = 1;
        path.push_back(next);
        stack.push_back(Frame{next});
      }
    }
  }
  return false;
}

void RtLockTable::stabilize() {
  // Alternate inheritance and granting to a fixpoint; the backstop wound is
  // asynchronous (the victim withdraws itself and re-enters stabilize), so
  // unlike the simulation no re-entrancy guard is needed.
  do {
    ceiling_update_inheritance();
  } while (grant_pass());
  if (options_.pcp_deadlock_backstop && resolve_dynamic_deadlock()) {
    // The wounded victim is now excluded from the blocked-by graph; one
    // more pass settles inheritance around it.
    do {
      ceiling_update_inheritance();
    } while (grant_pass());
  }
}

void RtLockTable::remove_waiter(CeilingWaiter& waiter) {
  auto it = std::find(ceiling_waiters_.begin(), ceiling_waiters_.end(),
                      &waiter);
  assert(it != ceiling_waiters_.end());
  ceiling_waiters_.erase(it);
}

void RtLockTable::acquire_ceiling(RtTxn& txn, db::ObjectId object,
                                  LockMode mode) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  throw_if_wounded(txn);
  if (options_.audit && txn.released) {
    audit_fail("acquire after release (two-phase rule)");
  }
  mode = effective_mode(mode);

  if (ceiling_can_grant(txn)) {
    ceiling_grant(txn, object, mode);
    ++stats_.grants;
    unlock_latch();
    return;
  }

  // The ceiling may forbid locking an unlocked object — the protocol's
  // "insurance premium", counted separately.
  if (!ceiling_locks_.contains(object)) {
    ++stats_.ceiling_denials;
    ++txn.ceiling_blocks;
  }

  txn.token.reset();
  CeilingWaiter waiter{&txn, object, mode, false, next_seq_++};
  auto pos = std::find_if(ceiling_waiters_.begin(), ceiling_waiters_.end(),
                          [&](const CeilingWaiter* w) {
                            const Priority a = txn.base_priority;
                            const Priority b = w->txn->base_priority;
                            if (a != b) return a.higher_than(b);
                            return waiter.seq < w->seq;
                          });
  ceiling_waiters_.insert(pos, &waiter);
  begin_block(txn);
  stabilize();  // may grant this very waiter (wake drains on unlock)
  unlock_latch();

  bool woken = backend_.block(txn.token, txn.deadline);

  PqSpinLock::Node node2;
  lock_latch(node2, txn.base_priority);
  // Stale-signal filter; see acquire_locking for the race.
  while (woken && !waiter.granted &&
         !txn.wounded.load(std::memory_order_relaxed) &&
         backend_.now() < txn.deadline) {
    txn.token.reset();
    unlock_latch();
    woken = backend_.block(txn.token, txn.deadline);
    lock_latch(node2, txn.base_priority);
  }
  if (!waiter.granted) {
    remove_waiter(waiter);
    end_block(txn);
    stabilize();
    const bool was_wounded = txn.wounded.load(std::memory_order_relaxed);
    const AbortReason reason =
        was_wounded ? txn.wound_reason : AbortReason::kDeadlineMiss;
    assert(was_wounded || !woken || backend_.now() >= txn.deadline);
    (void)woken;
    unlock_latch();
    throw TxnAborted{reason};
  }
  const bool aborted = txn.wounded.load(std::memory_order_relaxed);
  const AbortReason reason = txn.wound_reason;
  unlock_latch();
  if (aborted) throw TxnAborted{reason};
}

// ---------------------------------------------------------------------------
// Timestamp family (mirrors cc/tso.cpp)
// ---------------------------------------------------------------------------

void RtLockTable::acquire_timestamp(RtTxn& txn, db::ObjectId object,
                                    LockMode mode) {
  PqSpinLock::Node node;
  lock_latch(node, txn.base_priority);
  throw_if_wounded(txn);
  auto ts_it = timestamps_.find(txn.id);
  if (ts_it == timestamps_.end()) {
    // Attempt began without on_begin — count it and assign lazily so the
    // run can proceed.
    if (options_.audit) audit_fail("timestamp access before on_begin");
    ts_it = timestamps_.emplace(txn.id, next_ts_++).first;
  }
  const std::uint64_t ts = ts_it->second;
  ObjectTs& state = object_ts_[object];
  const bool rejected =
      mode == LockMode::kRead
          ? ts < state.write_ts
          : (ts < state.read_ts || ts < state.write_ts);
  if (rejected) {
    ++stats_.tso_rejections;
    ++stats_.protocol_aborts;
    unlock_latch();
    throw TxnAborted{AbortReason::kTimestampOrder};
  }
  if (mode == LockMode::kRead) {
    state.read_ts = std::max(state.read_ts, ts);
  } else {
    state.write_ts = ts;
  }
  ++stats_.grants;
  unlock_latch();
}

}  // namespace rtdb::rt
