#include "rt/runner.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <stdexcept>
#include <utility>

#include "db/database.hpp"
#include "rt/thread_backend.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "txn/transaction.hpp"
#include "workload/generator.hpp"

namespace rtdb::rt {
namespace {

// Replays the workload generator on a throwaway kernel to pre-compute the
// arrival schedule. The generator is a pure function of (schema, workload
// config, seed), so this produces exactly the transactions — ids, access
// sets, arrivals, deadlines, priorities — that core::System would submit
// for the same config.
std::vector<txn::TransactionSpec> generate_schedule(
    const core::SystemConfig& config) {
  sim::Kernel kernel;
  const db::Database schema{db::DatabaseConfig{
      config.db_objects, 1, db::Placement::kSingleSite}};
  workload::WorkloadConfig workload = config.workload;
  workload.assignment = workload::Assignment::kSingleSite;

  std::vector<txn::TransactionSpec> specs;
  workload::TransactionGenerator generator(
      kernel, schema, workload, sim::RandomStream{config.seed},
      [&specs](txn::TransactionSpec spec) { specs.push_back(std::move(spec)); });
  generator.start();
  kernel.run();

  std::stable_sort(specs.begin(), specs.end(),
                   [](const txn::TransactionSpec& a,
                      const txn::TransactionSpec& b) {
                     return a.arrival < b.arrival;
                   });
  return specs;
}

// One transaction's fixed spec plus its mutable thread-side state. Lives in
// a deque so addresses stay stable while bodies run.
struct Slot {
  txn::TransactionSpec spec;
  RtTxn txn;
  stats::TxnRecord record;
};

struct SharedCounters {
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> deadline_kills{0};
};

void record_miss(Slot& slot, ExecutionBackend& backend) {
  slot.record.processed = true;
  slot.record.missed_deadline = true;
  slot.record.finish = backend.now();
}

// The per-transaction body: the thread-side mirror of the
// txn::TransactionManager restart loop around txn::LocalExecutor::run.
// Deadline misses are detected at checkpoints rather than by a watchdog
// process (a real thread cannot be killed asynchronously), so a doomed
// attempt runs until its next operation boundary before it is charged.
void run_transaction(Slot& slot, RtLockTable& table, ExecutionBackend& backend,
                     const core::SystemConfig& config,
                     SharedCounters& counters) {
  const txn::TransactionSpec& spec = slot.spec;
  stats::TxnRecord& record = slot.record;
  RtTxn& txn = slot.txn;
  const std::uint32_t granularity = std::max(1u, config.lock_granularity);

  for (std::uint32_t attempt = 1;; ++attempt) {
    if (backend.now() >= spec.deadline) {
      record_miss(slot, backend);
      counters.deadline_kills.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (attempt == 1) record.first_start = backend.now();

    txn.reset_for_attempt();
    table.on_begin(txn);
    bool committed = false;
    cc::AbortReason reason = cc::AbortReason::kSystem;
    try {
      std::vector<db::ObjectId> held;
      for (const cc::Operation& op : spec.access.operations()) {
        RtLockTable::checkpoint(txn);
        if (backend.now() >= spec.deadline) {
          throw cc::TxnAborted{cc::AbortReason::kDeadlineMiss};
        }
        const db::ObjectId granule = op.object / granularity;
        if (std::find(held.begin(), held.end(), granule) == held.end()) {
          const cc::LockMode mode = txn.access.writes(granule)
                                        ? cc::LockMode::kWrite
                                        : cc::LockMode::kRead;
          table.acquire(txn, granule, mode);
          held.push_back(granule);
        }
        backend.advance(config.io_per_object);   // read the object
        backend.advance(config.cpu_per_object);  // compute on it
      }
      RtLockTable::checkpoint(txn);
      if (backend.now() >= spec.deadline) {
        throw cc::TxnAborted{cc::AbortReason::kDeadlineMiss};
      }
      if (spec.access.write_count() > 0) {
        // Deferred write-back: with one disk per object the write I/Os
        // proceed in parallel, so commit costs a single io_per_object.
        backend.advance(config.io_per_object);
      }
      committed = true;
    } catch (const cc::TxnAborted& abort) {
      reason = abort.reason();
    }
    table.release_all(txn);
    table.on_end(txn);
    record.blocked += txn.blocked_total;
    record.ceiling_blocks += txn.ceiling_blocks;

    if (committed) {
      record.processed = true;
      record.committed = true;
      record.finish = backend.now();
      // The simulation's watchdog would have killed this attempt at the
      // deadline; on threads the commit raced the clock and won. Count it
      // as a miss so the metric means the same thing on both backends.
      record.missed_deadline = record.finish > spec.deadline;
      return;
    }
    if (reason == cc::AbortReason::kDeadlineMiss) {
      record_miss(slot, backend);
      counters.deadline_kills.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    ++record.aborts;
    counters.restarts.fetch_add(1, std::memory_order_relaxed);
    sim::Duration backoff = config.restart_backoff;
    if (reason == cc::AbortReason::kAgeBased) {
      // Wait-die restarts retry against the same older holders; back off
      // exponentially like txn::TransactionManager so they stop thrashing.
      backoff = backoff * (std::int64_t{1}
                           << std::min<std::uint32_t>(attempt, 6));
    }
    if (backend.now() + backoff >= spec.deadline) {
      record_miss(slot, backend);
      counters.deadline_kills.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    backend.advance(backoff);
  }
}

}  // namespace

RtRunResult run_threaded(const core::SystemConfig& config,
                         const RtRunnerConfig& runner_config) {
  if (config.scheme != core::DistScheme::kSingleSite) {
    throw std::invalid_argument(
        "rt::run_threaded supports only the single-site scheme");
  }
  if (!config.workload.periodic.empty()) {
    throw std::invalid_argument(
        "rt::run_threaded does not support periodic sources");
  }

  std::vector<txn::TransactionSpec> specs = generate_schedule(config);

  ThreadBackend backend{{runner_config.workers, runner_config.unit_nanos}};
  const std::uint32_t granularity = std::max(1u, config.lock_granularity);
  const std::uint32_t granules =
      (config.db_objects + granularity - 1) / granularity;
  RtLockTable table{{config.protocol, granules, config.victim_policy,
                     config.pcp_deadlock_backstop, config.conformance_check,
                     runner_config.bound_gate},
                    backend};

  std::deque<Slot> slots;
  for (txn::TransactionSpec& spec : specs) {
    Slot& slot = slots.emplace_back();
    slot.spec = std::move(spec);
    slot.txn.id = slot.spec.id;
    slot.txn.base_priority = slot.spec.priority;
    slot.txn.deadline = slot.spec.deadline;
    slot.txn.access = granularity > 1 ? slot.spec.access.coarsened(granularity)
                                      : slot.spec.access;
    slot.record.id = slot.spec.id;
    slot.record.site = slot.spec.home_site;
    slot.record.read_only = slot.spec.read_only;
    slot.record.size = slot.spec.size();
    slot.record.arrival = slot.spec.arrival;
    slot.record.deadline = slot.spec.deadline;
  }

  SharedCounters counters;
  // Release transactions at their arrival instants. The dispatch loop runs
  // on the caller's thread so every pool worker stays available for
  // transaction bodies; the FIFO queue preserves arrival order.
  for (Slot& slot : slots) {
    const sim::Duration until_arrival = slot.spec.arrival - backend.now();
    if (until_arrival > sim::Duration::zero()) backend.advance(until_arrival);
    backend.spawn("txn-" + std::to_string(slot.spec.id.value),
                  [&slot, &table, &backend, &config, &counters] {
                    run_transaction(slot, table, backend, config, counters);
                  });
  }
  backend.run();

  RtRunResult result;
  result.elapsed = backend.now() - sim::TimePoint::origin();
  result.records.reserve(slots.size());
  for (const Slot& slot : slots) result.records.push_back(slot.record);
  result.locks = table.stats();
  result.restarts = counters.restarts.load(std::memory_order_relaxed);
  result.deadline_kills =
      counters.deadline_kills.load(std::memory_order_relaxed);
  result.workers = backend.workers();
  result.unit_nanos = backend.unit_nanos();
  result.body_exceptions = backend.body_exceptions();

  std::string why;
  const bool quiet = table.quiescent(&why);
  if (!quiet) result.quiescence_failure = why;
  if (result.locks.audit_violations > 0 && result.quiescence_failure.empty()) {
    result.quiescence_failure = table.first_audit_failure();
  }
  result.conformance_violations = result.locks.audit_violations +
                                  (quiet ? 0 : 1) + result.body_exceptions;
  return result;
}

}  // namespace rtdb::rt
