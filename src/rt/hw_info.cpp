#include "rt/hw_info.hpp"

#include <chrono>
#include <thread>

namespace rtdb::rt {

HardwareInfo detect_hardware() {
  HardwareInfo info;
  info.cores = std::thread::hardware_concurrency();
  info.clock_source = "steady_clock";
  using Period = std::chrono::steady_clock::period;
  info.clock_tick_nanos = static_cast<std::uint64_t>(
      (1'000'000'000LL * Period::num) / Period::den);
  return info;
}

}  // namespace rtdb::rt
