#pragma once

// Drives one full experiment run on the thread backend: replays the
// seed-deterministic workload generator to pre-compute the arrival
// schedule (bit-identical to the one the simulation would submit), then
// releases each transaction at its arrival instant onto the worker pool,
// where it executes the same per-operation body as txn::LocalExecutor —
// acquire granule, read I/O, compute, commit writes — against the
// thread-native RtLockTable.
//
// Restrictions (checked, not silent): single-site scheme, no periodic
// sources. The distributed schemes and periodic drivers stay
// simulation-only for now.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "rt/lock_table.hpp"
#include "stats/monitor.hpp"

namespace rtdb::rt {

struct RtRunResult {
  std::vector<stats::TxnRecord> records;
  sim::Duration elapsed{};  // first release to drain, in sim units
  RtLockStats locks;
  std::uint64_t restarts = 0;
  std::uint64_t deadline_kills = 0;
  std::uint64_t conformance_violations = 0;  // audit + quiescence failures
  std::string quiescence_failure;            // empty when clean

  // Provenance of the numbers.
  std::uint32_t workers = 0;
  std::uint64_t unit_nanos = 0;
  std::uint64_t body_exceptions = 0;
};

struct RtRunnerConfig {
  std::uint32_t workers = 0;       // 0 = one per hardware core
  std::uint64_t unit_nanos = 20'000;
  // Blocking-bound gate (sim units; zero = off): the lock table counts
  // every blocking episode longer than this into bound_violations. The
  // caller (core/experiment.cpp) derives it from analysis::analyze — the
  // thread-backend margin for real-clock wakeup overshoot is already in
  // the analyzer's figure, so the gate is used as-is.
  sim::Duration bound_gate{};
};

// Runs config's workload to completion on real threads. Throws
// std::invalid_argument when the configuration needs simulation-only
// machinery (distributed scheme, periodic sources).
RtRunResult run_threaded(const core::SystemConfig& config,
                         const RtRunnerConfig& runner_config);

}  // namespace rtdb::rt
