#pragma once

// Hardware/environment facts recorded in thread-backend artifact headers
// so a "real hardware" number is never divorced from the machine that
// produced it.

#include <cstdint>
#include <string>

namespace rtdb::rt {

struct HardwareInfo {
  std::uint32_t cores = 0;          // std::thread::hardware_concurrency
  std::string clock_source;         // the clock behind ThreadBackend::now
  std::uint64_t clock_tick_nanos = 0;  // nominal resolution of that clock
};

HardwareInfo detect_hardware();

}  // namespace rtdb::rt
