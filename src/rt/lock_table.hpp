#pragma once

// Thread-native lock manager for the real-hardware backend: one shared
// lock table guarded by a priority-queuing spinlock (rt/pqlock.hpp),
// implementing the same protocol rules as the coroutine controllers in
// src/cc/ — 2PL with FIFO or priority queues, basic priority inheritance,
// the priority ceiling protocol (shared or exclusive-only), high-priority
// wounding, wait-die / wound-wait, and basic timestamp ordering.
//
// Differences forced by real threads, and nothing else:
//
//   * Aborting another transaction is cooperative. The simulation kills a
//     victim's process synchronously; a real thread cannot be killed
//     mid-instruction, so wounding sets a flag (and wakes the victim if
//     it is parked). Victims observe the flag at the next checkpoint —
//     lock request, operation boundary, or commit — and unwind through
//     cc::TxnAborted exactly like the simulated protocols.
//   * Waiting parks the OS thread on the ExecutionBackend (condvar under
//     the thread backend), bounded by the transaction's deadline.
//
// Everything else — grant rules, queue ordering, ceiling arithmetic,
// victim policies, age rules, timestamp rules — is a transliteration of
// the corresponding src/cc/ controller, so the two backends disagree only
// where physical timing does.

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/access_set.hpp"
#include "cc/deadlock.hpp"
#include "cc/two_phase.hpp"
#include "cc/types.hpp"
#include "core/config.hpp"
#include "db/types.hpp"
#include "rt/backend.hpp"
#include "rt/pqlock.hpp"
#include "sim/priority.hpp"

namespace rtdb::rt {

// The lock table's view of one transaction attempt — the thread-side
// analogue of cc::CcTxn.
struct RtTxn {
  db::TxnId id{};
  sim::Priority base_priority{};
  sim::TimePoint deadline = sim::TimePoint::max();
  cc::AccessSet access;  // declared set, already at lock granularity

  // ---- maintained under the table latch ----
  sim::Priority inherited = sim::Priority::lowest();
  bool blocked = false;
  bool released = false;  // two-phase audit: no acquire after release
  sim::TimePoint blocked_since{};

  // Cooperative abort flag: reason is written before the release-store,
  // so a checkpoint that observes `wounded` may read the reason freely.
  std::atomic<bool> wounded{false};
  cc::AbortReason wound_reason = cc::AbortReason::kSystem;

  WaitToken token;

  // ---- per-attempt statistics (read by the runner between attempts) ----
  sim::Duration blocked_total{};
  std::uint32_t block_count = 0;
  std::uint32_t ceiling_blocks = 0;

  sim::Priority effective_priority() const {
    return sim::Priority::stronger(base_priority, inherited);
  }

  // Called by the runner before each attempt re-enters on_begin.
  void reset_for_attempt() {
    inherited = sim::Priority::lowest();
    blocked = false;
    released = false;
    wounded.store(false, std::memory_order_relaxed);
    blocked_total = sim::Duration::zero();
    block_count = 0;
    ceiling_blocks = 0;
  }
};

struct RtLockStats {
  std::uint64_t grants = 0;
  std::uint64_t protocol_aborts = 0;
  std::uint64_t deadlocks = 0;  // 2PL-family WFG cycles resolved
  std::uint64_t pcp_dynamic_deadlocks = 0;
  std::uint64_t wounds = 0;
  std::uint64_t dies = 0;
  std::uint64_t tso_rejections = 0;
  std::uint64_t ceiling_denials = 0;
  // Conformance self-audit failures (0 on a correct implementation).
  std::uint64_t audit_violations = 0;
  // Longest single blocking episode observed, and how many episodes
  // exceeded Options::bound_gate (0 with the gate off).
  sim::Duration max_block_span{};
  std::uint64_t bound_violations = 0;
};

class RtLockTable {
 public:
  struct Options {
    core::Protocol protocol = core::Protocol::kTwoPhase;
    std::uint32_t object_count = 0;  // granule count
    cc::TwoPhaseLocking::VictimPolicy victim_policy =
        cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
    bool pcp_deadlock_backstop = true;
    // Run the inline conformance audit (compatibility at every grant,
    // ceiling grant rule, two-phase rule, quiescence).
    bool audit = false;
    // Blocking-bound gate (zero = off): episodes longer than this count
    // into RtLockStats::bound_violations. Includes the analyzer's
    // thread-backend clock allowance; see analysis/bounds.hpp.
    sim::Duration bound_gate{};
  };

  RtLockTable(Options options, ExecutionBackend& backend);

  RtLockTable(const RtLockTable&) = delete;
  RtLockTable& operator=(const RtLockTable&) = delete;

  void on_begin(RtTxn& txn);
  // Blocks (bounded by txn.deadline) until granted; throws cc::TxnAborted
  // when the protocol aborts this transaction (die, wound observed,
  // deadlock victim, timestamp rejection) or the deadline passes while
  // queued (AbortReason::kDeadlineMiss).
  void acquire(RtTxn& txn, db::ObjectId object, cc::LockMode mode);
  void release_all(RtTxn& txn);
  void on_end(RtTxn& txn);

  // Cooperative abort checkpoint; executors call this between operations
  // and before commit. Throws cc::TxnAborted when the txn was wounded.
  static void checkpoint(RtTxn& txn) {
    if (txn.wounded.load(std::memory_order_acquire)) {
      throw cc::TxnAborted{txn.wound_reason};
    }
  }

  RtLockStats stats() const;
  // Post-run invariant check: no active transactions, no held locks, no
  // waiters, all ceilings lowered, no live timestamps.
  bool quiescent(std::string* why = nullptr) const;
  // First audit failure message (empty when the audit never fired).
  std::string first_audit_failure() const;

 private:
  enum class Family : std::uint8_t { kLocking, kCeiling, kTimestamp };

  // ---- 2PL-family state (mirrors cc::LockTable) ----
  struct Request {
    RtTxn* txn = nullptr;
    db::ObjectId object = 0;
    cc::LockMode mode = cc::LockMode::kRead;
    bool granted = false;
    std::uint64_t seq = 0;
  };
  struct ObjectLock {
    std::vector<std::pair<RtTxn*, cc::LockMode>> holders;
    std::vector<Request*> queue;  // policy order
  };

  // ---- ceiling state (mirrors cc::PriorityCeiling) ----
  struct CeilingLock {
    RtTxn* writer = nullptr;
    std::vector<RtTxn*> readers;
    sim::Priority rw_ceiling = sim::Priority::lowest();
    bool empty() const { return writer == nullptr && readers.empty(); }
    bool held_by_other(const RtTxn& txn) const;
  };
  struct CeilingWaiter {
    RtTxn* txn = nullptr;
    db::ObjectId object = 0;
    cc::LockMode mode = cc::LockMode::kRead;
    bool granted = false;
    std::uint64_t seq = 0;
  };

  // ---- timestamp state (mirrors cc::TimestampOrdering) ----
  struct ObjectTs {
    std::uint64_t read_ts = 0;
    std::uint64_t write_ts = 0;
  };

  Family family() const;
  bool priority_queues() const;
  bool uses_inheritance() const;
  bool uses_wfg() const;

  // All helpers below require the table latch.
  void lock_latch(PqSpinLock::Node& node, sim::Priority pri) {
    latch_.lock(node, pri);
  }
  // Releases the latch and delivers every wake the critical section
  // accumulated (tokens are signaled outside the spinlock).
  void unlock_latch();
  void throw_if_wounded(RtTxn& txn);

  void begin_block(RtTxn& txn);
  void end_block(RtTxn& txn);
  void queue_wake(RtTxn& txn) { pending_wakes_.push_back(&txn.token); }
  // Marks the victim for cooperative abort and wakes it if parked.
  // Returns false if it was already wounded.
  bool wound(RtTxn& victim, cc::AbortReason reason);
  void audit_fail(const char* what);

  // ---- 2PL family ----
  void acquire_locking(RtTxn& txn, db::ObjectId object, cc::LockMode mode);
  bool try_grant(RtTxn& txn, db::ObjectId object, cc::LockMode mode);
  void enqueue(Request& request);
  void cancel(Request& request);
  void promote(db::ObjectId object, ObjectLock& lock);
  void erase_if_idle(db::ObjectId object);
  bool precedes(const Request& a, const Request& b) const;
  bool compatible_with_holders(const ObjectLock& lock,
                               cc::LockMode mode) const;
  std::vector<RtTxn*> blockers_of(const Request& request) const;
  // Blockers a not-yet-queued request would have: conflicting holders plus
  // conflicting queued requests that would precede it.
  std::vector<RtTxn*> blockers_for_newcomer(db::ObjectId object,
                                            cc::LockMode mode,
                                            const RtTxn& txn) const;
  void refresh_edges(db::ObjectId object);
  // Resolves WFG cycles through `txn`; throws if txn itself is the victim
  // (caller's cleanup already ran).
  void resolve_deadlocks(RtTxn& txn, Request& request);
  db::TxnId pick_victim(const std::vector<db::TxnId>& cycle,
                        db::TxnId requester) const;
  void update_inheritance();

  // ---- ceiling family ----
  cc::LockMode effective_mode(cc::LockMode mode) const;
  bool ceiling_can_grant(const RtTxn& txn) const;
  const CeilingLock* strongest_blocking_lock(const RtTxn& txn) const;
  void ceiling_grant(RtTxn& txn, db::ObjectId object, cc::LockMode mode);
  void refresh_static_ceilings(const RtTxn& txn);
  void refresh_rw_ceiling(db::ObjectId object, CeilingLock& lock);
  sim::Priority write_ceiling_of(db::ObjectId object) const;
  void acquire_ceiling(RtTxn& txn, db::ObjectId object, cc::LockMode mode);
  void stabilize();
  bool grant_pass();
  void ceiling_update_inheritance();
  bool resolve_dynamic_deadlock();
  void remove_waiter(CeilingWaiter& waiter);

  // ---- timestamp family ----
  void acquire_timestamp(RtTxn& txn, db::ObjectId object, cc::LockMode mode);

  Options options_;
  ExecutionBackend& backend_;

  // Mutable so the const observers (stats, quiescent) can take it.
  mutable PqSpinLock latch_;
  // Everything below is guarded by latch_.
  std::vector<WaitToken*> pending_wakes_;
  std::unordered_map<db::TxnId, RtTxn*> active_;
  std::uint64_t next_seq_ = 0;
  RtLockStats stats_;
  std::string first_audit_failure_;

  // 2PL family
  std::unordered_map<db::ObjectId, ObjectLock> locks_;
  std::size_t waiting_ = 0;
  cc::WaitForGraph wfg_;
  std::unordered_map<db::TxnId, Request*> waiting_requests_;

  // ceiling family
  std::unordered_map<db::ObjectId, CeilingLock> ceiling_locks_;
  std::vector<CeilingWaiter*> ceiling_waiters_;  // base-priority order
  std::vector<sim::Priority> write_ceiling_;
  std::vector<sim::Priority> abs_ceiling_;

  // timestamp family
  std::unordered_map<db::TxnId, std::uint64_t> timestamps_;
  std::unordered_map<db::ObjectId, ObjectTs> object_ts_;
  std::uint64_t next_ts_ = 1;
};

}  // namespace rtdb::rt
