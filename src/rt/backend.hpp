#pragma once

// The execution backend abstraction: the narrow clock + scheduling contract
// that separates protocol logic from the substrate that runs it.
//
// Two implementations exist:
//
//   * rt::SimBackend (sim_backend.hpp) adapts the discrete-event kernel —
//     time is virtual, all concurrency is simulated, and every run is a
//     pure function of the seed (byte-identical artifacts).
//
//   * rt::ThreadBackend (thread_backend.hpp) runs on real OS threads over
//     a fixed worker pool — time is the steady clock mapped onto
//     simulation units, concurrency is physical, and runs are
//     statistically (not bitwise) reproducible.
//
// The contract is deliberately tiny: now / advance / spawn / block / wake
// / run. Anything a protocol or executor needs beyond that (priority
// scheduling, I/O models, message passing) stays substrate-specific and
// lives behind its own interface.

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "core/annotations.hpp"
#include "sim/time.hpp"

namespace rtdb::rt {

// A one-shot wake flag a blocked execution context waits on. The embedded
// mutex/condvar pair is used by the thread backend to park real threads;
// the sim backend (single-threaded) only reads the flag. Reusable via
// reset() between waits.
class WaitToken {
 public:
  WaitToken() = default;
  WaitToken(const WaitToken&) = delete;
  WaitToken& operator=(const WaitToken&) = delete;

  void reset() RTDB_EXCLUDES(mutex) {
    const std::lock_guard<std::mutex> guard(mutex);
    signaled = false;
  }

  // Locked read for pollers (the sim backend's block() loop). The DES is
  // single-threaded, so the mutex is never contended there.
  bool is_signaled() RTDB_EXCLUDES(mutex) {
    const std::lock_guard<std::mutex> guard(mutex);
    return signaled;
  }

  std::mutex mutex;
  std::condition_variable cv;
  bool signaled RTDB_GUARDED_BY(mutex) = false;
};

// The clock + scheduling interface both backends implement. All times are
// simulation TimePoints/Durations; each backend defines how they map onto
// its notion of time (virtual ticks vs. scaled steady-clock nanoseconds).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  ExecutionBackend() = default;
  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  // "sim" or "threads" — recorded in artifact headers.
  virtual std::string_view name() const = 0;

  // The current time, in simulation units.
  virtual sim::TimePoint now() const = 0;

  // Consumes `d` of execution time on the calling context: the simulation
  // backend advances the virtual clock; the thread backend occupies the
  // calling worker for the mapped real-time span (sleep for the bulk,
  // spin for the tail). Models a CPU/I-O burst of known length.
  virtual void advance(sim::Duration d) = 0;

  // Launches a unit of execution. The thread backend enqueues the body on
  // its worker pool (FIFO); the sim backend schedules it as an immediate
  // event on the kernel.
  virtual void spawn(std::string name, std::function<void()> body) = 0;

  // Parks the calling context until wake(token) or until the clock
  // reaches `until`, whichever is first. Returns true when woken by
  // wake(), false on timeout. Pass sim::TimePoint::max() for no timeout.
  virtual bool block(WaitToken& token, sim::TimePoint until) = 0;

  // Signals a parked context (safe to call before block: the token
  // latches). Callable from any context.
  virtual void wake(WaitToken& token) = 0;

  // Drives spawned work to completion; returns when everything spawned so
  // far (including work spawned transitively) has finished.
  virtual void run() = 0;
};

}  // namespace rtdb::rt
