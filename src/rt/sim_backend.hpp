#pragma once

// ExecutionBackend over the discrete-event kernel. Header-only (and
// allocation-free beyond what the kernel does) so low layers like src/cc/
// can hold one without a link-time dependency on the rt library.
//
// Semantics notes — the DES is single-threaded, so the generic interface
// maps onto kernel driving rather than real parking:
//
//   * spawn() schedules the body as one atomic event at the current
//     virtual instant. A spawned body must not call block()/advance()
//     inline (an event callback cannot suspend); simulation-side code
//     that needs to interleave uses the kernel's coroutine processes
//     directly, as the executors in src/txn/ do.
//   * advance()/block() are driver-context operations: they pump the
//     event queue (step/run_until) until the requested condition holds.
//     This is what makes backend-generic harness code — "start work,
//     wait for the flag" — run unmodified on both substrates.
//
// Everything is a pure function of the seed: byte-identical artifacts.

#include <functional>
#include <string_view>
#include <utility>

#include "rt/backend.hpp"
#include "sim/kernel.hpp"

namespace rtdb::rt {

class SimBackend final : public ExecutionBackend {
 public:
  explicit SimBackend(sim::Kernel& kernel) : kernel_(kernel) {}

  std::string_view name() const override { return "sim"; }

  sim::TimePoint now() const override { return kernel_.now(); }

  void advance(sim::Duration d) override { kernel_.run_for(d); }

  void spawn(std::string name, std::function<void()> body) override {
    (void)name;  // the kernel names processes, not one-shot events
    kernel_.schedule_in(sim::Duration::zero(),
                        [body = std::move(body)]() { body(); });
  }

  bool block(WaitToken& token, sim::TimePoint until) override {
    while (!token.is_signaled()) {
      if (kernel_.now() >= until) return false;
      if (!kernel_.step()) {
        // Queue drained with the token unsignaled: nothing can ever wake
        // us. Report timeout rather than spinning forever.
        return false;
      }
    }
    return true;
  }

  void wake(WaitToken& token) override {
    const std::lock_guard<std::mutex> guard(token.mutex);
    token.signaled = true;
    token.cv.notify_all();  // no-op in the DES; keeps semantics uniform
  }

  void run() override { kernel_.run(); }

  sim::Kernel& kernel() { return kernel_; }

 private:
  sim::Kernel& kernel_;
};

}  // namespace rtdb::rt
