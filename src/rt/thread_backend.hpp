#pragma once

// ExecutionBackend on real OS threads: a fixed worker pool (after the
// static_thread_pool idiom in the related DB-CC repo) pulling spawned
// bodies from a FIFO queue, with the steady clock mapped onto simulation
// time units.
//
// Time mapping: t_sim(ticks) = elapsed_real_ns * kTicksPerUnit /
// unit_nanos, with the epoch pinned at backend construction. unit_nanos
// is the real-time length of one simulation unit; the default (20 µs per
// unit) compresses a paper-scale Fig-2 run (~20k units) into under a
// second of wall clock while keeping sleeps long enough for the OS timer
// to honor.
//
// Runs here are *statistically* reproducible (same seed → same workload,
// same protocol decisions modulo physical interleaving), never bitwise —
// see DESIGN.md for what each backend promises.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "rt/backend.hpp"

namespace rtdb::rt {

struct ThreadBackendConfig {
  // Worker threads in the pool. 0 = one per hardware core.
  std::uint32_t workers = 0;
  // Real nanoseconds per simulation time unit.
  std::uint64_t unit_nanos = 20'000;
};

class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(ThreadBackendConfig config = {});
  ~ThreadBackend() override;

  std::string_view name() const override { return "threads"; }

  sim::TimePoint now() const override;
  void advance(sim::Duration d) override;
  void spawn(std::string name, std::function<void()> body) override;
  bool block(WaitToken& token, sim::TimePoint until) override;
  void wake(WaitToken& token) override;
  void run() override;

  std::uint32_t workers() const { return worker_count_; }
  std::uint64_t unit_nanos() const { return config_.unit_nanos; }
  // Bodies that escaped with an exception (a bug in the hosted workload;
  // surfaced by tests and the runner's sanity checks).
  std::uint64_t body_exceptions() const;

 private:
  struct Job {
    std::string name;
    std::function<void()> body;
  };

  void worker_loop();
  std::chrono::steady_clock::time_point to_real(sim::TimePoint t) const;

  ThreadBackendConfig config_;
  std::uint32_t worker_count_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // workers wait for jobs
  std::condition_variable idle_cv_;   // run() waits for drain
  std::deque<Job> queue_ RTDB_GUARDED_BY(mutex_);
  // Queued + running bodies.
  std::uint64_t outstanding_ RTDB_GUARDED_BY(mutex_) = 0;
  std::uint64_t exceptions_ RTDB_GUARDED_BY(mutex_) = 0;
  bool shutdown_ RTDB_GUARDED_BY(mutex_) = false;

  std::vector<std::thread> threads_;
};

}  // namespace rtdb::rt
