file(REMOVE_RECURSE
  "CMakeFiles/cc_wait_die_test.dir/cc/wait_die_test.cpp.o"
  "CMakeFiles/cc_wait_die_test.dir/cc/wait_die_test.cpp.o.d"
  "cc_wait_die_test"
  "cc_wait_die_test.pdb"
  "cc_wait_die_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_wait_die_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
