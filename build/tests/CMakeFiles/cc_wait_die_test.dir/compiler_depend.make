# Empty compiler generated dependencies file for cc_wait_die_test.
# This may be replaced when dependencies are built.
