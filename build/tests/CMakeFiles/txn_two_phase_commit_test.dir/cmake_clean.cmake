file(REMOVE_RECURSE
  "CMakeFiles/txn_two_phase_commit_test.dir/txn/two_phase_commit_test.cpp.o"
  "CMakeFiles/txn_two_phase_commit_test.dir/txn/two_phase_commit_test.cpp.o.d"
  "txn_two_phase_commit_test"
  "txn_two_phase_commit_test.pdb"
  "txn_two_phase_commit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_two_phase_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
