# Empty compiler generated dependencies file for txn_two_phase_commit_test.
# This may be replaced when dependencies are built.
