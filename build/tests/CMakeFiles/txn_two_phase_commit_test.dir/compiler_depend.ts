# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for txn_two_phase_commit_test.
