file(REMOVE_RECURSE
  "CMakeFiles/cc_pcp_test.dir/cc/pcp_test.cpp.o"
  "CMakeFiles/cc_pcp_test.dir/cc/pcp_test.cpp.o.d"
  "cc_pcp_test"
  "cc_pcp_test.pdb"
  "cc_pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
