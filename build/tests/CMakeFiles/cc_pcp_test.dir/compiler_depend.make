# Empty compiler generated dependencies file for cc_pcp_test.
# This may be replaced when dependencies are built.
