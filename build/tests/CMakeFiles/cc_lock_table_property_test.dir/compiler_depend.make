# Empty compiler generated dependencies file for cc_lock_table_property_test.
# This may be replaced when dependencies are built.
