file(REMOVE_RECURSE
  "CMakeFiles/cc_lock_table_property_test.dir/cc/lock_table_property_test.cpp.o"
  "CMakeFiles/cc_lock_table_property_test.dir/cc/lock_table_property_test.cpp.o.d"
  "cc_lock_table_property_test"
  "cc_lock_table_property_test.pdb"
  "cc_lock_table_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_lock_table_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
