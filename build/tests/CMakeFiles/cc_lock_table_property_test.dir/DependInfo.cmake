
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc/lock_table_property_test.cpp" "tests/CMakeFiles/cc_lock_table_property_test.dir/cc/lock_table_property_test.cpp.o" "gcc" "tests/CMakeFiles/cc_lock_table_property_test.dir/cc/lock_table_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
