file(REMOVE_RECURSE
  "CMakeFiles/sim_semaphore_test.dir/sim/semaphore_test.cpp.o"
  "CMakeFiles/sim_semaphore_test.dir/sim/semaphore_test.cpp.o.d"
  "sim_semaphore_test"
  "sim_semaphore_test.pdb"
  "sim_semaphore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_semaphore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
