# Empty dependencies file for cc_hp2pl_test.
# This may be replaced when dependencies are built.
