file(REMOVE_RECURSE
  "CMakeFiles/cc_hp2pl_test.dir/cc/hp2pl_test.cpp.o"
  "CMakeFiles/cc_hp2pl_test.dir/cc/hp2pl_test.cpp.o.d"
  "cc_hp2pl_test"
  "cc_hp2pl_test.pdb"
  "cc_hp2pl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_hp2pl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
