file(REMOVE_RECURSE
  "CMakeFiles/sched_disk_test.dir/sched/disk_test.cpp.o"
  "CMakeFiles/sched_disk_test.dir/sched/disk_test.cpp.o.d"
  "sched_disk_test"
  "sched_disk_test.pdb"
  "sched_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
