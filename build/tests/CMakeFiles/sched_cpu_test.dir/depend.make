# Empty dependencies file for sched_cpu_test.
# This may be replaced when dependencies are built.
