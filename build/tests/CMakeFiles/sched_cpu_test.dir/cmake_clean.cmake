file(REMOVE_RECURSE
  "CMakeFiles/sched_cpu_test.dir/sched/cpu_test.cpp.o"
  "CMakeFiles/sched_cpu_test.dir/sched/cpu_test.cpp.o.d"
  "sched_cpu_test"
  "sched_cpu_test.pdb"
  "sched_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
