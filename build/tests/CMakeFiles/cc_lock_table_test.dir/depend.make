# Empty dependencies file for cc_lock_table_test.
# This may be replaced when dependencies are built.
