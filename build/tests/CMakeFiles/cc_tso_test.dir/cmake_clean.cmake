file(REMOVE_RECURSE
  "CMakeFiles/cc_tso_test.dir/cc/tso_test.cpp.o"
  "CMakeFiles/cc_tso_test.dir/cc/tso_test.cpp.o.d"
  "cc_tso_test"
  "cc_tso_test.pdb"
  "cc_tso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_tso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
