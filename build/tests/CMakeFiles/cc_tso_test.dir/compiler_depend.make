# Empty compiler generated dependencies file for cc_tso_test.
# This may be replaced when dependencies are built.
