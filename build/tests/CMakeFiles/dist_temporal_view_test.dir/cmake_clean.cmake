file(REMOVE_RECURSE
  "CMakeFiles/dist_temporal_view_test.dir/dist/temporal_view_test.cpp.o"
  "CMakeFiles/dist_temporal_view_test.dir/dist/temporal_view_test.cpp.o.d"
  "dist_temporal_view_test"
  "dist_temporal_view_test.pdb"
  "dist_temporal_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_temporal_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
