# Empty compiler generated dependencies file for dist_temporal_view_test.
# This may be replaced when dependencies are built.
