# Empty compiler generated dependencies file for cc_access_set_test.
# This may be replaced when dependencies are built.
