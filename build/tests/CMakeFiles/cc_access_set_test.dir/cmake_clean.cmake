file(REMOVE_RECURSE
  "CMakeFiles/cc_access_set_test.dir/cc/access_set_test.cpp.o"
  "CMakeFiles/cc_access_set_test.dir/cc/access_set_test.cpp.o.d"
  "cc_access_set_test"
  "cc_access_set_test.pdb"
  "cc_access_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_access_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
