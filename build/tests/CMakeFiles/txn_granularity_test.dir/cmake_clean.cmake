file(REMOVE_RECURSE
  "CMakeFiles/txn_granularity_test.dir/txn/granularity_test.cpp.o"
  "CMakeFiles/txn_granularity_test.dir/txn/granularity_test.cpp.o.d"
  "txn_granularity_test"
  "txn_granularity_test.pdb"
  "txn_granularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_granularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
