file(REMOVE_RECURSE
  "CMakeFiles/cc_two_phase_test.dir/cc/two_phase_test.cpp.o"
  "CMakeFiles/cc_two_phase_test.dir/cc/two_phase_test.cpp.o.d"
  "cc_two_phase_test"
  "cc_two_phase_test.pdb"
  "cc_two_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_two_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
