# Empty compiler generated dependencies file for cc_two_phase_test.
# This may be replaced when dependencies are built.
