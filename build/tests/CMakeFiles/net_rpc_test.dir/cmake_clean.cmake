file(REMOVE_RECURSE
  "CMakeFiles/net_rpc_test.dir/net/rpc_test.cpp.o"
  "CMakeFiles/net_rpc_test.dir/net/rpc_test.cpp.o.d"
  "net_rpc_test"
  "net_rpc_test.pdb"
  "net_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
