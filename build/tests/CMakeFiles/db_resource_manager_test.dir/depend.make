# Empty dependencies file for db_resource_manager_test.
# This may be replaced when dependencies are built.
