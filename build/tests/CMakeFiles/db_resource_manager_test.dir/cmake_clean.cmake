file(REMOVE_RECURSE
  "CMakeFiles/db_resource_manager_test.dir/db/resource_manager_test.cpp.o"
  "CMakeFiles/db_resource_manager_test.dir/db/resource_manager_test.cpp.o.d"
  "db_resource_manager_test"
  "db_resource_manager_test.pdb"
  "db_resource_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_resource_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
