# Empty dependencies file for cc_deadlock_test.
# This may be replaced when dependencies are built.
