file(REMOVE_RECURSE
  "CMakeFiles/cc_deadlock_test.dir/cc/deadlock_test.cpp.o"
  "CMakeFiles/cc_deadlock_test.dir/cc/deadlock_test.cpp.o.d"
  "cc_deadlock_test"
  "cc_deadlock_test.pdb"
  "cc_deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
