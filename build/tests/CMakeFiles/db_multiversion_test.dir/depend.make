# Empty dependencies file for db_multiversion_test.
# This may be replaced when dependencies are built.
