file(REMOVE_RECURSE
  "CMakeFiles/db_multiversion_test.dir/db/multiversion_test.cpp.o"
  "CMakeFiles/db_multiversion_test.dir/db/multiversion_test.cpp.o.d"
  "db_multiversion_test"
  "db_multiversion_test.pdb"
  "db_multiversion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_multiversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
