# Empty dependencies file for dist_replication_test.
# This may be replaced when dependencies are built.
