file(REMOVE_RECURSE
  "CMakeFiles/dist_replication_test.dir/dist/replication_test.cpp.o"
  "CMakeFiles/dist_replication_test.dir/dist/replication_test.cpp.o.d"
  "dist_replication_test"
  "dist_replication_test.pdb"
  "dist_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
