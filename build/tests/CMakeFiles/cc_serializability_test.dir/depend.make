# Empty dependencies file for cc_serializability_test.
# This may be replaced when dependencies are built.
