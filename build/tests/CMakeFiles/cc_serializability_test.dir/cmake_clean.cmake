file(REMOVE_RECURSE
  "CMakeFiles/cc_serializability_test.dir/cc/serializability_test.cpp.o"
  "CMakeFiles/cc_serializability_test.dir/cc/serializability_test.cpp.o.d"
  "cc_serializability_test"
  "cc_serializability_test.pdb"
  "cc_serializability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
