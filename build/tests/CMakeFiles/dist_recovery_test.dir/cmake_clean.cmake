file(REMOVE_RECURSE
  "CMakeFiles/dist_recovery_test.dir/dist/recovery_test.cpp.o"
  "CMakeFiles/dist_recovery_test.dir/dist/recovery_test.cpp.o.d"
  "dist_recovery_test"
  "dist_recovery_test.pdb"
  "dist_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
