# Empty dependencies file for dist_recovery_test.
# This may be replaced when dependencies are built.
