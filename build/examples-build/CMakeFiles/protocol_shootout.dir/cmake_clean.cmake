file(REMOVE_RECURSE
  "../examples/protocol_shootout"
  "../examples/protocol_shootout.pdb"
  "CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o"
  "CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
