file(REMOVE_RECURSE
  "../examples/replicated_views"
  "../examples/replicated_views.pdb"
  "CMakeFiles/replicated_views.dir/replicated_views.cpp.o"
  "CMakeFiles/replicated_views.dir/replicated_views.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
