# Empty compiler generated dependencies file for replicated_views.
# This may be replaced when dependencies are built.
