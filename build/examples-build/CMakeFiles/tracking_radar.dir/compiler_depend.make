# Empty compiler generated dependencies file for tracking_radar.
# This may be replaced when dependencies are built.
