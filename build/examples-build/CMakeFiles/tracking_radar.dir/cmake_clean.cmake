file(REMOVE_RECURSE
  "../examples/tracking_radar"
  "../examples/tracking_radar.pdb"
  "CMakeFiles/tracking_radar.dir/tracking_radar.cpp.o"
  "CMakeFiles/tracking_radar.dir/tracking_radar.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracking_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
