file(REMOVE_RECURSE
  "../examples/custom_experiment"
  "../examples/custom_experiment.pdb"
  "CMakeFiles/custom_experiment.dir/custom_experiment.cpp.o"
  "CMakeFiles/custom_experiment.dir/custom_experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
