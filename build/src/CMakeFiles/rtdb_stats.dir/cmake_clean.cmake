file(REMOVE_RECURSE
  "CMakeFiles/rtdb_stats.dir/stats/metrics.cpp.o"
  "CMakeFiles/rtdb_stats.dir/stats/metrics.cpp.o.d"
  "CMakeFiles/rtdb_stats.dir/stats/monitor.cpp.o"
  "CMakeFiles/rtdb_stats.dir/stats/monitor.cpp.o.d"
  "CMakeFiles/rtdb_stats.dir/stats/table.cpp.o"
  "CMakeFiles/rtdb_stats.dir/stats/table.cpp.o.d"
  "librtdb_stats.a"
  "librtdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
