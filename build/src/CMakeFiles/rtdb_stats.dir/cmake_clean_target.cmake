file(REMOVE_RECURSE
  "librtdb_stats.a"
)
