# Empty compiler generated dependencies file for rtdb_stats.
# This may be replaced when dependencies are built.
