
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/rtdb_stats.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/rtdb_stats.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/monitor.cpp" "src/CMakeFiles/rtdb_stats.dir/stats/monitor.cpp.o" "gcc" "src/CMakeFiles/rtdb_stats.dir/stats/monitor.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/rtdb_stats.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/rtdb_stats.dir/stats/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
