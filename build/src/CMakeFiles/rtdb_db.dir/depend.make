# Empty dependencies file for rtdb_db.
# This may be replaced when dependencies are built.
