file(REMOVE_RECURSE
  "CMakeFiles/rtdb_db.dir/db/database.cpp.o"
  "CMakeFiles/rtdb_db.dir/db/database.cpp.o.d"
  "CMakeFiles/rtdb_db.dir/db/multiversion.cpp.o"
  "CMakeFiles/rtdb_db.dir/db/multiversion.cpp.o.d"
  "CMakeFiles/rtdb_db.dir/db/resource_manager.cpp.o"
  "CMakeFiles/rtdb_db.dir/db/resource_manager.cpp.o.d"
  "librtdb_db.a"
  "librtdb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
