file(REMOVE_RECURSE
  "librtdb_db.a"
)
