# Empty compiler generated dependencies file for rtdb_sched.
# This may be replaced when dependencies are built.
