file(REMOVE_RECURSE
  "CMakeFiles/rtdb_sched.dir/sched/cpu.cpp.o"
  "CMakeFiles/rtdb_sched.dir/sched/cpu.cpp.o.d"
  "CMakeFiles/rtdb_sched.dir/sched/disk.cpp.o"
  "CMakeFiles/rtdb_sched.dir/sched/disk.cpp.o.d"
  "librtdb_sched.a"
  "librtdb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
