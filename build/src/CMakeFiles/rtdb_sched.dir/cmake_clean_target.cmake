file(REMOVE_RECURSE
  "librtdb_sched.a"
)
