file(REMOVE_RECURSE
  "CMakeFiles/rtdb_net.dir/net/message_server.cpp.o"
  "CMakeFiles/rtdb_net.dir/net/message_server.cpp.o.d"
  "CMakeFiles/rtdb_net.dir/net/network.cpp.o"
  "CMakeFiles/rtdb_net.dir/net/network.cpp.o.d"
  "CMakeFiles/rtdb_net.dir/net/rpc.cpp.o"
  "CMakeFiles/rtdb_net.dir/net/rpc.cpp.o.d"
  "librtdb_net.a"
  "librtdb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
