file(REMOVE_RECURSE
  "librtdb_net.a"
)
