file(REMOVE_RECURSE
  "librtdb_sim.a"
)
