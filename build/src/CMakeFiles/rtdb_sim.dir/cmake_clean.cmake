file(REMOVE_RECURSE
  "CMakeFiles/rtdb_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/rtdb_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/rtdb_sim.dir/sim/process.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/process.cpp.o.d"
  "CMakeFiles/rtdb_sim.dir/sim/random.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/rtdb_sim.dir/sim/time.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/time.cpp.o.d"
  "CMakeFiles/rtdb_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/rtdb_sim.dir/sim/trace.cpp.o.d"
  "librtdb_sim.a"
  "librtdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
