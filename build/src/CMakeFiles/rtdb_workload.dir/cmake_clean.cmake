file(REMOVE_RECURSE
  "CMakeFiles/rtdb_workload.dir/workload/config.cpp.o"
  "CMakeFiles/rtdb_workload.dir/workload/config.cpp.o.d"
  "CMakeFiles/rtdb_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/rtdb_workload.dir/workload/generator.cpp.o.d"
  "librtdb_workload.a"
  "librtdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
