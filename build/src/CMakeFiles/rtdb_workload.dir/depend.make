# Empty dependencies file for rtdb_workload.
# This may be replaced when dependencies are built.
