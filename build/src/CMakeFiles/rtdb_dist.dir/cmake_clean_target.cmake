file(REMOVE_RECURSE
  "librtdb_dist.a"
)
