file(REMOVE_RECURSE
  "CMakeFiles/rtdb_dist.dir/dist/global_ceiling.cpp.o"
  "CMakeFiles/rtdb_dist.dir/dist/global_ceiling.cpp.o.d"
  "CMakeFiles/rtdb_dist.dir/dist/local_ceiling.cpp.o"
  "CMakeFiles/rtdb_dist.dir/dist/local_ceiling.cpp.o.d"
  "CMakeFiles/rtdb_dist.dir/dist/recovery.cpp.o"
  "CMakeFiles/rtdb_dist.dir/dist/recovery.cpp.o.d"
  "CMakeFiles/rtdb_dist.dir/dist/replication.cpp.o"
  "CMakeFiles/rtdb_dist.dir/dist/replication.cpp.o.d"
  "CMakeFiles/rtdb_dist.dir/dist/temporal_view.cpp.o"
  "CMakeFiles/rtdb_dist.dir/dist/temporal_view.cpp.o.d"
  "librtdb_dist.a"
  "librtdb_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
