# Empty dependencies file for rtdb_dist.
# This may be replaced when dependencies are built.
