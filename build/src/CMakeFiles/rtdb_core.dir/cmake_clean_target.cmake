file(REMOVE_RECURSE
  "librtdb_core.a"
)
