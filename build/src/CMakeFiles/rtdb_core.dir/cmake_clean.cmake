file(REMOVE_RECURSE
  "CMakeFiles/rtdb_core.dir/core/experiment.cpp.o"
  "CMakeFiles/rtdb_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/rtdb_core.dir/core/system.cpp.o"
  "CMakeFiles/rtdb_core.dir/core/system.cpp.o.d"
  "librtdb_core.a"
  "librtdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
