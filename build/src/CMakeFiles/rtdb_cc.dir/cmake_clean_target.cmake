file(REMOVE_RECURSE
  "librtdb_cc.a"
)
