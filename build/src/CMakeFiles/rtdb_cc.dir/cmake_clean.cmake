file(REMOVE_RECURSE
  "CMakeFiles/rtdb_cc.dir/cc/access_set.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/access_set.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/controller.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/controller.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/deadlock.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/deadlock.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/hp2pl.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/hp2pl.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/lock_table.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/lock_table.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/pcp.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/pcp.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/pip.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/pip.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/serializability.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/serializability.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/tso.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/tso.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/two_phase.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/two_phase.cpp.o.d"
  "CMakeFiles/rtdb_cc.dir/cc/wait_die.cpp.o"
  "CMakeFiles/rtdb_cc.dir/cc/wait_die.cpp.o.d"
  "librtdb_cc.a"
  "librtdb_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
