# Empty compiler generated dependencies file for rtdb_cc.
# This may be replaced when dependencies are built.
