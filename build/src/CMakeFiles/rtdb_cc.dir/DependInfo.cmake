
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/access_set.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/access_set.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/access_set.cpp.o.d"
  "/root/repo/src/cc/controller.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/controller.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/controller.cpp.o.d"
  "/root/repo/src/cc/deadlock.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/deadlock.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/deadlock.cpp.o.d"
  "/root/repo/src/cc/hp2pl.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/hp2pl.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/hp2pl.cpp.o.d"
  "/root/repo/src/cc/lock_table.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/lock_table.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/lock_table.cpp.o.d"
  "/root/repo/src/cc/pcp.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/pcp.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/pcp.cpp.o.d"
  "/root/repo/src/cc/pip.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/pip.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/pip.cpp.o.d"
  "/root/repo/src/cc/serializability.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/serializability.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/serializability.cpp.o.d"
  "/root/repo/src/cc/tso.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/tso.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/tso.cpp.o.d"
  "/root/repo/src/cc/two_phase.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/two_phase.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/two_phase.cpp.o.d"
  "/root/repo/src/cc/wait_die.cpp" "src/CMakeFiles/rtdb_cc.dir/cc/wait_die.cpp.o" "gcc" "src/CMakeFiles/rtdb_cc.dir/cc/wait_die.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
