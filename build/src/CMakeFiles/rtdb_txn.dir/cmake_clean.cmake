file(REMOVE_RECURSE
  "CMakeFiles/rtdb_txn.dir/txn/manager.cpp.o"
  "CMakeFiles/rtdb_txn.dir/txn/manager.cpp.o.d"
  "CMakeFiles/rtdb_txn.dir/txn/transaction.cpp.o"
  "CMakeFiles/rtdb_txn.dir/txn/transaction.cpp.o.d"
  "CMakeFiles/rtdb_txn.dir/txn/two_phase_commit.cpp.o"
  "CMakeFiles/rtdb_txn.dir/txn/two_phase_commit.cpp.o.d"
  "librtdb_txn.a"
  "librtdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
