file(REMOVE_RECURSE
  "librtdb_txn.a"
)
