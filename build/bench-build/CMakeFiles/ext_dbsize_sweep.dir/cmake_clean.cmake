file(REMOVE_RECURSE
  "../bench/ext_dbsize_sweep"
  "../bench/ext_dbsize_sweep.pdb"
  "CMakeFiles/ext_dbsize_sweep.dir/ext_dbsize_sweep.cpp.o"
  "CMakeFiles/ext_dbsize_sweep.dir/ext_dbsize_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dbsize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
