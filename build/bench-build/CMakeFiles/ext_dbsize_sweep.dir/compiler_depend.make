# Empty compiler generated dependencies file for ext_dbsize_sweep.
# This may be replaced when dependencies are built.
