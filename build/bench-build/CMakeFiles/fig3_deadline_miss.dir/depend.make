# Empty dependencies file for fig3_deadline_miss.
# This may be replaced when dependencies are built.
