file(REMOVE_RECURSE
  "../bench/fig3_deadline_miss"
  "../bench/fig3_deadline_miss.pdb"
  "CMakeFiles/fig3_deadline_miss.dir/fig3_deadline_miss.cpp.o"
  "CMakeFiles/fig3_deadline_miss.dir/fig3_deadline_miss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_deadline_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
