file(REMOVE_RECURSE
  "../bench/ablation_victim_policy"
  "../bench/ablation_victim_policy.pdb"
  "CMakeFiles/ablation_victim_policy.dir/ablation_victim_policy.cpp.o"
  "CMakeFiles/ablation_victim_policy.dir/ablation_victim_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
