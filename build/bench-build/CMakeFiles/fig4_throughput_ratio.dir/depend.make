# Empty dependencies file for fig4_throughput_ratio.
# This may be replaced when dependencies are built.
