# Empty dependencies file for fig5_miss_ratio.
# This may be replaced when dependencies are built.
