file(REMOVE_RECURSE
  "../bench/micro_kernel"
  "../bench/micro_kernel.pdb"
  "CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o"
  "CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
