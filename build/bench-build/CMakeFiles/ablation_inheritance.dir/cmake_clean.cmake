file(REMOVE_RECURSE
  "../bench/ablation_inheritance"
  "../bench/ablation_inheritance.pdb"
  "CMakeFiles/ablation_inheritance.dir/ablation_inheritance.cpp.o"
  "CMakeFiles/ablation_inheritance.dir/ablation_inheritance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
