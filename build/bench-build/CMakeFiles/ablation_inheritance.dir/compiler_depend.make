# Empty compiler generated dependencies file for ablation_inheritance.
# This may be replaced when dependencies are built.
