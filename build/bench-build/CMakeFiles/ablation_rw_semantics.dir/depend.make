# Empty dependencies file for ablation_rw_semantics.
# This may be replaced when dependencies are built.
