
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_rw_semantics.cpp" "bench-build/CMakeFiles/ablation_rw_semantics.dir/ablation_rw_semantics.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_rw_semantics.dir/ablation_rw_semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtdb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
