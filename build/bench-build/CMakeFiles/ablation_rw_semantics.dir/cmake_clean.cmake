file(REMOVE_RECURSE
  "../bench/ablation_rw_semantics"
  "../bench/ablation_rw_semantics.pdb"
  "CMakeFiles/ablation_rw_semantics.dir/ablation_rw_semantics.cpp.o"
  "CMakeFiles/ablation_rw_semantics.dir/ablation_rw_semantics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rw_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
