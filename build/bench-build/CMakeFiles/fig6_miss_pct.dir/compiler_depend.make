# Empty compiler generated dependencies file for fig6_miss_pct.
# This may be replaced when dependencies are built.
