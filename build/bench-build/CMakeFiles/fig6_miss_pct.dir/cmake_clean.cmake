file(REMOVE_RECURSE
  "../bench/fig6_miss_pct"
  "../bench/fig6_miss_pct.pdb"
  "CMakeFiles/fig6_miss_pct.dir/fig6_miss_pct.cpp.o"
  "CMakeFiles/fig6_miss_pct.dir/fig6_miss_pct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_miss_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
