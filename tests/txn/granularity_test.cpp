#include <gtest/gtest.h>

#include "cc/pcp.hpp"
#include "cc/two_phase.hpp"
#include "core/system.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "sched/cpu.hpp"
#include "sched/disk.hpp"
#include "sim/kernel.hpp"
#include "txn/manager.hpp"

namespace rtdb::txn {
namespace {

using sim::Duration;
using sim::TimePoint;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(AccessSetCoarsenTest, MapsObjectsToGranules) {
  auto fine = cc::AccessSet::from_operations({{0, cc::LockMode::kRead},
                                              {3, cc::LockMode::kWrite},
                                              {4, cc::LockMode::kRead},
                                              {9, cc::LockMode::kRead}});
  auto coarse = fine.coarsened(4);
  // Objects 0,3 -> granule 0 (write wins); 4 -> 1; 9 -> 2.
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_TRUE(coarse.writes(0));
  EXPECT_TRUE(coarse.reads(1));
  EXPECT_TRUE(coarse.reads(2));
}

TEST(AccessSetCoarsenTest, GranularityOneIsIdentity) {
  auto fine = cc::AccessSet::reads_then_writes({1, 5}, {7});
  auto same = fine.coarsened(1);
  ASSERT_EQ(same.size(), fine.size());
  for (std::size_t i = 0; i < fine.size(); ++i) {
    EXPECT_EQ(same.operations()[i], fine.operations()[i]);
  }
}

// Two transactions touching different objects in the same granule must
// conflict under coarse locking and not under object locking.
TEST(GranularityTest, CoarseLocksCreateFalseConflicts) {
  auto run = [](std::uint32_t granularity) {
    sim::Kernel k;
    db::Database schema{db::DatabaseConfig{20, 1, db::Placement::kSingleSite}};
    sched::PreemptiveCpu cpu{k, 4};  // plenty of cores: locks decide timing
    sched::IoSubsystem io{k};
    db::ResourceManager rm{k, schema, 0, io, Duration::zero()};
    cc::TwoPhaseLocking cc{k, cc::TwoPhaseLocking::Options{}};
    LocalExecutor executor{
        LocalExecutor::Services{&k, &cpu, &rm, &cc, nullptr},
        LocalExecutor::Costs{tu(10), true, granularity}};
    stats::PerformanceMonitor monitor;
    TransactionManager tm{k, cc, executor, monitor};
    tm.connect_cpu(cpu);
    auto spec = [&](std::uint64_t id, db::ObjectId object) {
      TransactionSpec s;
      s.id = db::TxnId{id};
      s.access = cc::AccessSet::from_operations({{object, cc::LockMode::kWrite}});
      s.arrival = k.now();
      s.deadline = TimePoint::origin() + tu(1000);
      s.priority = sim::Priority{static_cast<std::int64_t>(id), 0};
      return s;
    };
    // Objects 0 and 1 share granule 0 when granularity >= 2.
    tm.submit(spec(1, 0));
    tm.submit(spec(2, 1));
    k.run();
    return monitor.record(db::TxnId{2}).finish.as_units();
  };
  EXPECT_EQ(run(1), 10.0);  // object locks: fully parallel
  EXPECT_EQ(run(4), 20.0);  // granule lock serializes the pair
}

TEST(GranularityTest, SystemRunsSerializablyAtCoarseGranularity) {
  for (const std::uint32_t granularity : {2u, 5u, 10u}) {
    core::SystemConfig cfg;
    cfg.protocol = core::Protocol::kTwoPhasePriority;
    cfg.db_objects = 40;
    cfg.lock_granularity = granularity;
    cfg.record_history = true;
    cfg.workload.transaction_count = 120;
    cfg.workload.size_min = 2;
    cfg.workload.size_max = 6;
    cfg.workload.mean_interarrival = tu(25);
    cfg.workload.slack_min = 10;
    cfg.workload.slack_max = 20;
    cfg.workload.est_time_per_object = tu(4);
    cfg.seed = granularity;
    core::System system{cfg};
    system.run_to_completion();
    EXPECT_EQ(system.metrics().processed, 120u);
    std::string why;
    EXPECT_TRUE(system.history()->conflict_serializable(&why))
        << "granularity " << granularity << ": " << why;
  }
}

TEST(GranularityTest, PcpCeilingsWorkAtGranuleLevel) {
  core::SystemConfig cfg;
  cfg.protocol = core::Protocol::kPriorityCeiling;
  cfg.db_objects = 40;
  cfg.lock_granularity = 8;  // five granules in total: heavy ceiling action
  cfg.workload.transaction_count = 100;
  cfg.workload.size_min = 2;
  cfg.workload.size_max = 4;
  cfg.workload.mean_interarrival = tu(30);
  cfg.workload.slack_min = 15;
  cfg.workload.slack_max = 30;
  cfg.workload.est_time_per_object = tu(4);
  cfg.seed = 9;
  core::System system{cfg};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 100u);
  EXPECT_GT(m.committed, 80u);
  EXPECT_EQ(system.site(0).tm->live_count(), 0u);
}

}  // namespace
}  // namespace rtdb::txn
