// 2PC cooperative termination: a participant whose decision timer fires
// queries the coordinator and its peer participants for the round's
// outcome before falling back to presumed abort, so a lost DecisionMsg (or
// a dead coordinator) no longer aborts a transaction some peer saw commit.

#include <gtest/gtest.h>

#include <map>

#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "txn/two_phase_commit.hpp"

namespace rtdb::txn {
namespace {

using sim::Duration;
using sim::Kernel;

Duration tu(std::int64_t n) { return Duration::units(n); }

// Site 0 plays coordinator (by hand), sites 1 and 2 host participants.
struct Cluster {
  Kernel k;
  net::Network net{k, 3, tu(2)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  net::MessageServer ms2{k, net, 2};
  std::map<net::SiteId, bool> decisions;  // site -> applied decision
  CommitParticipant p1;
  CommitParticipant p2;

  explicit Cluster(CommitParticipant::Options options)
      : p1(ms1, callbacks(1), options), p2(ms2, callbacks(2), options) {
    ms0.start();
    ms1.start();
    ms2.start();
  }

  CommitParticipant::Callbacks callbacks(net::SiteId site) {
    return CommitParticipant::Callbacks{
        [](db::TxnId) { return true; },
        [this, site](db::TxnId, bool commit) { decisions[site] = commit; }};
  }

  void prepare_both(std::uint64_t txn, std::uint64_t epoch) {
    ms0.send(1, PrepareMsg{txn, epoch, 0, {1, 2}});
    ms0.send(2, PrepareMsg{txn, epoch, 0, {1, 2}});
  }
};

TEST(CooperativeTerminationTest, PeerAnswersWhenTheDecisionWasLost) {
  Cluster c{CommitParticipant::Options{tu(20), true, 2}};
  c.prepare_both(9, 1);
  // The commit decision reaches participant 1 only; 2's copy is "lost".
  c.k.schedule_in(tu(10), [&c] { c.ms0.send(1, DecisionMsg{9, 1, true}); });
  c.k.run();
  // 2's decision timer fired, queried 0 (silent: no participant there) and
  // peer 1, and adopted the commit 1 remembered — no blind abort.
  EXPECT_EQ(c.decisions[1], true);
  EXPECT_EQ(c.decisions[2], true);
  EXPECT_EQ(c.p2.termination_queries(), 1u);
  EXPECT_EQ(c.p2.termination_resolutions(), 1u);
  EXPECT_EQ(c.p2.presumed_aborts(), 0u);
}

TEST(CooperativeTerminationTest, AllUncertainFallsBackToPresumedAbort) {
  Cluster c{CommitParticipant::Options{tu(20), true, 2}};
  c.prepare_both(9, 1);
  // No decision is ever sent: both participants query, nobody knows, and
  // after query_rounds silent rounds each presumes abort.
  c.k.run();
  EXPECT_EQ(c.decisions[1], false);
  EXPECT_EQ(c.decisions[2], false);
  EXPECT_EQ(c.p1.termination_queries(), 2u);
  EXPECT_EQ(c.p1.presumed_aborts(), 1u);
  EXPECT_EQ(c.p2.presumed_aborts(), 1u);
  EXPECT_EQ(c.p1.termination_resolutions(), 0u);
}

TEST(CooperativeTerminationTest, OutcomeSourceAnswersForACoLocatedCoordinator) {
  Cluster c{CommitParticipant::Options{tu(20), true, 2}};
  // Participant 1 sits next to a coordinator record that knows round 1 of
  // transaction 9 committed (the DecisionMsg itself died on every link).
  c.p1.set_outcome_source(
      [](std::uint64_t txn, std::uint64_t epoch) -> std::optional<bool> {
        if (txn == 9 && epoch == 1) return true;
        return std::nullopt;
      });
  // No DecisionMsg reaches anyone: participant 1's answer can only come
  // from the source.
  c.prepare_both(9, 1);
  c.k.run();
  EXPECT_EQ(c.decisions[2], true);
  EXPECT_EQ(c.p2.termination_resolutions(), 1u);
  // Participant 1 itself resolves on a later round, once 2 knows.
  EXPECT_EQ(c.decisions[1], true);
  EXPECT_EQ(c.p1.presumed_aborts(), 0u);
}

TEST(CooperativeTerminationTest, SupersededEpochIsReportedAborted) {
  Cluster c{CommitParticipant::Options{tu(20), true, 2}};
  c.prepare_both(9, 1);
  // Participant 1 learns a *newer* round of the same transaction decided:
  // round 1 can only have aborted, and it says so when queried.
  c.k.schedule_in(tu(10), [&c] { c.ms0.send(1, DecisionMsg{9, 2, true}); });
  c.k.run();
  EXPECT_EQ(c.decisions[2], false);
  EXPECT_EQ(c.p2.termination_resolutions(), 1u);
  EXPECT_EQ(c.p2.presumed_aborts(), 0u);
}

TEST(CooperativeTerminationTest, NonCooperativeStillPresumesAbortImmediately) {
  Cluster c{CommitParticipant::Options{tu(20), false, 2}};
  c.prepare_both(9, 1);
  c.k.schedule_in(tu(10), [&c] { c.ms0.send(1, DecisionMsg{9, 1, true}); });
  c.k.run();
  // Without cooperation 2 never asks: the first timer expiry aborts.
  EXPECT_EQ(c.decisions[2], false);
  EXPECT_EQ(c.p2.termination_queries(), 0u);
  EXPECT_EQ(c.p2.presumed_aborts(), 1u);
}

}  // namespace
}  // namespace rtdb::txn
