// Deadline-aware admission control: doomed arrivals are shed at submit
// time (before any attempt burns CPU), a bounded FIFO queue smooths bursts
// past the max_running cap, queue waits past the deadline are honest
// misses, and the per-class response estimate tracks committed responses.
// With admission disabled the manager must behave exactly as before.

#include "txn/manager.hpp"

#include <gtest/gtest.h>

#include "cc/pcp.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "sched/cpu.hpp"
#include "sched/disk.hpp"
#include "sim/kernel.hpp"
#include "stats/metrics.hpp"

namespace rtdb::txn {
namespace {

using sim::Duration;
using sim::TimePoint;

Duration tu(std::int64_t n) { return Duration::units(n); }
TimePoint at(std::int64_t n) { return TimePoint::origin() + tu(n); }

// Single-site PCP system; timings as in manager_test: an n-object write
// transaction takes n*(1tu read I/O + 2tu CPU) + n*1tu commit I/O.
struct Site {
  sim::Kernel k;
  db::Database schema{db::DatabaseConfig{20, 1, db::Placement::kSingleSite}};
  sched::PreemptiveCpu cpu{k};
  sched::IoSubsystem io{k, sched::IoSubsystem::kUnlimited};
  db::ResourceManager rm{k, schema, 0, io, tu(1)};
  cc::PriorityCeiling cc{k, 20u};
  cc::HistoryRecorder history;
  LocalExecutor executor{
      LocalExecutor::Services{&k, &cpu, &rm, &cc, &history},
      LocalExecutor::Costs{tu(2), true}};
  stats::PerformanceMonitor monitor;
  TransactionManager tm;

  explicit Site(AdmissionConfig admission)
      : tm(k, cc, executor, monitor,
           TransactionManager::Options{tu(1), admission}) {
    tm.connect_cpu(cpu);
  }

  TransactionSpec spec(std::uint64_t id, std::vector<cc::Operation> ops,
                       std::int64_t deadline_units) {
    TransactionSpec s;
    s.id = db::TxnId{id};
    s.access = cc::AccessSet::from_operations(std::move(ops));
    s.read_only = s.access.read_only();
    s.arrival = k.now();
    s.deadline = at(deadline_units);
    s.priority = sim::Priority{s.deadline.as_ticks(),
                               static_cast<std::uint32_t>(id)};
    return s;
  }
};

AdmissionConfig enabled_config() {
  AdmissionConfig a;
  a.enabled = true;
  a.initial_estimate_per_object = tu(4);  // the true 1-object response
  return a;
}

TEST(AdmissionTest, DisabledConfigAdmitsEverything) {
  Site s{AdmissionConfig{}};
  // Hopelessly tight deadline: without admission control it is admitted,
  // runs, and misses — the pre-admission behaviour.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 2));
  s.k.run();
  EXPECT_EQ(s.tm.admitted(), 1u);
  EXPECT_EQ(s.tm.shed(), 0u);
  EXPECT_EQ(s.monitor.missed(), 1u);
  EXPECT_EQ(s.monitor.shed(), 0u);
}

TEST(AdmissionTest, ShedsArrivalWithSlackBelowTheEstimate) {
  Site s{enabled_config()};
  // Slack 2tu < estimated 4tu: shed at arrival — no attempt, no watchdog,
  // no deadline miss, nothing ever runs.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 2));
  EXPECT_EQ(s.tm.live_count(), 0u);
  s.k.run();
  EXPECT_EQ(s.tm.shed(), 1u);
  EXPECT_EQ(s.tm.admitted(), 0u);
  EXPECT_EQ(s.tm.deadline_kills(), 0u);
  EXPECT_EQ(s.monitor.missed(), 0u);
  EXPECT_EQ(s.monitor.shed(), 1u);
  ASSERT_NE(s.monitor.find(db::TxnId{1}), nullptr);
  EXPECT_TRUE(s.monitor.find(db::TxnId{1})->shed);
  // Shed transactions are not "processed": they do not poison the miss
  // percentage of admitted work.
  const auto m = stats::Metrics::compute(s.monitor.records(),
                                         s.k.now() - TimePoint::origin());
  EXPECT_EQ(m.processed, 0u);
}

TEST(AdmissionTest, AdmitsWhenSlackCoversTheEstimate) {
  Site s{enabled_config()};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));
  s.k.run();
  EXPECT_EQ(s.tm.admitted(), 1u);
  EXPECT_EQ(s.tm.shed(), 0u);
  EXPECT_EQ(s.monitor.committed(), 1u);
}

TEST(AdmissionTest, BurstPastTheQueueLimitIsShedInArrivalOrder) {
  AdmissionConfig a = enabled_config();
  a.max_running = 1;
  a.queue_limit = 1;
  Site s{a};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));  // runs
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}}, 100));  // queued
  s.tm.submit(s.spec(3, {{2, cc::LockMode::kWrite}}, 100));  // overflow: shed
  EXPECT_EQ(s.tm.admission_queue_depth(), 1u);
  EXPECT_EQ(s.tm.shed(), 1u);
  EXPECT_TRUE(s.monitor.find(db::TxnId{3})->shed);
  s.k.run();
  EXPECT_EQ(s.tm.admitted(), 2u);
  EXPECT_EQ(s.monitor.committed(), 2u);
  EXPECT_EQ(s.tm.admission_queue_depth(), 0u);
}

TEST(AdmissionTest, QueuedTransactionDispatchesWhenASlotFrees) {
  AdmissionConfig a = enabled_config();
  a.max_running = 1;
  Site s{a};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}}, 100));
  s.k.run();
  // Strictly serial despite touching disjoint objects: txn 2 started only
  // when txn 1 committed at t=4 and took its own 4tu.
  EXPECT_EQ(s.monitor.find(db::TxnId{1})->finish, at(4));
  EXPECT_EQ(s.monitor.find(db::TxnId{2})->finish, at(8));
}

TEST(AdmissionTest, QueueWaitPastTheDeadlineIsAnHonestMiss) {
  AdmissionConfig a = enabled_config();
  a.max_running = 1;
  Site s{a};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));
  // Admitted (slack 5 >= estimate 4) but stuck behind txn 1 until t=4;
  // the watchdog fires at t=5 while it is still queued.
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite},
                         {2, cc::LockMode::kWrite}}, 100));
  s.tm.submit(s.spec(3, {{3, cc::LockMode::kWrite}}, 5));
  s.k.run();
  EXPECT_EQ(s.tm.admitted(), 3u);
  EXPECT_EQ(s.monitor.committed(), 2u);
  EXPECT_EQ(s.monitor.missed(), 1u);
  EXPECT_EQ(s.tm.deadline_kills(), 1u);
  EXPECT_TRUE(s.monitor.find(db::TxnId{3})->missed_deadline);
  EXPECT_EQ(s.monitor.find(db::TxnId{3})->finish, at(5));
}

TEST(AdmissionTest, EstimateTracksCommittedResponses) {
  AdmissionConfig a = enabled_config();
  a.initial_estimate_per_object = tu(10);  // deliberately wrong seed
  a.ema_alpha = 0.25;
  Site s{a};
  const TransactionSpec probe = s.spec(99, {{5, cc::LockMode::kWrite}}, 1000);
  EXPECT_EQ(s.tm.estimated_response(probe), tu(10));
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));
  s.k.run();
  // First committed sample of the class replaces the seed outright...
  EXPECT_EQ(s.tm.estimated_response(probe), tu(4));
  // ...and later samples blend in with weight alpha. A second identical
  // transaction responds in 4tu again, so the estimate stays put.
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}}, 1000));
  s.k.run();
  EXPECT_EQ(s.tm.estimated_response(probe), tu(4));
}

TEST(AdmissionTest, AccountingAddsUp) {
  AdmissionConfig a = enabled_config();
  a.max_running = 1;
  a.queue_limit = 1;
  Site s{a};
  for (std::uint64_t id = 1; id <= 6; ++id) {
    s.tm.submit(s.spec(id, {{static_cast<db::ObjectId>(id),
                             cc::LockMode::kWrite}},
                       id <= 2 ? 100 : 6));
  }
  s.k.run();
  EXPECT_EQ(s.tm.admitted() + s.tm.shed(), 6u);
  EXPECT_EQ(s.monitor.processed() + s.monitor.shed(),
            s.monitor.records().size());
  EXPECT_EQ(s.monitor.records().size(), 6u);
}

}  // namespace
}  // namespace rtdb::txn
