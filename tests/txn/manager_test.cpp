#include "txn/manager.hpp"

#include <gtest/gtest.h>

#include "cc/pcp.hpp"
#include "cc/two_phase.hpp"
#include "db/database.hpp"
#include "db/resource_manager.hpp"
#include "sched/cpu.hpp"
#include "sched/disk.hpp"
#include "sim/kernel.hpp"
#include "stats/metrics.hpp"

namespace rtdb::txn {
namespace {

using sim::Duration;
using sim::TimePoint;

Duration tu(std::int64_t n) { return Duration::units(n); }
TimePoint at(std::int64_t n) { return TimePoint::origin() + tu(n); }

// One single-site system with a pluggable controller.
template <typename Controller>
struct Site {
  sim::Kernel k;
  db::Database schema{db::DatabaseConfig{20, 1, db::Placement::kSingleSite}};
  sched::PreemptiveCpu cpu{k};
  sched::IoSubsystem io{k, sched::IoSubsystem::kUnlimited};
  db::ResourceManager rm{k, schema, 0, io, tu(1)};
  Controller cc;
  cc::HistoryRecorder history;
  LocalExecutor executor{
      LocalExecutor::Services{&k, &cpu, &rm, &cc, &history},
      LocalExecutor::Costs{tu(2), true}};
  stats::PerformanceMonitor monitor;
  TransactionManager tm{k, cc, executor, monitor};

  template <typename... Args>
  explicit Site(Args&&... args) : cc(k, std::forward<Args>(args)...) {
    tm.connect_cpu(cpu);
  }

  TransactionSpec spec(std::uint64_t id, std::vector<cc::Operation> ops,
                       std::int64_t deadline_units) {
    TransactionSpec s;
    s.id = db::TxnId{id};
    s.access = cc::AccessSet::from_operations(std::move(ops));
    s.read_only = s.access.read_only();
    s.arrival = k.now();
    s.deadline = at(deadline_units);
    s.priority = sim::Priority{s.deadline.as_ticks(),
                               static_cast<std::uint32_t>(id)};
    return s;
  }
};

using Pcp = Site<cc::PriorityCeiling>;
using TplSite = Site<cc::TwoPhaseLocking>;

TEST(TxnManagerTest, SingleTransactionCommits) {
  Pcp s{20u};
  // 2 objects: per object 1tu read I/O + 2tu CPU; commit writes 2x1tu I/O.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}, {1, cc::LockMode::kWrite}},
                     100));
  s.k.run();
  EXPECT_EQ(s.monitor.committed(), 1u);
  EXPECT_EQ(s.monitor.missed(), 0u);
  const auto* r = s.monitor.find(db::TxnId{1});
  EXPECT_TRUE(r->committed);
  EXPECT_EQ(r->finish, at(8));  // 2*(1+2) + 2*1
  EXPECT_EQ(s.tm.live_count(), 0u);
  EXPECT_TRUE(s.history.conflict_serializable());
}

TEST(TxnManagerTest, ReadOnlyTransactionSkipsCommitWrites) {
  Pcp s{20u};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kRead}}, 100));
  s.k.run();
  EXPECT_EQ(s.monitor.find(db::TxnId{1})->finish, at(3));  // 1 I/O + 2 CPU
  EXPECT_EQ(s.rm.writes(), 0u);
}

TEST(TxnManagerTest, DeadlineMissAbortsAndDisappears) {
  Pcp s{20u};
  // Needs 8tu, deadline at 5: hard miss.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}, {1, cc::LockMode::kWrite}},
                     5));
  s.k.run();
  EXPECT_EQ(s.monitor.committed(), 0u);
  EXPECT_EQ(s.monitor.missed(), 1u);
  const auto* r = s.monitor.find(db::TxnId{1});
  EXPECT_TRUE(r->missed_deadline);
  EXPECT_EQ(r->finish, at(5));  // aborted exactly at the deadline
  EXPECT_EQ(s.tm.live_count(), 0u);
  EXPECT_EQ(s.tm.deadline_kills(), 1u);
  // Its locks were released; protocol state is clean.
  EXPECT_EQ(s.cc.active_transactions(), 0u);
}

TEST(TxnManagerTest, MissedTransactionReleasesLocksForOthers) {
  Pcp s{20u};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 2));  // will miss at 2
  s.tm.submit(s.spec(2, {{0, cc::LockMode::kWrite}}, 100));
  s.k.run();
  EXPECT_EQ(s.monitor.missed(), 1u);
  EXPECT_EQ(s.monitor.committed(), 1u);
  const auto* r2 = s.monitor.find(db::TxnId{2});
  EXPECT_TRUE(r2->committed);
}

TEST(TxnManagerTest, PercentMissedFormula) {
  Pcp s{20u};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 100));
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}}, 1));  // miss
  s.tm.submit(s.spec(3, {{2, cc::LockMode::kWrite}}, 100));
  s.tm.submit(s.spec(4, {{3, cc::LockMode::kWrite}}, 1));  // miss
  s.k.run();
  auto m = stats::Metrics::compute(s.monitor.records(), s.k.now() - TimePoint::origin());
  EXPECT_EQ(m.processed, 4u);
  EXPECT_EQ(m.missed, 2u);
  EXPECT_DOUBLE_EQ(m.pct_missed, 50.0);
}

TEST(TxnManagerTest, DeadlockVictimRestartsAndCommits) {
  TplSite s{cc::TwoPhaseLocking::Options{}};
  // Classic crossing pattern; the victim must restart and both commit.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}, {1, cc::LockMode::kWrite}},
                     500));
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}, {0, cc::LockMode::kWrite}},
                     500));
  s.k.run();
  EXPECT_EQ(s.monitor.committed(), 2u);
  EXPECT_EQ(s.cc.deadlocks(), 1u);
  EXPECT_EQ(s.tm.restarts(), 1u);
  const auto* victim = s.monitor.find(db::TxnId{2});
  const auto* other = s.monitor.find(db::TxnId{1});
  EXPECT_EQ(victim->aborts + other->aborts, 1u);
  EXPECT_TRUE(s.history.conflict_serializable());
}

TEST(TxnManagerTest, RestartBackoffPastDeadlineBecomesMiss) {
  TplSite s{cc::TwoPhaseLocking::Options{}};
  // Both transactions deadlock around t=6..8; give one a deadline so tight
  // that its restart cannot be scheduled.
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}, {1, cc::LockMode::kWrite}},
                     500));
  s.tm.submit(s.spec(2, {{1, cc::LockMode::kWrite}, {0, cc::LockMode::kWrite}},
                     7));
  s.k.run();
  // Whatever the deadlock resolution order, nothing may be left live and
  // every record must be processed.
  EXPECT_EQ(s.tm.live_count(), 0u);
  EXPECT_EQ(s.monitor.processed(), 2u);
  EXPECT_TRUE(s.history.conflict_serializable());
}

// The paper's §3.1 priority-inversion example, end to end with real CPU
// preemption: T3 (low) locks O1; T1 (high) preempts and blocks on O1; T2
// (medium, touching nothing shared) must not be able to delay T1
// indefinitely under the ceiling protocol, because T3 inherits T1's
// priority and outruns T2.
TEST(TxnManagerTest, PriorityInversionBoundedByInheritance) {
  Pcp s{20u};
  // T3 arrives first, locks object 0, computes for a long time.
  TransactionSpec t3 = s.spec(3, {{0, cc::LockMode::kWrite}}, 400);
  t3.priority = sim::Priority{300, 3};  // lowest
  s.tm.submit(t3);
  // T2: medium priority, long CPU burn on an unrelated object, arrives at 1.
  s.k.schedule_in(tu(1), [&s] {
    TransactionSpec t2 = s.spec(
        2, {{5, cc::LockMode::kWrite}, {6, cc::LockMode::kWrite},
            {7, cc::LockMode::kWrite}, {8, cc::LockMode::kWrite}}, 400);
    t2.priority = sim::Priority{200, 2};
    s.tm.submit(t2);
  });
  // T1: highest priority, needs object 0, arrives at 2.
  s.k.schedule_in(tu(2), [&s] {
    TransactionSpec t1 = s.spec(1, {{0, cc::LockMode::kWrite}}, 400);
    t1.priority = sim::Priority{100, 1};
    s.tm.submit(t1);
  });
  s.k.run();
  EXPECT_EQ(s.monitor.committed(), 3u);
  const auto* r1 = s.monitor.find(db::TxnId{1});
  const auto* r2 = s.monitor.find(db::TxnId{2});
  // T1 finished before T2 despite T3 holding its lock: inheritance let T3
  // complete ahead of the medium-priority CPU hog.
  EXPECT_LT(r1->finish.as_units(), r2->finish.as_units());
}

TEST(TxnManagerTest, AbortAllDrainsCleanly) {
  Pcp s{20u};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 1000));
  s.tm.submit(s.spec(2, {{0, cc::LockMode::kWrite}}, 1000));
  s.k.run_until(at(1));  // mid-flight
  s.tm.abort_all();
  EXPECT_EQ(s.tm.live_count(), 0u);
  EXPECT_EQ(s.cc.active_transactions(), 0u);
  s.k.run();  // no stray events blow up
}

TEST(TxnManagerTest, BlockedTimeIsRecorded) {
  Pcp s{20u};
  s.tm.submit(s.spec(1, {{0, cc::LockMode::kWrite}}, 1000));
  s.k.schedule_in(tu(1), [&s] {
    s.tm.submit(s.spec(2, {{0, cc::LockMode::kWrite}}, 1000));
  });
  s.k.run();
  const auto* r2 = s.monitor.find(db::TxnId{2});
  EXPECT_TRUE(r2->committed);
  EXPECT_GT(r2->blocked, Duration::zero());
}

}  // namespace
}  // namespace rtdb::txn
