#include "txn/two_phase_commit.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/kernel.hpp"

namespace rtdb::txn {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Cluster {
  Kernel k;
  net::Network net{k, 3, tu(2)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  net::MessageServer ms2{k, net, 2};
  CommitCoordinator coordinator{ms0};
  std::map<std::pair<net::SiteId, std::uint64_t>, bool> decisions;

  CommitParticipant p1{ms1, callbacks(1, true)};
  CommitParticipant p2{ms2, callbacks(2, true)};

  Cluster() {
    ms0.start();
    ms1.start();
    ms2.start();
  }

  CommitParticipant::Callbacks callbacks(net::SiteId site, bool vote) {
    return CommitParticipant::Callbacks{
        [vote](db::TxnId) { return vote; },
        [this, site](db::TxnId txn, bool commit) {
          decisions[{site, txn.value}] = commit;
        }};
  }
};

TEST(TwoPhaseCommitTest, AllYesCommits) {
  Cluster c;
  bool committed = false;
  double done_at = -1;
  c.k.spawn("coord", [](Cluster& c, bool& committed, double& at) -> Task<void> {
    std::vector<net::SiteId> participants{1, 2};  // gcc12: no braced list in co_await
    committed = co_await c.coordinator.commit(db::TxnId{7}, participants, tu(100));
    at = c.k.now().as_units();
  }(c, committed, done_at));
  c.k.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(done_at, 4.0);  // one parallel prepare/vote round trip
  EXPECT_EQ((c.decisions[{1, 7}]), true);
  EXPECT_EQ((c.decisions[{2, 7}]), true);
  EXPECT_EQ(c.coordinator.aborts(), 0u);
}

struct VetoCluster {
  Kernel k;
  net::Network net{k, 3, tu(2)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  net::MessageServer ms2{k, net, 2};
  CommitCoordinator coordinator{ms0};
  std::map<std::pair<net::SiteId, std::uint64_t>, bool> decisions;
  CommitParticipant yes{ms1, {[](db::TxnId) { return true; },
                              [this](db::TxnId t, bool c) {
                                decisions[{1, t.value}] = c;
                              }}};
  CommitParticipant no{ms2, {[](db::TxnId) { return false; },
                             [this](db::TxnId t, bool c) {
                               decisions[{2, t.value}] = c;
                             }}};
  VetoCluster() {
    ms0.start();
    ms1.start();
    ms2.start();
  }
};

TEST(TwoPhaseCommitTest, VetoAborts) {
  VetoCluster c;
  bool committed = true;
  c.k.spawn("coord", [](VetoCluster& c, bool& committed) -> Task<void> {
    std::vector<net::SiteId> participants{1, 2};
    committed = co_await c.coordinator.commit(db::TxnId{9}, participants, tu(100));
  }(c, committed));
  c.k.run();
  EXPECT_FALSE(committed);
  EXPECT_EQ((c.decisions[{1, 9}]), false);
  EXPECT_EQ((c.decisions[{2, 9}]), false);
  EXPECT_EQ(c.coordinator.aborts(), 1u);
}

TEST(TwoPhaseCommitTest, NoParticipantsIsLocalCommit) {
  Cluster c;
  bool committed = false;
  c.k.spawn("coord", [](Cluster& c, bool& committed) -> Task<void> {
    committed = co_await c.coordinator.commit(db::TxnId{1}, std::vector<net::SiteId>{}, tu(10));
    EXPECT_EQ(c.k.now().as_units(), 0.0);
  }(c, committed));
  c.k.run();
  EXPECT_TRUE(committed);
}

TEST(TwoPhaseCommitTest, DownParticipantTimesOutAsNo) {
  Cluster c;
  c.net.set_operational(2, false);  // site 2 never votes
  bool committed = true;
  double done_at = -1;
  c.k.spawn("coord", [](Cluster& c, bool& committed, double& at) -> Task<void> {
    std::vector<net::SiteId> participants{1, 2};
    committed = co_await c.coordinator.commit(db::TxnId{3}, participants, tu(10));
    at = c.k.now().as_units();
  }(c, committed, done_at));
  c.k.run();
  EXPECT_FALSE(committed);
  EXPECT_EQ(done_at, 10.0);  // waited out the vote timeout
  EXPECT_EQ((c.decisions[{1, 3}]), false);  // survivor told to abort
}

TEST(TwoPhaseCommitTest, DroppedPrepareTimesOutCoordinatorIntoAbort) {
  Cluster c;
  net::FaultSpec drop_all;
  drop_all.drop_rate = 1.0;
  c.net.install_faults(drop_all, sim::RandomStream{5});
  bool committed = true;
  double done_at = -1;
  c.k.spawn("coord", [](Cluster& c, bool& committed, double& at) -> Task<void> {
    std::vector<net::SiteId> participants{1, 2};
    committed = co_await c.coordinator.commit(db::TxnId{4}, participants, tu(10));
    at = c.k.now().as_units();
  }(c, committed, done_at));
  c.k.run();
  EXPECT_FALSE(committed);
  EXPECT_EQ(done_at, 10.0);  // waited out the vote window
  EXPECT_EQ(c.coordinator.vote_timeouts(), 1u);
  EXPECT_EQ(c.coordinator.aborts(), 1u);
  EXPECT_TRUE(c.decisions.empty());  // prepares never arrived
}

TEST(TwoPhaseCommitTest, DuplicatedMessagesDoNotDoubleCountVotes) {
  Cluster c;
  net::FaultSpec dup_all;
  dup_all.dup_rate = 1.0;
  c.net.install_faults(dup_all, sim::RandomStream{5});
  bool committed = false;
  c.k.spawn("coord", [](Cluster& c, bool& committed) -> Task<void> {
    std::vector<net::SiteId> participants{1, 2};
    // Every prepare arrives twice (participants re-vote), every vote
    // arrives twice (the coordinator must count each site once), and every
    // decision arrives twice (participants must apply it idempotently).
    committed = co_await c.coordinator.commit(db::TxnId{6}, participants, tu(100));
  }(c, committed));
  c.k.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ((c.decisions[{1, 6}]), true);
  EXPECT_EQ((c.decisions[{2, 6}]), true);
  EXPECT_EQ(c.coordinator.aborts(), 0u);
}

TEST(TwoPhaseCommitTest, ParticipantPresumesAbortWhenDecisionNeverArrives) {
  Kernel k;
  net::Network net{k, 2, tu(2)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  std::map<std::uint64_t, bool> decisions;
  CommitParticipant participant{
      ms1,
      CommitParticipant::Callbacks{
          [](db::TxnId) { return true; },
          [&decisions](db::TxnId t, bool c) { decisions[t.value] = c; }},
      CommitParticipant::Options{tu(20)}};
  ms0.start();
  ms1.start();
  // A prepare whose coordinator then goes silent (no decision ever sent).
  ms0.send(1, PrepareMsg{11, 1, 0, {}});
  k.run();
  EXPECT_EQ(participant.prepares_handled(), 1u);
  EXPECT_EQ(participant.presumed_aborts(), 1u);
  EXPECT_EQ(decisions[11], false);
}

TEST(TwoPhaseCommitTest, DecisionInTimeCancelsPresumedAbort) {
  Kernel k;
  net::Network net{k, 2, tu(2)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  std::map<std::uint64_t, bool> decisions;
  CommitParticipant participant{
      ms1,
      CommitParticipant::Callbacks{
          [](db::TxnId) { return true; },
          [&decisions](db::TxnId t, bool c) { decisions[t.value] = c; }},
      CommitParticipant::Options{tu(20)}};
  ms0.start();
  ms1.start();
  ms0.send(1, PrepareMsg{12, 1, 0, {}});
  k.schedule_in(tu(10), [&] { ms0.send(1, DecisionMsg{12, 1, true}); });
  k.run();
  EXPECT_EQ(participant.presumed_aborts(), 0u);
  EXPECT_EQ(decisions[12], true);
}

TEST(TwoPhaseCommitTest, SequentialTransactionsDoNotInterfere) {
  Cluster c;
  std::vector<bool> results;
  c.k.spawn("coord", [](Cluster& c, std::vector<bool>& results) -> Task<void> {
    for (std::uint64_t t = 1; t <= 3; ++t) {
      std::vector<net::SiteId> participants{1, 2};
      results.push_back(
          co_await c.coordinator.commit(db::TxnId{t}, participants, tu(100)));
    }
  }(c, results));
  c.k.run();
  EXPECT_EQ(results, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(c.coordinator.rounds(), 3u);
}

}  // namespace
}  // namespace rtdb::txn
