#include "rt/pqlock.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/priority.hpp"

namespace rtdb::rt {
namespace {

TEST(PqSpinLockTest, UncontendedLockUnlock) {
  PqSpinLock lock;
  PqSpinLock::Node node;
  lock.lock(node, sim::Priority{1, 1});
  lock.unlock();
  lock.lock(node, sim::Priority{2, 2});
  lock.unlock();
}

TEST(PqSpinLockTest, GuardIsRaii) {
  PqSpinLock lock;
  { const PqSpinLock::Guard guard{lock, sim::Priority{1, 1}}; }
  PqSpinLock::Node node;
  lock.lock(node, sim::Priority{1, 1});
  lock.unlock();
}

// N threads hammer a shared counter through the lock; any mutual-exclusion
// hole shows up as a lost update (and as a data race under TSan).
TEST(PqSpinLockTest, MutualExclusionUnderContention) {
  PqSpinLock lock;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20'000;
  std::uint64_t counter = 0;  // deliberately non-atomic

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lock, &counter, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        const PqSpinLock::Guard guard{
            lock, sim::Priority{t, static_cast<std::uint32_t>(t)}};
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter,
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// While the holder keeps the lock, waiters of distinct priorities queue
// behind it in worst-case (lowest-priority-first) arrival order; the
// handoff order on unlock must be priority order, not arrival order.
TEST(PqSpinLockTest, HandoffFollowsPriorityOrder) {
  PqSpinLock lock;
  constexpr int kWaiters = 6;

  PqSpinLock::Node holder_node;
  lock.lock(holder_node, sim::Priority{0, 0});

  std::vector<int> order;
  PqSpinLock order_latch;  // guards `order`, separate from the lock under test
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    // Priority: smaller key = higher priority, so arrival keys descend.
    const int key = kWaiters - t;
    threads.emplace_back([&lock, &order, &order_latch, key] {
      PqSpinLock::Node node;
      lock.lock(node, sim::Priority{key, static_cast<std::uint32_t>(key)});
      {
        const PqSpinLock::Guard guard{order_latch, sim::Priority{0, 0}};
        order.push_back(key);
      }
      lock.unlock();
    });
    // Enqueue one at a time so the arrival order is exactly descending.
    while (lock.waiter_count() < static_cast<std::size_t>(t + 1)) {
      std::this_thread::yield();
    }
  }
  lock.unlock();
  for (std::thread& thread : threads) thread.join();

  std::vector<int> expected;
  for (int key = 1; key <= kWaiters; ++key) expected.push_back(key);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace rtdb::rt
