// The election/lease state machine on real OS threads: each site is a
// long-running body on the rt::ThreadBackend, beating on the real clock
// and exchanging views over a mutex-protected bus. Crashing or cutting off
// the manager site must produce a failover on the majority side with a
// clean lease audit — same decision core as the simulation, real timers.
//
// Real-time runs are statistically reproducible only, so assertions stick
// to outcomes (fenced, promoted, adopted, audit-clean), not to orderings
// that depend on scheduler jitter.

#include "dist/election.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "check/monitor.hpp"
#include "rt/thread_backend.hpp"
#include "sim/kernel.hpp"

namespace rtdb::rt {
namespace {

using dist::ElectionState;
using sim::Duration;

constexpr std::uint32_t kSites = 3;
constexpr std::int64_t kIntervalUnits = 20;

struct View {
  net::SiteId from = 0;
  std::uint64_t term = 0;
  net::SiteId manager = 0;
};

// Shared state of one real-threaded election cluster. The single mutex
// covers the mailboxes, the per-site ElectionState machines, and the
// conformance monitor (none of which are thread-safe on their own); the
// timers — the part under test — run outside it, on the backend clock.
struct Cluster {
  sim::Kernel audit_clock;  // timestamps for the trace ring only
  check::ConformanceMonitor monitor{audit_clock};
  dist::LeaseObserver* audit = monitor.lease_observer();

  std::mutex mutex;
  std::vector<ElectionState> states;
  std::vector<std::vector<View>> mailboxes{kSites};
  // Partition script for the partitioned test, advanced by the beats
  // themselves: links touching site 0 are cut during kCut (delivery-time
  // drop, both directions — the symmetric partition). Outcome-driven
  // rather than wall-clock-driven so a starved site thread only delays
  // the phase transitions, never sleeps through one: the cut stays up
  // until the majority has actually promoted AND the isolated lease has
  // actually expired, however long the scheduler takes to run the beats.
  enum class Phase { kPreCut, kCut, kHealed, kDone };
  bool use_phases = false;
  Phase phase = Phase::kPreCut;
  std::array<int, kSites> beat_counts{};

  Cluster() {
    for (net::SiteId site = 0; site < kSites; ++site) {
      states.emplace_back(ElectionState::Options{
          site, kSites, 0, Duration::units(kIntervalUnits)});
    }
  }

  // Mirrors FailoverCoordinator::apply_tick_event / handle_view: translate
  // state-machine events into lease-audit events. Caller holds the mutex.
  void apply(net::SiteId site, ElectionState::Event event,
             std::uint64_t prev_term, bool had_lease) {
    switch (event) {
      case ElectionState::Event::kPromoted:
        audit->on_term_adopted(site, states[site].term());
        audit->on_lease_acquired(site, states[site].term());
        break;
      case ElectionState::Event::kFenced:
        audit->on_lease_released(site, states[site].term());
        break;
      case ElectionState::Event::kUnfenced:
        audit->on_lease_acquired(site, states[site].term());
        break;
      case ElectionState::Event::kAdopted:
        if (had_lease) audit->on_lease_released(site, prev_term);
        if (states[site].term() != prev_term) {
          audit->on_term_adopted(site, states[site].term());
        }
        break;
      case ElectionState::Event::kNone:
        break;
    }
  }

  // One beat of site `self`: broadcast our view, drain the mailbox, tick,
  // then advance the partition script. Returns the phase after the beat.
  Phase beat(ThreadBackend& backend, net::SiteId self) {
    const sim::TimePoint now = backend.now();
    const std::scoped_lock lock{mutex};
    const bool partitioned = phase == Phase::kCut;
    ElectionState& me = states[self];
    for (net::SiteId peer = 0; peer < kSites; ++peer) {
      if (peer == self) continue;
      if (partitioned && (self == 0 || peer == 0)) continue;
      mailboxes[peer].push_back(View{self, me.term(), me.manager()});
    }
    std::vector<View> inbox;
    inbox.swap(mailboxes[self]);
    for (const View& view : inbox) {
      if (partitioned && (self == 0 || view.from == 0)) continue;
      const std::uint64_t prev_term = me.term();
      const bool had_lease = me.lease_held();
      apply(self, me.observe(view.from, view.term, view.manager, now),
            prev_term, had_lease);
    }
    const std::uint64_t prev_term = me.term();
    const bool had_lease = me.lease_held();
    apply(self, me.tick(now), prev_term, had_lease);
    if (!use_phases) return Phase::kDone;
    ++beat_counts[self];
    switch (phase) {
      case Phase::kPreCut:
        // Everyone has seen the initial manager alive: drop the link.
        if (std::ranges::all_of(beat_counts, [](int n) { return n >= 2; })) {
          phase = Phase::kCut;
        }
        break;
      case Phase::kCut:
        // Heal only once both cut-side outcomes have really happened.
        if (states[1].is_manager() && states[0].lease_expiries() >= 1) {
          phase = Phase::kHealed;
        }
        break;
      case Phase::kHealed:
        if (states[0].manager() == 1 &&
            states[0].term() == states[1].term() &&
            !states[0].lease_held()) {
          phase = Phase::kDone;
        }
        break;
      case Phase::kDone:
        break;
    }
    return phase;
  }
};

// Runs the cluster: site 0 is the initial manager; `site0_beats` bounds
// how many beats site 0 lives (simulated crash), the others run `beats`.
void run_cluster(Cluster& cluster, ThreadBackend& backend, int beats,
                 int site0_beats) {
  {
    const std::scoped_lock lock{cluster.mutex};
    for (net::SiteId site = 0; site < kSites; ++site) {
      cluster.states[site].reset(backend.now());
    }
    cluster.states[0].acquire_initial_lease();
    cluster.audit->on_lease_acquired(0, 0);
  }
  for (net::SiteId site = 0; site < kSites; ++site) {
    const int budget = site == 0 ? site0_beats : beats;
    backend.spawn("site-" + std::to_string(site),
                  [&cluster, &backend, site, budget] {
                    for (int i = 0; i < budget; ++i) {
                      backend.advance(Duration::units(kIntervalUnits));
                      cluster.beat(backend, site);
                    }
                  });
  }
  backend.run();
}

TEST(ElectionThreadTest, CrashedManagerFailsOverAuditClean) {
  Cluster cluster;
  ThreadBackend backend{{kSites, 50'000}};
  // Site 0 stops beating after 3 beats — a fail-stop crash. Its lease dies
  // with it.
  constexpr int kCrashBeats = 3;
  run_cluster(cluster, backend, /*beats=*/15, /*site0_beats=*/kCrashBeats);
  {
    const std::scoped_lock lock{cluster.mutex};
    // The surviving majority elected site 1 within the election window.
    EXPECT_TRUE(cluster.states[1].is_manager());
    EXPECT_GE(cluster.states[1].promotions(), 1u);
    EXPECT_GE(cluster.states[1].term(), 1u);
    EXPECT_EQ(cluster.states[2].manager(), 1u);
    EXPECT_EQ(cluster.states[2].term(), cluster.states[1].term());
    // Real heartbeat timers drove it all; no lease rule was violated.
    EXPECT_EQ(cluster.monitor.violations(), 0u)
        << cluster.monitor.format_reports();
  }
  EXPECT_EQ(backend.body_exceptions(), 0u);
}

TEST(ElectionThreadTest, PartitionedManagerFencesAndMinorityAdoptsOnHeal) {
  Cluster cluster;
  cluster.use_phases = true;
  ThreadBackend backend{{kSites, 50'000}};
  {
    const std::scoped_lock lock{cluster.mutex};
    for (net::SiteId site = 0; site < kSites; ++site) {
      cluster.states[site].reset(backend.now());
    }
    cluster.states[0].acquire_initial_lease();
    cluster.audit->on_lease_acquired(0, 0);
  }
  // Each site beats until the partition script completes (cut → majority
  // promoted and isolated lease expired on the real clock → heal →
  // minority adopted), bounded only as a hang backstop. The real timers
  // still decide *when* each transition fires; the script decides the
  // order, so scheduler starvation stretches the test instead of letting
  // a site sleep through the cut.
  constexpr int kMaxBeats = 400;
  for (net::SiteId site = 0; site < kSites; ++site) {
    backend.spawn("site-" + std::to_string(site), [&cluster, &backend, site] {
      for (int i = 0; i < kMaxBeats; ++i) {
        backend.advance(Duration::units(kIntervalUnits));
        if (cluster.beat(backend, site) == Cluster::Phase::kDone) break;
      }
    });
  }
  backend.run();
  {
    const std::scoped_lock lock{cluster.mutex};
    // The script ran to completion within the beat budget.
    EXPECT_EQ(cluster.phase, Cluster::Phase::kDone);
    // The isolated manager's lease timer expired on the real clock...
    EXPECT_GE(cluster.states[0].lease_expiries(), 1u);
    // ...the majority elected a successor...
    EXPECT_TRUE(cluster.states[1].is_manager());
    EXPECT_GE(cluster.states[1].promotions(), 1u);
    // ...and after the heal the minority adopted the higher term.
    EXPECT_EQ(cluster.states[0].manager(), 1u);
    EXPECT_EQ(cluster.states[0].term(), cluster.states[1].term());
    EXPECT_FALSE(cluster.states[0].lease_held());
    EXPECT_EQ(cluster.monitor.violations(), 0u)
        << cluster.monitor.format_reports();
  }
  EXPECT_EQ(backend.body_exceptions(), 0u);
}

}  // namespace
}  // namespace rtdb::rt
