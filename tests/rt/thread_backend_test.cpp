#include "rt/thread_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/config.hpp"
#include "rt/runner.hpp"
#include "rt/sim_backend.hpp"
#include "sim/kernel.hpp"

namespace rtdb::rt {
namespace {

// Small but contended: 40 transactions over 20 objects with sizes up to 4
// keeps the lock table busy without making the test slow. unit_nanos is
// tightened so the whole run is a few milliseconds of wall clock.
core::SystemConfig small_config(core::Protocol protocol) {
  core::SystemConfig config;
  config.protocol = protocol;
  config.scheme = core::DistScheme::kSingleSite;
  config.db_objects = 20;
  config.workload.transaction_count = 40;
  config.workload.mean_interarrival = sim::Duration::units(6);
  config.workload.size_min = 1;
  config.workload.size_max = 4;
  config.workload.read_only_fraction = 0.25;
  config.seed = 7;
  config.conformance_check = true;
  return config;
}

TEST(ThreadBackendTest, ClockAdvancesByAtLeastTheRequestedSpan) {
  ThreadBackend backend{{2, 10'000}};
  const sim::TimePoint before = backend.now();
  backend.advance(sim::Duration::units(5));
  const sim::TimePoint after = backend.now();
  EXPECT_GE(after - before, sim::Duration::units(5));
}

TEST(ThreadBackendTest, RunDrainsSpawnedBodies) {
  ThreadBackend backend{{4, 10'000}};
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    backend.spawn("body", [&ran] { ran.fetch_add(1); });
  }
  backend.run();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(backend.body_exceptions(), 0u);
}

TEST(ThreadBackendTest, SpawnedBodyCanSpawnMoreWork) {
  ThreadBackend backend{{2, 10'000}};
  std::atomic<int> ran{0};
  backend.spawn("parent", [&backend, &ran] {
    ran.fetch_add(1);
    backend.spawn("child", [&ran] { ran.fetch_add(1); });
  });
  backend.run();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadBackendTest, WakeBeforeBlockLatches) {
  ThreadBackend backend{{2, 10'000}};
  WaitToken token;
  backend.wake(token);
  // Latched wake: returns true immediately, no timeout needed.
  EXPECT_TRUE(backend.block(token, sim::TimePoint::max()));
}

TEST(ThreadBackendTest, BlockTimesOutAtDeadline) {
  ThreadBackend backend{{2, 10'000}};
  WaitToken token;
  const sim::TimePoint deadline = backend.now() + sim::Duration::units(3);
  EXPECT_FALSE(backend.block(token, deadline));
  EXPECT_GE(backend.now(), deadline);
}

TEST(ThreadBackendTest, BlockedBodyIsWokenFromAnotherBody) {
  ThreadBackend backend{{2, 10'000}};
  WaitToken token;
  std::atomic<bool> woken{false};
  backend.spawn("sleeper", [&backend, &token, &woken] {
    woken.store(backend.block(token, sim::TimePoint::max()));
  });
  backend.spawn("waker", [&backend, &token] {
    backend.advance(sim::Duration::units(2));
    backend.wake(token);
  });
  backend.run();
  EXPECT_TRUE(woken.load());
}

TEST(SimBackendTest, SpawnAndAdvanceDriveTheKernel) {
  sim::Kernel kernel;
  SimBackend backend{kernel};
  EXPECT_EQ(backend.name(), "sim");
  int ran = 0;
  backend.spawn("body", [&ran] { ++ran; });
  backend.run();
  EXPECT_EQ(ran, 1);
  const sim::TimePoint before = backend.now();
  backend.advance(sim::Duration::units(7));
  EXPECT_EQ(backend.now() - before, sim::Duration::units(7));
}

TEST(SimBackendTest, WakeBeforeBlockLatches) {
  sim::Kernel kernel;
  SimBackend backend{kernel};
  WaitToken token;
  backend.wake(token);
  EXPECT_TRUE(backend.block(token, sim::TimePoint::max()));
}

// The acceptance gate of the rt subsystem: every protocol family completes
// a small contended workload on real threads with the conformance audit on
// and reports zero violations — every transaction is accounted for
// (committed or missed), the table ends quiescent, and no body escaped
// with an exception.
class ThreadRunnerAllProtocols
    : public ::testing::TestWithParam<core::Protocol> {};

TEST_P(ThreadRunnerAllProtocols, CompletesAuditCleanWithoutViolations) {
  const core::SystemConfig config = small_config(GetParam());
  const RtRunResult result = run_threaded(config, {2, config.rt_unit_nanos});

  EXPECT_EQ(result.records.size(), config.workload.transaction_count);
  for (const stats::TxnRecord& record : result.records) {
    EXPECT_TRUE(record.processed);
    EXPECT_TRUE(record.committed || record.missed_deadline);
  }
  // Forward progress: the table actually granted locks (commit counts
  // depend on physical timing, so only the weak form is asserted — a
  // sanitizer-slowed run misses more deadlines but still acquires locks).
  EXPECT_GT(result.locks.grants, 0u);
  EXPECT_EQ(result.body_exceptions, 0u);
  EXPECT_EQ(result.locks.audit_violations, 0u)
      << result.quiescence_failure;
  EXPECT_EQ(result.conformance_violations, 0u)
      << result.quiescence_failure;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ThreadRunnerAllProtocols,
    ::testing::Values(core::Protocol::kTwoPhase,
                      core::Protocol::kTwoPhasePriority,
                      core::Protocol::kPriorityCeiling,
                      core::Protocol::kPriorityCeilingExclusive,
                      core::Protocol::kPriorityInheritance,
                      core::Protocol::kHighPriority,
                      core::Protocol::kTimestampOrdering,
                      core::Protocol::kWaitDie,
                      core::Protocol::kWoundWait),
    [](const ::testing::TestParamInfo<core::Protocol>& info) {
      std::string name = core::to_string(info.param);
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

// The runner refuses configurations that need simulation-only machinery
// instead of silently mis-running them.
TEST(ThreadRunnerTest, RejectsDistributedSchemes) {
  core::SystemConfig config = small_config(core::Protocol::kPriorityCeiling);
  config.scheme = core::DistScheme::kGlobalCeiling;
  EXPECT_THROW(run_threaded(config, {2, config.rt_unit_nanos}),
               std::invalid_argument);
}

TEST(ThreadRunnerTest, RejectsPeriodicSources) {
  core::SystemConfig config = small_config(core::Protocol::kPriorityCeiling);
  config.workload.periodic.push_back(
      workload::PeriodicSource{sim::Duration::units(10)});
  EXPECT_THROW(run_threaded(config, {2, config.rt_unit_nanos}),
               std::invalid_argument);
}

// Lock granularity > 1 exercises the coarsened access sets end to end.
TEST(ThreadRunnerTest, CoarseGranularityRunsAuditClean) {
  core::SystemConfig config = small_config(core::Protocol::kTwoPhase);
  config.lock_granularity = 5;
  const RtRunResult result = run_threaded(config, {2, config.rt_unit_nanos});
  EXPECT_EQ(result.conformance_violations, 0u) << result.quiescence_failure;
}

}  // namespace
}  // namespace rtdb::rt
