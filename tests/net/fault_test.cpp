#include "net/fault.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;
using sim::Kernel;

Duration tu(std::int64_t n) { return Duration::units(n); }

FaultSpec message_spec(double drop, double dup, std::int64_t jitter) {
  FaultSpec spec;
  spec.drop_rate = drop;
  spec.dup_rate = dup;
  spec.jitter = tu(jitter);
  return spec;
}

TEST(FaultSpecTest, ActivityHelpers) {
  FaultSpec zero;
  EXPECT_FALSE(zero.message_faults());
  EXPECT_FALSE(zero.active());

  EXPECT_TRUE(message_spec(0.1, 0, 0).message_faults());
  EXPECT_TRUE(message_spec(0, 0.1, 0).message_faults());
  EXPECT_TRUE(message_spec(0, 0, 3).message_faults());

  FaultSpec crash_only;
  crash_only.crashes.push_back(FaultSpec::Crash{1, tu(10), tu(5)});
  EXPECT_FALSE(crash_only.message_faults());
  EXPECT_TRUE(crash_only.active());
}

TEST(FaultInjectorTest, IdenticalSeedsYieldIdenticalSchedules) {
  const FaultSpec spec = message_spec(0.2, 0.2, 7);
  FaultInjector a{spec, sim::RandomStream{42}};
  FaultInjector b{spec, sim::RandomStream{42}};
  for (int i = 0; i < 2000; ++i) {
    const FaultInjector::Decision da = a.next();
    const FaultInjector::Decision db = b.next();
    ASSERT_EQ(da.drop, db.drop) << "message " << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << "message " << i;
    ASSERT_EQ(da.extra_delay, db.extra_delay) << "message " << i;
    ASSERT_EQ(da.duplicate_delay, db.duplicate_delay) << "message " << i;
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_GT(a.drops(), 0u);       // the spec actually dropped something
  EXPECT_GT(a.duplicates(), 0u);  // and duplicated something
}

TEST(FaultInjectorTest, DifferentSeedsYieldDifferentSchedules) {
  const FaultSpec spec = message_spec(0.5, 0, 0);
  FaultInjector a{spec, sim::RandomStream{1}};
  FaultInjector b{spec, sim::RandomStream{2}};
  bool diverged = false;
  for (int i = 0; i < 256 && !diverged; ++i) {
    diverged = a.next().drop != b.next().drop;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, JitterIsBoundedBySpec) {
  const FaultSpec spec = message_spec(0, 0, 5);
  FaultInjector injector{spec, sim::RandomStream{3}};
  for (int i = 0; i < 500; ++i) {
    const FaultInjector::Decision d = injector.next();
    EXPECT_FALSE(d.drop);
    EXPECT_GE(d.extra_delay, Duration::zero());
    EXPECT_LE(d.extra_delay, tu(5));
  }
}

TEST(NetworkFaultTest, DropRateOneLosesEveryInterSiteMessage) {
  Kernel k;
  Network net{k, 2, tu(1)};
  net.install_faults(message_spec(1.0, 0, 0), sim::RandomStream{9});
  for (int i = 0; i < 10; ++i) net.send(Envelope{0, 1, std::any{i}, nullptr});
  k.run();
  EXPECT_EQ(net.messages_sent(), 10u);
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.fault_drops(), 10u);
  EXPECT_EQ(net.inbox(1).queued(), 0u);
}

TEST(NetworkFaultTest, DupRateOneDeliversEveryMessageTwice) {
  Kernel k;
  Network net{k, 2, tu(1)};
  net.install_faults(message_spec(0, 1.0, 0), sim::RandomStream{9});
  for (int i = 0; i < 5; ++i) net.send(Envelope{0, 1, std::any{i}, nullptr});
  k.run();
  EXPECT_EQ(net.messages_sent(), 5u);
  EXPECT_EQ(net.messages_delivered(), 10u);
  EXPECT_EQ(net.fault_duplicates(), 5u);
  EXPECT_EQ(net.inbox(1).queued(), 10u);
}

TEST(NetworkFaultTest, IntraSiteMessagesBypassTheFaultModel) {
  Kernel k;
  Network net{k, 2, Duration::zero()};
  net.install_faults(message_spec(1.0, 0, 0), sim::RandomStream{9});
  net.send(Envelope{0, 0, std::any{1}, nullptr});
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.fault_drops(), 0u);
}

TEST(NetworkFaultTest, ZeroSpecNeverConsultsTheInjector) {
  Kernel k;
  Network net{k, 2, tu(1)};
  net.install_faults(FaultSpec{}, sim::RandomStream{9});
  for (int i = 0; i < 8; ++i) net.send(Envelope{0, 1, std::any{i}, nullptr});
  k.run();
  EXPECT_EQ(net.messages_delivered(), 8u);
  EXPECT_EQ(net.fault_drops(), 0u);
  EXPECT_EQ(net.fault_duplicates(), 0u);
}

TEST(NetworkFaultTest, CrashedSiteSendsNothing) {
  Kernel k;
  Network net{k, 2, tu(1)};
  net.set_operational(0, false);
  net.send(Envelope{0, 1, std::any{1}, nullptr});
  k.run();
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

}  // namespace
}  // namespace rtdb::net
