#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::ProcessId;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Harness {
  Kernel k;
  Network net{k, 2, tu(2)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  RpcClient client{ms0};

  Harness() {
    ms0.start();
    ms1.start();
  }
};

TEST(RpcTest, ImmediateResponseRoundTrip) {
  Harness h;
  RpcServer server{h.ms1, [](SiteId from, std::any request, RpcServer::Responder respond) {
    EXPECT_EQ(from, 0u);
    respond(std::any{std::any_cast<int>(request) * 2});
  }};
  int got = 0;
  double at = -1;
  h.k.spawn("caller", [](Harness& h, int& got, double& at) -> Task<void> {
    auto resp = co_await h.client.call(1, std::any{21});
    EXPECT_TRUE(resp.has_value());  // coroutine: EXPECT, not ASSERT
    if (resp) got = std::any_cast<int>(*resp);
    at = h.k.now().as_units();
  }(h, got, at));
  h.k.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(at, 4.0);  // two one-way delays
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(h.client.pending_calls(), 0u);
}

TEST(RpcTest, DeferredResponderRepliesLater) {
  Harness h;
  RpcServer::Responder saved;
  RpcServer server{h.ms1, [&](SiteId, std::any, RpcServer::Responder respond) {
    saved = std::move(respond);  // grant deferred, like a blocked lock
  }};
  double at = -1;
  h.k.spawn("caller", [](Harness& h, double& at) -> Task<void> {
    auto resp = co_await h.client.call(1, std::any{1});
    EXPECT_TRUE(resp.has_value());
    at = h.k.now().as_units();
  }(h, at));
  h.k.schedule_in(tu(50), [&] { saved(std::any{std::string{"granted"}}); });
  h.k.run();
  EXPECT_EQ(at, 52.0);  // request at 2, grant sent at 50, +2 delay
}

TEST(RpcTest, TimeoutReturnsNullopt) {
  Harness h;
  RpcServer server{h.ms1, [](SiteId, std::any, RpcServer::Responder) {
    // never responds
  }};
  bool timed_out = false;
  h.k.spawn("caller", [](Harness& h, bool& timed_out) -> Task<void> {
    auto resp = co_await h.client.call(1, std::any{1}, Duration::units(10));
    timed_out = !resp.has_value();
    EXPECT_EQ(h.k.now().as_units(), 10.0);
  }(h, timed_out));
  h.k.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(h.client.pending_calls(), 0u);
}

TEST(RpcTest, LateResponseAfterTimeoutIsDropped) {
  Harness h;
  RpcServer::Responder saved;
  RpcServer server{h.ms1, [&](SiteId, std::any, RpcServer::Responder respond) {
    saved = std::move(respond);
  }};
  h.k.spawn("caller", [](Harness& h) -> Task<void> {
    auto resp = co_await h.client.call(1, std::any{1}, Duration::units(5));
    EXPECT_FALSE(resp.has_value());
  }(h));
  h.k.schedule_in(tu(30), [&] { saved(std::any{7}); });  // long after timeout
  h.k.run();
  EXPECT_EQ(h.client.pending_calls(), 0u);  // no leak, no crash
  // The straggler is recognized as the answer to a timed-out call (not an
  // unknown correlation) and counted — it was discarded, not misdelivered.
  EXPECT_EQ(h.client.late_responses(), 1u);
}

TEST(RpcTest, KilledCallerResponseIsNotCountedLate) {
  Harness h;
  RpcServer::Responder saved;
  RpcServer server{h.ms1, [&](SiteId, std::any, RpcServer::Responder respond) {
    saved = std::move(respond);
  }};
  ProcessId caller = h.k.spawn("caller", [](Harness& h) -> Task<void> {
    co_await h.client.call(1, std::any{1});
    ADD_FAILURE() << "caller must not complete";
  }(h));
  h.k.schedule_in(tu(4), [&] { h.k.kill(caller); });
  h.k.schedule_in(tu(30), [&] { saved(std::any{7}); });
  h.k.run();
  // A killed caller abandoned the call; only timeout-expired correlations
  // count as late responses.
  EXPECT_EQ(h.client.late_responses(), 0u);
  EXPECT_EQ(h.client.pending_calls(), 0u);
}

TEST(RpcTest, KilledCallerDeregisters) {
  Harness h;
  RpcServer server{h.ms1, [](SiteId, std::any, RpcServer::Responder) {}};
  ProcessId caller = h.k.spawn("caller", [](Harness& h) -> Task<void> {
    co_await h.client.call(1, std::any{1});
    ADD_FAILURE() << "caller must not complete";
  }(h));
  h.k.schedule_in(tu(4), [&] { h.k.kill(caller); });
  h.k.run();
  EXPECT_EQ(h.client.pending_calls(), 0u);
}

TEST(RpcTest, ConcurrentCallsCorrelateCorrectly) {
  Harness h;
  RpcServer server{h.ms1, [](SiteId, std::any request, RpcServer::Responder respond) {
    respond(std::any{std::any_cast<int>(request) + 100});
  }};
  std::vector<int> results(3, 0);
  for (int i = 0; i < 3; ++i) {
    h.k.spawn("caller", [](Harness& h, std::vector<int>& results, int i) -> Task<void> {
      auto resp = co_await h.client.call(1, std::any{i});
      EXPECT_TRUE(resp.has_value());
      if (resp) results[i] = std::any_cast<int>(*resp);
    }(h, results, i));
  }
  h.k.run();
  EXPECT_EQ(results, (std::vector<int>{100, 101, 102}));
}

}  // namespace
}  // namespace rtdb::net
