// Link partitions: scheduled cuts drop messages at send time, nest across
// overlapping partitions, never consume a fault-injector draw, and heal
// back to a fully connected network.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/message_server.hpp"
#include "net/network.hpp"
#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct NoteMsg {
  int value = 0;
};

struct Mesh {
  sim::Kernel k;
  Network net{k, 3, tu(2)};
  std::vector<std::unique_ptr<MessageServer>> servers;
  std::vector<std::string> got;  // "to<from:value"

  Mesh() {
    for (SiteId id = 0; id < 3; ++id) {
      servers.push_back(std::make_unique<MessageServer>(k, net, id));
      servers.back()->on<NoteMsg>([this, id](SiteId from, NoteMsg m) {
        got.push_back(std::to_string(id) + "<" + std::to_string(from) + ":" +
                      std::to_string(m.value));
      });
      servers.back()->start();
    }
  }
};

TEST(PartitionTest, SymmetricCutDropsBothDirectionsAndHeals) {
  Mesh m;
  const FaultSpec::Partition p{{0}, tu(0), Duration::zero(), true};
  m.net.apply_partition(p);
  m.servers[0]->send(1, NoteMsg{1});  // cut outbound
  m.servers[1]->send(0, NoteMsg{2});  // cut inbound
  m.servers[1]->send(2, NoteMsg{3});  // intra-majority link untouched
  m.k.run();
  EXPECT_EQ(m.got, (std::vector<std::string>{"2<1:3"}));
  EXPECT_EQ(m.net.partition_drops(), 2u);

  m.net.lift_partition(p);
  m.servers[0]->send(1, NoteMsg{4});
  m.servers[1]->send(0, NoteMsg{5});
  m.k.run();
  EXPECT_EQ(m.got.size(), 3u);
  EXPECT_EQ(m.net.partition_drops(), 2u);
}

TEST(PartitionTest, AsymmetricCutDropsOutboundOnly) {
  Mesh m;
  const FaultSpec::Partition p{{0}, tu(0), Duration::zero(), false};
  m.net.apply_partition(p);
  m.servers[0]->send(1, NoteMsg{1});  // group's outbound: cut
  m.servers[1]->send(0, NoteMsg{2});  // inbound: still delivered
  m.k.run();
  EXPECT_EQ(m.got, (std::vector<std::string>{"0<1:2"}));
  EXPECT_EQ(m.net.partition_drops(), 1u);
}

TEST(PartitionTest, InFlightDeliveriesOutrunTheCut) {
  // The cut stops new sends; a message already past the "router" arrives.
  Mesh m;
  m.servers[0]->send(1, NoteMsg{1});  // delivery scheduled for t=2
  m.k.schedule_in(tu(1), [&m] {
    m.net.cut_link(0, 1);
    m.servers[0]->send(1, NoteMsg{2});  // sent after the cut: dropped
  });
  m.k.run();
  EXPECT_EQ(m.got, (std::vector<std::string>{"1<0:1"}));
  EXPECT_EQ(m.net.partition_drops(), 1u);
}

TEST(PartitionTest, OverlappingCutsNestAndHealLast) {
  Mesh m;
  m.net.cut_link(0, 1);
  m.net.cut_link(0, 1);  // second partition covering the same link
  m.net.heal_link(0, 1);
  EXPECT_TRUE(m.net.link_cut(0, 1));  // one partition still holds it cut
  m.net.heal_link(0, 1);
  EXPECT_FALSE(m.net.link_cut(0, 1));
}

TEST(PartitionTest, PartitionedRunWithInjectorReplaysBitIdentically) {
  // Partitions are pure data (no RNG draw of their own) and cut sends
  // short-circuit before the injector, so a run combining both fault kinds
  // is still a pure function of the seed.
  auto run = [] {
    Mesh m;
    FaultSpec spec;
    spec.drop_rate = 0.5;
    m.net.install_faults(spec, sim::RandomStream{9}.fork(0xFA));
    m.net.cut_link(0, 1);
    for (int i = 0; i < 50; ++i) {
      m.servers[0]->send(1, NoteMsg{i});  // cut
      m.servers[0]->send(2, NoteMsg{i});  // through the injector
    }
    m.k.run();
    return std::tuple{m.net.fault_drops(), m.net.partition_drops(), m.got};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rtdb::net
