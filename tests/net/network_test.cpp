#include "net/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(NetworkTest, DeliversAfterLinkDelay) {
  Kernel k;
  Network net{k, 2, tu(5)};
  double arrived_at = -1;
  int got = 0;
  k.spawn("rx", [](Kernel& k, Network& net, double& at, int& got) -> Task<void> {
    auto env = co_await net.inbox(1).receive();
    at = k.now().as_units();
    got = std::any_cast<int>(env->body);
  }(k, net, arrived_at, got));
  net.send(Envelope{0, 1, std::any{42}, nullptr});
  k.run();
  EXPECT_EQ(arrived_at, 5.0);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkTest, PerLinkDelaysAreDirectional) {
  Kernel k;
  Network net{k, 2};
  net.set_delay(0, 1, tu(3));
  net.set_delay(1, 0, tu(7));
  EXPECT_EQ(net.delay(0, 1), tu(3));
  EXPECT_EQ(net.delay(1, 0), tu(7));
  EXPECT_EQ(net.delay(0, 0), Duration::zero());
}

TEST(NetworkTest, SetAllDelaysSkipsSelfLoops) {
  Kernel k;
  Network net{k, 3};
  net.set_all_delays(tu(2));
  for (SiteId a = 0; a < 3; ++a) {
    for (SiteId b = 0; b < 3; ++b) {
      EXPECT_EQ(net.delay(a, b), a == b ? Duration::zero() : tu(2));
    }
  }
}

TEST(NetworkTest, MessageOrderPreservedPerLink) {
  Kernel k;
  Network net{k, 2, tu(4)};
  std::vector<int> got;
  k.spawn("rx", [](Network& net, std::vector<int>& got) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      got.push_back(std::any_cast<int>((co_await net.inbox(1).receive())->body));
    }
  }(net, got));
  for (int i = 0; i < 3; ++i) net.send(Envelope{0, 1, std::any{i}, nullptr});
  k.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(NetworkTest, DownSiteDropsAtDeliveryTime) {
  Kernel k;
  Network net{k, 2, tu(5)};
  net.send(Envelope{0, 1, std::any{1}, nullptr});
  k.schedule_in(tu(2), [&] { net.set_operational(1, false); });
  k.run();
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(NetworkTest, SiteRecoveryDeliversLaterMessages) {
  Kernel k;
  Network net{k, 2, tu(1)};
  net.set_operational(1, false);
  net.send(Envelope{0, 1, std::any{1}, nullptr});  // lost
  k.schedule_in(tu(5), [&] {
    net.set_operational(1, true);
    net.send(Envelope{0, 1, std::any{2}, nullptr});  // delivered
  });
  int got = 0;
  k.spawn("rx", [](Network& net, int& got) -> Task<void> {
    got = std::any_cast<int>((co_await net.inbox(1).receive())->body);
  }(net, got));
  k.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, IntraSiteSendBypassesDelay) {
  Kernel k;
  Network net{k, 2, tu(9)};
  bool got = false;
  k.spawn("rx", [](Kernel& k, Network& net, bool& got) -> Task<void> {
    co_await net.inbox(0).receive();
    EXPECT_EQ(k.now().as_units(), 0.0);
    got = true;
  }(k, net, got));
  k.spawn("tx", [](Kernel& k, Network& net) -> Task<void> {
    co_await k.yield();
    net.send(Envelope{0, 0, std::any{1}, nullptr});
  }(k, net));
  k.run();
  EXPECT_TRUE(got);
}

TEST(NetworkTest, BroadcastReachesEveryOtherSite) {
  Kernel k;
  Network net{k, 3, tu(2)};
  int got[3] = {};
  auto rx = [](Network& net, int* got, SiteId site) -> Task<void> {
    auto env = co_await net.inbox(site).receive();
    got[site] = std::any_cast<int>(env->body);
  };
  k.spawn("rx1", rx(net, got, 1));
  k.spawn("rx2", rx(net, got, 2));
  net.broadcast(0, std::any{9});
  k.run();
  EXPECT_EQ(got[0], 0);  // sender excluded
  EXPECT_EQ(got[1], 9);
  EXPECT_EQ(got[2], 9);
  EXPECT_EQ(net.messages_sent(), 2u);
}

}  // namespace
}  // namespace rtdb::net
