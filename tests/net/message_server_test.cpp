#include "net/message_server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Ping {
  int value = 0;
};
struct Pong {
  int value = 0;
};

TEST(MessageServerTest, DispatchesByPayloadType) {
  Kernel k;
  Network net{k, 2, tu(1)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  std::vector<int> pings;
  std::vector<int> pongs;
  ms1.on<Ping>([&](SiteId from, Ping p) {
    EXPECT_EQ(from, 0u);
    pings.push_back(p.value);
  });
  ms1.on<Pong>([&](SiteId, Pong p) { pongs.push_back(p.value); });
  ms1.start();
  ms0.send(1, Ping{10});
  ms0.send(1, Pong{20});
  ms0.send(1, Ping{30});
  k.run();
  EXPECT_EQ(pings, (std::vector<int>{10, 30}));
  EXPECT_EQ(pongs, (std::vector<int>{20}));
  EXPECT_EQ(ms1.dispatched(), 3u);
}

TEST(MessageServerTest, UnhandledTypesAreCountedNotFatal) {
  Kernel k;
  Network net{k, 2};
  MessageServer ms1{k, net, 1};
  ms1.start();
  net.send(Envelope{0, 1, std::any{std::string{"mystery"}}, nullptr});
  k.run();
  EXPECT_EQ(ms1.unhandled(), 1u);
  EXPECT_EQ(ms1.dispatched(), 0u);
}

TEST(MessageServerTest, SyncSendCompletesOnRetrieval) {
  Kernel k;
  Network net{k, 2, tu(4)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  ms1.on<Ping>([](SiteId, Ping) {});
  ms1.start();
  bool delivered = false;
  double resumed_at = -1;
  k.spawn("tx", [](Kernel& k, MessageServer& ms0, bool& delivered,
                   double& at) -> Task<void> {
    delivered = co_await ms0.send_sync(1, Ping{1}, Duration::units(100));
    at = k.now().as_units();
  }(k, ms0, delivered, resumed_at));
  k.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(resumed_at, 4.0);  // one-way delay
}

TEST(MessageServerTest, SyncSendTimesOutWhenSiteDown) {
  Kernel k;
  Network net{k, 2, tu(4)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  ms1.start();
  net.set_operational(1, false);
  bool delivered = true;
  double resumed_at = -1;
  k.spawn("tx", [](Kernel& k, MessageServer& ms0, bool& delivered,
                   double& at) -> Task<void> {
    delivered = co_await ms0.send_sync(1, Ping{1}, Duration::units(10));
    at = k.now().as_units();
  }(k, ms0, delivered, resumed_at));
  k.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(resumed_at, 10.0);  // unblocked by the timeout mechanism
}

TEST(MessageServerTest, StopHaltsDispatchQueueRemains) {
  Kernel k;
  Network net{k, 2, tu(1)};
  MessageServer ms1{k, net, 1};
  int handled = 0;
  ms1.on<Ping>([&](SiteId, Ping) { ++handled; });
  ms1.start();
  net.send(Envelope{0, 1, std::any{Ping{1}}, nullptr});
  k.schedule_in(tu(2), [&] { ms1.stop(); });
  k.schedule_in(tu(3), [&] { net.send(Envelope{0, 1, std::any{Ping{2}}, nullptr}); });
  k.run();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(net.inbox(1).queued(), 1u);  // second message parked in inbox
}

TEST(MessageServerTest, StartIsIdempotent) {
  Kernel k;
  Network net{k, 1};
  MessageServer ms{k, net, 0};
  ms.start();
  ms.start();
  EXPECT_TRUE(ms.running());
  k.run();
}

}  // namespace
}  // namespace rtdb::net
