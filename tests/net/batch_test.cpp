// BatchChannel: coalesced same-destination control frames over the
// reliable channel. Disabled (zero window) it must be an exact passthrough
// registering no frame handler; enabled it must coalesce a window's sends
// into one frame per pathway, preserve enqueue order, flush on demand
// before a blocking reply, and lose its queues with the site on a crash.

#include <gtest/gtest.h>

#include <vector>

#include "net/batch.hpp"
#include "net/message_server.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct PingMsg {
  int value = 0;
};
struct PongMsg {
  int value = 0;
};

struct Pair {
  sim::Kernel k;
  Network net{k, 2, tu(2)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  ReliableChannel ch0;
  ReliableChannel ch1;
  BatchChannel b0;
  BatchChannel b1;
  std::vector<int> pings;
  std::vector<int> pongs;

  explicit Pair(Duration window, bool reliable_enabled = false)
      : ch0(ms0, ReliableChannel::Options{reliable_enabled, 5, tu(8)},
            sim::RandomStream{7}.fork(0xCA00)),
        ch1(ms1, ReliableChannel::Options{reliable_enabled, 5, tu(8)},
            sim::RandomStream{7}.fork(0xCA01)),
        b0(ms0, &ch0, BatchChannel::Options{window}),
        b1(ms1, &ch1, BatchChannel::Options{window}) {
    b1.on<PingMsg>([this](SiteId, PingMsg m) { pings.push_back(m.value); });
    b1.on<PongMsg>([this](SiteId, PongMsg m) { pongs.push_back(m.value); });
    ms0.start();
    ms1.start();
  }
};

TEST(BatchChannelTest, ZeroWindowIsAnExactPassthrough) {
  Pair p{Duration::zero()};
  EXPECT_FALSE(p.b0.enabled());
  for (int i = 1; i <= 3; ++i) p.b0.send(1, PingMsg{i});
  p.b0.send_raw(1, PongMsg{9});
  p.k.run();
  EXPECT_EQ(p.pings, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(p.pongs, (std::vector<int>{9}));
  // Each payload crossed the network on its own — no frames, no counters.
  EXPECT_EQ(p.net.messages_sent(), 4u);
  EXPECT_EQ(p.b0.batched_messages(), 0u);
  EXPECT_EQ(p.b0.batch_flushes(), 0u);
}

TEST(BatchChannelTest, WindowCoalescesSameDestinationSends) {
  Pair p{tu(1)};
  for (int i = 1; i <= 5; ++i) p.b0.send(1, PingMsg{i});
  p.k.run();
  // Five payloads, one frame, order preserved.
  EXPECT_EQ(p.pings, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(p.net.messages_sent(), 1u);
  EXPECT_EQ(p.b0.batched_messages(), 5u);
  EXPECT_EQ(p.b0.batch_flushes(), 1u);
}

TEST(BatchChannelTest, ReliableAndRawPathwaysFrameSeparately) {
  Pair p{tu(1), /*reliable_enabled=*/true};
  p.b0.send(1, PingMsg{1});
  p.b0.send_raw(1, PongMsg{2});
  p.b0.send(1, PingMsg{3});
  p.k.run();
  EXPECT_EQ(p.pings, (std::vector<int>{1, 3}));
  EXPECT_EQ(p.pongs, (std::vector<int>{2}));
  // One reliable frame (wrapped + acked) and one raw frame: the raw
  // pathway must not inherit the reliable frame's retransmission state.
  EXPECT_EQ(p.b0.batched_messages(), 3u);
  EXPECT_EQ(p.b0.batch_flushes(), 2u);
  EXPECT_EQ(p.net.messages_sent(), 3u);  // reliable frame + ack + raw frame
}

TEST(BatchChannelTest, FlushSendsTheWindowEarly) {
  Pair p{tu(50)};
  p.b0.send(1, PingMsg{1});
  p.b0.send(1, PingMsg{2});
  p.b0.flush(1);
  p.k.run_until(sim::TimePoint::origin() + tu(10));
  // Delivered long before the 50tu window would have expired.
  EXPECT_EQ(p.pings, (std::vector<int>{1, 2}));
  EXPECT_EQ(p.b0.batch_flushes(), 1u);
}

TEST(BatchChannelTest, IntraSiteSendsBypassTheWindow) {
  Pair p{tu(50)};
  std::vector<int> local;
  p.b0.on<PongMsg>([&local](SiteId, PongMsg m) { local.push_back(m.value); });
  p.b0.send(0, PongMsg{7});
  p.k.run();
  EXPECT_EQ(local, (std::vector<int>{7}));
  EXPECT_EQ(p.b0.batched_messages(), 0u);
}

TEST(BatchChannelTest, CrashDropsQueuedFrames) {
  Pair p{tu(50)};
  p.b0.send(1, PingMsg{1});
  p.b0.on_crash();
  p.k.run();
  // The queued frame was volatile state; nothing arrives, nothing flushes.
  EXPECT_TRUE(p.pings.empty());
  EXPECT_EQ(p.b0.batch_flushes(), 0u);
}

TEST(BatchChannelTest, DeterministicReplay) {
  auto run = [](std::vector<int>* out) {
    Pair p{tu(2)};
    for (int i = 0; i < 8; ++i) {
      p.b0.send(1, PingMsg{i});
      if (i % 3 == 0) p.b0.send_raw(1, PongMsg{i});
    }
    p.k.run();
    *out = p.pings;
    out->insert(out->end(), p.pongs.begin(), p.pongs.end());
  };
  std::vector<int> a, b;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rtdb::net
