// ReliableChannel: acked, retransmitting delivery of control messages over
// the at-most-once network. Disabled it must be a verbatim passthrough;
// enabled it must survive drops, suppress duplicates, bound its retries,
// and draw every backoff from its own stream (deterministic replay).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/message_server.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/kernel.hpp"

namespace rtdb::net {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct PingMsg {
  int value = 0;
};

struct Pair {
  sim::Kernel k;
  Network net{k, 2, tu(2)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  ReliableChannel ch0;
  ReliableChannel ch1;
  std::vector<int> got;

  explicit Pair(bool enabled, std::uint64_t seed = 7)
      : ch0(ms0, ReliableChannel::Options{enabled, 5, tu(8)},
            sim::RandomStream{seed}.fork(0xCA00)),
        ch1(ms1, ReliableChannel::Options{enabled, 5, tu(8)},
            sim::RandomStream{seed}.fork(0xCA01)) {
    ch1.on<PingMsg>([this](SiteId, PingMsg m) { got.push_back(m.value); });
    ms0.start();
    ms1.start();
  }
};

TEST(ReliableChannelTest, DisabledChannelIsAVerbatimPassthrough) {
  Pair p{false};
  p.ch0.send(1, PingMsg{42});
  p.k.run();
  ASSERT_EQ(p.got.size(), 1u);
  EXPECT_EQ(p.got[0], 42);
  // No wrapping, no ack traffic, nothing in flight.
  EXPECT_EQ(p.net.messages_sent(), 1u);
  EXPECT_EQ(p.ch0.in_flight(), 0u);
  EXPECT_EQ(p.ch0.retransmissions(), 0u);
}

TEST(ReliableChannelTest, EnabledChannelAcksEverySend) {
  Pair p{true};
  for (int i = 1; i <= 3; ++i) p.ch0.send(1, PingMsg{i});
  p.k.run();
  EXPECT_EQ(p.got, (std::vector<int>{1, 2, 3}));
  // Each wrapped message plus its ack crossed the network exactly once.
  EXPECT_EQ(p.net.messages_sent(), 6u);
  EXPECT_EQ(p.ch0.in_flight(), 0u);
  EXPECT_EQ(p.ch0.retransmissions(), 0u);
  EXPECT_EQ(p.ch1.duplicates_suppressed(), 0u);
}

TEST(ReliableChannelTest, RetransmissionDeliversThroughDrops) {
  Pair p{true};
  FaultSpec spec;
  spec.drop_rate = 0.3;
  p.net.install_faults(spec, sim::RandomStream{11}.fork(0xFA));
  for (int i = 0; i < 20; ++i) p.ch0.send(1, PingMsg{i});
  p.k.run();
  // Every payload arrived exactly once despite the 30% loss.
  std::vector<int> sorted = p.got;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(20);
  for (int i = 0; i < 20; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(sorted, expected);
  EXPECT_GT(p.ch0.retransmissions(), 0u);
  EXPECT_GT(p.ch0.backoff_wait(), Duration::zero());
  EXPECT_EQ(p.ch0.in_flight(), 0u);  // acked or given up, never leaked
}

TEST(ReliableChannelTest, DuplicatedDeliveriesAreSuppressed) {
  Pair p{true};
  FaultSpec spec;
  spec.dup_rate = 1.0;  // the network delivers every message twice
  p.net.install_faults(spec, sim::RandomStream{3}.fork(0xFA));
  for (int i = 0; i < 5; ++i) p.ch0.send(1, PingMsg{i});
  p.k.run();
  EXPECT_EQ(p.got.size(), 5u);  // payloads delivered exactly once
  EXPECT_GT(p.ch1.duplicates_suppressed(), 0u);
}

TEST(ReliableChannelTest, GivesUpAfterTheRetryBudget) {
  Pair p{true};
  p.net.set_operational(1, false);
  p.ch0.send(1, PingMsg{1});
  p.k.run();
  EXPECT_TRUE(p.got.empty());
  EXPECT_EQ(p.ch0.retransmissions(), 5u);  // retransmit_max
  EXPECT_EQ(p.ch0.gave_up(), 1u);
  EXPECT_EQ(p.ch0.in_flight(), 0u);
  EXPECT_GT(p.ch0.backoff_wait(), Duration::zero());
}

TEST(ReliableChannelTest, CrashClearsPendingAndTimers) {
  Pair p{true};
  p.net.set_operational(1, false);
  p.ch0.send(1, PingMsg{1});
  EXPECT_EQ(p.ch0.in_flight(), 1u);
  p.k.schedule_in(tu(1), [&p] { p.ch0.on_crash(); });
  p.k.run();  // drains: the retransmission timer was cancelled
  EXPECT_EQ(p.ch0.in_flight(), 0u);
  EXPECT_EQ(p.ch0.retransmissions(), 0u);
  EXPECT_EQ(p.ch0.gave_up(), 0u);
}

TEST(ReliableChannelTest, BackoffSaturatesAtTheCapInsteadOfOverflowing) {
  // Regression: with a large retry budget, doubling the backoff per attempt
  // overflows the int64 tick count around attempt 60 and schedules a
  // negative delay. The wait must saturate at backoff_max instead.
  sim::Kernel k;
  Network net{k, 2, tu(2)};
  MessageServer ms0{k, net, 0};
  MessageServer ms1{k, net, 1};
  constexpr int kRetries = 80;  // far past the overflow point
  ReliableChannel ch0{ms0,
                      ReliableChannel::Options{true, kRetries, tu(8), tu(256)},
                      sim::RandomStream{7}.fork(0xCA00)};
  ms0.start();
  ms1.start();
  net.set_operational(1, false);
  ch0.send(1, PingMsg{1});
  k.run();  // terminates: every armed delay was positive and finite
  EXPECT_EQ(ch0.retransmissions(), static_cast<std::uint64_t>(kRetries));
  EXPECT_EQ(ch0.gave_up(), 1u);
  EXPECT_EQ(ch0.in_flight(), 0u);
  // Every wait is at most backoff_max plus one base of jitter.
  const Duration bound = (tu(256) + tu(8)) * (kRetries + 1);
  EXPECT_GT(ch0.backoff_wait(), Duration::zero());
  EXPECT_LE(ch0.backoff_wait(), bound);
}

TEST(ReliableChannelTest, RetransmissionScheduleIsAPureFunctionOfTheSeed) {
  auto run = [] {
    Pair p{true, 21};
    FaultSpec spec;
    spec.drop_rate = 0.4;
    p.net.install_faults(spec, sim::RandomStream{21}.fork(0xFA));
    for (int i = 0; i < 10; ++i) p.ch0.send(1, PingMsg{i});
    p.k.run();
    return std::tuple{p.ch0.retransmissions(), p.ch0.backoff_wait(),
                      p.ch0.gave_up(), p.got};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rtdb::net
