#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

// Calendar-queue-specific coverage: ordering across bucket and year
// boundaries, same-timestamp FIFO stability through resizes, the
// grow/shrink rebuild paths, and the heap fallback for distributions the
// calendar handles badly. The basic contract (cancel semantics, stale
// ids, size accounting) lives in event_queue_test.cpp.
namespace rtdb::sim {
namespace {

TimePoint at(std::int64_t units) {
  return TimePoint::origin() + Duration::units(units);
}

// Pops everything and asserts strictly ascending pop times.
std::vector<TimePoint> drain(EventQueue& q) {
  std::vector<TimePoint> times;
  while (auto ev = q.pop()) {
    if (!times.empty()) EXPECT_GE(ev->time, times.back());
    times.push_back(ev->time);
    ev->callback();
  }
  EXPECT_TRUE(q.empty());
  return times;
}

TEST(CalendarQueueTest, OrdersAcrossBucketAndYearBoundaries) {
  EventQueue q;
  // Times straddling bucket edges (the initial width is ~1Ki ticks) and
  // spanning several wrap-arounds of the initial 64-bucket ring, scheduled
  // in a scrambled but deterministic order.
  std::vector<std::int64_t> times;
  for (std::int64_t base : {0, 1023, 1024, 1025, 65535, 65536, 131071}) {
    for (std::int64_t delta : {0, 1, 511, 512}) {
      times.push_back(base + delta);
    }
  }
  std::vector<std::int64_t> scrambled;
  for (std::size_t i = 0; i < times.size(); ++i) {
    scrambled.push_back(times[(i * 17) % times.size()]);
  }
  std::vector<std::int64_t> fired;
  for (std::int64_t t : scrambled) {
    q.schedule(at(t), [&fired, t] { fired.push_back(t); });
  }
  drain(q);
  std::vector<std::int64_t> expected = scrambled;
  std::stable_sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
}

TEST(CalendarQueueTest, SameBucketDifferentYearPopsEarlierFirst) {
  EventQueue q;
  // 100 and 100 + 64Ki land in the same bucket of the initial ring but a
  // whole year apart; the earlier year must still pop first.
  std::vector<int> order;
  q.schedule(at(100 + 65536), [&] { order.push_back(2); });
  q.schedule(at(100), [&] { order.push_back(1); });
  drain(q);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CalendarQueueTest, SameTimestampFifoSurvivesResizes) {
  EventQueue q;
  // 300 equal-time events interleaved with enough spread events to force
  // several growth rebuilds; the equal-time group must still fire in
  // schedule order afterwards.
  std::vector<int> order;
  for (int i = 0; i < 300; ++i) {
    q.schedule(at(5000), [&order, i] { order.push_back(i); });
    q.schedule(at(10000 + i * 77), [] {});
    q.schedule(at(i * 13), [] {});
  }
  EXPECT_GE(q.rebuilds(), 1u);
  drain(q);
  std::vector<int> expected;
  for (int i = 0; i < 300; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(CalendarQueueTest, GrowsWithPopulationAndShrinksOnDrain) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(at(i * 37), [] {}));
  }
  // The ring starts at 64 buckets and resizes to track the population.
  EXPECT_GE(q.rebuilds(), 2u);
  EXPECT_GE(q.bucket_count(), 512u);
  EXPECT_FALSE(q.heap_fallback());
  drain(q);
  // Draining shrinks the ring back to its floor.
  EXPECT_EQ(q.bucket_count(), 64u);
}

TEST(CalendarQueueTest, RebuildPurgesCancelledEntries) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(q.schedule(at(i * 37), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  EXPECT_EQ(q.size(), 100u);
  // Keep scheduling to trigger a growth rebuild with the dead entries
  // still stored; they must be dropped, not resurrected.
  for (int i = 0; i < 400; ++i) {
    q.schedule(at(10000 + i * 37), [] {});
  }
  EXPECT_GE(q.rebuilds(), 1u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(q.pending(ids[i]), i % 2 == 1);
  }
  EXPECT_EQ(drain(q).size(), 500u);
}

TEST(CalendarQueueTest, PathologicalSpacingFallsBackToHeap) {
  EventQueue q;
  // One pending event at a time, each a million ticks past the previous:
  // every pop scans an entire empty year, so the health check must first
  // try a rebuild and then abandon the calendar for the heap.
  std::int64_t t = 0;
  int fired = 0;
  for (int i = 0; i < 6000; ++i) {
    t += std::int64_t{1} << 20;
    q.schedule(at(t), [&fired] { ++fired; });
    auto ev = q.pop();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->time, at(t));
    ev->callback();
  }
  EXPECT_TRUE(q.heap_fallback());
  EXPECT_EQ(fired, 6000);

  // The fallback keeps the full ordering contract, including FIFO among
  // equal timestamps.
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule(at(t + 100), [&order, i] { order.push_back(i); });
  }
  q.schedule(at(t + 50), [&order] { order.push_back(-1); });
  drain(q);
  std::vector<int> expected{-1};
  for (int i = 0; i < 16; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
  EXPECT_TRUE(q.heap_fallback());  // permanent once entered
}

}  // namespace
}  // namespace rtdb::sim
