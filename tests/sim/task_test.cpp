#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/kernel.hpp"

namespace rtdb::sim {
namespace {

TEST(TaskTest, ValueTaskReturnsResult) {
  Kernel k;
  int got = 0;
  auto produce = []() -> Task<int> { co_return 42; };
  k.spawn("p", [](int& got, auto produce) -> Task<void> {
    got = co_await produce();
  }(got, produce));
  k.run();
  EXPECT_EQ(got, 42);
}

TEST(TaskTest, MoveOnlyResult) {
  Kernel k;
  int got = 0;
  auto produce = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(7);
  };
  k.spawn("p", [](int& got, auto produce) -> Task<void> {
    auto p = co_await produce();
    got = *p;
  }(got, produce));
  k.run();
  EXPECT_EQ(got, 7);
}

TEST(TaskTest, DeepNestingPropagatesValuesAndSuspensions) {
  Kernel k;
  int got = 0;
  // Recursively nested coroutines, each suspending once.
  struct Nest {
    static Task<int> down(Kernel& k, int depth) {
      co_await k.delay(Duration::units(1));
      if (depth == 0) co_return 1;
      co_return 1 + co_await down(k, depth - 1);
    }
  };
  k.spawn("p", [](Kernel& k, int& got) -> Task<void> {
    got = co_await Nest::down(k, 20);
    EXPECT_EQ(k.now().as_units(), 21.0);  // each level delayed 1tu
  }(k, got));
  k.run();
  EXPECT_EQ(got, 21);
}

TEST(TaskTest, ExceptionFromValueTaskPropagates) {
  Kernel k;
  bool caught = false;
  auto produce = []() -> Task<int> {
    throw std::runtime_error("no value");
    co_return 0;
  };
  k.spawn("p", [](bool& caught, auto produce) -> Task<void> {
    try {
      (void)co_await produce();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(caught, produce));
  k.run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, MoveTransfersOwnership) {
  auto body = []() -> Task<void> { co_return; };
  Task<void> a = body();
  EXPECT_TRUE(a.valid());
  Task<void> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(b.valid());
  Task<void> c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(c.valid());
}

TEST(TaskTest, DestroyingUnstartedTaskIsSafe) {
  bool ran = false;
  {
    auto body = [](bool& ran) -> Task<void> {
      ran = true;
      co_return;
    };
    Task<void> t = body(ran);
    // never started, never awaited
  }
  EXPECT_FALSE(ran);
}

TEST(TaskTest, CancellationUnwindsNestedFrames) {
  Kernel k;
  int destroyed = 0;
  struct Guard {
    int& n;
    ~Guard() { ++n; }
  };
  auto inner = [](Kernel& k, int& destroyed) -> Task<void> {
    Guard g{destroyed};
    co_await k.delay(Duration::units(100));
  };
  ProcessId victim =
      k.spawn("victim", [](Kernel& k, int& destroyed, auto inner) -> Task<void> {
        Guard g{destroyed};
        co_await inner(k, destroyed);
      }(k, destroyed, inner));
  k.spawn("killer", [](Kernel& k, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(1));
    k.kill(victim);
  }(k, victim));
  k.run();
  EXPECT_EQ(destroyed, 2);  // both frames' locals destroyed on unwind
}

}  // namespace
}  // namespace rtdb::sim
