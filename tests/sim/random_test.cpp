#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rtdb::sim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  RandomStream a{42};
  RandomStream b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  RandomStream a{1};
  RandomStream b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, DoubleInUnitInterval) {
  RandomStream r{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformIntRespectsBoundsAndCoversRange) {
  RandomStream r{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear in 1000 draws
}

TEST(RandomTest, UniformIntDegenerateRange) {
  RandomStream r{13};
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(RandomTest, UniformIntRoughlyUniform) {
  RandomStream r{17};
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[r.uniform_int(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RandomTest, ExponentialMeanConverges) {
  RandomStream r{23};
  constexpr int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
}

TEST(RandomTest, ExponentialDurationPositive) {
  RandomStream r{29};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exponential_duration(Duration::units(10)), Duration::zero());
  }
}

TEST(RandomTest, BernoulliProportion) {
  RandomStream r{31};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
  RandomStream r2{37};
  EXPECT_FALSE(r2.bernoulli(0.0));
}

TEST(RandomTest, SampleWithoutReplacementIsDistinctAndInRange) {
  RandomStream r{41};
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = r.sample_without_replacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RandomTest, SampleFullPopulationIsPermutation) {
  RandomStream r{43};
  auto sample = r.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RandomTest, SampleCoversPopulationUniformly) {
  RandomStream r{47};
  int counts[10] = {};
  for (int trial = 0; trial < 10000; ++trial) {
    for (auto v : r.sample_without_replacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 3000, 300);
  }
}

TEST(RandomTest, ForkIsIndependentOfParentDraws) {
  RandomStream a{99};
  RandomStream b{99};
  (void)a.next_u64();  // advance parent a only
  RandomStream fa = a.fork(5);
  RandomStream fb = b.fork(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
}

TEST(RandomTest, ForksWithDifferentIdsDiffer) {
  RandomStream a{99};
  RandomStream f1 = a.fork(1);
  RandomStream f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace rtdb::sim
