#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtdb::sim {
namespace {

TimePoint at(std::int64_t units) {
  return TimePoint::origin() + Duration::units(units);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (auto ev = q.pop()) ev->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (auto ev = q.pop()) ev->callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(at(1), [&] { fired = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventId a = q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId a = q.schedule(at(1), [] {});
  q.schedule(at(5), [] {});
  q.cancel(a);
  ASSERT_TRUE(q.next_time().has_value());
  EXPECT_EQ(*q.next_time(), at(5));
}

TEST(EventQueueTest, StaleIdAfterPopIsRejected) {
  EventQueue q;
  EventId a = q.schedule(at(1), [] {});
  auto ev = q.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.cancel(a));
  // Slot reuse must not resurrect the old id.
  EventId b = q.schedule(at(2), [] {});
  EXPECT_FALSE(q.pending(a));
  EXPECT_TRUE(q.pending(b));
}

TEST(EventQueueTest, InvalidIdIsHarmless) {
  EventQueue q;
  EXPECT_FALSE(q.pending(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(at(i % 17), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  std::int64_t last = -1;
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->time.as_ticks(), last);
    last = ev->time.as_ticks();
    ev->callback();
  }
  EXPECT_EQ(fired, 500);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace rtdb::sim
