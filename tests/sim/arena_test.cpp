#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/arena.hpp"
#include "sim/frame_pool.hpp"
#include "sim/task.hpp"

// The attempt arena and the coroutine frame pool both promise the same
// thing: steady-state reuse with no per-operation heap traffic, and a
// clean handover back to the global heap on destruction. The whole suite
// runs under ASan/LSan in CI, so "reset/recycling leaks nothing" is
// enforced by the sanitizer, not just asserted here.
namespace rtdb::sim {
namespace {

TEST(ArenaTest, ResetReusesTheSameMemory) {
  Arena arena;
  void* first = arena.allocate(128);
  std::memset(first, 0xab, 128);
  arena.reset();
  void* again = arena.allocate(128);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(ArenaTest, SteadyStateAllocatesNoNewChunks) {
  Arena arena{512};
  // First pass grows the arena; every later pass of the same shape must
  // live entirely in the retained chunks.
  for (int pass = 0; pass < 100; ++pass) {
    for (int i = 0; i < 16; ++i) {
      auto span = arena.make_array<std::uint64_t>(16);
      span[0] = static_cast<std::uint64_t>(i);
    }
    if (pass > 0) EXPECT_EQ(arena.bytes_reserved(), 2048u) << "pass " << pass;
    arena.reset();
  }
}

TEST(ArenaTest, OversizeRequestGetsADedicatedChunk) {
  Arena arena{256};
  auto big = arena.make_array<std::byte>(10'000);
  EXPECT_EQ(big.size(), 10'000u);
  std::memset(big.data(), 0x5a, big.size());
  // The oversize chunk is retained and reused after a reset too.
  arena.reset();
  auto again = arena.make_array<std::byte>(10'000);
  EXPECT_EQ(big.data(), again.data());
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.allocate(1, 1);
  void* p = arena.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  auto doubles = arena.make_array<double>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double),
            0u);
}

TEST(ArenaTest, ValueInitializesArrays) {
  Arena arena;
  // Dirty the memory, reset, and re-carve: make_array must still hand out
  // zeroed elements.
  auto dirty = arena.make_array<std::uint32_t>(64);
  for (auto& v : dirty) v = 0xdeadbeef;
  arena.reset();
  auto clean = arena.make_array<std::uint32_t>(64);
  for (std::uint32_t v : clean) EXPECT_EQ(v, 0u);
}

TEST(FramePoolTest, RecyclesWithinASizeClass) {
  // Warm the pool, then check same-class round trips hand back the block.
  void* a = FramePool::allocate(100);
  FramePool::deallocate(a, 100);
  void* b = FramePool::allocate(90);  // same 64-byte class as 100
  EXPECT_EQ(a, b);
  FramePool::deallocate(b, 90);
}

TEST(FramePoolTest, DistinctClassesDoNotAlias) {
  void* small = FramePool::allocate(64);
  void* large = FramePool::allocate(1024);
  EXPECT_NE(small, large);
  FramePool::deallocate(small, 64);
  FramePool::deallocate(large, 1024);
  // A 1 KiB request must not come back from the 64-byte list.
  void* again = FramePool::allocate(1024);
  EXPECT_EQ(again, large);
  FramePool::deallocate(again, 1024);
}

Task<int> add_one(int x) { co_return x + 1; }

Task<int> chain(int depth) {
  int total = 0;
  for (int i = 0; i < depth; ++i) total = co_await add_one(total);
  co_return total;
}

TEST(FramePoolTest, CoroutineFrameChurnStaysBalanced) {
  // Thousands of short-lived frames through the pooled operator new/delete;
  // LSan verifies at exit that every block made it back to the heap.
  for (int round = 0; round < 1000; ++round) {
    auto task = chain(8);
    task.resume();
    ASSERT_TRUE(task.done());
  }
}

}  // namespace
}  // namespace rtdb::sim
