#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace rtdb::sim {
namespace {

TEST(MailboxTest, AsyncSendThenReceive) {
  Kernel k;
  Mailbox<int> mb{k};
  mb.send(7);
  mb.send(8);
  EXPECT_EQ(mb.queued(), 2u);
  std::vector<int> got;
  k.spawn("rx", [](Mailbox<int>& mb, std::vector<int>& got) -> Task<void> {
    got.push_back(*co_await mb.receive());
    got.push_back(*co_await mb.receive());
  }(mb, got));
  k.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
  EXPECT_TRUE(mb.empty());
}

TEST(MailboxTest, ReceiverBlocksUntilSend) {
  Kernel k;
  Mailbox<std::string> mb{k};
  double received_at = -1;
  std::string msg;
  k.spawn("rx", [](Kernel& k, Mailbox<std::string>& mb, double& at,
                   std::string& msg) -> Task<void> {
    msg = *co_await mb.receive();
    at = k.now().as_units();
  }(k, mb, received_at, msg));
  k.spawn("tx", [](Kernel& k, Mailbox<std::string>& mb) -> Task<void> {
    co_await k.delay(Duration::units(6));
    mb.send("hello");
  }(k, mb));
  k.run();
  EXPECT_EQ(msg, "hello");
  EXPECT_EQ(received_at, 6.0);
}

TEST(MailboxTest, ReceiversServedFifo) {
  Kernel k;
  Mailbox<int> mb{k};
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto rx = [](Mailbox<int>& mb, std::vector<std::pair<int, int>>& got,
               int id) -> Task<void> {
    got.emplace_back(id, *co_await mb.receive());
  };
  k.spawn("rx0", rx(mb, got, 0));
  k.spawn("rx1", rx(mb, got, 1));
  k.spawn("tx", [](Kernel& k, Mailbox<int>& mb) -> Task<void> {
    co_await k.delay(Duration::units(1));
    mb.send(100);
    mb.send(200);
  }(k, mb));
  k.run();
  EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{0, 100}, {1, 200}}));
}

TEST(MailboxTest, ReceiveForTimesOut) {
  Kernel k;
  Mailbox<int> mb{k};
  bool got_value = true;
  double resumed_at = -1;
  k.spawn("rx", [](Kernel& k, Mailbox<int>& mb, bool& got_value,
                   double& at) -> Task<void> {
    auto v = co_await mb.receive_for(Duration::units(5));
    got_value = v.has_value();
    at = k.now().as_units();
  }(k, mb, got_value, resumed_at));
  k.run();
  EXPECT_FALSE(got_value);
  EXPECT_EQ(resumed_at, 5.0);
  EXPECT_EQ(mb.waiting_receivers(), 0u);
}

TEST(MailboxTest, ReceiveForSucceedsBeforeTimeout) {
  Kernel k;
  Mailbox<int> mb{k};
  std::optional<int> got;
  k.spawn("rx", [](Kernel& k, Mailbox<int>& mb,
                   std::optional<int>& got) -> Task<void> {
    got = co_await mb.receive_for(Duration::units(50));
    EXPECT_EQ(k.now().as_units(), 3.0);
  }(k, mb, got));
  k.spawn("tx", [](Kernel& k, Mailbox<int>& mb) -> Task<void> {
    co_await k.delay(Duration::units(3));
    mb.send(1);
  }(k, mb));
  k.run();
  EXPECT_EQ(got, std::optional<int>{1});
  EXPECT_EQ(k.now().as_units(), 3.0);  // timeout timer was cancelled
}

TEST(MailboxTest, RendezvousSenderBlocksUntilRetrieved) {
  Kernel k;
  Mailbox<int> mb{k};
  double sender_resumed = -1;
  k.spawn("tx", [](Kernel& k, Mailbox<int>& mb, double& at) -> Task<void> {
    WakeStatus s = co_await mb.send_sync(42);
    EXPECT_EQ(s, WakeStatus::kOk);
    at = k.now().as_units();
  }(k, mb, sender_resumed));
  k.spawn("rx", [](Kernel& k, Mailbox<int>& mb) -> Task<void> {
    co_await k.delay(Duration::units(9));
    EXPECT_EQ(*co_await mb.receive(), 42);
  }(k, mb));
  k.run();
  EXPECT_EQ(sender_resumed, 9.0);
}

TEST(MailboxTest, RendezvousToWaitingReceiverCompletesImmediately) {
  Kernel k;
  Mailbox<int> mb{k};
  int got = 0;
  k.spawn("rx", [](Mailbox<int>& mb, int& got) -> Task<void> {
    got = *co_await mb.receive();
  }(mb, got));
  k.spawn("tx", [](Kernel& k, Mailbox<int>& mb) -> Task<void> {
    co_await k.yield();  // let the receiver block first
    WakeStatus s = co_await mb.send_sync(5);
    EXPECT_EQ(s, WakeStatus::kOk);
    EXPECT_EQ(k.now(), TimePoint::origin());
  }(k, mb));
  k.run();
  EXPECT_EQ(got, 5);
}

// The paper's Message Server: "if the receiving site is not operational, a
// time-out mechanism will unblock the sender process".
TEST(MailboxTest, RendezvousTimeoutWithdrawsMessage) {
  Kernel k;
  Mailbox<int> mb{k};
  WakeStatus status = WakeStatus::kOk;
  k.spawn("tx", [](Kernel& k, Mailbox<int>& mb, WakeStatus& status) -> Task<void> {
    status = co_await mb.send_sync_for(1, Duration::units(3));
    EXPECT_EQ(k.now().as_units(), 3.0);
  }(k, mb, status));
  k.run();
  EXPECT_EQ(status, WakeStatus::kTimeout);
  EXPECT_TRUE(mb.empty());  // message withdrawn, not delivered later
}

TEST(MailboxTest, TryTakeDrainsQueueThenSenders) {
  Kernel k;
  Mailbox<int> mb{k};
  mb.send(1);
  k.spawn("tx", [](Mailbox<int>& mb) -> Task<void> {
    co_await mb.send_sync(2);
  }(mb));
  k.spawn("probe", [](Kernel& k, Mailbox<int>& mb) -> Task<void> {
    co_await k.delay(Duration::units(1));
    EXPECT_EQ(mb.try_take(), std::optional<int>{1});
    EXPECT_EQ(mb.try_take(), std::optional<int>{2});
    EXPECT_EQ(mb.try_take(), std::nullopt);
  }(k, mb));
  k.run();
}

TEST(MailboxTest, KilledReceiverRequeuesDeliveredMessage) {
  Kernel k;
  Mailbox<int> mb{k};
  ProcessId victim = k.spawn("victim", [](Mailbox<int>& mb) -> Task<void> {
    co_await mb.receive();
    ADD_FAILURE() << "victim must not receive";
  }(mb));
  int survivor_got = 0;
  k.spawn("driver", [](Kernel& k, Mailbox<int>& mb, ProcessId victim,
                       int& survivor_got) -> Task<void> {
    co_await k.delay(Duration::units(1));
    mb.send(77);      // delivered to victim's slot, wake pending
    k.kill(victim);   // victim dies first; message must be requeued
    auto v = co_await mb.receive_for(Duration::units(1));
    survivor_got = v.value_or(-1);
  }(k, mb, victim, survivor_got));
  k.run();
  EXPECT_EQ(survivor_got, 77);
}

TEST(MailboxTest, KilledSenderWithdrawsRendezvousMessage) {
  Kernel k;
  Mailbox<int> mb{k};
  ProcessId victim = k.spawn("victim", [](Mailbox<int>& mb) -> Task<void> {
    co_await mb.send_sync(5);
  }(mb));
  k.spawn("driver", [](Kernel& k, Mailbox<int>& mb, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(1));
    EXPECT_EQ(mb.waiting_senders(), 1u);
    k.kill(victim);
    EXPECT_EQ(mb.waiting_senders(), 0u);
    EXPECT_EQ(mb.try_take(), std::nullopt);
  }(k, mb, victim));
  k.run();
}

TEST(MailboxTest, MoveOnlyPayload) {
  Kernel k;
  Mailbox<std::unique_ptr<int>> mb{k};
  mb.send(std::make_unique<int>(9));
  int got = 0;
  k.spawn("rx", [](Mailbox<std::unique_ptr<int>>& mb, int& got) -> Task<void> {
    auto p = co_await mb.receive();
    got = **p;
  }(mb, got));
  k.run();
  EXPECT_EQ(got, 9);
}

}  // namespace
}  // namespace rtdb::sim
