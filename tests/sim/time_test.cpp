#include "sim/time.hpp"

#include <gtest/gtest.h>

#include "sim/priority.hpp"

namespace rtdb::sim {
namespace {

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Duration::zero().as_ticks(), 0);
  EXPECT_EQ(Duration::units(3).as_ticks(), 3 * kTicksPerUnit);
  EXPECT_EQ(Duration::ticks(1500).as_units(), 1.5);
  EXPECT_EQ(Duration::from_units(0.5).as_ticks(), kTicksPerUnit / 2);
  EXPECT_EQ(Duration::from_units(2.0004).as_ticks(), 2000);  // rounds
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::units(2);
  const Duration b = Duration::units(3);
  EXPECT_EQ((a + b).as_units(), 5.0);
  EXPECT_EQ((b - a).as_units(), 1.0);
  EXPECT_EQ((a * 4).as_units(), 8.0);
  EXPECT_EQ((4 * a).as_units(), 8.0);
  EXPECT_EQ(a.scaled(1.25).as_ticks(), 2500);
  Duration c = a;
  c += b;
  EXPECT_EQ(c, Duration::units(5));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::units(1), Duration::units(2));
  EXPECT_TRUE(Duration::ticks(-5).is_negative());
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE(Duration::ticks(1).is_zero());
}

TEST(DurationTest, SecondsConversion) {
  // One time unit is one millisecond by convention.
  EXPECT_DOUBLE_EQ(Duration::units(kUnitsPerSecond).as_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(Duration::units(500).as_seconds(), 0.5);
}

TEST(DurationTest, ToString) {
  EXPECT_EQ(Duration::units(7).to_string(), "7tu");
  EXPECT_EQ(Duration::ticks(1500).to_string(), "1.500tu");
  EXPECT_EQ(Duration::ticks(-1500).to_string(), "-1.500tu");
}

TEST(TimePointTest, ArithmeticWithDuration) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::units(10);
  EXPECT_EQ((t1 - t0).as_units(), 10.0);
  EXPECT_EQ((t1 - Duration::units(4)).as_ticks(), 6 * kTicksPerUnit);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::at_ticks(2500).as_units(), 2.5);
}

TEST(PriorityTest, SmallerKeyIsHigher) {
  const Priority early{100, 1};
  const Priority late{200, 1};
  EXPECT_TRUE(early.higher_than(late));
  EXPECT_TRUE(late.lower_than(early));
  EXPECT_TRUE(early.at_least(late));
  EXPECT_TRUE(early.at_least(early));
  EXPECT_FALSE(late.at_least(early));
}

TEST(PriorityTest, TieBreakByTransactionId) {
  const Priority a{100, 1};
  const Priority b{100, 2};
  EXPECT_TRUE(a.higher_than(b));
  EXPECT_FALSE(b.higher_than(a));
  EXPECT_NE(a, b);
}

TEST(PriorityTest, Extremes) {
  const Priority p{12345, 7};
  EXPECT_TRUE(Priority::highest().higher_than(p));
  EXPECT_TRUE(p.higher_than(Priority::lowest()));
  EXPECT_EQ(Priority::stronger(p, Priority::lowest()), p);
  EXPECT_EQ(Priority::stronger(Priority::highest(), p), Priority::highest());
}

TEST(PriorityTest, DefaultIsLowest) {
  EXPECT_EQ(Priority{}, Priority::lowest());
}

TEST(PriorityTest, HigherFirstComparator) {
  Priority::HigherFirst cmp;
  EXPECT_TRUE(cmp(Priority{1, 0}, Priority{2, 0}));
  EXPECT_FALSE(cmp(Priority{2, 0}, Priority{1, 0}));
}

}  // namespace
}  // namespace rtdb::sim
