#include "sim/semaphore.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"

namespace rtdb::sim {
namespace {

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(SemaphoreTest, TryAcquireConsumesCredits) {
  Kernel k;
  Semaphore sem{k, 2};
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  EXPECT_EQ(sem.available(), 0);
  sem.release();
  EXPECT_EQ(sem.available(), 1);
}

TEST(SemaphoreTest, AcquireFastPathDoesNotBlock) {
  Kernel k;
  Semaphore sem{k, 1};
  bool done = false;
  k.spawn("p", [](Kernel& k, Semaphore& sem, bool& done) -> Task<void> {
    WakeStatus s = co_await sem.acquire();
    EXPECT_EQ(s, WakeStatus::kOk);
    EXPECT_EQ(k.now(), TimePoint::origin());
    done = true;
  }(k, sem, done));
  k.run();
  EXPECT_TRUE(done);
}

TEST(SemaphoreTest, BlockedAcquireWokenByRelease) {
  Kernel k;
  Semaphore sem{k, 0};
  double acquired_at = -1;
  k.spawn("waiter", [](Kernel& k, Semaphore& sem, double& at) -> Task<void> {
    co_await sem.acquire();
    at = k.now().as_units();
  }(k, sem, acquired_at));
  k.spawn("releaser", [](Kernel& k, Semaphore& sem) -> Task<void> {
    co_await k.delay(Duration::units(8));
    sem.release();
  }(k, sem));
  k.run();
  EXPECT_EQ(acquired_at, 8.0);
  EXPECT_EQ(sem.available(), 0);
}

TEST(SemaphoreTest, FifoHandoffNoBarging) {
  Kernel k;
  Semaphore sem{k, 0};
  std::vector<int> order;
  auto waiter = [](Kernel&, Semaphore& sem, std::vector<int>& order,
                   int id) -> Task<void> {
    co_await sem.acquire();
    order.push_back(id);
  };
  for (int i = 0; i < 3; ++i) k.spawn("w", waiter(k, sem, order, i));
  k.spawn("releaser", [](Kernel& k, Semaphore& sem) -> Task<void> {
    co_await k.delay(Duration::units(1));
    sem.release(3);
  }(k, sem));
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, ReleaseWithoutWaitersAccumulates) {
  Kernel k;
  Semaphore sem{k, 0};
  sem.release(5);
  EXPECT_EQ(sem.available(), 5);
}

TEST(SemaphoreTest, TimeoutExpires) {
  Kernel k;
  Semaphore sem{k, 0};
  WakeStatus status = WakeStatus::kOk;
  double resumed_at = -1;
  k.spawn("p", [](Kernel& k, Semaphore& sem, WakeStatus& status,
                  double& at) -> Task<void> {
    status = co_await sem.acquire_for(Duration::units(4));
    at = k.now().as_units();
  }(k, sem, status, resumed_at));
  k.run();
  EXPECT_EQ(status, WakeStatus::kTimeout);
  EXPECT_EQ(resumed_at, 4.0);
  EXPECT_EQ(sem.waiter_count(), 0u);
}

TEST(SemaphoreTest, GrantBeforeTimeoutCancelsTimer) {
  Kernel k;
  Semaphore sem{k, 0};
  WakeStatus status = WakeStatus::kTimeout;
  k.spawn("p", [](Semaphore& sem, WakeStatus& status) -> Task<void> {
    status = co_await sem.acquire_for(Duration::units(100));
  }(sem, status));
  k.spawn("r", [](Kernel& k, Semaphore& sem) -> Task<void> {
    co_await k.delay(Duration::units(2));
    sem.release();
  }(k, sem));
  k.run();
  EXPECT_EQ(status, WakeStatus::kOk);
  EXPECT_EQ(k.now().as_units(), 2.0);  // no stray timeout event at t=100
}

TEST(SemaphoreTest, KilledWaiterLeavesQueue) {
  Kernel k;
  Semaphore sem{k, 0};
  ProcessId p = k.spawn("p", [](Semaphore& sem) -> Task<void> {
    co_await sem.acquire();
  }(sem));
  k.spawn("killer", [](Kernel& k, Semaphore& sem, ProcessId p) -> Task<void> {
    co_await k.delay(Duration::units(1));
    EXPECT_EQ(sem.waiter_count(), 1u);
    k.kill(p);
    EXPECT_EQ(sem.waiter_count(), 0u);
  }(k, sem, p));
  k.run();
  EXPECT_FALSE(k.alive(p));
}

// A credit handed to a waiter that is killed before it resumes must return
// to the semaphore rather than vanish.
TEST(SemaphoreTest, KillAfterGrantReturnsCredit) {
  Kernel k;
  Semaphore sem{k, 0};
  ProcessId victim = k.spawn("victim", [](Semaphore& sem) -> Task<void> {
    co_await sem.acquire();
    ADD_FAILURE() << "victim should never obtain the credit";
  }(sem));
  k.spawn("driver", [](Kernel& k, Semaphore& sem, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(1));
    sem.release();      // hand-off scheduled for the victim
    k.kill(victim);     // ...but the victim dies first
    co_await k.yield();
    EXPECT_EQ(sem.available(), 1);  // credit survived
  }(k, sem, victim));
  k.run();
}

TEST(SemaphoreTest, ManyWaitersPartialRelease) {
  Kernel k;
  Semaphore sem{k, 0};
  int acquired = 0;
  auto waiter = [](Semaphore& sem, int& acquired) -> Task<void> {
    co_await sem.acquire();
    ++acquired;
  };
  for (int i = 0; i < 5; ++i) k.spawn("w", waiter(sem, acquired));
  k.spawn("r", [](Kernel& k, Semaphore& sem) -> Task<void> {
    co_await k.delay(Duration::units(1));
    sem.release(2);
  }(k, sem));
  k.run_until(TimePoint::origin() + tu(10));
  EXPECT_EQ(acquired, 2);
  EXPECT_EQ(sem.waiter_count(), 3u);
}

TEST(SemaphoreTest, MutexStyleCriticalSection) {
  Kernel k;
  Semaphore mutex{k, 1};
  int inside = 0;
  int max_inside = 0;
  auto worker = [](Kernel& k, Semaphore& mutex, int& inside,
                   int& max_inside) -> Task<void> {
    co_await mutex.acquire();
    ++inside;
    max_inside = std::max(max_inside, inside);
    co_await k.delay(Duration::units(3));
    --inside;
    mutex.release();
  };
  for (int i = 0; i < 4; ++i) k.spawn("w", worker(k, mutex, inside, max_inside));
  k.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(k.now().as_units(), 12.0);  // fully serialized
}

}  // namespace
}  // namespace rtdb::sim
