#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtdb::sim {
namespace {

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(KernelTest, ClockStartsAtOrigin) {
  Kernel k;
  EXPECT_EQ(k.now(), TimePoint::origin());
}

TEST(KernelTest, DelayAdvancesVirtualTime) {
  Kernel k;
  std::vector<double> times;
  k.spawn("p", [](Kernel& k, std::vector<double>& times) -> Task<void> {
    times.push_back(k.now().as_units());
    co_await k.delay(Duration::units(5));
    times.push_back(k.now().as_units());
    co_await k.delay(Duration::units(7));
    times.push_back(k.now().as_units());
  }(k, times));
  k.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 5.0, 12.0}));
  EXPECT_EQ(k.now().as_units(), 12.0);
  EXPECT_EQ(k.live_process_count(), 0u);
}

TEST(KernelTest, ProcessesInterleaveDeterministically) {
  Kernel k;
  std::vector<std::string> log;
  auto worker = [](Kernel& k, std::vector<std::string>& log, std::string name,
                   std::int64_t step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await k.delay(Duration::units(step));
      log.push_back(name + std::to_string(i));
    }
  };
  k.spawn("a", worker(k, log, "a", 2));
  k.spawn("b", worker(k, log, "b", 3));
  k.run();
  // a at 2,4,6; b at 3,6,9; at t=6 a scheduled its delay first.
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(KernelTest, RunUntilStopsAtDeadline) {
  Kernel k;
  int ticks = 0;
  k.spawn("p", [](Kernel& k, int& ticks) -> Task<void> {
    for (;;) {
      co_await k.delay(Duration::units(10));
      ++ticks;
    }
  }(k, ticks));
  k.run_until(TimePoint::origin() + tu(35));
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(k.now(), TimePoint::origin() + tu(35));
  k.run_for(tu(10));
  EXPECT_EQ(ticks, 4);
}

TEST(KernelTest, NestedTasksPropagateValuesAndTime) {
  Kernel k;
  int result = 0;
  auto inner = [](Kernel& k) -> Task<int> {
    co_await k.delay(Duration::units(4));
    co_return 42;
  };
  k.spawn("p", [](Kernel& k, int& result,
                  auto inner) -> Task<void> {
    result = co_await inner(k);
    result += static_cast<int>(k.now().as_units());
  }(k, result, inner));
  k.run();
  EXPECT_EQ(result, 46);
}

TEST(KernelTest, NestedTaskExceptionsPropagate) {
  Kernel k;
  bool caught = false;
  auto thrower = []() -> Task<void> {
    throw std::runtime_error("boom");
    co_return;  // unreachable; makes this a coroutine
  };
  k.spawn("p", [](bool& caught, auto thrower) -> Task<void> {
    try {
      co_await thrower();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(caught, thrower));
  k.run();
  EXPECT_TRUE(caught);
}

TEST(KernelTest, UncaughtExceptionEscapesRun) {
  Kernel k;
  k.spawn("p", []() -> Task<void> {
    throw std::logic_error("bug");
    co_return;
  }());
  EXPECT_THROW(k.run(), std::logic_error);
}

TEST(KernelTest, KillBlockedProcessUnwindsImmediately) {
  Kernel k;
  bool cleanup_ran = false;
  bool finished = false;
  struct Guard {
    bool& flag;
    ~Guard() { flag = true; }
  };
  ProcessId victim = k.spawn(
      "victim", [](Kernel& k, bool& cleanup_ran, bool& finished) -> Task<void> {
        Guard g{cleanup_ran};
        co_await k.delay(Duration::units(100));
        finished = true;
      }(k, cleanup_ran, finished));
  k.spawn("killer", [](Kernel& k, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(5));
    k.kill(victim);
    // Kill is synchronous: after it returns the victim is gone.
    EXPECT_FALSE(k.alive(victim));
  }(k, victim));
  k.run();
  EXPECT_TRUE(cleanup_ran);
  EXPECT_FALSE(finished);
  EXPECT_EQ(k.now().as_units(), 5.0);  // the 100tu delay was cancelled
}

TEST(KernelTest, KillBeforeStartNeverRuns) {
  Kernel k;
  bool ran = false;
  ProcessId p = k.spawn("p", [](bool& ran) -> Task<void> {
    ran = true;
    co_return;
  }(ran));
  k.kill(p);
  k.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(k.alive(p));
}

TEST(KernelTest, KillIsIdempotent) {
  Kernel k;
  ProcessId p = k.spawn("p", [](Kernel& k) -> Task<void> {
    co_await k.delay(Duration::units(10));
  }(k));
  k.spawn("killer", [](Kernel& k, ProcessId p) -> Task<void> {
    co_await k.yield();
    k.kill(p);
    k.kill(p);  // second kill is a no-op
    co_return;
  }(k, p));
  k.run();
  EXPECT_FALSE(k.alive(p));
}

TEST(KernelTest, ProcessCancelledCanBeCaughtAtBoundary) {
  Kernel k;
  bool observed = false;
  ProcessId p = k.spawn("p", [](Kernel& k, bool& observed) -> Task<void> {
    try {
      co_await k.delay(Duration::units(50));
    } catch (const ProcessCancelled&) {
      observed = true;  // boundary handling, then finish normally
    }
  }(k, observed));
  k.spawn("killer", [](Kernel& k, ProcessId p) -> Task<void> {
    co_await k.delay(Duration::units(1));
    k.kill(p);
  }(k, p));
  k.run();
  EXPECT_TRUE(observed);
}

TEST(KernelTest, ScheduledCallbackRunsAtRequestedTime) {
  Kernel k;
  double fired_at = -1;
  k.schedule_in(tu(9), [&] { fired_at = k.now().as_units(); });
  k.run();
  EXPECT_EQ(fired_at, 9.0);
}

TEST(KernelTest, CancelledEventDoesNotFire) {
  Kernel k;
  bool fired = false;
  EventId id = k.schedule_in(tu(3), [&] { fired = true; });
  EXPECT_TRUE(k.cancel_event(id));
  k.run();
  EXPECT_FALSE(fired);
}

TEST(KernelTest, YieldRunsOthersAtSameInstant) {
  Kernel k;
  std::vector<int> order;
  k.spawn("a", [](Kernel& k, std::vector<int>& order) -> Task<void> {
    order.push_back(1);
    co_await k.yield();
    order.push_back(3);
  }(k, order));
  k.spawn("b", [](std::vector<int>& order) -> Task<void> {
    order.push_back(2);
    co_return;
  }(order));
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), TimePoint::origin());
}

TEST(KernelTest, ProcessNamesAreRecorded) {
  Kernel k;
  ProcessId p = k.spawn("txn-17", []() -> Task<void> { co_return; }());
  EXPECT_EQ(k.process_name(p), "txn-17");
}

TEST(KernelTest, EventsExecutedCounter) {
  Kernel k;
  for (int i = 0; i < 5; ++i) k.schedule_in(tu(i), [] {});
  k.run();
  EXPECT_EQ(k.events_executed(), 5u);
}

TEST(KernelTest, TracerEmitsWhenEnabled) {
  Kernel k;
  std::vector<std::string> messages;
  k.tracer().set_sink([&](TimePoint, std::string_view, std::string_view m) {
    messages.emplace_back(m);
  });
  ASSERT_TRUE(k.tracer().enabled());
  k.tracer().emit(k.now(), "test", "hello");
  k.tracer().clear();
  k.tracer().emit(k.now(), "test", "dropped");
  EXPECT_EQ(messages, (std::vector<std::string>{"hello"}));
}

// A process killed while a wake is already pending (here: its delay expires
// at the same instant the killer acts) must still unwind exactly once.
TEST(KernelTest, KillRacingWithPendingWake) {
  Kernel k;
  bool finished = false;
  ProcessId p = k.spawn("p", [](Kernel& k, bool& finished) -> Task<void> {
    co_await k.delay(Duration::units(5));
    finished = true;
  }(k, finished));
  // Killer runs at t=5 as well, scheduled after the delay's own event.
  k.spawn("killer", [](Kernel& k, ProcessId p) -> Task<void> {
    co_await k.delay(Duration::units(5));
    k.kill(p);
  }(k, p));
  k.run();
  // The delay event fired first (earlier schedule), so the process finished
  // before the killer ran; kill on a finished process is a no-op.
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace rtdb::sim
