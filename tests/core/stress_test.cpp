// Failure-injection and kill-storm stress: tight deadlines abort
// transactions in every phase (waiting for locks, computing, doing I/O,
// mid-RPC, mid-2PC), which is exactly where cleanup bugs hide. After every
// run the protocol state must be fully drained and the committed history
// serializable.

#include <gtest/gtest.h>

#include "cc/pcp.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"

namespace rtdb::core {
namespace {

using sim::Duration;

SystemConfig tight_single_site(Protocol protocol, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 30;  // small database: constant conflict
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::units(1);
  cfg.workload.size_min = 2;
  cfg.workload.size_max = 8;
  cfg.workload.mean_interarrival = Duration::units(6);  // overload
  cfg.workload.transaction_count = 200;
  cfg.workload.slack_min = 1.0;  // brutal deadlines: most transactions die
  cfg.workload.slack_max = 3.0;
  cfg.workload.est_time_per_object = Duration::units(3);
  cfg.workload.read_only_fraction = 0.3;
  cfg.seed = seed;
  cfg.record_history = true;
  return cfg;
}

class KillStormTest
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(KillStormTest, DrainsCleanAndSerializableUnderMassAborts) {
  const auto [protocol, seed] = GetParam();
  System system{tight_single_site(protocol, seed)};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 200u);
  EXPECT_GT(m.missed, 20u) << "the storm should actually kill transactions";
  std::string why;
  EXPECT_TRUE(system.history()->conflict_serializable(&why)) << why;
  EXPECT_EQ(system.site(0).tm->live_count(), 0u);
  EXPECT_EQ(system.kernel().live_process_count(), 0u);
  if (const auto* pcp =
          dynamic_cast<const cc::PriorityCeiling*>(system.site(0).cc.get())) {
    EXPECT_EQ(pcp->active_transactions(), 0u);
    EXPECT_EQ(pcp->waiter_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, KillStormTest,
    ::testing::Combine(
        ::testing::Values(Protocol::kTwoPhase, Protocol::kTwoPhasePriority,
                          Protocol::kPriorityCeiling,
                          Protocol::kPriorityInheritance,
                          Protocol::kHighPriority,
                          Protocol::kTimestampOrdering, Protocol::kWaitDie,
                          Protocol::kWoundWait),
        ::testing::Values(3u, 17u)));

SystemConfig tight_distributed(DistScheme scheme, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = Duration::units(3);
  cfg.workload.transaction_count = 200;
  cfg.workload.read_only_fraction = 0.5;
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  cfg.workload.mean_interarrival = Duration::from_units(4.5);
  cfg.workload.slack_min = 2;  // most global transactions will die mid-RPC
  cfg.workload.slack_max = 4;
  cfg.workload.est_time_per_object = Duration::units(3);
  cfg.seed = seed;
  return cfg;
}

// Deadline kills land while transactions wait for remote grants, hold
// global locks, and sit inside 2PC; the manager must still drain to zero.
TEST(KillStormTest, GlobalManagerDrainsUnderMassAborts) {
  System system{tight_distributed(DistScheme::kGlobalCeiling, 5)};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 200u);
  EXPECT_GT(m.missed, 50u);
  ASSERT_NE(system.global_manager(), nullptr);
  EXPECT_EQ(system.global_manager()->live_mirrors(), 0u);
  EXPECT_EQ(system.global_manager()->protocol().active_transactions(), 0u);
  EXPECT_EQ(system.global_manager()->protocol().waiter_count(), 0u);
  for (net::SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.site(s).tm->live_count(), 0u);
  }
}

TEST(KillStormTest, LocalSchemeDrainsUnderMassAborts) {
  System system{tight_distributed(DistScheme::kLocalCeiling, 5)};
  system.run_to_completion();
  EXPECT_EQ(system.metrics().processed, 200u);
  for (net::SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.site(s).tm->live_count(), 0u);
    const auto* pcp =
        dynamic_cast<const cc::PriorityCeiling*>(system.site(s).cc.get());
    ASSERT_NE(pcp, nullptr);
    EXPECT_EQ(pcp->active_transactions(), 0u);
    EXPECT_EQ(pcp->waiter_count(), 0u);
  }
}

// Asymmetric link speeds: replicas behind a slow inbound link lag more but
// still converge once the run drains.
TEST(FailureInjectionTest, SlowLinkDelaysButDoesNotDivergeReplicas) {
  SystemConfig cfg = tight_distributed(DistScheme::kLocalCeiling, 8);
  cfg.workload.slack_min = 10;  // relaxed: this test is about replication
  cfg.workload.slack_max = 20;
  System system{cfg};
  system.network()->set_delay(0, 2, Duration::units(40));  // slow link 0->2
  system.run_to_completion();
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const net::SiteId primary = system.schema().primary_site(o);
    for (net::SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(system.site(s).rm->current(o),
                system.site(primary).rm->current(o));
    }
  }
  // Site 2 saw site 0's updates ~40tu late; its max lag reflects that.
  EXPECT_GE(system.site(2).replication->max_lag(), Duration::units(40));
}

// A site that goes down mid-run loses propagated updates for good (fire-
// and-forget replication) but the system keeps running; after recovery,
// later updates land again and stale copies are superseded monotonically.
TEST(FailureInjectionTest, SiteOutageLosesUpdatesButNeverRegresses) {
  SystemConfig cfg = tight_distributed(DistScheme::kLocalCeiling, 9);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  System system{cfg};
  system.start();
  system.kernel().run_until(sim::TimePoint::origin() + Duration::units(150));
  system.network()->set_operational(2, false);
  system.kernel().run_until(sim::TimePoint::origin() + Duration::units(400));
  system.network()->set_operational(2, true);
  system.kernel().run();
  EXPECT_EQ(system.metrics().processed, 200u);
  // Site 2's copies are at most as new as the primaries and sequences
  // never regress; updates propagated after recovery were applied.
  std::uint64_t behind = 0;
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const net::SiteId primary = system.schema().primary_site(o);
    if (primary == 2) continue;
    const auto& at_primary = system.site(primary).rm->current(o);
    const auto& at_site2 = system.site(2).rm->current(o);
    EXPECT_LE(at_site2.sequence, at_primary.sequence);
    if (at_site2.sequence < at_primary.sequence) ++behind;
  }
  EXPECT_GT(system.network()->messages_dropped(), 0u);
  EXPECT_GT(system.site(2).replication->updates_applied(), 0u);
  (void)behind;  // may be zero if the last writes happened after recovery
}

}  // namespace
}  // namespace rtdb::core
