// Whole-system determinism: identical (config, seed) pairs must replay to
// bit-identical statistics, event counts, and final clocks — across every
// protocol and scheme. This is the property that makes the experiment
// methodology (N seeded runs, comparable cells) sound.

#include <gtest/gtest.h>

#include <tuple>

#include "core/system.hpp"

namespace rtdb::core {
namespace {

using Signature = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                             double, std::int64_t, std::uint64_t,
                             std::uint64_t>;

Signature run_signature(SystemConfig cfg) {
  System system{cfg};
  system.run_to_completion();
  const auto m = system.metrics();
  return Signature{m.committed,
                   m.missed,
                   m.total_restarts,
                   m.throughput_objects_per_sec,
                   system.kernel().now().as_ticks(),
                   system.kernel().events_executed(),
                   system.total_protocol_aborts()};
}

SystemConfig config_for(Protocol protocol, DistScheme scheme) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.scheme = scheme;
  if (scheme != DistScheme::kSingleSite) {
    cfg.sites = 3;
    cfg.db_objects = 60;
    cfg.io_per_object = sim::Duration::zero();
    cfg.comm_delay = sim::Duration::units(2);
    cfg.workload.mean_interarrival = sim::Duration::units(6);
    cfg.workload.read_only_fraction = 0.5;
  } else {
    cfg.db_objects = 60;
    cfg.workload.mean_interarrival = sim::Duration::units(15);
  }
  cfg.workload.transaction_count = 150;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 7;
  cfg.workload.slack_min = 5;
  cfg.workload.slack_max = 10;
  cfg.workload.est_time_per_object = sim::Duration::units(3);
  cfg.seed = 12345;
  return cfg;
}

class DeterminismTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(DeterminismTest, SingleSiteReplaysExactly) {
  const auto cfg = config_for(GetParam(), DistScheme::kSingleSite);
  const Signature first = run_signature(cfg);
  const Signature second = run_signature(cfg);
  EXPECT_EQ(first, second);
  auto different = cfg;
  different.seed = 54321;
  EXPECT_NE(run_signature(different), first);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DeterminismTest,
    ::testing::Values(Protocol::kTwoPhase, Protocol::kTwoPhasePriority,
                      Protocol::kPriorityCeiling, Protocol::kHighPriority,
                      Protocol::kTimestampOrdering, Protocol::kWaitDie,
                      Protocol::kWoundWait));

TEST(DeterminismTest, GlobalSchemeReplaysExactly) {
  const auto cfg =
      config_for(Protocol::kPriorityCeiling, DistScheme::kGlobalCeiling);
  EXPECT_EQ(run_signature(cfg), run_signature(cfg));
}

TEST(DeterminismTest, LocalSchemeReplaysExactly) {
  const auto cfg =
      config_for(Protocol::kPriorityCeiling, DistScheme::kLocalCeiling);
  EXPECT_EQ(run_signature(cfg), run_signature(cfg));
}

}  // namespace
}  // namespace rtdb::core
