// Shape regressions — reduced versions of the figure benches asserting the
// paper's qualitative claims, so a refactor cannot silently lose the
// headline results. Bounds are deliberately loose (these are shapes, not
// absolute numbers); the full sweeps live in bench/.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace rtdb::core {
namespace {

using sim::Duration;

// The Figure 2/3 cell at a given protocol and size, 3 seeds.
std::vector<RunResult> fig23_cell(Protocol protocol, std::uint32_t size) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 200;
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::units(1);
  cfg.victim_policy = protocol == Protocol::kTwoPhase
                          ? cc::TwoPhaseLocking::VictimPolicy::kRequester
                          : cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
  cfg.workload.size_min = cfg.workload.size_max = size;
  cfg.workload.mean_interarrival = Duration::units(50);
  cfg.workload.transaction_count = 400;
  cfg.workload.slack_min = 15;
  cfg.workload.slack_max = 30;
  cfg.workload.est_time_per_object = Duration::units(4);
  cfg.seed = 1;
  return ExperimentRunner::run_many(cfg, 3);
}

TEST(ShapeTest, Fig2CeilingIsStableWhileTwoPhaseCollapses) {
  const double c8 = ExperimentRunner::mean_throughput(
      fig23_cell(Protocol::kPriorityCeiling, 8));
  const double c18 = ExperimentRunner::mean_throughput(
      fig23_cell(Protocol::kPriorityCeiling, 18));
  const double l8 = ExperimentRunner::mean_throughput(
      fig23_cell(Protocol::kTwoPhase, 8));
  const double l18 = ExperimentRunner::mean_throughput(
      fig23_cell(Protocol::kTwoPhase, 18));
  // "little impact on the throughput of the priority ceiling protocol":
  // C at size 18 stays above its size-8 level (offered objects grew) and
  // within sane bounds; the paper's claim is stability, not monotonicity.
  EXPECT_GT(c18, c8);
  // "the performance of the two-phase locking protocol ... degrades very
  // rapidly": L collapses below half its size-8 throughput...
  EXPECT_LT(l18, 0.5 * l8);
  // ...and far below the ceiling protocol.
  EXPECT_GT(c18, 3.0 * l18);
}

TEST(ShapeTest, Fig3MissOrderingAtTheHeavyEnd) {
  const double c = ExperimentRunner::mean_pct_missed(
      fig23_cell(Protocol::kPriorityCeiling, 18));
  const double p = ExperimentRunner::mean_pct_missed(
      fig23_cell(Protocol::kTwoPhasePriority, 18));
  const double l = ExperimentRunner::mean_pct_missed(
      fig23_cell(Protocol::kTwoPhase, 18));
  // At the conflict-dominated end the paper's ordering holds: C < P < L,
  // with L rising sharply.
  EXPECT_LT(c, p);
  EXPECT_LT(p, l);
  EXPECT_GT(l, 75.0);
  EXPECT_LT(c, 60.0);
}

std::vector<RunResult> dist_cell(DistScheme scheme, double delay_units) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = Duration::from_units(delay_units);
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  cfg.workload.mean_interarrival = Duration::from_units(4.5);
  cfg.workload.read_only_fraction = 0.5;
  cfg.workload.transaction_count = 300;
  cfg.workload.slack_min = 3.5;
  cfg.workload.slack_max = 7;
  cfg.workload.est_time_per_object = Duration::units(3);
  cfg.seed = 1;
  return ExperimentRunner::run_many(cfg, 3);
}

TEST(ShapeTest, Fig5MissRatioExceedsSixteenAndSaturates) {
  const double g0 = ExperimentRunner::mean_pct_missed(
      dist_cell(DistScheme::kGlobalCeiling, 0));
  const double g2 = ExperimentRunner::mean_pct_missed(
      dist_cell(DistScheme::kGlobalCeiling, 2));
  const double g10 = ExperimentRunner::mean_pct_missed(
      dist_cell(DistScheme::kGlobalCeiling, 10));
  const double l = ExperimentRunner::mean_pct_missed(
      dist_cell(DistScheme::kLocalCeiling, 2));
  ASSERT_GT(l, 0.0);
  // "the performance ratio increases beyond 16" ...
  EXPECT_GT(g2 / l, 16.0);
  // ... "increases rapidly (up to 2 time units), and then rather slowly":
  EXPECT_GT(g2 - g0, g10 - g2);
  // The local scheme is delay-independent (async propagation), so one
  // local measurement serves as the denominator throughout.
}

TEST(ShapeTest, Fig4LocalWinsAndGapGrowsWithDelay) {
  const double l0 = ExperimentRunner::mean_throughput(
      dist_cell(DistScheme::kLocalCeiling, 0));
  const double g0 = ExperimentRunner::mean_throughput(
      dist_cell(DistScheme::kGlobalCeiling, 0));
  const double l2 = ExperimentRunner::mean_throughput(
      dist_cell(DistScheme::kLocalCeiling, 2));
  const double g2 = ExperimentRunner::mean_throughput(
      dist_cell(DistScheme::kGlobalCeiling, 2));
  EXPECT_GT(l0 / g0, 1.5);            // local wins even at zero delay
  EXPECT_GT(l2 / g2, l0 / g0);        // and the gap grows with the delay
}

}  // namespace
}  // namespace rtdb::core
