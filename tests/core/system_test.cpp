#include "core/system.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace rtdb::core {
namespace {

using sim::Duration;

SystemConfig small_single_site(Protocol protocol, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 40;
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::units(1);
  cfg.workload.size_min = 2;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = Duration::units(20);
  cfg.workload.transaction_count = 150;
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = Duration::units(4);
  cfg.workload.read_only_fraction = 0.3;
  cfg.seed = seed;
  cfg.record_history = true;
  return cfg;
}

// Every protocol must process the whole batch, commit the vast majority
// under this mild load, and produce a conflict-serializable history.
class ProtocolIntegration
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ProtocolIntegration, ProcessesBatchSerializably) {
  const auto [protocol, seed] = GetParam();
  System system{small_single_site(protocol, seed)};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.arrived, 150u);
  EXPECT_EQ(m.processed, 150u);
  EXPECT_GE(m.committed + m.missed, 150u);
  EXPECT_GT(m.committed, 120u) << "mild load should mostly commit";
  std::string why;
  ASSERT_NE(system.history(), nullptr);
  EXPECT_TRUE(system.history()->conflict_serializable(&why)) << why;
  // System fully drained.
  EXPECT_EQ(system.site(0).tm->live_count(), 0u);
  EXPECT_EQ(system.kernel().live_process_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolIntegration,
    ::testing::Combine(
        ::testing::Values(Protocol::kTwoPhase, Protocol::kTwoPhasePriority,
                          Protocol::kPriorityCeiling,
                          Protocol::kPriorityCeilingExclusive,
                          Protocol::kPriorityInheritance,
                          Protocol::kHighPriority,
                          Protocol::kTimestampOrdering),
        ::testing::Values(1u, 2u, 3u)));

SystemConfig distributed(DistScheme scheme, std::uint64_t seed,
                         std::int64_t delay_units) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = Duration::units(2);
  cfg.io_per_object = Duration::zero();  // memory-resident
  cfg.comm_delay = Duration::units(delay_units);
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = Duration::units(10);
  cfg.workload.transaction_count = 150;
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = Duration::units(3);
  cfg.workload.read_only_fraction = 0.5;
  cfg.seed = seed;
  return cfg;
}

TEST(SystemIntegration, GlobalCeilingProcessesBatch) {
  SystemConfig cfg = distributed(DistScheme::kGlobalCeiling, 5, 1);
  cfg.record_history = true;
  System system{cfg};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 150u);
  EXPECT_GT(m.committed, 100u);
  ASSERT_NE(system.global_manager(), nullptr);
  EXPECT_GT(system.global_manager()->registrations(), 0u);
  EXPECT_GT(system.global_manager()->acquire_requests(), 0u);
  // One global serialization domain: the committed history must be
  // globally conflict-serializable.
  std::string why;
  EXPECT_TRUE(system.history()->conflict_serializable(&why)) << why;
  for (net::SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.site(s).tm->live_count(), 0u);
  }
}

TEST(SystemIntegration, GlobalCeilingSynchronousCopiesStayIdentical) {
  System system{distributed(DistScheme::kGlobalCeiling, 6, 2)};
  system.run_to_completion();
  // After the run drains, every site's copy of every object is identical —
  // the temporal-consistency guarantee bought with synchronous updates.
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const auto& reference = system.site(0).rm->current(o);
    for (net::SiteId s = 1; s < 3; ++s) {
      EXPECT_EQ(system.site(s).rm->current(o), reference)
          << "object " << o << " diverged at site " << s;
    }
  }
}

TEST(SystemIntegration, LocalCeilingProcessesBatchAndConverges) {
  System system{distributed(DistScheme::kLocalCeiling, 7, 2)};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 150u);
  EXPECT_GT(m.committed, 130u);
  // Once propagation drains, secondaries converge to the primaries.
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const net::SiteId primary = system.schema().primary_site(o);
    const auto& reference = system.site(primary).rm->current(o);
    for (net::SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(system.site(s).rm->current(o), reference)
          << "object " << o << " did not converge at site " << s;
    }
  }
  // Replication actually happened and measured its lag.
  std::uint64_t applied = 0;
  for (net::SiteId s = 0; s < 3; ++s) {
    applied += system.site(s).replication->updates_applied();
    EXPECT_GE(system.site(s).replication->max_lag(), Duration::units(2));
  }
  EXPECT_GT(applied, 0u);
}

TEST(SystemIntegration, LocalBeatsGlobalUnderLoad) {
  // The headline §4 result at one representative point.
  SystemConfig g = distributed(DistScheme::kGlobalCeiling, 9, 2);
  SystemConfig l = distributed(DistScheme::kLocalCeiling, 9, 2);
  g.workload.mean_interarrival = Duration::units(5);
  l.workload.mean_interarrival = Duration::units(5);
  const RunResult rg = ExperimentRunner::run_once(g);
  const RunResult rl = ExperimentRunner::run_once(l);
  EXPECT_GT(rl.metrics.throughput_objects_per_sec,
            rg.metrics.throughput_objects_per_sec);
  EXPECT_LE(rl.metrics.pct_missed, rg.metrics.pct_missed);
}

TEST(SystemIntegration, GlobalPartitionedExtensionWorks) {
  SystemConfig cfg = distributed(DistScheme::kGlobalCeiling, 10, 1);
  cfg.global_partitioned = true;
  System system{cfg};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 150u);
  EXPECT_GT(m.committed, 80u);
  // Remote reads actually exercised the data servers.
  std::uint64_t remote_reads = 0;
  for (net::SiteId s = 0; s < 3; ++s) {
    remote_reads += system.site(s).data_server->remote_reads();
  }
  EXPECT_GT(remote_reads, 0u);
}

TEST(SystemIntegration, RunsAreReproducible) {
  auto signature = [](std::uint64_t seed) {
    System system{small_single_site(Protocol::kPriorityCeiling, seed)};
    system.run_to_completion();
    const auto m = system.metrics();
    return std::tuple{m.committed, m.missed, m.throughput_objects_per_sec,
                      system.kernel().now().as_ticks(),
                      system.kernel().events_executed()};
  };
  EXPECT_EQ(signature(11), signature(11));
  EXPECT_NE(signature(11), signature(12));
}

TEST(SystemIntegration, ExperimentRunnerAveragesSeeds) {
  SystemConfig cfg = small_single_site(Protocol::kPriorityCeiling, 100);
  cfg.workload.transaction_count = 60;
  auto results = ExperimentRunner::run_many(cfg, 4);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.processed, 60u);
  }
  const auto agg = ExperimentRunner::aggregate(
      results, [](const RunResult& r) { return r.metrics.pct_missed; });
  EXPECT_EQ(agg.n, 4u);
  EXPECT_GE(agg.max, agg.mean);
  EXPECT_GE(agg.mean, agg.min);
  EXPECT_GE(ExperimentRunner::mean_throughput(results), 0.0);
}

TEST(SystemIntegration, VersionHistoryEnablesTemporalViews) {
  SystemConfig cfg = small_single_site(Protocol::kPriorityCeiling, 13);
  cfg.keep_version_history = true;
  cfg.workload.read_only_fraction = 0.0;
  System system{cfg};
  system.run_to_completion();
  const auto* mv = system.site(0).rm->version_history();
  ASSERT_NE(mv, nullptr);
  std::size_t versions = 0;
  for (db::ObjectId o = 0; o < 40; ++o) versions += mv->version_count(o);
  EXPECT_GT(versions, 40u);  // initial versions plus committed writes
}

TEST(SystemIntegration, FiniteDisksAndMultipleCpus) {
  // The "relative speed of CPU, I/O" configuration axes: a 2-CPU site with
  // two real disks must still process everything correctly (just with
  // different queueing), and the resources must show utilization.
  SystemConfig cfg = small_single_site(Protocol::kPriorityCeiling, 21);
  cfg.cpus_per_site = 2;
  cfg.disks_per_site = 2;
  System system{cfg};
  system.run_to_completion();
  const auto m = system.metrics();
  EXPECT_EQ(m.processed, 150u);
  EXPECT_GT(m.committed, 120u);
  EXPECT_GT(system.site(0).cpu->busy_time(), Duration::zero());
  EXPECT_GT(system.site(0).io->completed(), 0u);
  EXPECT_EQ(system.site(0).io->queue_length(), 0u);
  std::string why;
  EXPECT_TRUE(system.history()->conflict_serializable(&why)) << why;
}

TEST(SystemIntegration, SingleDiskBecomesTheBottleneck) {
  // With an I/O-bound workload, one disk serializes the accesses that
  // unlimited disks overlap: responses stretch, throughput drops.
  SystemConfig parallel = small_single_site(Protocol::kPriorityCeiling, 22);
  parallel.cpu_per_object = Duration::units(1);
  parallel.io_per_object = Duration::units(5);
  SystemConfig serial = parallel;
  serial.disks_per_site = 1;
  System a{parallel};
  a.run_to_completion();
  System b{serial};
  b.run_to_completion();
  EXPECT_EQ(b.metrics().processed, 150u);
  // Nothing per-transaction is monotone here (deadline kills at different
  // instants change even the number of I/Os issued), so assert the robust
  // facts: the single-disk schedule genuinely differs, the disk did real
  // serialized work, and the queue fully drained.
  EXPECT_NE(b.metrics().avg_response_units, a.metrics().avg_response_units);
  EXPECT_GT(b.site(0).io->busy_time(), Duration::zero());
  EXPECT_EQ(b.site(0).io->busy(), 0);
  EXPECT_EQ(b.site(0).io->queue_length(), 0u);
}

}  // namespace
}  // namespace rtdb::core
