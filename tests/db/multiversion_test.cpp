#include "db/multiversion.hpp"

#include <gtest/gtest.h>

namespace rtdb::db {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at(std::int64_t units) {
  return TimePoint::origin() + Duration::units(units);
}

TEST(MultiVersionTest, InitialVersionAtOrigin) {
  MultiVersionStore mv{3};
  for (ObjectId o = 0; o < 3; ++o) {
    EXPECT_EQ(mv.latest(o).sequence, 0u);
    EXPECT_EQ(mv.version_count(o), 1u);
    EXPECT_EQ(mv.read_at(o, at(100)).sequence, 0u);
  }
}

TEST(MultiVersionTest, ReadAtSelectsVisibleVersion) {
  MultiVersionStore mv{1};
  mv.install(0, Version{1, TxnId{10}, at(5)});
  mv.install(0, Version{2, TxnId{20}, at(15)});
  EXPECT_EQ(mv.read_at(0, at(0)).sequence, 0u);
  EXPECT_EQ(mv.read_at(0, at(4)).sequence, 0u);
  EXPECT_EQ(mv.read_at(0, at(5)).sequence, 1u);   // inclusive
  EXPECT_EQ(mv.read_at(0, at(14)).sequence, 1u);
  EXPECT_EQ(mv.read_at(0, at(15)).sequence, 2u);
  EXPECT_EQ(mv.read_at(0, at(999)).sequence, 2u);
  EXPECT_EQ(mv.latest(0).writer, TxnId{20});
}

TEST(MultiVersionTest, TemporallyConsistentViewAcrossObjects) {
  // The §4 scenario: two radar tracks updated at different instants; a
  // reader at t=12 must see the state as of 12 for both.
  MultiVersionStore mv{2};
  mv.install(0, Version{1, TxnId{1}, at(10)});
  mv.install(1, Version{1, TxnId{2}, at(11)});
  mv.install(0, Version{2, TxnId{3}, at(14)});
  const TimePoint view = at(12);
  EXPECT_EQ(mv.read_at(0, view).sequence, 1u);
  EXPECT_EQ(mv.read_at(1, view).sequence, 1u);
}

TEST(MultiVersionTest, SequenceGapsFromLostPropagationAreAccepted) {
  MultiVersionStore mv{1};
  mv.install(0, Version{3, TxnId{1}, at(5)});  // versions 1-2 never arrived
  EXPECT_EQ(mv.latest(0).sequence, 3u);
}

TEST(MultiVersionTest, LagMeasuresStaleness) {
  MultiVersionStore mv{1};
  mv.install(0, Version{1, TxnId{1}, at(10)});
  EXPECT_EQ(mv.lag(0, at(17)), Duration::units(7));
}

TEST(MultiVersionTest, PruneKeepsVisibleVersions) {
  MultiVersionStore mv{1};
  for (std::uint64_t i = 1; i <= 5; ++i) {
    mv.install(0, Version{i, TxnId{i}, at(static_cast<std::int64_t>(i * 10))});
  }
  EXPECT_EQ(mv.version_count(0), 6u);
  mv.prune_before(at(35));
  // Versions at 10 and 20 dropped; version at 30 is still visible at 35.
  EXPECT_EQ(mv.version_count(0), 3u);
  EXPECT_EQ(mv.read_at(0, at(35)).sequence, 3u);
  EXPECT_EQ(mv.read_at(0, at(40)).sequence, 4u);
  EXPECT_EQ(mv.latest(0).sequence, 5u);
}

}  // namespace
}  // namespace rtdb::db
