#include "db/database.hpp"

#include <gtest/gtest.h>

namespace rtdb::db {
namespace {

TEST(DatabaseTest, SingleSiteHoldsEverything) {
  Database db{DatabaseConfig{100, 1, Placement::kSingleSite}};
  EXPECT_EQ(db.object_count(), 100u);
  for (ObjectId o = 0; o < 100; ++o) {
    EXPECT_EQ(db.primary_site(o), 0u);
    EXPECT_TRUE(db.has_copy(0, o));
    EXPECT_TRUE(db.is_primary(0, o));
  }
  EXPECT_EQ(db.primaries_at(0).size(), 100u);
}

TEST(DatabaseTest, PartitionedRoundRobinHoming) {
  Database db{DatabaseConfig{9, 3, Placement::kPartitioned}};
  for (ObjectId o = 0; o < 9; ++o) {
    EXPECT_EQ(db.primary_site(o), o % 3);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(db.has_copy(s, o), s == o % 3);
    }
  }
  EXPECT_EQ(db.primaries_at(0).size(), 3u);
  EXPECT_EQ(db.primaries_at(1).size(), 3u);
  EXPECT_EQ(db.primaries_at(2).size(), 3u);
}

TEST(DatabaseTest, FullyReplicatedCopiesEverywhere) {
  Database db{DatabaseConfig{10, 3, Placement::kFullyReplicated}};
  for (ObjectId o = 0; o < 10; ++o) {
    EXPECT_EQ(db.primary_site(o), o % 3);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_TRUE(db.has_copy(s, o));
      EXPECT_EQ(db.is_primary(s, o), s == o % 3);
    }
  }
}

TEST(DatabaseTest, PrimariesAtPartitionsTheObjectSpace) {
  Database db{DatabaseConfig{10, 3, Placement::kFullyReplicated}};
  std::size_t total = 0;
  for (SiteId s = 0; s < 3; ++s) total += db.primaries_at(s).size();
  EXPECT_EQ(total, 10u);
}

TEST(TxnIdTest, ValidityAndOrdering) {
  EXPECT_FALSE(TxnId{}.valid());
  EXPECT_TRUE((TxnId{1}).valid());
  EXPECT_TRUE(TxnId{1} < TxnId{2});
  EXPECT_EQ(TxnId{3}, TxnId{3});
}

}  // namespace
}  // namespace rtdb::db
