#include "db/resource_manager.hpp"

#include <gtest/gtest.h>

#include <array>

#include "sim/kernel.hpp"

namespace rtdb::db {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct SingleSite {
  Kernel k;
  Database schema{DatabaseConfig{10, 1, Placement::kSingleSite}};
  sched::IoSubsystem io{k, sched::IoSubsystem::kUnlimited};
  ResourceManager rm{k, schema, 0, io, tu(2)};
};

TEST(ResourceManagerTest, ReadChargesIo) {
  SingleSite s;
  double done_at = -1;
  s.k.spawn("p", [](SingleSite& s, double& done_at) -> Task<void> {
    Version v = co_await s.rm.read(3, Priority{1, 0});
    EXPECT_EQ(v.sequence, 0u);
    done_at = s.k.now().as_units();
  }(s, done_at));
  s.k.run();
  EXPECT_EQ(done_at, 2.0);
  EXPECT_EQ(s.rm.reads(), 1u);
}

TEST(ResourceManagerTest, CommitWritesInstallsVersionsWithIo) {
  SingleSite s;
  s.k.spawn("p", [](SingleSite& s) -> Task<void> {
    const std::array<ObjectId, 3> objs{1, 4, 7};
    auto versions = co_await s.rm.commit_writes(TxnId{42}, objs, Priority{1, 0});
    EXPECT_EQ(versions.size(), 3u);
    EXPECT_EQ(s.k.now().as_units(), 6.0);  // 3 writes x 2tu
    for (ObjectId o : objs) {
      EXPECT_EQ(s.rm.current(o).sequence, 1u);
      EXPECT_EQ(s.rm.current(o).writer, TxnId{42});
    }
    EXPECT_EQ(s.rm.current(0).sequence, 0u);  // untouched object
  }(s));
  s.k.run();
  EXPECT_EQ(s.rm.writes(), 3u);
}

TEST(ResourceManagerTest, ZeroIoCostIsMemoryResident) {
  Kernel k;
  Database schema{DatabaseConfig{5, 1, Placement::kSingleSite}};
  sched::IoSubsystem io{k, sched::IoSubsystem::kUnlimited};
  ResourceManager rm{k, schema, 0, io, Duration::zero()};
  k.spawn("p", [](Kernel& k, ResourceManager& rm) -> Task<void> {
    co_await rm.read(0, Priority{1, 0});
    const std::array<ObjectId, 1> objs{0};
    co_await rm.commit_writes(TxnId{1}, objs, Priority{1, 0});
    EXPECT_EQ(k.now().as_units(), 0.0);  // no I/O charged
  }(k, rm));
  k.run();
  EXPECT_EQ(io.completed(), 0u);
}

TEST(ResourceManagerTest, SequencesIncrementPerCommit) {
  SingleSite s;
  s.k.spawn("p", [](SingleSite& s) -> Task<void> {
    const std::array<ObjectId, 1> objs{2};
    for (std::uint64_t i = 1; i <= 4; ++i) {
      co_await s.rm.commit_writes(TxnId{i}, objs, Priority{1, 0});
      EXPECT_EQ(s.rm.current(2).sequence, i);
    }
  }(s));
  s.k.run();
}

struct Replicated {
  Kernel k;
  Database schema{DatabaseConfig{6, 3, Placement::kFullyReplicated}};
  sched::IoSubsystem io0{k, sched::IoSubsystem::kUnlimited};
  sched::IoSubsystem io1{k, sched::IoSubsystem::kUnlimited};
  // Object 0 is primary at site 0; site 1 holds a secondary copy.
  ResourceManager primary{k, schema, 0, io0, Duration::zero()};
  ResourceManager secondary{k, schema, 1, io1, Duration::zero()};
};

TEST(ResourceManagerTest, ReplicaUpdatesApplyInOrder) {
  Replicated r;
  r.k.spawn("p", [](Replicated& r) -> Task<void> {
    const std::array<ObjectId, 1> objs{0};
    auto v1 = co_await r.primary.commit_writes(TxnId{1}, objs, Priority{1, 0});
    auto v2 = co_await r.primary.commit_writes(TxnId{2}, objs, Priority{1, 0});
    EXPECT_TRUE(r.secondary.apply_replica_update(0, v1[0]));
    EXPECT_TRUE(r.secondary.apply_replica_update(0, v2[0]));
    EXPECT_EQ(r.secondary.current(0).sequence, 2u);
    EXPECT_EQ(r.secondary.current(0).writer, TxnId{2});
  }(r));
  r.k.run();
  EXPECT_EQ(r.secondary.replica_applies(), 2u);
}

TEST(ResourceManagerTest, StaleReplicaUpdateIgnored) {
  Replicated r;
  r.k.spawn("p", [](Replicated& r) -> Task<void> {
    const std::array<ObjectId, 1> objs{0};
    auto v1 = co_await r.primary.commit_writes(TxnId{1}, objs, Priority{1, 0});
    auto v2 = co_await r.primary.commit_writes(TxnId{2}, objs, Priority{1, 0});
    EXPECT_TRUE(r.secondary.apply_replica_update(0, v2[0]));
    EXPECT_FALSE(r.secondary.apply_replica_update(0, v1[0]));  // out of date
    EXPECT_EQ(r.secondary.current(0).sequence, 2u);
  }(r));
  r.k.run();
  EXPECT_EQ(r.secondary.stale_replica_updates(), 1u);
}

TEST(ResourceManagerTest, VersionHistoryEnablesTemporalReads) {
  Kernel k;
  Database schema{DatabaseConfig{2, 1, Placement::kSingleSite}};
  sched::IoSubsystem io{k, sched::IoSubsystem::kUnlimited};
  ResourceManager rm{k, schema, 0, io, Duration::zero(),
                     /*keep_version_history=*/true};
  k.spawn("p", [](Kernel& k, ResourceManager& rm) -> Task<void> {
    const std::array<ObjectId, 1> objs{0};
    co_await k.delay(Duration::units(10));
    co_await rm.commit_writes(TxnId{1}, objs, Priority{1, 0});
    co_await k.delay(Duration::units(10));
    co_await rm.commit_writes(TxnId{2}, objs, Priority{1, 0});
  }(k, rm));
  k.run();
  const auto* mv = rm.version_history();
  EXPECT_NE(mv, nullptr);
  EXPECT_EQ(mv->read_at(0, sim::TimePoint::origin() + tu(15)).writer, TxnId{1});
  EXPECT_EQ(mv->latest(0).writer, TxnId{2});
}

}  // namespace
}  // namespace rtdb::db
