#include "cc/access_set.hpp"

#include <gtest/gtest.h>

namespace rtdb::cc {
namespace {

TEST(AccessSetTest, FromOperationsKeepsOrder) {
  auto set = AccessSet::from_operations({{5, LockMode::kRead},
                                         {2, LockMode::kWrite},
                                         {9, LockMode::kRead}});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.operations()[0], (Operation{5, LockMode::kRead}));
  EXPECT_EQ(set.operations()[1], (Operation{2, LockMode::kWrite}));
  EXPECT_EQ(set.operations()[2], (Operation{9, LockMode::kRead}));
}

TEST(AccessSetTest, DuplicateCoalescesWriteWins) {
  auto set = AccessSet::from_operations({{1, LockMode::kRead},
                                         {2, LockMode::kRead},
                                         {1, LockMode::kWrite}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.writes(1));
  EXPECT_TRUE(set.reads(2));
  EXPECT_EQ(set.operations()[0].object, 1u);  // keeps first position
  EXPECT_EQ(set.write_count(), 1u);
}

TEST(AccessSetTest, WriteThenReadStaysWrite) {
  auto set = AccessSet::from_operations({{3, LockMode::kWrite},
                                         {3, LockMode::kRead}});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.writes(3));
}

TEST(AccessSetTest, Predicates) {
  auto set = AccessSet::reads_then_writes({1, 2}, {3});
  EXPECT_TRUE(set.touches(1));
  EXPECT_TRUE(set.touches(3));
  EXPECT_FALSE(set.touches(4));
  EXPECT_TRUE(set.reads(1));
  EXPECT_FALSE(set.reads(3));
  EXPECT_TRUE(set.writes(3));
  EXPECT_FALSE(set.writes(1));
  EXPECT_FALSE(set.read_only());
  EXPECT_EQ(set.read_set(), (std::vector<db::ObjectId>{1, 2}));
  EXPECT_EQ(set.write_set(), (std::vector<db::ObjectId>{3}));
}

TEST(AccessSetTest, ReadOnly) {
  auto set = AccessSet::reads_then_writes({4, 5}, {});
  EXPECT_TRUE(set.read_only());
  EXPECT_EQ(set.write_count(), 0u);
}

TEST(AccessSetTest, EmptySet) {
  AccessSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.read_only());
  EXPECT_FALSE(set.touches(0));
}

TEST(LockModeTest, Compatibility) {
  EXPECT_TRUE(compatible(LockMode::kRead, LockMode::kRead));
  EXPECT_FALSE(compatible(LockMode::kRead, LockMode::kWrite));
  EXPECT_FALSE(compatible(LockMode::kWrite, LockMode::kRead));
  EXPECT_FALSE(compatible(LockMode::kWrite, LockMode::kWrite));
}

}  // namespace
}  // namespace rtdb::cc
