#include "cc/serializability.hpp"

#include <gtest/gtest.h>

namespace rtdb::cc {
namespace {

db::TxnId T(std::uint64_t v) { return db::TxnId{v}; }

TEST(SerializabilityTest, EmptyHistoryIsSerializable) {
  HistoryRecorder rec;
  EXPECT_TRUE(rec.conflict_serializable());
  EXPECT_EQ(rec.committed_transactions(), 0u);
}

TEST(SerializabilityTest, SerialHistoryPasses) {
  HistoryRecorder rec;
  rec.record(T(1), 0, LockMode::kWrite);
  rec.record(T(1), 1, LockMode::kWrite);
  rec.commit(T(1));
  rec.record(T(2), 0, LockMode::kWrite);
  rec.record(T(2), 1, LockMode::kWrite);
  rec.commit(T(2));
  EXPECT_TRUE(rec.conflict_serializable());
  EXPECT_EQ(rec.committed_operations(), 4u);
}

TEST(SerializabilityTest, InterleavedCompatibleReadsPass) {
  HistoryRecorder rec;
  rec.record(T(1), 0, LockMode::kRead);
  rec.record(T(2), 0, LockMode::kRead);
  rec.record(T(1), 1, LockMode::kRead);
  rec.record(T(2), 1, LockMode::kRead);
  rec.commit(T(1));
  rec.commit(T(2));
  EXPECT_TRUE(rec.conflict_serializable());
}

TEST(SerializabilityTest, WriteWriteCycleDetected) {
  HistoryRecorder rec;
  // w1(A) w2(A) w2(B) w1(B): T1->T2 on A, T2->T1 on B.
  rec.record(T(1), 0, LockMode::kWrite);
  rec.record(T(2), 0, LockMode::kWrite);
  rec.record(T(2), 1, LockMode::kWrite);
  rec.record(T(1), 1, LockMode::kWrite);
  rec.commit(T(1));
  rec.commit(T(2));
  std::string why;
  EXPECT_FALSE(rec.conflict_serializable(&why));
  EXPECT_NE(why.find("cycle"), std::string::npos);
}

TEST(SerializabilityTest, ReadWriteCycleDetected) {
  HistoryRecorder rec;
  // r1(A) w2(A) r2(B) w1(B)
  rec.record(T(1), 0, LockMode::kRead);
  rec.record(T(2), 0, LockMode::kWrite);
  rec.record(T(2), 1, LockMode::kRead);
  rec.record(T(1), 1, LockMode::kWrite);
  rec.commit(T(1));
  rec.commit(T(2));
  EXPECT_FALSE(rec.conflict_serializable());
}

TEST(SerializabilityTest, AbortedOperationsAreDiscarded) {
  HistoryRecorder rec;
  rec.record(T(1), 0, LockMode::kWrite);
  rec.record(T(2), 0, LockMode::kWrite);
  rec.record(T(2), 1, LockMode::kWrite);
  rec.record(T(1), 1, LockMode::kWrite);
  rec.abort(T(2));  // the cycle partner never committed
  rec.commit(T(1));
  EXPECT_TRUE(rec.conflict_serializable());
  EXPECT_EQ(rec.committed_transactions(), 1u);
}

TEST(SerializabilityTest, RestartRecordsAfresh) {
  HistoryRecorder rec;
  rec.record(T(1), 0, LockMode::kWrite);
  rec.abort(T(1));
  rec.record(T(1), 2, LockMode::kWrite);  // second attempt, different object
  rec.commit(T(1));
  rec.record(T(2), 0, LockMode::kWrite);
  rec.commit(T(2));
  EXPECT_TRUE(rec.conflict_serializable());
  EXPECT_EQ(rec.committed_operations(), 2u);
}

TEST(SerializabilityTest, ThreeWayCycleDetected) {
  HistoryRecorder rec;
  // T1->T2 on A, T2->T3 on B, T3->T1 on C.
  rec.record(T(1), 0, LockMode::kWrite);
  rec.record(T(2), 0, LockMode::kWrite);
  rec.record(T(2), 1, LockMode::kWrite);
  rec.record(T(3), 1, LockMode::kWrite);
  rec.record(T(3), 2, LockMode::kWrite);
  rec.record(T(1), 2, LockMode::kWrite);
  rec.commit(T(1));
  rec.commit(T(2));
  rec.commit(T(3));
  EXPECT_FALSE(rec.conflict_serializable());
}

TEST(SerializabilityTest, LongAcyclicChainPasses) {
  HistoryRecorder rec;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    rec.record(T(i), 0, LockMode::kWrite);
    rec.commit(T(i));
  }
  EXPECT_TRUE(rec.conflict_serializable());
}

}  // namespace
}  // namespace rtdb::cc
