#include "cc/deadlock.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rtdb::cc {
namespace {

db::TxnId T(std::uint64_t v) { return db::TxnId{v}; }

TEST(WaitForGraphTest, NoCycleInChain) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(2), T(3));
  EXPECT_TRUE(g.find_cycle_from(T(1)).empty());
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(WaitForGraphTest, DetectsTwoCycle) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(2), T(1));
  auto cycle = g.find_cycle_from(T(1));
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), T(1)) != cycle.end());
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), T(2)) != cycle.end());
}

TEST(WaitForGraphTest, DetectsLongCycleReachableFromStart) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(2), T(3));
  g.add_edge(T(3), T(4));
  g.add_edge(T(4), T(2));  // cycle 2-3-4, reachable from 1 but excluding it
  auto cycle = g.find_cycle_from(T(1));
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), T(1)) == cycle.end());
}

TEST(WaitForGraphTest, SelfEdgeIgnored) {
  WaitForGraph g;
  g.add_edge(T(1), T(1));
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.find_cycle_from(T(1)).empty());
}

TEST(WaitForGraphTest, ClearWaitsBreaksCycle) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(2), T(1));
  g.clear_waits_of(T(2));
  EXPECT_TRUE(g.find_cycle_from(T(1)).empty());
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(WaitForGraphTest, RemoveDropsIncomingEdgesToo) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(3), T(2));
  g.add_edge(T(2), T(3));
  g.remove(T(2));
  EXPECT_TRUE(g.empty());
}

TEST(WaitForGraphTest, MultipleTargetsPerWaiter) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(1), T(3));
  EXPECT_EQ(g.waits_of(T(1)).size(), 2u);
  g.add_edge(T(3), T(1));
  auto cycle = g.find_cycle_from(T(1));
  ASSERT_FALSE(cycle.empty());
}

TEST(WaitForGraphTest, DiamondWithoutCycle) {
  WaitForGraph g;
  g.add_edge(T(1), T(2));
  g.add_edge(T(1), T(3));
  g.add_edge(T(2), T(4));
  g.add_edge(T(3), T(4));
  EXPECT_TRUE(g.find_cycle_from(T(1)).empty());
}

TEST(WaitForGraphTest, CycleOrderStartsAtEntryPoint) {
  WaitForGraph g;
  g.add_edge(T(5), T(6));
  g.add_edge(T(6), T(7));
  g.add_edge(T(7), T(5));
  auto cycle = g.find_cycle_from(T(5));
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), T(5));  // path suffix starts at the repeat node
}

}  // namespace
}  // namespace rtdb::cc
