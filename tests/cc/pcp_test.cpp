#include "cc/pcp.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"

namespace rtdb::cc {
namespace {

using sim::Duration;
using sim::Kernel;
using testutil::make_txn;
using testutil::Rig;
using testutil::ScriptResult;
using testutil::spawn_scripted;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(PcpTest, StaticCeilingsTrackActiveDeclarations) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  CcTxn hi = make_txn(1, 1);
  hi.access = AccessSet::reads_then_writes({3}, {4});
  CcTxn lo = make_txn(2, 5);
  lo.access = AccessSet::reads_then_writes({4}, {3});
  cc.on_begin(hi);
  // hi may read 3 and write 4.
  EXPECT_EQ(cc.absolute_ceiling(3), hi.base_priority);
  EXPECT_EQ(cc.write_ceiling(3), sim::Priority::lowest());
  EXPECT_EQ(cc.write_ceiling(4), hi.base_priority);
  cc.on_begin(lo);
  // lo writes 3: write ceiling of 3 rises to lo's priority.
  EXPECT_EQ(cc.write_ceiling(3), lo.base_priority);
  EXPECT_EQ(cc.absolute_ceiling(3), hi.base_priority);
  cc.on_end(hi);
  EXPECT_EQ(cc.absolute_ceiling(3), lo.base_priority);
  EXPECT_EQ(cc.write_ceiling(4), sim::Priority::lowest());
  cc.on_end(lo);
  EXPECT_EQ(cc.absolute_ceiling(3), sim::Priority::lowest());
}

TEST(PcpTest, RwCeilingFollowsLockMode) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn hi = make_txn(1, 1);   // may write object 0
  CcTxn mid = make_txn(2, 5);  // reads object 0
  ScriptResult rh, rm;
  // mid read-locks 0 from t=0 to t=10.
  spawn_scripted(rig, mid, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), rm);
  // hi declares a write on 0 but only arrives later.
  spawn_scripted(rig, hi, {{0, LockMode::kWrite}}, tu(2), tu(2), tu(0), rh);
  bool checked = false;
  k.schedule_in(tu(1), [&] {
    // Read-locked: rw ceiling equals the write ceiling (currently lowest,
    // hi has not begun yet, so no one may write 0).
    auto ceiling = cc.rw_ceiling(0);
    EXPECT_TRUE(ceiling.has_value());
    EXPECT_EQ(*ceiling, sim::Priority::lowest());
    checked = true;
  });
  bool checked_after = false;
  k.schedule_in(tu(3), [&] {
    // hi began at 2 and declared the write: the rw ceiling of the read lock
    // must now reflect hi's priority, and hi must be blocked.
    auto ceiling = cc.rw_ceiling(0);
    EXPECT_TRUE(ceiling.has_value());
    EXPECT_EQ(*ceiling, hi.base_priority);
    EXPECT_EQ(cc.waiter_count(), 1u);
    checked_after = true;
  });
  k.run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(checked_after);
  EXPECT_TRUE(rh.committed);
  EXPECT_EQ(rh.committed_at, 12.0);  // waited for mid's release at 10
}

// The paper's §3.2 example: the ceiling protocol may forbid locking an
// *unlocked* object — the "insurance premium". The high-priority declarer
// must already be active (its declaration sets the ceiling) even though it
// performs its access late.
TEST(PcpTest, CeilingDenialOnUnlockedObject) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1);  // highest: declares object 0, accesses late
  CcTxn t2 = make_txn(2, 2);  // middle: accesses object 1 only
  CcTxn t3 = make_txn(3, 3);  // lowest: locks object 0 first
  ScriptResult r1, r2, r3;
  // t3 locks object 0 from t=0 to t=20.
  spawn_scripted(rig, t3, {{0, LockMode::kWrite}}, tu(0), tu(20), tu(0), r3);
  // t1 begins at t=0 (declaring its write on object 0, which sets the
  // ceiling) but only requests the lock at t=15.
  auto late_accessor = [](Rig& rig, CcTxn& ctx, ScriptResult& r) -> sim::Task<void> {
    ctx.access = AccessSet::reads_then_writes({}, {0});
    rig.cc().on_begin(ctx);
    try {
      co_await rig.kernel().delay(Duration::units(15));
      co_await rig.cc().acquire(ctx, 0, LockMode::kWrite);
      co_await rig.kernel().delay(Duration::units(1));
      r.committed = true;
      r.committed_at = rig.kernel().now().as_units();
    } catch (const TxnAborted&) {
      r.self_aborted = true;
    }
    rig.cc().release_all(ctx);
    rig.cc().on_end(ctx);
  };
  rig.track(t1, k.spawn("t1", late_accessor(rig, t1, r1)));
  // t2 requests the *unlocked* object 1 at t=5: denied because its priority
  // is not higher than the ceiling of locked object 0 (= t1's priority).
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}}, tu(5), tu(1), tu(0), r2);
  k.run();
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(t2.ceiling_blocks, 1u);
  EXPECT_GE(cc.ceiling_denials(), 1u);
  // t3 releases at 20; t1 (highest) then locks 0 and commits at 21,
  // unblocking t2 which commits at 22.
  EXPECT_EQ(r1.committed_at, 21.0);
  EXPECT_EQ(r2.committed_at, 22.0);
  EXPECT_EQ(cc.dynamic_deadlocks(), 0u);
}

// §3.1/§3.2: under the ceiling protocol T1 is "blocked at most once" even
// when two of its objects are held by two lower-priority transactions —
// contrast with the PIP chained-blocking test in two_phase_test.cpp.
TEST(PcpTest, NoChainedBlocking) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2), t3 = make_txn(3, 3);
  ScriptResult r1, r2, r3;
  spawn_scripted(rig, t3, {{2, LockMode::kWrite}}, tu(0), tu(20), tu(0), r3);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}}, tu(1), tu(10), tu(0), r2);
  spawn_scripted(rig, t1, {{1, LockMode::kWrite}, {2, LockMode::kWrite}},
                 tu(2), tu(1), tu(0), r1);
  k.run();
  EXPECT_TRUE(r1.committed);
  EXPECT_LE(t1.block_count, 1u);  // the block-at-most-once property
}

// Transactions with the 2PL deadlock pattern cannot deadlock under PCP.
TEST(PcpTest, ClassicDeadlockPatternIsSafe) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}, {1, LockMode::kWrite}},
                 tu(0), tu(5), tu(0), r1);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(1), tu(5), tu(0), r2);
  k.run();  // termination itself proves deadlock freedom
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(cc.protocol_aborts(), 0u);
}

TEST(PcpTest, ReadersShareWhenNoWriterDeclared) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), r1);
  spawn_scripted(rig, t2, {{0, LockMode::kRead}}, tu(1), tu(10), tu(0), r2);
  k.run();
  // No writer declares object 0, so its write ceiling stays lowest and the
  // second reader passes the ceiling test: true read sharing.
  EXPECT_EQ(r1.committed_at, 10.0);
  EXPECT_EQ(r2.committed_at, 11.0);
  EXPECT_EQ(cc.blocks(), 0u);
}

TEST(PcpTest, ExclusiveOnlyVariantBlocksReaders) {
  Kernel k;
  PriorityCeiling cc{k, 10, PriorityCeiling::Options{true}};
  EXPECT_EQ(cc.name(), "PCP-X");
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), r1);
  spawn_scripted(rig, t2, {{0, LockMode::kRead}}, tu(1), tu(10), tu(0), r2);
  k.run();
  // Exclusive semantics: the second "reader" serializes behind the first.
  EXPECT_EQ(r1.committed_at, 10.0);
  EXPECT_EQ(r2.committed_at, 20.0);
}

TEST(PcpTest, InheritanceBoostsBlockingHolder) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn lo = make_txn(1, 9), hi = make_txn(2, 1);
  std::int64_t lo_best_key = 100;
  rig.on_priority_changed = [&](const CcTxn& t) {
    if (t.id.value == 1) {
      lo_best_key = std::min(lo_best_key, t.effective_priority().key());
    }
  };
  ScriptResult rl, rh;
  spawn_scripted(rig, lo, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), rl);
  spawn_scripted(rig, hi, {{0, LockMode::kWrite}}, tu(1), tu(1), tu(0), rh);
  k.run();
  EXPECT_EQ(lo_best_key, 1);  // lo inherited hi's priority while blocking it
  EXPECT_TRUE(rl.committed);
  EXPECT_TRUE(rh.committed);
}

TEST(PcpTest, KilledWaiterRestoresState) {
  Kernel k;
  PriorityCeiling cc{k, 10};
  Rig rig{k, cc};
  CcTxn holder = make_txn(1, 2), waiter = make_txn(2, 1);
  ScriptResult rh, rw;
  spawn_scripted(rig, holder, {{0, LockMode::kWrite}}, tu(0), tu(20), tu(0), rh);
  auto pid = spawn_scripted(rig, waiter, {{0, LockMode::kWrite}}, tu(1), tu(5),
                            tu(0), rw);
  k.schedule_in(tu(5), [&] {
    EXPECT_EQ(cc.waiter_count(), 1u);
    k.kill(pid);
    cc.release_all(waiter);
    cc.on_end(waiter);
    EXPECT_EQ(cc.waiter_count(), 0u);
    // The inheritance the waiter caused must be withdrawn.
    EXPECT_EQ(holder.effective_priority(), holder.base_priority);
  });
  k.run();
  EXPECT_TRUE(rh.committed);
  EXPECT_FALSE(rw.committed);
  EXPECT_EQ(cc.active_transactions(), 0u);
}

// Property sweep: random transaction mixes with dynamic arrivals. Every
// run must terminate, every transaction must either commit or be one of
// the (rare) dynamic-arrival backstop victims, and the protocol state must
// drain completely.
class PcpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcpPropertyTest, TerminatesAndDrainsUnderDynamicArrivals) {
  Kernel k;
  constexpr std::uint32_t kObjects = 12;
  PriorityCeiling cc{k, kObjects};
  Rig rig{k, cc};
  sim::RandomStream rng{GetParam()};

  constexpr int kTxns = 40;
  std::vector<CcTxn> txns(kTxns);
  std::vector<ScriptResult> results(kTxns);
  for (int i = 0; i < kTxns; ++i) {
    txns[i] = make_txn(static_cast<std::uint64_t>(i + 1),
                       rng.uniform_int(0, 1000));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
    auto objects = rng.sample_without_replacement(kObjects, size);
    std::vector<Operation> ops;
    const bool read_only = rng.bernoulli(0.4);
    for (auto o : objects) {
      ops.push_back(Operation{o, read_only ? LockMode::kRead : LockMode::kWrite});
    }
    spawn_scripted(rig, txns[i], ops,
                   Duration::units(rng.uniform_int(0, 100)),
                   Duration::units(rng.uniform_int(1, 4)),
                   Duration::units(rng.uniform_int(0, 3)), results[i]);
  }

  // Invariant probe: while blocked, a transaction is blocked by exactly one
  // lock, so its lower-priority *write* blockers never exceed one (several
  // lower-priority blockers can only be co-readers of that single lock).
  int max_write_blockers = 0;
  for (int t = 0; t <= 200; ++t) {
    k.schedule_in(tu(t), [&] {
      for (const CcTxn& txn : txns) {
        if (!txn.blocked) continue;
        const auto blockers = cc.lower_priority_blockers_of(txn);
        max_write_blockers =
            std::max(max_write_blockers, static_cast<int>(blockers.size()));
      }
    });
  }
  k.run();  // termination itself is the liveness property

  int aborted = 0;
  for (int i = 0; i < kTxns; ++i) {
    const bool ok = results[i].committed || rig.hook_aborted(txns[i]) ||
                    results[i].self_aborted;
    EXPECT_TRUE(ok) << "txn " << i << " neither committed nor aborted";
    if (!results[i].committed) ++aborted;
  }
  // The dynamic-arrival backstop is a rare event, not the common path.
  EXPECT_LE(cc.dynamic_deadlocks(), static_cast<std::uint64_t>(kTxns / 5));
  EXPECT_EQ(aborted, static_cast<int>(cc.dynamic_deadlocks()));
  EXPECT_EQ(cc.waiter_count(), 0u);
  EXPECT_EQ(cc.active_transactions(), 0u);
  (void)max_write_blockers;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcpPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234, 99999));

// The Sha-Rajkumar-Lehoczky guarantees in the *static* setting the
// protocol was designed for (every transaction declared before any lock is
// taken): no deadlock can form — the dynamic-arrival backstop never fires —
// and at any instant a transaction is blocked through at most ONE lock
// held by lower-priority transactions (several simultaneous lower-priority
// blockers can only be co-readers of that one lock).
//
// Note the deliberate scope: the single-processor task-model corollary
// ("at most one lower-priority blocking interval over the whole lifetime")
// does not transfer to transactions whose I/O overlaps — between two of
// T's operations a lower-priority transaction may legitimately acquire a
// fresh lock (nothing else is locked at that moment) and block T's next
// request. The per-instant bound and deadlock freedom are what the
// database setting keeps, and what this sweep checks.
class PcpStaticTheoremTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcpStaticTheoremTest, StaticSetsNeverDeadlockAndBlockThroughOneLock) {
  Kernel k;
  constexpr std::uint32_t kObjects = 10;
  PriorityCeiling cc{k, kObjects};
  Rig rig{k, cc};
  sim::RandomStream rng{GetParam()};

  constexpr int kTxns = 16;
  std::vector<CcTxn> txns(kTxns);
  std::vector<ScriptResult> results(kTxns);
  // Truly static task set: every transaction registers its declaration at
  // t=0 and only starts acquiring at t=1, so all ceilings are in place
  // before the first lock is taken (the setting the theorem assumes).
  auto static_body = [](Rig& rig, CcTxn& ctx, std::vector<Operation> ops,
                        Duration per_op, Duration tail,
                        ScriptResult& result) -> sim::Task<void> {
    ctx.access = AccessSet::from_operations(ops);
    rig.cc().on_begin(ctx);
    try {
      co_await rig.kernel().delay(Duration::units(1));
      for (const Operation& op : ops) {
        co_await rig.cc().acquire(ctx, op.object, op.mode);
        co_await rig.kernel().delay(per_op);
      }
      co_await rig.kernel().delay(tail);
      result.committed = true;
      result.committed_at = rig.kernel().now().as_units();
    } catch (const TxnAborted& aborted) {
      result.self_aborted = true;
      result.self_abort_reason = aborted.reason();
    }
    rig.cc().release_all(ctx);
    rig.cc().on_end(ctx);
  };
  for (int i = 0; i < kTxns; ++i) {
    txns[i] = make_txn(static_cast<std::uint64_t>(i + 1),
                       rng.uniform_int(0, 1000));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    auto objects = rng.sample_without_replacement(kObjects, size);
    std::vector<Operation> ops;
    const bool read_only = rng.bernoulli(0.3);
    for (auto o : objects) {
      ops.push_back(Operation{o, read_only ? LockMode::kRead : LockMode::kWrite});
    }
    sim::ProcessId pid = k.spawn(
        "txn-" + std::to_string(i + 1),
        static_body(rig, txns[i], std::move(ops),
                    Duration::units(rng.uniform_int(1, 5)),
                    Duration::units(rng.uniform_int(0, 3)), results[i]));
    rig.track(txns[i], pid);
  }

  // Per-instant theorem check: for every active transaction, the locks
  // held by lower-priority transactions that could deny it never number
  // more than one.
  int worst = 0;
  std::vector<bool> active(kTxns, false);
  for (int i = 0; i < kTxns; ++i) {
    // track activity via the rig's results (committed => inactive)
    active[i] = true;
  }
  for (int t = 0; t <= 150; ++t) {
    k.schedule_in(Duration::units(t), [&] {
      for (int i = 0; i < kTxns; ++i) {
        if (results[i].committed || results[i].self_aborted) continue;
        const int locks =
            static_cast<int>(cc.lower_priority_blocking_txns(txns[i]));
        worst = std::max(worst, locks);
      }
    });
  }
  k.run();

  for (int i = 0; i < kTxns; ++i) {
    EXPECT_TRUE(results[i].committed) << "txn " << i;
  }
  EXPECT_LE(worst, 1)
      << "a transaction faced more than one lower-priority blocking transaction";
  EXPECT_EQ(cc.dynamic_deadlocks(), 0u);
  EXPECT_EQ(cc.protocol_aborts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcpStaticTheoremTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace rtdb::cc
