// Randomized property sweep of the lock table: under arbitrary interleaved
// grant / enqueue / cancel / release traffic, the holder set of every
// object stays mutually compatible, waiters are never stranded (a
// compatible head is always promoted), and the queue respects the policy.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "cc/lock_table.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/semaphore.hpp"

namespace rtdb::cc {
namespace {

struct Actor {
  CcTxn txn;
  // One outstanding request at a time, heap-allocated so pointers stay
  // stable in the queue.
  std::unique_ptr<LockTable::Request> request;
  std::unique_ptr<sim::Semaphore> wakeup;
  std::vector<db::ObjectId> held;
};

class LockTablePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<LockTable::QueuePolicy, std::uint64_t>> {};

TEST_P(LockTablePropertyTest, InvariantsHoldUnderRandomTraffic) {
  const auto [policy, seed] = GetParam();
  sim::Kernel k;
  LockTable table{policy};
  sim::RandomStream rng{seed};
  constexpr int kActors = 12;
  constexpr std::uint32_t kObjects = 6;

  std::vector<Actor> actors(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors[i].txn.id = db::TxnId{static_cast<std::uint64_t>(i + 1)};
    actors[i].txn.base_priority =
        sim::Priority{rng.uniform_int(0, 100), static_cast<std::uint32_t>(i)};
    actors[i].wakeup = std::make_unique<sim::Semaphore>(k, 0);
  }

  // Mode of each holder per object, mirrored outside the table to check
  // compatibility independently.
  std::map<db::ObjectId, std::vector<std::pair<int, LockMode>>> mirror;

  auto check_invariants = [&] {
    for (auto& [object, holders] : mirror) {
      // All pairs of holders compatible.
      for (std::size_t a = 0; a < holders.size(); ++a) {
        for (std::size_t b = a + 1; b < holders.size(); ++b) {
          ASSERT_TRUE(compatible(holders[a].second, holders[b].second))
              << "incompatible holders coexist on object " << object;
        }
      }
      // Mirror matches the table.
      ASSERT_EQ(table.holders_of(object).size(), holders.size());
      // Never strand a compatible head: if anything waits, it must
      // genuinely conflict with the current holders or (FIFO) someone ahead.
      for (LockTable::Request* queued : table.queued_requests(object)) {
        ASSERT_FALSE(table.blockers_of(*queued).empty())
            << "waiter with no blockers was not promoted on object " << object;
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    Actor& actor = actors[static_cast<std::size_t>(
        rng.uniform_int(0, kActors - 1))];
    const auto drain_grant = [&](Actor& a) {
      // A release may have granted a queued request.
      if (a.request != nullptr && a.request->granted) {
        a.held.push_back(a.request->object);
        mirror[a.request->object].emplace_back(
            static_cast<int>(a.txn.id.value), a.request->mode);
        a.request.reset();
      }
    };
    for (auto& other : actors) drain_grant(other);

    const int action = static_cast<int>(rng.uniform_int(0, 9));
    if (action < 5 && actor.request == nullptr) {
      // Try to lock a random object we do not hold yet.
      const auto object =
          static_cast<db::ObjectId>(rng.uniform_int(0, kObjects - 1));
      if (std::find(actor.held.begin(), actor.held.end(), object) !=
          actor.held.end()) {
        continue;
      }
      const LockMode mode =
          rng.bernoulli(0.5) ? LockMode::kRead : LockMode::kWrite;
      if (table.try_grant(actor.txn, object, mode)) {
        actor.held.push_back(object);
        mirror[object].emplace_back(static_cast<int>(actor.txn.id.value), mode);
      } else {
        actor.request = std::make_unique<LockTable::Request>(
            LockTable::Request{&actor.txn, object, mode, actor.wakeup.get(),
                               false, 0});
        table.enqueue(*actor.request);
      }
    } else if (action < 7 && actor.request != nullptr &&
               !actor.request->granted) {
      // Abandon the wait (the kill path).
      table.cancel(*actor.request);
      actor.request.reset();
    } else if (action < 10 && !actor.held.empty()) {
      // Commit: drop everything.
      table.release_all(actor.txn);
      auto& held = actor.held;
      for (const db::ObjectId object : held) {
        auto& holders = mirror[object];
        std::erase_if(holders, [&](const auto& h) {
          return h.first == static_cast<int>(actor.txn.id.value);
        });
      }
      held.clear();
    }
    for (auto& other : actors) drain_grant(other);
    check_invariants();
  }

  // Drain: release everything, cancel every wait; the table must empty.
  for (auto& actor : actors) {
    if (actor.request != nullptr && !actor.request->granted) {
      table.cancel(*actor.request);
      actor.request.reset();
    }
  }
  for (auto& actor : actors) {
    if (actor.request != nullptr && actor.request->granted) {
      actor.held.push_back(actor.request->object);
      actor.request.reset();
    }
    table.release_all(actor.txn);
  }
  EXPECT_EQ(table.waiting_requests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockTablePropertyTest,
    ::testing::Combine(::testing::Values(LockTable::QueuePolicy::kFifo,
                                         LockTable::QueuePolicy::kPriority),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace
}  // namespace rtdb::cc
