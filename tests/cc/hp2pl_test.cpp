#include "cc/hp2pl.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"

namespace rtdb::cc {
namespace {

using sim::Duration;
using sim::Kernel;
using testutil::make_txn;
using testutil::Rig;
using testutil::ScriptResult;
using testutil::spawn_scripted;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(Hp2plTest, HighPriorityWoundsLowHolder) {
  Kernel k;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  CcTxn lo = make_txn(1, 9), hi = make_txn(2, 1);
  ScriptResult rl, rh;
  spawn_scripted(rig, lo, {{0, LockMode::kWrite}}, tu(0), tu(20), tu(0), rl);
  spawn_scripted(rig, hi, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rh);
  k.run();
  EXPECT_EQ(cc.wounds(), 1u);
  EXPECT_TRUE(rig.hook_aborted(lo));
  EXPECT_FALSE(rl.committed);
  EXPECT_TRUE(rh.committed);
  EXPECT_EQ(rh.committed_at, 6.0);  // no waiting: wound at 1, done at 6
}

TEST(Hp2plTest, LowPriorityWaitsForHighHolder) {
  Kernel k;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  CcTxn hi = make_txn(1, 1), lo = make_txn(2, 9);
  ScriptResult rh, rl;
  spawn_scripted(rig, hi, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), rh);
  spawn_scripted(rig, lo, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rl);
  k.run();
  EXPECT_EQ(cc.wounds(), 0u);
  EXPECT_TRUE(rh.committed);
  EXPECT_TRUE(rl.committed);
  EXPECT_EQ(rl.committed_at, 15.0);  // waited for hi's release at 10
}

TEST(Hp2plTest, MixedHoldersNoWound) {
  Kernel k;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  // Two readers hold the object: one higher, one lower than the writer.
  CcTxn r_hi = make_txn(1, 1), r_lo = make_txn(2, 9), w = make_txn(3, 5);
  ScriptResult rr1, rr2, rw;
  spawn_scripted(rig, r_hi, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), rr1);
  spawn_scripted(rig, r_lo, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), rr2);
  spawn_scripted(rig, w, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rw);
  k.run();
  // One holder outranks the writer, so nobody is wounded; the writer waits.
  EXPECT_EQ(cc.wounds(), 0u);
  EXPECT_TRUE(rr1.committed);
  EXPECT_TRUE(rr2.committed);
  EXPECT_TRUE(rw.committed);
  EXPECT_EQ(rw.committed_at, 15.0);
}

TEST(Hp2plTest, WoundsAllConflictingLowerReaders) {
  Kernel k;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  CcTxn r1 = make_txn(1, 8), r2 = make_txn(2, 9), w = make_txn(3, 1);
  ScriptResult rr1, rr2, rw;
  spawn_scripted(rig, r1, {{0, LockMode::kRead}}, tu(0), tu(20), tu(0), rr1);
  spawn_scripted(rig, r2, {{0, LockMode::kRead}}, tu(0), tu(20), tu(0), rr2);
  spawn_scripted(rig, w, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rw);
  k.run();
  EXPECT_EQ(cc.wounds(), 2u);
  EXPECT_FALSE(rr1.committed);
  EXPECT_FALSE(rr2.committed);
  EXPECT_TRUE(rw.committed);
  EXPECT_EQ(rw.committed_at, 6.0);
}

TEST(Hp2plTest, ReadersStillShare) {
  Kernel k;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  CcTxn a = make_txn(1, 1), b = make_txn(2, 2);
  ScriptResult ra, rb;
  spawn_scripted(rig, a, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), ra);
  spawn_scripted(rig, b, {{0, LockMode::kRead}}, tu(1), tu(10), tu(0), rb);
  k.run();
  EXPECT_EQ(cc.wounds(), 0u);
  EXPECT_EQ(ra.committed_at, 10.0);
  EXPECT_EQ(rb.committed_at, 11.0);
}

// No deadlock is possible: a random stress mix must always run to
// completion with every transaction either committed or wounded.
class Hp2plPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Hp2plPropertyTest, DeadlockFreeUnderRandomMix) {
  Kernel k;
  constexpr std::uint32_t kObjects = 10;
  HighPriority2PL cc{k};
  Rig rig{k, cc};
  sim::RandomStream rng{GetParam()};
  constexpr int kTxns = 30;
  std::vector<CcTxn> txns(kTxns);
  std::vector<ScriptResult> results(kTxns);
  for (int i = 0; i < kTxns; ++i) {
    txns[i] = make_txn(static_cast<std::uint64_t>(i + 1),
                       rng.uniform_int(0, 1000));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    auto objects = rng.sample_without_replacement(kObjects, size);
    std::vector<Operation> ops;
    for (auto o : objects) {
      ops.push_back(Operation{
          o, rng.bernoulli(0.5) ? LockMode::kRead : LockMode::kWrite});
    }
    spawn_scripted(rig, txns[i], ops, Duration::units(rng.uniform_int(0, 60)),
                   Duration::units(rng.uniform_int(1, 4)), Duration::zero(),
                   results[i]);
  }
  k.run();  // termination proves deadlock freedom
  for (int i = 0; i < kTxns; ++i) {
    EXPECT_TRUE(results[i].committed || rig.hook_aborted(txns[i]))
        << "txn " << i << " neither committed nor wounded";
  }
  EXPECT_EQ(cc.table().waiting_requests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hp2plPropertyTest,
                         ::testing::Values(7, 21, 77, 2024));

}  // namespace
}  // namespace rtdb::cc
