#include "cc/lock_table.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/semaphore.hpp"

namespace rtdb::cc {
namespace {

CcTxn make(std::uint64_t id, std::int64_t key) {
  CcTxn t;
  t.id = db::TxnId{id};
  t.base_priority = sim::Priority{key, static_cast<std::uint32_t>(id)};
  return t;
}

TEST(LockTableTest, ReadLocksShare) {
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn a = make(1, 1), b = make(2, 2);
  EXPECT_TRUE(table.try_grant(a, 7, LockMode::kRead));
  EXPECT_TRUE(table.try_grant(b, 7, LockMode::kRead));
  EXPECT_EQ(table.holders_of(7).size(), 2u);
  EXPECT_TRUE(table.holds(a, 7));
  EXPECT_TRUE(table.holds(b, 7));
}

TEST(LockTableTest, WriteExcludesEverything) {
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn a = make(1, 1), b = make(2, 2);
  EXPECT_TRUE(table.try_grant(a, 7, LockMode::kWrite));
  EXPECT_FALSE(table.try_grant(b, 7, LockMode::kRead));
  EXPECT_FALSE(table.try_grant(b, 7, LockMode::kWrite));
  EXPECT_FALSE(table.try_grant(b, 7, LockMode::kRead));
}

TEST(LockTableTest, ReadBlocksWrite) {
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn a = make(1, 1), b = make(2, 2);
  EXPECT_TRUE(table.try_grant(a, 3, LockMode::kRead));
  EXPECT_FALSE(table.try_grant(b, 3, LockMode::kWrite));
}

TEST(LockTableTest, ReleaseAllGrantsFifoWaiters) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn a = make(1, 1), b = make(2, 2), c = make(3, 3);
  ASSERT_TRUE(table.try_grant(a, 5, LockMode::kWrite));
  sim::Semaphore sb{k, 0}, sc{k, 0};
  LockTable::Request rb{&b, 5, LockMode::kWrite, &sb, false, 0};
  LockTable::Request rc{&c, 5, LockMode::kWrite, &sc, false, 0};
  table.enqueue(rb);
  table.enqueue(rc);
  EXPECT_EQ(table.waiting_requests(), 2u);
  auto touched = table.release_all(a);
  EXPECT_EQ(touched, (std::vector<db::ObjectId>{5}));
  EXPECT_TRUE(rb.granted);   // FIFO: b first
  EXPECT_FALSE(rc.granted);  // c conflicts with b
  EXPECT_EQ(sb.available(), 1);
  EXPECT_EQ(table.waiting_requests(), 1u);
}

TEST(LockTableTest, PriorityQueueOrdersByPriority) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kPriority};
  CcTxn holder = make(1, 5), low = make(2, 9), high = make(3, 1);
  ASSERT_TRUE(table.try_grant(holder, 4, LockMode::kWrite));
  sim::Semaphore sl{k, 0}, sh{k, 0};
  LockTable::Request rl{&low, 4, LockMode::kWrite, &sl, false, 0};
  LockTable::Request rh{&high, 4, LockMode::kWrite, &sh, false, 0};
  table.enqueue(rl);   // lower priority arrives first
  table.enqueue(rh);   // higher priority jumps ahead
  table.release_all(holder);
  EXPECT_TRUE(rh.granted);
  EXPECT_FALSE(rl.granted);
}

TEST(LockTableTest, NewcomerCannotBargeFifoQueue) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn holder = make(1, 1), waiter = make(2, 2), newcomer = make(3, 3);
  ASSERT_TRUE(table.try_grant(holder, 9, LockMode::kRead));
  sim::Semaphore sw{k, 0};
  LockTable::Request rw{&waiter, 9, LockMode::kWrite, &sw, false, 0};
  table.enqueue(rw);
  // A read would be compatible with the holder, but the queued writer is
  // ahead in FIFO order.
  EXPECT_FALSE(table.try_grant(newcomer, 9, LockMode::kRead));
}

TEST(LockTableTest, HighPriorityNewcomerOvertakesInPriorityMode) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kPriority};
  CcTxn holder = make(1, 5), waiter = make(2, 6), urgent = make(3, 1);
  ASSERT_TRUE(table.try_grant(holder, 9, LockMode::kRead));
  sim::Semaphore sw{k, 0};
  LockTable::Request rw{&waiter, 9, LockMode::kWrite, &sw, false, 0};
  table.enqueue(rw);
  // The urgent read is compatible with holders and outranks the queued
  // writer, so priority mode grants it immediately.
  EXPECT_TRUE(table.try_grant(urgent, 9, LockMode::kRead));
}

TEST(LockTableTest, PromoteGrantsReadBatch) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn w = make(1, 1), r1 = make(2, 2), r2 = make(3, 3), w2 = make(4, 4);
  ASSERT_TRUE(table.try_grant(w, 2, LockMode::kWrite));
  sim::Semaphore s1{k, 0}, s2{k, 0}, s3{k, 0};
  LockTable::Request q1{&r1, 2, LockMode::kRead, &s1, false, 0};
  LockTable::Request q2{&r2, 2, LockMode::kRead, &s2, false, 0};
  LockTable::Request q3{&w2, 2, LockMode::kWrite, &s3, false, 0};
  table.enqueue(q1);
  table.enqueue(q2);
  table.enqueue(q3);
  table.release_all(w);
  EXPECT_TRUE(q1.granted);
  EXPECT_TRUE(q2.granted);   // both readers granted together
  EXPECT_FALSE(q3.granted);  // writer waits for the readers
}

TEST(LockTableTest, CancelRemovesWaiterAndPromotes) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn holder = make(1, 1), doomed = make(2, 2), next = make(3, 3);
  ASSERT_TRUE(table.try_grant(holder, 6, LockMode::kRead));
  sim::Semaphore sd{k, 0}, sn{k, 0};
  LockTable::Request rd{&doomed, 6, LockMode::kWrite, &sd, false, 0};
  LockTable::Request rn{&next, 6, LockMode::kRead, &sn, false, 0};
  table.enqueue(rd);
  table.enqueue(rn);
  table.cancel(rd);
  // With the writer gone the read shares with the holder.
  EXPECT_TRUE(rn.granted);
  EXPECT_EQ(table.waiting_requests(), 0u);
}

TEST(LockTableTest, BlockersIncludeHoldersAndQueueAhead) {
  sim::Kernel k;
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn holder = make(1, 1), ahead = make(2, 2), behind = make(3, 3);
  ASSERT_TRUE(table.try_grant(holder, 8, LockMode::kRead));
  sim::Semaphore sa{k, 0}, sb{k, 0};
  LockTable::Request ra{&ahead, 8, LockMode::kWrite, &sa, false, 0};
  LockTable::Request rb{&behind, 8, LockMode::kRead, &sb, false, 0};
  table.enqueue(ra);
  table.enqueue(rb);
  auto blockers_a = table.blockers_of(ra);
  ASSERT_EQ(blockers_a.size(), 1u);
  EXPECT_EQ(blockers_a[0]->id, holder.id);  // read holder conflicts with write
  auto blockers_b = table.blockers_of(rb);
  ASSERT_EQ(blockers_b.size(), 1u);
  EXPECT_EQ(blockers_b[0]->id, ahead.id);  // read blocked by queued write ahead
}

TEST(LockTableTest, HeldObjectsCountsAcrossObjects) {
  LockTable table{LockTable::QueuePolicy::kFifo};
  CcTxn a = make(1, 1);
  ASSERT_TRUE(table.try_grant(a, 1, LockMode::kRead));
  ASSERT_TRUE(table.try_grant(a, 2, LockMode::kWrite));
  EXPECT_EQ(table.held_objects(a), 2u);
  table.release_all(a);
  EXPECT_EQ(table.held_objects(a), 0u);
}

}  // namespace
}  // namespace rtdb::cc
