#pragma once

// Shared rig for exercising concurrency controllers without the full
// transaction layer: tracks CcTxn contexts, implements the abort hook by
// killing the victim's process and releasing its locks, and offers a
// standard scripted-transaction body.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "cc/controller.hpp"
#include "cc/txn_ctx.hpp"
#include "sim/kernel.hpp"

namespace rtdb::cc::testutil {

class Rig {
 public:
  Rig(sim::Kernel& kernel, ConcurrencyController& cc)
      : kernel_(kernel), cc_(cc) {
    cc_.set_hooks(ControllerHooks{
        [this](db::TxnId victim, AbortReason reason) { abort(victim, reason); },
        [this](const CcTxn& txn) {
          if (on_priority_changed) on_priority_changed(txn);
        }});
  }

  sim::Kernel& kernel() { return kernel_; }
  ConcurrencyController& cc() { return cc_; }

  struct Entry {
    CcTxn* ctx = nullptr;
    sim::ProcessId pid{};
    bool hook_aborted = false;
    AbortReason reason{};
  };

  void track(CcTxn& ctx, sim::ProcessId pid) {
    entries_[ctx.id.value] = Entry{&ctx, pid, false, AbortReason::kSystem};
  }

  // The abort hook: kill the victim's process (unwinding any blocked
  // acquire via RAII), then release its locks and deregister it — what the
  // transaction manager does in the full system. When the victim *is* the
  // currently running process (it closed the cycle with its own request),
  // aborting is delivered as a TxnAborted exception instead of a kill.
  void abort(db::TxnId victim, AbortReason reason) {
    auto it = entries_.find(victim.value);
    ASSERT_NE(it, entries_.end()) << "abort hook for unknown txn";
    Entry& entry = it->second;
    ASSERT_FALSE(entry.hook_aborted);
    entry.hook_aborted = true;
    entry.reason = reason;
    if (kernel_.current() != nullptr &&
        kernel_.current()->id() == entry.pid) {
      throw TxnAborted{reason};  // self-abort path; RAII cleans up
    }
    kernel_.kill(entry.pid);
    cc_.release_all(*entry.ctx);
    cc_.on_end(*entry.ctx);
  }

  bool hook_aborted(const CcTxn& ctx) const {
    auto it = entries_.find(ctx.id.value);
    return it != entries_.end() && it->second.hook_aborted;
  }

  std::function<void(const CcTxn&)> on_priority_changed;

 private:
  sim::Kernel& kernel_;
  ConcurrencyController& cc_;
  std::map<std::uint64_t, Entry> entries_;
};

struct ScriptResult {
  bool committed = false;
  bool self_aborted = false;
  AbortReason self_abort_reason{};
  double committed_at = -1;
};

// A scripted transaction: on_begin, then for each operation acquire and
// dwell `per_op`, then dwell `tail`, then release and commit. Self-aborts
// (TxnAborted) are caught and reported; kills unwind past it (the Rig's
// abort hook performs the release).
inline sim::Task<void> scripted_txn(Rig& rig, CcTxn& ctx,
                                    std::vector<Operation> ops,
                                    sim::Duration per_op, sim::Duration tail,
                                    ScriptResult& result) {
  ctx.access = AccessSet::from_operations(ops);
  rig.cc().on_begin(ctx);
  try {
    for (const Operation& op : ops) {
      co_await rig.cc().acquire(ctx, op.object, op.mode);
      co_await rig.kernel().delay(per_op);
    }
    co_await rig.kernel().delay(tail);
    result.committed = true;
    result.committed_at = rig.kernel().now().as_units();
  } catch (const TxnAborted& aborted) {
    result.self_aborted = true;
    result.self_abort_reason = aborted.reason();
  }
  rig.cc().release_all(ctx);
  rig.cc().on_end(ctx);
}

// Spawns a scripted transaction after `start_delay`.
inline sim::ProcessId spawn_scripted(Rig& rig, CcTxn& ctx,
                                     std::vector<Operation> ops,
                                     sim::Duration start_delay,
                                     sim::Duration per_op, sim::Duration tail,
                                     ScriptResult& result) {
  auto body = [](Rig& rig, CcTxn& ctx, std::vector<Operation> ops,
                 sim::Duration start_delay, sim::Duration per_op,
                 sim::Duration tail, ScriptResult& result) -> sim::Task<void> {
    co_await rig.kernel().delay(start_delay);
    co_await scripted_txn(rig, ctx, std::move(ops), per_op, tail, result);
  };
  sim::ProcessId pid = rig.kernel().spawn(
      "txn-" + std::to_string(ctx.id.value),
      body(rig, ctx, std::move(ops), start_delay, per_op, tail, result));
  rig.track(ctx, pid);
  return pid;
}

inline CcTxn make_txn(std::uint64_t id, std::int64_t priority_key) {
  CcTxn ctx;
  ctx.id = db::TxnId{id};
  ctx.base_priority = sim::Priority{priority_key, static_cast<std::uint32_t>(id)};
  return ctx;
}

}  // namespace rtdb::cc::testutil
