#include "cc/wait_die.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"

namespace rtdb::cc {
namespace {

using sim::Duration;
using sim::Kernel;
using testutil::make_txn;
using testutil::Rig;
using testutil::ScriptResult;
using testutil::spawn_scripted;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(WaitDieTest, OlderRequesterWaits) {
  Kernel k;
  WaitDie2PL cc{k};
  EXPECT_EQ(cc.name(), "2PL-WD");
  Rig rig{k, cc};
  // Younger (id 2) holds; older (id 1) requests late and waits.
  CcTxn old_txn = make_txn(1, 5), young = make_txn(2, 5);
  ScriptResult ro, ry;
  spawn_scripted(rig, young, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), ry);
  spawn_scripted(rig, old_txn, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), ro);
  k.run();
  EXPECT_TRUE(ry.committed);
  EXPECT_TRUE(ro.committed);
  EXPECT_EQ(ro.committed_at, 15.0);  // waited for the younger's release
  EXPECT_EQ(cc.dies(), 0u);
}

TEST(WaitDieTest, YoungerRequesterDies) {
  Kernel k;
  WaitDie2PL cc{k};
  Rig rig{k, cc};
  CcTxn old_txn = make_txn(1, 5), young = make_txn(2, 5);
  ScriptResult ro, ry;
  spawn_scripted(rig, old_txn, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), ro);
  spawn_scripted(rig, young, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), ry);
  k.run();
  EXPECT_TRUE(ro.committed);
  EXPECT_FALSE(ry.committed);  // the rig does not restart self-aborts
  EXPECT_TRUE(ry.self_aborted);
  EXPECT_EQ(ry.self_abort_reason, AbortReason::kAgeBased);
  EXPECT_EQ(cc.dies(), 1u);
}

TEST(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  Kernel k;
  WoundWait2PL cc{k};
  EXPECT_EQ(cc.name(), "2PL-WW");
  Rig rig{k, cc};
  CcTxn old_txn = make_txn(1, 5), young = make_txn(2, 5);
  ScriptResult ro, ry;
  spawn_scripted(rig, young, {{0, LockMode::kWrite}}, tu(0), tu(20), tu(0), ry);
  spawn_scripted(rig, old_txn, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), ro);
  k.run();
  EXPECT_TRUE(ro.committed);
  EXPECT_EQ(ro.committed_at, 6.0);  // took the lock immediately after wounding
  EXPECT_FALSE(ry.committed);
  EXPECT_TRUE(rig.hook_aborted(young));
  EXPECT_EQ(cc.wounds(), 1u);
}

TEST(WoundWaitTest, YoungerRequesterWaitsForOlderHolder) {
  Kernel k;
  WoundWait2PL cc{k};
  Rig rig{k, cc};
  CcTxn old_txn = make_txn(1, 5), young = make_txn(2, 5);
  ScriptResult ro, ry;
  spawn_scripted(rig, old_txn, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), ro);
  spawn_scripted(rig, young, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), ry);
  k.run();
  EXPECT_TRUE(ro.committed);
  EXPECT_TRUE(ry.committed);
  EXPECT_EQ(ry.committed_at, 15.0);
  EXPECT_EQ(cc.wounds(), 0u);
}

TEST(WaitDieTest, ReadersShare) {
  Kernel k;
  WaitDie2PL cc{k};
  Rig rig{k, cc};
  CcTxn a = make_txn(1, 5), b = make_txn(2, 5);
  ScriptResult ra, rb;
  spawn_scripted(rig, a, {{0, LockMode::kRead}}, tu(0), tu(10), tu(0), ra);
  spawn_scripted(rig, b, {{0, LockMode::kRead}}, tu(1), tu(10), tu(0), rb);
  k.run();
  EXPECT_EQ(ra.committed_at, 10.0);
  EXPECT_EQ(rb.committed_at, 11.0);  // no blocking, no dying
  EXPECT_EQ(cc.dies(), 0u);
}

// Deadlock freedom: the classic crossing pattern terminates under both
// flavours without any detector.
class AgeBasedPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<AgeBased2PL::Flavour, std::uint64_t>> {};

TEST_P(AgeBasedPropertyTest, RandomTrafficTerminatesDeadlockFree) {
  const auto [flavour, seed] = GetParam();
  Kernel k;
  AgeBased2PL cc{k, flavour};
  Rig rig{k, cc};
  sim::RandomStream rng{seed};
  constexpr int kTxns = 30;
  constexpr std::uint32_t kObjects = 8;
  std::vector<CcTxn> txns(kTxns);
  std::vector<ScriptResult> results(kTxns);
  for (int i = 0; i < kTxns; ++i) {
    txns[i] = make_txn(static_cast<std::uint64_t>(i + 1),
                       rng.uniform_int(0, 100));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    auto objects = rng.sample_without_replacement(kObjects, size);
    std::vector<Operation> ops;
    for (auto o : objects) {
      ops.push_back(Operation{
          o, rng.bernoulli(0.5) ? LockMode::kRead : LockMode::kWrite});
    }
    spawn_scripted(rig, txns[i], ops, Duration::units(rng.uniform_int(0, 60)),
                   Duration::units(rng.uniform_int(1, 4)), Duration::zero(),
                   results[i]);
  }
  k.run();  // termination proves deadlock freedom
  for (int i = 0; i < kTxns; ++i) {
    const bool resolved = results[i].committed || results[i].self_aborted ||
                          rig.hook_aborted(txns[i]);
    EXPECT_TRUE(resolved) << "txn " << i << " unresolved";
  }
  EXPECT_EQ(cc.table().waiting_requests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AgeBasedPropertyTest,
    ::testing::Combine(::testing::Values(AgeBased2PL::Flavour::kWaitDie,
                                         AgeBased2PL::Flavour::kWoundWait),
                       ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace rtdb::cc
