#include "cc/two_phase.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"
#include "sim/kernel.hpp"

namespace rtdb::cc {
namespace {

using sim::Duration;
using sim::Kernel;
using testutil::make_txn;
using testutil::Rig;
using testutil::ScriptResult;
using testutil::spawn_scripted;

Duration tu(std::int64_t n) { return Duration::units(n); }

TwoPhaseLocking::Options fifo_opts() {
  return TwoPhaseLocking::Options{LockTable::QueuePolicy::kFifo, false,
                                  TwoPhaseLocking::VictimPolicy::kLowestPriority};
}
TwoPhaseLocking::Options prio_opts() {
  return TwoPhaseLocking::Options{LockTable::QueuePolicy::kPriority, false,
                                  TwoPhaseLocking::VictimPolicy::kLowestPriority};
}

TEST(TwoPhaseTest, NamesReflectConfiguration) {
  Kernel k;
  TwoPhaseLocking l{k, fifo_opts()};
  TwoPhaseLocking p{k, prio_opts()};
  PriorityInheritance2PL pip{k};
  EXPECT_EQ(l.name(), "2PL");
  EXPECT_EQ(p.name(), "2PL-P");
  EXPECT_EQ(pip.name(), "2PL-PIP");
}

TEST(TwoPhaseTest, ConflictingWritersSerialize) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{5, LockMode::kWrite}}, tu(0), tu(10), tu(0), r1);
  spawn_scripted(rig, t2, {{5, LockMode::kWrite}}, tu(1), tu(10), tu(0), r2);
  k.run();
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(r1.committed_at, 10.0);
  EXPECT_EQ(r2.committed_at, 20.0);  // waited for t1's release
  EXPECT_EQ(t2.block_count, 1u);
  EXPECT_EQ(t2.blocked_total, tu(9));
}

TEST(TwoPhaseTest, ReadersProceedConcurrently) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{5, LockMode::kRead}}, tu(0), tu(10), tu(0), r1);
  spawn_scripted(rig, t2, {{5, LockMode::kRead}}, tu(1), tu(10), tu(0), r2);
  k.run();
  EXPECT_EQ(r1.committed_at, 10.0);
  EXPECT_EQ(r2.committed_at, 11.0);  // no blocking
  EXPECT_EQ(cc.blocks(), 0u);
}

TEST(TwoPhaseTest, ClassicDeadlockResolvedByVictim) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  // t1 (high priority): A then B. t2 (low priority): B then A.
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}, {1, LockMode::kWrite}},
                 tu(0), tu(5), tu(0), r1);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(1), tu(5), tu(0), r2);
  k.run();
  EXPECT_EQ(cc.deadlocks(), 1u);
  // Lowest-priority victim policy: t2 dies, t1 commits.
  EXPECT_TRUE(r1.committed);
  EXPECT_FALSE(r2.committed);
  EXPECT_TRUE(rig.hook_aborted(t2) || r2.self_aborted);
}

TEST(TwoPhaseTest, RequesterVictimPolicyAbortsSelf) {
  Kernel k;
  TwoPhaseLocking cc{
      k, TwoPhaseLocking::Options{LockTable::QueuePolicy::kFifo, false,
                                  TwoPhaseLocking::VictimPolicy::kRequester}};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}, {1, LockMode::kWrite}},
                 tu(0), tu(5), tu(0), r1);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(1), tu(5), tu(0), r2);
  k.run();
  // The cycle closes when t1 requests B (t2 already waits for A)... or vice
  // versa depending on interleaving; with these timings t1 holds A at 0,
  // t2 holds B at 1; t1 requests B at 5 and blocks (no cycle yet); t2
  // requests A at 6 closing the cycle, so t2 self-aborts.
  EXPECT_EQ(cc.deadlocks(), 1u);
  EXPECT_TRUE(r2.self_aborted);
  EXPECT_EQ(r2.self_abort_reason, AbortReason::kDeadlockVictim);
  EXPECT_TRUE(r1.committed);
}

TEST(TwoPhaseTest, YoungestVictimPolicy) {
  Kernel k;
  TwoPhaseLocking cc{
      k, TwoPhaseLocking::Options{LockTable::QueuePolicy::kFifo, false,
                                  TwoPhaseLocking::VictimPolicy::kYoungest}};
  Rig rig{k, cc};
  // Give the *older* transaction the lower priority so the policies differ:
  // youngest = t2 regardless of priority.
  CcTxn t1 = make_txn(1, 9), t2 = make_txn(2, 1);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}, {1, LockMode::kWrite}},
                 tu(0), tu(5), tu(0), r1);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(1), tu(5), tu(0), r2);
  k.run();
  EXPECT_FALSE(r2.committed);
  EXPECT_TRUE(r1.committed);
}

TEST(TwoPhaseTest, PriorityModeServesUrgentWaiterFirst) {
  Kernel k;
  TwoPhaseLocking cc{k, prio_opts()};
  Rig rig{k, cc};
  CcTxn holder = make_txn(1, 5), low = make_txn(2, 9), high = make_txn(3, 1);
  ScriptResult rh, rl, rhigh;
  spawn_scripted(rig, holder, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), rh);
  spawn_scripted(rig, low, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rl);
  spawn_scripted(rig, high, {{0, LockMode::kWrite}}, tu(2), tu(5), tu(0), rhigh);
  k.run();
  EXPECT_EQ(rhigh.committed_at, 15.0);  // granted at holder release (10)
  EXPECT_EQ(rl.committed_at, 20.0);
}

TEST(TwoPhaseTest, FifoModeServesArrivalOrder) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  CcTxn holder = make_txn(1, 5), low = make_txn(2, 9), high = make_txn(3, 1);
  ScriptResult rh, rl, rhigh;
  spawn_scripted(rig, holder, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), rh);
  spawn_scripted(rig, low, {{0, LockMode::kWrite}}, tu(1), tu(5), tu(0), rl);
  spawn_scripted(rig, high, {{0, LockMode::kWrite}}, tu(2), tu(5), tu(0), rhigh);
  k.run();
  EXPECT_EQ(rl.committed_at, 15.0);     // FIFO ignores priority
  EXPECT_EQ(rhigh.committed_at, 20.0);
}

// The chained-blocking weakness of basic priority inheritance (§3.1): T1
// needs O1 then O2, already locked by the lower-priority T2 and T3 — T1 is
// blocked twice.
TEST(TwoPhaseTest, PipSuffersChainedBlocking) {
  Kernel k;
  PriorityInheritance2PL cc{k};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2), t3 = make_txn(3, 3);
  ScriptResult r1, r2, r3;
  spawn_scripted(rig, t3, {{2, LockMode::kWrite}}, tu(0), tu(20), tu(0), r3);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}}, tu(1), tu(10), tu(0), r2);
  spawn_scripted(rig, t1, {{1, LockMode::kWrite}, {2, LockMode::kWrite}},
                 tu(2), tu(1), tu(0), r1);
  k.run();
  EXPECT_TRUE(r1.committed);
  EXPECT_EQ(t1.block_count, 2u);  // once behind t2 (O1), once behind t3 (O2)
}

TEST(TwoPhaseTest, PipInheritanceBoostsBlocker) {
  Kernel k;
  PriorityInheritance2PL cc{k};
  Rig rig{k, cc};
  CcTxn lo = make_txn(1, 9), hi = make_txn(2, 1);
  std::vector<std::pair<std::uint64_t, std::int64_t>> boosts;
  rig.on_priority_changed = [&](const CcTxn& t) {
    boosts.emplace_back(t.id.value, t.effective_priority().key());
  };
  ScriptResult rl, rh;
  spawn_scripted(rig, lo, {{0, LockMode::kWrite}}, tu(0), tu(10), tu(0), rl);
  spawn_scripted(rig, hi, {{0, LockMode::kWrite}}, tu(1), tu(1), tu(0), rh);
  k.run();
  // While hi was blocked, lo inherited hi's priority (key 1)...
  ASSERT_FALSE(boosts.empty());
  EXPECT_EQ(boosts.front(), (std::pair<std::uint64_t, std::int64_t>{1, 1}));
  // ...and the inheritance was withdrawn when the block ended.
  EXPECT_EQ(boosts.back(), (std::pair<std::uint64_t, std::int64_t>{1, 9}));
  EXPECT_TRUE(rl.committed);
  EXPECT_TRUE(rh.committed);
}

TEST(TwoPhaseTest, TransitiveInheritanceThroughChain) {
  Kernel k;
  PriorityInheritance2PL cc{k};
  Rig rig{k, cc};
  // t3 (lowest) holds A; t2 waits for A while holding B; t1 (highest)
  // waits for B => t3 must inherit t1's priority through t2.
  CcTxn t3 = make_txn(3, 30), t2 = make_txn(2, 20), t1 = make_txn(1, 10);
  std::int64_t t3_best_key = 100;
  rig.on_priority_changed = [&](const CcTxn& t) {
    if (t.id.value == 3) {
      t3_best_key = std::min(t3_best_key, t.effective_priority().key());
    }
  };
  ScriptResult r1, r2, r3;
  spawn_scripted(rig, t3, {{0, LockMode::kWrite}}, tu(0), tu(30), tu(0), r3);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(1), tu(5), tu(0), r2);
  spawn_scripted(rig, t1, {{1, LockMode::kWrite}}, tu(10), tu(5), tu(0), r1);
  k.run();
  EXPECT_EQ(t3_best_key, 10);  // inherited t1's key transitively
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_TRUE(r3.committed);
}

TEST(TwoPhaseTest, KilledWaiterLeavesCleanState) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  CcTxn holder = make_txn(1, 1), waiter = make_txn(2, 2);
  ScriptResult rh, rw;
  spawn_scripted(rig, holder, {{0, LockMode::kWrite}}, tu(0), tu(20), tu(0), rh);
  auto pid = spawn_scripted(rig, waiter, {{0, LockMode::kWrite}}, tu(1), tu(5),
                            tu(0), rw);
  k.schedule_in(tu(5), [&] {
    k.kill(pid);
    cc.release_all(waiter);
    cc.on_end(waiter);
  });
  k.run();
  EXPECT_TRUE(rh.committed);
  EXPECT_FALSE(rw.committed);
  EXPECT_EQ(cc.table().waiting_requests(), 0u);
  EXPECT_TRUE(cc.wait_for_graph().empty());
}

TEST(TwoPhaseTest, ThreeWayDeadlockResolved) {
  Kernel k;
  TwoPhaseLocking cc{k, fifo_opts()};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2), t3 = make_txn(3, 3);
  ScriptResult r1, r2, r3;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}, {1, LockMode::kWrite}},
                 tu(0), tu(4), tu(0), r1);
  spawn_scripted(rig, t2, {{1, LockMode::kWrite}, {2, LockMode::kWrite}},
                 tu(1), tu(4), tu(0), r2);
  spawn_scripted(rig, t3, {{2, LockMode::kWrite}, {0, LockMode::kWrite}},
                 tu(2), tu(4), tu(0), r3);
  k.run();
  EXPECT_GE(cc.deadlocks(), 1u);
  int committed = r1.committed + r2.committed + r3.committed;
  EXPECT_EQ(committed, 2);  // exactly one victim
}

}  // namespace
}  // namespace rtdb::cc
